//! Property tests: the text format round-trips arbitrary well-formed
//! schedules and arbitrary instructions.

use mario_ir::text::{from_text, parse_instr, to_text};
use mario_ir::{DeviceId, Instr, Schedule, SchemeKind, Topology};
use proptest::prelude::*;

fn arb_instr() -> impl Strategy<Value = Instr> {
    let m = 0u32..1000;
    let p = 0u32..8;
    let peer = (0u32..64).prop_map(DeviceId);
    prop_oneof![
        (m.clone(), p.clone()).prop_map(|(m, p)| Instr::forward(m, p)),
        (m.clone(), p.clone()).prop_map(|(m, p)| Instr::ckpt_forward(m, p)),
        (m.clone(), p.clone()).prop_map(|(m, p)| Instr::backward(m, p)),
        (m.clone(), p.clone()).prop_map(|(m, p)| Instr::backward_input(m, p)),
        (m.clone(), p.clone()).prop_map(|(m, p)| Instr::backward_weight(m, p)),
        (m.clone(), p.clone()).prop_map(|(m, p)| Instr::recompute(m, p)),
        (m.clone(), p.clone(), peer.clone()).prop_map(|(m, p, d)| Instr::send_act(m, p, d)),
        (m.clone(), p.clone(), peer.clone()).prop_map(|(m, p, d)| Instr::recv_act(m, p, d)),
        (m.clone(), p.clone(), peer.clone()).prop_map(|(m, p, d)| Instr::send_grad(m, p, d)),
        (m, p, peer).prop_map(|(m, p, d)| Instr::recv_grad(m, p, d)),
        Just(Instr::all_reduce()),
        Just(Instr::optimizer_step()),
    ]
}

fn arb_scheme() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::GPipe),
        Just(SchemeKind::OneFOneB),
        Just(SchemeKind::Chimera),
        (1u32..4).prop_map(|c| SchemeKind::Interleave { chunks: c }),
        (1u32..4).prop_map(|c| SchemeKind::Wave { chunks: c }),
    ]
}

proptest! {
    #[test]
    fn instr_notation_round_trips(i in arb_instr()) {
        prop_assert_eq!(parse_instr(&i.to_string()), Some(i));
    }

    /// Arbitrary (even nonsensical) instruction soups survive the schedule
    /// round trip — the format is a faithful container, not a validator.
    #[test]
    fn schedule_text_round_trips(
        scheme in arb_scheme(),
        devices in 1u32..6,
        micros in 0u32..6,
        instrs in prop::collection::vec(arb_instr(), 0..40),
    ) {
        let devices = if matches!(scheme, SchemeKind::Chimera) {
            devices * 2
        } else {
            devices
        };
        let routes = (0..micros)
            .map(|m| m % scheme.num_routes())
            .collect::<Vec<_>>();
        let topo = Topology::new(scheme, devices);
        let mut s = Schedule::empty(topo, micros, routes);
        for (i, instr) in instrs.into_iter().enumerate() {
            let d = DeviceId(i as u32 % devices);
            s.program_mut(d).push(instr);
        }
        let text = to_text(&s);
        let back = from_text(&text).unwrap();
        prop_assert_eq!(s, back);
    }
}
