//! A plain-text serialization of schedules — the ahead-of-time artifact
//! Mario hands to the training runtime (the paper's instruction lists,
//! §4: "The outputted instruction lists can be directly executed").
//!
//! Format (`mario-schedule v1`):
//!
//! ```text
//! mario-schedule v1
//! scheme V devices 4 micros 6
//! routes 0 0 0 0 0 0
//! d0: F0^0 SA0^0>d1 F1^0 SA1^0>d1 RG0^0<d1 B0^0 ...
//! d1: RA0^0<d0 F0^0 B0^0 SG0^0>d0 ...
//! ```
//!
//! Instructions use the same compact notation as their `Display` impl, so
//! dumps are directly diffable against visualizations and logs.

use crate::ids::DeviceId;
use crate::instr::Instr;
use crate::list::DeviceProgram;
use crate::schedule::Schedule;
use crate::topology::{SchemeKind, Topology};
use std::fmt;

/// Parse failure with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ParseError {}

fn scheme_token(s: SchemeKind) -> String {
    match s {
        SchemeKind::GPipe => "G".into(),
        SchemeKind::OneFOneB => "V".into(),
        SchemeKind::Chimera => "X".into(),
        SchemeKind::Interleave { chunks } => format!("W:{chunks}"),
        SchemeKind::Wave { chunks } => format!("H:{chunks}"),
        SchemeKind::ForwardOnly => "F".into(),
        // "F" is taken by ForwardOnly and "B"/"Bi"/"Bw" by the instruction
        // notation, so the ZB family gets "Z"-prefixed tokens.
        SchemeKind::ZeroBubbleH1 => "Z".into(),
        SchemeKind::ZeroBubbleV => "ZV".into(),
    }
}

fn parse_scheme(tok: &str) -> Option<SchemeKind> {
    match tok {
        "G" => Some(SchemeKind::GPipe),
        "V" => Some(SchemeKind::OneFOneB),
        "X" => Some(SchemeKind::Chimera),
        "F" => Some(SchemeKind::ForwardOnly),
        "Z" => Some(SchemeKind::ZeroBubbleH1),
        "ZV" => Some(SchemeKind::ZeroBubbleV),
        _ => {
            let (letter, chunks) = tok.split_once(':')?;
            let chunks: u32 = chunks.parse().ok()?;
            match letter {
                "W" => Some(SchemeKind::Interleave { chunks }),
                "H" => Some(SchemeKind::Wave { chunks }),
                _ => None,
            }
        }
    }
}

/// Serializes a schedule to the v1 text format.
pub fn to_text(s: &Schedule) -> String {
    let mut out = String::from("mario-schedule v1\n");
    out.push_str(&format!(
        "scheme {} devices {} micros {}\n",
        scheme_token(s.topology.scheme),
        s.topology.devices,
        s.micros
    ));
    out.push_str("routes");
    for r in &s.routes {
        out.push_str(&format!(" {r}"));
    }
    out.push('\n');
    for p in s.programs() {
        out.push_str(&p.to_string());
        out.push('\n');
    }
    out
}

/// Parses one instruction token (the `Display` notation).
pub fn parse_instr(tok: &str) -> Option<Instr> {
    if tok == "AR" {
        return Some(Instr::all_reduce());
    }
    if tok == "OS" {
        return Some(Instr::optimizer_step());
    }
    // P2P: e.g. SA3^1>d2 / RG0^0<d1.
    for (prefix, recv) in [("SA", false), ("SG", false), ("RA", true), ("RG", true)] {
        if let Some(rest) = tok.strip_prefix(prefix) {
            let sep = if recv { '<' } else { '>' };
            let (mp, peer) = rest.split_once(sep)?;
            let (m, p) = mp.split_once('^')?;
            let micro: u32 = m.parse().ok()?;
            let part: u32 = p.parse().ok()?;
            let peer: u32 = peer.strip_prefix('d')?.parse().ok()?;
            let peer = DeviceId(peer);
            return Some(match prefix {
                "SA" => Instr::send_act(micro, part, peer),
                "SG" => Instr::send_grad(micro, part, peer),
                "RA" => Instr::recv_act(micro, part, peer),
                _ => Instr::recv_grad(micro, part, peer),
            });
        }
    }
    // Compute: cF3^0 / F3^0 / B3^0 / R3^0.
    let (kind, rest): (fn(u32, u32) -> Instr, &str) = if let Some(r) = tok.strip_prefix("cF") {
        (
            |m, p| Instr::ckpt_forward(m, p),
            r,
        )
    } else if let Some(r) = tok.strip_prefix('F') {
        (|m, p| Instr::forward(m, p), r)
    } else if let Some(r) = tok.strip_prefix("Bi") {
        (|m, p| Instr::backward_input(m, p), r)
    } else if let Some(r) = tok.strip_prefix("Bw") {
        (|m, p| Instr::backward_weight(m, p), r)
    } else if let Some(r) = tok.strip_prefix('B') {
        (|m, p| Instr::backward(m, p), r)
    } else if let Some(r) = tok.strip_prefix('R') {
        (|m, p| Instr::recompute(m, p), r)
    } else {
        return None;
    };
    let (m, p) = rest.split_once('^')?;
    Some(kind(m.parse().ok()?, p.parse().ok()?))
}

/// Parses the v1 text format back into a schedule.
pub fn from_text(text: &str) -> Result<Schedule, ParseError> {
    let err = |line: usize, what: &str| ParseError {
        line,
        what: what.to_string(),
    };
    let mut lines = text.lines().enumerate();

    let (n, header) = lines.next().ok_or_else(|| err(1, "empty input"))?;
    if header.trim() != "mario-schedule v1" {
        return Err(err(n + 1, "expected header 'mario-schedule v1'"));
    }

    let (n, meta) = lines.next().ok_or_else(|| err(2, "missing scheme line"))?;
    let toks: Vec<&str> = meta.split_whitespace().collect();
    let [kw_s, scheme, kw_d, devices, kw_m, micros] = toks.as_slice() else {
        return Err(err(n + 1, "expected 'scheme <s> devices <d> micros <n>'"));
    };
    if *kw_s != "scheme" || *kw_d != "devices" || *kw_m != "micros" {
        return Err(err(n + 1, "expected 'scheme <s> devices <d> micros <n>'"));
    }
    let scheme = parse_scheme(scheme).ok_or_else(|| err(n + 1, "unknown scheme token"))?;
    let devices: u32 = devices
        .parse()
        .map_err(|_| err(n + 1, "bad device count"))?;
    let micros: u32 = micros.parse().map_err(|_| err(n + 1, "bad micro count"))?;

    let (n, routes_line) = lines.next().ok_or_else(|| err(3, "missing routes line"))?;
    let mut routes = Vec::with_capacity(micros as usize);
    let mut toks = routes_line.split_whitespace();
    if toks.next() != Some("routes") {
        return Err(err(n + 1, "expected 'routes ...'"));
    }
    for t in toks {
        routes.push(t.parse::<u32>().map_err(|_| err(n + 1, "bad route"))?);
    }
    if routes.len() != micros as usize {
        return Err(err(n + 1, "route count != micros"));
    }

    let topo = Topology::new(scheme, devices);
    let mut programs: Vec<DeviceProgram> = Vec::with_capacity(devices as usize);
    for (n, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (dev, rest) = line
            .split_once(':')
            .ok_or_else(|| err(n + 1, "expected 'dK: <instrs>'"))?;
        let dev: u32 = dev
            .strip_prefix('d')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(n + 1, "bad device tag"))?;
        if dev as usize != programs.len() {
            return Err(err(n + 1, "device lines out of order"));
        }
        let mut prog = DeviceProgram::new(DeviceId(dev));
        for tok in rest.split_whitespace() {
            let instr =
                parse_instr(tok).ok_or_else(|| err(n + 1, "unparseable instruction"))?;
            prog.push(instr);
        }
        programs.push(prog);
    }
    if programs.len() != devices as usize {
        return Err(err(0, "wrong number of device lines"));
    }
    Ok(Schedule::from_programs(topo, micros, routes, programs))
}

/// Convenience check used by tests: an instruction survives the notation
/// round trip.
pub fn instr_round_trips(i: &Instr) -> bool {
    parse_instr(&i.to_string()) == Some(*i)
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_instr_kind_round_trips() {
        let peer = DeviceId(3);
        let instrs = [
            Instr::forward(12, 1u32),
            Instr::ckpt_forward(0, 0u32),
            Instr::backward(5, 2u32),
            Instr::backward_input(5, 2u32),
            Instr::backward_weight(5, 2u32),
            Instr::recompute(5, 2u32),
            Instr::send_act(1, 0u32, peer),
            Instr::recv_act(1, 0u32, peer),
            Instr::send_grad(9, 1u32, peer),
            Instr::recv_grad(9, 1u32, peer),
            Instr::all_reduce(),
            Instr::optimizer_step(),
        ];
        for i in instrs {
            assert!(instr_round_trips(&i), "{i}");
        }
    }

    #[test]
    fn schedule_round_trips() {
        let topo = Topology::new(SchemeKind::Chimera, 4);
        let mut s = Schedule::empty(topo, 2, vec![0, 1]);
        s.program_mut(DeviceId(0)).push(Instr::forward(0, 0u32));
        s.program_mut(DeviceId(0))
            .push(Instr::send_act(0, 0u32, DeviceId(1)));
        s.program_mut(DeviceId(1))
            .push(Instr::recv_act(0, 0u32, DeviceId(0)));
        s.program_mut(DeviceId(3)).push(Instr::ckpt_forward(1, 1u32));
        s.program_mut(DeviceId(3)).push(Instr::recompute(1, 1u32));
        s.program_mut(DeviceId(3)).push(Instr::backward(1, 1u32));
        let text = to_text(&s);
        let back = from_text(&text).unwrap();
        assert_eq!(s, back);
    }

    /// Every scheme, exhaustively: the `match` forces a compile error when a
    /// new `SchemeKind` is added, so its text token gets picked deliberately
    /// instead of colliding with an existing letter ("F" already bit us —
    /// it belongs to ForwardOnly, so ZB-H1 had to become "Z").
    fn all_schemes() -> Vec<SchemeKind> {
        match SchemeKind::GPipe {
            SchemeKind::GPipe
            | SchemeKind::OneFOneB
            | SchemeKind::Chimera
            | SchemeKind::Interleave { .. }
            | SchemeKind::Wave { .. }
            | SchemeKind::ForwardOnly
            | SchemeKind::ZeroBubbleH1
            | SchemeKind::ZeroBubbleV => {}
        }
        vec![
            SchemeKind::GPipe,
            SchemeKind::OneFOneB,
            SchemeKind::Chimera,
            SchemeKind::Interleave { chunks: 3 },
            SchemeKind::Wave { chunks: 2 },
            SchemeKind::ForwardOnly,
            SchemeKind::ZeroBubbleH1,
            SchemeKind::ZeroBubbleV,
        ]
    }

    #[test]
    fn scheme_tokens_round_trip() {
        for s in all_schemes() {
            assert_eq!(parse_scheme(&scheme_token(s)), Some(s));
        }
    }

    #[test]
    fn scheme_tokens_are_pairwise_distinct() {
        let tokens: Vec<String> = all_schemes().iter().map(|&s| scheme_token(s)).collect();
        for (i, a) in tokens.iter().enumerate() {
            for b in &tokens[i + 1..] {
                assert_ne!(a, b, "scheme token collision");
            }
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert_eq!(from_text("").unwrap_err().line, 1);
        let bad_header = from_text("not a schedule\n").unwrap_err();
        assert_eq!(bad_header.line, 1);
        let bad_scheme = from_text("mario-schedule v1\nscheme Q devices 2 micros 1\n");
        assert_eq!(bad_scheme.unwrap_err().line, 2);
        let bad_instr = from_text(
            "mario-schedule v1\nscheme V devices 1 micros 1\nroutes 0\nd0: F0^0 QQ\n",
        );
        let e = bad_instr.unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.what.contains("unparseable"));
    }

    #[test]
    fn rejects_out_of_order_device_lines() {
        let text = "mario-schedule v1\nscheme V devices 2 micros 1\nroutes 0\nd1: F0^0\nd0: F0^0\n";
        assert!(from_text(text).unwrap_err().what.contains("out of order"));
    }

    #[test]
    fn garbage_tokens_do_not_parse() {
        for t in ["", "Z1^0", "F1", "SA1^0", "SA1^0>x2", "F^0", "cB1^0"] {
            assert_eq!(parse_instr(t), None, "{t:?}");
        }
    }
}
