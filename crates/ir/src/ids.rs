//! Strongly-typed identifiers used throughout the Mario IR.
//!
//! The paper (Table 2/3) indexes every pipeline instruction by a
//! *micro-batch id* (subscript `m`) and a *partition id* (superscript `p`),
//! and maps instructions onto *devices* that each hold one or more pipeline
//! *stages*. Keeping these four spaces as distinct newtypes prevents the
//! classic off-by-one-axis bugs when manipulating schedules.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $short:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize,
            Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Constructs from a `usize` index (panics on overflow).
            #[inline]
            pub fn from_usize(v: usize) -> Self {
                Self(u32::try_from(v).expect("id overflows u32"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $short, self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

id_newtype!(
    /// A physical device (one GPU in the paper's terminology).
    DeviceId,
    "d"
);
id_newtype!(
    /// A pipeline stage: a contiguous group of model layers.
    StageId,
    "s"
);
id_newtype!(
    /// A micro-batch id (subscript `m` in the paper).
    MicroId,
    "m"
);
id_newtype!(
    /// A partition id (superscript `p` in the paper): distinguishes the
    /// multiple stages a single device may hold (Chimera's up/down pipelines,
    /// Interleave's model chunks).
    PartId,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_short_prefixes() {
        assert_eq!(DeviceId(3).to_string(), "d3");
        assert_eq!(StageId(0).to_string(), "s0");
        assert_eq!(MicroId(12).to_string(), "m12");
        assert_eq!(PartId(1).to_string(), "p1");
    }

    #[test]
    fn index_round_trips() {
        let d = DeviceId::from_usize(42);
        assert_eq!(d.index(), 42);
        assert_eq!(DeviceId::from(42u32), d);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(MicroId(1) < MicroId(2));
        assert!(DeviceId(0) < DeviceId(1));
    }

    #[test]
    #[should_panic(expected = "id overflows u32")]
    fn from_usize_panics_on_overflow() {
        let _ = MicroId::from_usize(usize::MAX);
    }
}
