//! Structural validation of schedules.
//!
//! A schedule is *well-formed* when every micro-batch performs one forward
//! and one backward on every stage of its route, checkpointing is paired
//! with exactly one recomputation placed inside the `CFW..BW` window, and
//! every stage-boundary crossing carries correctly-tagged, correctly-ordered
//! communication. These are exactly the dependencies the graph tuner
//! (paper §5.1) promises to preserve across its passes, so the test suite
//! re-validates after every transformation.

use crate::exec::{check_executable, ExecError};
use crate::ids::{DeviceId, MicroId, PartId};
use crate::instr::{Instr, InstrKind, InstrTag};
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One validation failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationError {
    /// A `(device, micro, part)` triple is missing a required instruction.
    Missing {
        /// Where the instruction was expected.
        device: DeviceId,
        /// Expected instruction class.
        tag: InstrTag,
        /// Micro-batch.
        micro: MicroId,
        /// Partition.
        part: PartId,
    },
    /// A `(device, micro, part)` triple has a duplicated instruction.
    Duplicate {
        /// Offending device.
        device: DeviceId,
        /// Duplicated instruction class.
        tag: InstrTag,
        /// Micro-batch.
        micro: MicroId,
        /// Partition.
        part: PartId,
    },
    /// An instruction appears on a device whose route never visits it.
    Misplaced {
        /// Offending device.
        device: DeviceId,
        /// The instruction.
        instr: String,
    },
    /// Two instructions are in the wrong relative order.
    OrderViolation {
        /// Offending device.
        device: DeviceId,
        /// Human-readable description of the violated constraint.
        what: String,
    },
    /// A recompute exists for a non-checkpointed forward, or is missing for
    /// a checkpointed one.
    CheckpointMismatch {
        /// Offending device.
        device: DeviceId,
        /// Micro-batch.
        micro: MicroId,
        /// Partition.
        part: PartId,
        /// Description.
        what: String,
    },
    /// A p2p instruction names the wrong peer.
    WrongPeer {
        /// Offending device.
        device: DeviceId,
        /// The instruction.
        instr: String,
        /// The peer the topology dictates.
        expected: DeviceId,
    },
    /// Symbolic execution failed (deadlock or message mismatch).
    NotExecutable(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::Missing {
                device,
                tag,
                micro,
                part,
            } => write!(f, "{device}: missing {tag:?} for ({micro}, {part})"),
            ValidationError::Duplicate {
                device,
                tag,
                micro,
                part,
            } => write!(f, "{device}: duplicate {tag:?} for ({micro}, {part})"),
            ValidationError::Misplaced { device, instr } => {
                write!(f, "{device}: instruction {instr} does not belong here")
            }
            ValidationError::OrderViolation { device, what } => {
                write!(f, "{device}: order violation: {what}")
            }
            ValidationError::CheckpointMismatch {
                device,
                micro,
                part,
                what,
            } => write!(f, "{device}: checkpoint mismatch for ({micro}, {part}): {what}"),
            ValidationError::WrongPeer {
                device,
                instr,
                expected,
            } => write!(f, "{device}: {instr} should target {expected}"),
            ValidationError::NotExecutable(e) => write!(f, "schedule not executable: {e}"),
        }
    }
}

/// Validation knobs.
#[derive(Debug, Clone, Copy)]
pub struct ValidateOptions {
    /// Check communication instructions (presence, tagging, ordering). When
    /// the schedule contains no p2p instructions at all this is skipped
    /// automatically (compute-only schedules are legal for analysis).
    pub check_comm: bool,
    /// Channel capacity used by the executability check.
    pub channel_capacity: usize,
    /// Run the symbolic execution (deadlock) check.
    pub check_executable: bool,
}

impl Default for ValidateOptions {
    fn default() -> Self {
        Self {
            check_comm: true,
            channel_capacity: 1,
            check_executable: true,
        }
    }
}

/// Validates `schedule` with default options.
pub fn validate(schedule: &Schedule) -> Result<(), Vec<ValidationError>> {
    validate_with(schedule, ValidateOptions::default())
}

/// Validates `schedule` with explicit options. Returns *all* failures.
pub fn validate_with(
    schedule: &Schedule,
    opts: ValidateOptions,
) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();
    let _topo = &schedule.topology;
    let has_comm = schedule
        .programs()
        .iter()
        .any(|p| p.count(|i| i.kind.is_p2p()) > 0);
    let check_comm = opts.check_comm && has_comm;
    // Forward-only (serving) schedules invert the backward requirements:
    // no backward/recompute/gradient instruction may appear at all, and
    // only the activation half of the comm pairing applies.
    let forward_only = matches!(
        schedule.topology.scheme,
        crate::topology::SchemeKind::ForwardOnly
    );

    // -- Per (micro, hop) compute + communication requirements ------------
    for m in 0..schedule.micros {
        let micro = MicroId(m);
        let path = schedule.forward_path_of(micro);
        for (hop_idx, &(dev, part)) in path.iter().enumerate() {
            let prog = schedule.program(dev);
            check_unique(&mut errors, prog, dev, InstrTag::Forward, micro, part);
            if forward_only {
                check_forward_only_hop(&mut errors, schedule, micro, &path, hop_idx, check_comm);
                continue;
            }
            // Exactly one full backward XOR a split (Bi + Bw) pair.
            let n_b = count_tag(prog, InstrTag::Backward, micro, part);
            let n_bi = count_tag(prog, InstrTag::BackwardInput, micro, part);
            let n_bw = count_tag(prog, InstrTag::BackwardWeight, micro, part);
            match (n_b, n_bi, n_bw) {
                (1, 0, 0) => {}
                (0, 1, 1) => {
                    let bi = prog
                        .position_of(InstrTag::BackwardInput, micro, part)
                        .expect("counted");
                    let bwp = prog
                        .position_of(InstrTag::BackwardWeight, micro, part)
                        .expect("counted");
                    if bwp < bi {
                        errors.push(ValidationError::OrderViolation {
                            device: dev,
                            what: format!(
                                "Bw{m}^{} before its input-gradient half",
                                part.0
                            ),
                        });
                    }
                }
                (0, 0, 0) => errors.push(ValidationError::Missing {
                    device: dev,
                    tag: InstrTag::Backward,
                    micro,
                    part,
                }),
                _ => errors.push(ValidationError::Duplicate {
                    device: dev,
                    tag: InstrTag::Backward,
                    micro,
                    part,
                }),
            }
            let fw = prog.forward_pos(micro, part);
            // Ordering and comm anchor on the instruction that unblocks the
            // upstream stage: the backward, or the Bi half when split.
            let bw = prog.effective_backward_pos(micro, part);
            if let (Some(fw), Some(bw)) = (fw, bw) {
                if bw < fw {
                    errors.push(ValidationError::OrderViolation {
                        device: dev,
                        what: format!("B{m}^{} before its forward", part.0),
                    });
                }
                // Checkpoint / recompute pairing.
                let is_ckpt = prog.instrs()[fw].is_ckpt_forward();
                let rc = prog.recompute_pos(micro, part);
                match (is_ckpt, rc) {
                    (true, None) => errors.push(ValidationError::CheckpointMismatch {
                        device: dev,
                        micro,
                        part,
                        what: "checkpointed forward without recompute".into(),
                    }),
                    (false, Some(_)) => errors.push(ValidationError::CheckpointMismatch {
                        device: dev,
                        micro,
                        part,
                        what: "recompute without checkpointed forward".into(),
                    }),
                    (true, Some(rc)) => {
                        if rc <= fw || rc >= bw {
                            errors.push(ValidationError::CheckpointMismatch {
                                device: dev,
                                micro,
                                part,
                                what: format!(
                                    "recompute at #{rc} outside forward (#{fw})..backward (#{bw}) window"
                                ),
                            });
                        }
                        let n = prog.count(|i| {
                            i.kind == InstrKind::Recompute && i.micro == micro && i.part == part
                        });
                        if n > 1 {
                            errors.push(ValidationError::Duplicate {
                                device: dev,
                                tag: InstrTag::Recompute,
                                micro,
                                part,
                            });
                        }
                    }
                    (false, None) => {}
                }

                if check_comm {
                    check_hop_comm(
                        &mut errors,
                        schedule,
                        micro,
                        &path,
                        hop_idx,
                        dev,
                        part,
                        fw,
                        Some(bw),
                    );
                }
            }
        }
    }

    // -- No stray compute on devices off the route (or out-of-range) -------
    for prog in schedule.programs() {
        for (_, i) in prog.iter() {
            if forward_only
                && matches!(
                    i.kind.tag(),
                    InstrTag::Backward
                        | InstrTag::BackwardInput
                        | InstrTag::BackwardWeight
                        | InstrTag::Recompute
                        | InstrTag::SendGrad
                        | InstrTag::RecvGrad
                )
            {
                errors.push(ValidationError::Misplaced {
                    device: prog.device,
                    instr: format!("{i} (backward-pass instruction in a forward-only schedule)"),
                });
                continue;
            }
            if i.kind.is_compute() {
                if i.micro.0 >= schedule.micros {
                    errors.push(ValidationError::Misplaced {
                        device: prog.device,
                        instr: format!("{i} (micro out of range)"),
                    });
                    continue;
                }
                let path = schedule.forward_path_of(i.micro);
                if !path.contains(&(prog.device, i.part)) {
                    errors.push(ValidationError::Misplaced {
                        device: prog.device,
                        instr: i.to_string(),
                    });
                }
            }
        }
    }

    // -- Collective bookkeeping --------------------------------------------
    let ar_counts: Vec<usize> = schedule
        .programs()
        .iter()
        .map(|p| p.count(|i| i.kind == InstrKind::AllReduce))
        .collect();
    if ar_counts.iter().any(|&c| c != ar_counts[0]) {
        errors.push(ValidationError::OrderViolation {
            device: DeviceId(0),
            what: format!("uneven AllReduce counts across devices: {ar_counts:?}"),
        });
    }

    // -- Executability ------------------------------------------------------
    if opts.check_executable && errors.is_empty() {
        if let Err(e) = check_executable(schedule, opts.channel_capacity) {
            errors.push(ValidationError::NotExecutable(e.to_string()));
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Executability check with a configurable channel capacity, re-exported for
/// callers that only care about deadlock-freedom.
pub fn check_deadlock_free(schedule: &Schedule, channel_capacity: usize) -> Result<(), ExecError> {
    check_executable(schedule, channel_capacity).map(|_| ())
}

fn count_tag(
    prog: &crate::list::DeviceProgram,
    tag: InstrTag,
    micro: MicroId,
    part: PartId,
) -> usize {
    prog.count(|i| i.kind.tag() == tag && i.micro == micro && i.part == part)
}

fn check_unique(
    errors: &mut Vec<ValidationError>,
    prog: &crate::list::DeviceProgram,
    device: DeviceId,
    tag: InstrTag,
    micro: MicroId,
    part: PartId,
) {
    let n = count_tag(prog, tag, micro, part);
    match n {
        0 => errors.push(ValidationError::Missing {
            device,
            tag,
            micro,
            part,
        }),
        1 => {}
        _ => errors.push(ValidationError::Duplicate {
            device,
            tag,
            micro,
            part,
        }),
    }
}

/// The forward-only half of the per-hop requirements: the forward exists
/// (checked by the caller), must not be checkpointed (there is no backward
/// to recompute for), must not have a recompute, and — when comm is
/// checked — carries only the activation half of the hop pairing.
fn check_forward_only_hop(
    errors: &mut Vec<ValidationError>,
    schedule: &Schedule,
    micro: MicroId,
    path: &[(DeviceId, PartId)],
    hop_idx: usize,
    check_comm: bool,
) {
    let (dev, part) = path[hop_idx];
    let prog = schedule.program(dev);
    let Some(fw) = prog.forward_pos(micro, part) else {
        return; // the Missing error is already recorded
    };
    if prog.instrs()[fw].is_ckpt_forward() {
        errors.push(ValidationError::CheckpointMismatch {
            device: dev,
            micro,
            part,
            what: "checkpointed forward in a forward-only schedule".into(),
        });
    }
    if check_comm {
        check_hop_comm(errors, schedule, micro, path, hop_idx, dev, part, fw, None);
    }
}

#[allow(clippy::too_many_arguments)]
fn check_hop_comm(
    errors: &mut Vec<ValidationError>,
    schedule: &Schedule,
    micro: MicroId,
    path: &[(DeviceId, PartId)],
    hop_idx: usize,
    dev: DeviceId,
    part: PartId,
    fw: usize,
    bw: Option<usize>,
) {
    let prog = schedule.program(dev);
    let m = micro;

    // Forward-direction activation: this hop sends to the next hop (if any,
    // and if it lives on a different device — wave reflections stay local).
    if let Some(&(next_dev, _)) = path.get(hop_idx + 1) {
        if next_dev != dev {
            // SA(m, part) on this device, after the forward.
            match find_p2p(prog, InstrTag::SendAct, m, part) {
                Some((pos, instr)) => {
                    if instr.kind.peer() != Some(next_dev) {
                        errors.push(ValidationError::WrongPeer {
                            device: dev,
                            instr: instr.to_string(),
                            expected: next_dev,
                        });
                    }
                    if pos < fw {
                        errors.push(ValidationError::OrderViolation {
                            device: dev,
                            what: format!("SA{}^{} before its forward", m.0, part.0),
                        });
                    }
                }
                None => errors.push(ValidationError::Missing {
                    device: dev,
                    tag: InstrTag::SendAct,
                    micro: m,
                    part,
                }),
            }
            // RA(m, part) on the next device, before its forward. The
            // message is tagged with the *producer's* part.
            let next_prog = schedule.program(next_dev);
            let (_, next_part) = path[hop_idx + 1];
            let next_fw = next_prog.forward_pos(m, next_part);
            match find_p2p(next_prog, InstrTag::RecvAct, m, part) {
                Some((pos, instr)) => {
                    if instr.kind.peer() != Some(dev) {
                        errors.push(ValidationError::WrongPeer {
                            device: next_dev,
                            instr: instr.to_string(),
                            expected: dev,
                        });
                    }
                    if let Some(next_fw) = next_fw {
                        if pos > next_fw {
                            errors.push(ValidationError::OrderViolation {
                                device: next_dev,
                                what: format!(
                                    "RA{}^{} after the forward that consumes it",
                                    m.0, part.0
                                ),
                            });
                        }
                    }
                }
                None => errors.push(ValidationError::Missing {
                    device: next_dev,
                    tag: InstrTag::RecvAct,
                    micro: m,
                    part,
                }),
            }
        }
    }

    // Backward-direction gradient: this hop's backward sends to the
    // previous hop (if any, on a different device); symmetric tagging.
    // Forward-only schedules have no backward (`bw` is None) and skip it.
    let Some(bw) = bw else { return };
    if hop_idx > 0 {
        let (prev_dev, prev_part) = path[hop_idx - 1];
        if prev_dev != dev {
            match find_p2p(prog, InstrTag::SendGrad, m, part) {
                Some((pos, instr)) => {
                    if instr.kind.peer() != Some(prev_dev) {
                        errors.push(ValidationError::WrongPeer {
                            device: dev,
                            instr: instr.to_string(),
                            expected: prev_dev,
                        });
                    }
                    if pos < bw {
                        errors.push(ValidationError::OrderViolation {
                            device: dev,
                            what: format!("SG{}^{} before its backward", m.0, part.0),
                        });
                    }
                }
                None => errors.push(ValidationError::Missing {
                    device: dev,
                    tag: InstrTag::SendGrad,
                    micro: m,
                    part,
                }),
            }
            let prev_prog = schedule.program(prev_dev);
            let prev_bw = prev_prog.effective_backward_pos(m, prev_part);
            match find_p2p(prev_prog, InstrTag::RecvGrad, m, part) {
                Some((pos, instr)) => {
                    if instr.kind.peer() != Some(dev) {
                        errors.push(ValidationError::WrongPeer {
                            device: prev_dev,
                            instr: instr.to_string(),
                            expected: dev,
                        });
                    }
                    if let Some(prev_bw) = prev_bw {
                        if pos > prev_bw {
                            errors.push(ValidationError::OrderViolation {
                                device: prev_dev,
                                what: format!(
                                    "RG{}^{} after the backward that consumes it",
                                    m.0, part.0
                                ),
                            });
                        }
                    }
                }
                None => errors.push(ValidationError::Missing {
                    device: prev_dev,
                    tag: InstrTag::RecvGrad,
                    micro: m,
                    part,
                }),
            }
        }
    }
}

fn find_p2p(
    prog: &crate::list::DeviceProgram,
    tag: InstrTag,
    micro: MicroId,
    part: PartId,
) -> Option<(usize, &Instr)> {
    prog.iter()
        .find(|(_, i)| i.kind.tag() == tag && i.micro == micro && i.part == part)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{SchemeKind, Topology};

    /// A hand-built, fully correct 2-device 1-micro schedule with comm.
    fn good() -> Schedule {
        let topo = Topology::new(SchemeKind::OneFOneB, 2);
        let mut s = Schedule::empty(topo, 1, vec![0]);
        {
            let d0 = s.program_mut(DeviceId(0));
            d0.push(Instr::forward(0u32, 0u32));
            d0.push(Instr::send_act(0u32, 0u32, DeviceId(1)));
            d0.push(Instr::recv_grad(0u32, 0u32, DeviceId(1)));
            d0.push(Instr::backward(0u32, 0u32));
        }
        {
            let d1 = s.program_mut(DeviceId(1));
            d1.push(Instr::recv_act(0u32, 0u32, DeviceId(0)));
            d1.push(Instr::forward(0u32, 0u32));
            d1.push(Instr::backward(0u32, 0u32));
            d1.push(Instr::send_grad(0u32, 0u32, DeviceId(0)));
        }
        s
    }

    #[test]
    fn good_schedule_validates() {
        assert!(validate(&good()).is_ok());
    }

    #[test]
    fn missing_backward_is_reported() {
        let mut s = good();
        let pos = s
            .program(DeviceId(1))
            .backward_pos(MicroId(0), PartId(0))
            .unwrap();
        s.program_mut(DeviceId(1)).remove(pos);
        let errs = validate(&s).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::Missing {
                tag: InstrTag::Backward,
                ..
            }
        )));
    }

    #[test]
    fn duplicate_forward_is_reported() {
        let mut s = good();
        s.program_mut(DeviceId(0)).insert(0, Instr::forward(0u32, 0u32));
        let errs = validate(&s).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::Duplicate {
                tag: InstrTag::Forward,
                ..
            }
        )));
    }

    #[test]
    fn ckpt_without_recompute_is_reported() {
        let mut s = good();
        s.program_mut(DeviceId(0))
            .replace_kind(0, InstrKind::Forward { ckpt: true });
        let errs = validate(&s).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::CheckpointMismatch { .. })));
    }

    #[test]
    fn recompute_in_window_is_accepted() {
        let mut s = good();
        s.program_mut(DeviceId(0))
            .replace_kind(0, InstrKind::Forward { ckpt: true });
        // Insert the recompute just before the backward.
        let bw = s
            .program(DeviceId(0))
            .backward_pos(MicroId(0), PartId(0))
            .unwrap();
        s.program_mut(DeviceId(0))
            .insert(bw, Instr::recompute(0u32, 0u32));
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn recompute_after_backward_is_rejected() {
        let mut s = good();
        s.program_mut(DeviceId(0))
            .replace_kind(0, InstrKind::Forward { ckpt: true });
        s.program_mut(DeviceId(0)).push(Instr::recompute(0u32, 0u32));
        let errs = validate(&s).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::CheckpointMismatch { what, .. } if what.contains("window")
        )));
    }

    #[test]
    fn wrong_peer_is_reported() {
        let mut s = good();
        let pos = s
            .program(DeviceId(0))
            .position_of(InstrTag::SendAct, MicroId(0), PartId(0))
            .unwrap();
        s.program_mut(DeviceId(0))
            .replace_kind(pos, InstrKind::SendAct { peer: DeviceId(0) });
        let errs = validate(&s).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::WrongPeer { .. })));
    }

    #[test]
    fn compute_only_schedules_skip_comm_checks() {
        let topo = Topology::new(SchemeKind::OneFOneB, 2);
        let mut s = Schedule::empty(topo, 1, vec![0]);
        for d in 0..2u32 {
            let p = s.program_mut(DeviceId(d));
            p.push(Instr::forward(0u32, 0u32));
            p.push(Instr::backward(0u32, 0u32));
        }
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn out_of_range_micro_is_reported_not_panicking() {
        let mut s = good();
        // Corrupt a backward to reference a micro that does not exist.
        let pos = s
            .program(DeviceId(1))
            .backward_pos(MicroId(0), PartId(0))
            .unwrap();
        s.program_mut(DeviceId(1)).remove(pos);
        s.program_mut(DeviceId(1)).insert(pos, Instr::backward(9u32, 0u32));
        let errs = validate(&s).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::Misplaced { instr, .. } if instr.contains("out of range")
        )));
    }

    #[test]
    fn misplaced_compute_is_reported() {
        let topo = Topology::new(SchemeKind::OneFOneB, 2);
        let mut s = Schedule::empty(topo, 1, vec![0]);
        for d in 0..2u32 {
            let p = s.program_mut(DeviceId(d));
            p.push(Instr::forward(0u32, 0u32));
            p.push(Instr::backward(0u32, 0u32));
        }
        // Part 1 does not exist in a V-shape pipeline.
        s.program_mut(DeviceId(0)).push(Instr::forward(0u32, 1u32));
        let errs = validate(&s).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::Misplaced { .. })));
    }

    #[test]
    fn split_backward_pair_is_accepted() {
        let mut s = good();
        // Replace d1's backward with Bi + Bw.
        let bw = s
            .program(DeviceId(1))
            .backward_pos(MicroId(0), PartId(0))
            .unwrap();
        s.program_mut(DeviceId(1))
            .replace_kind(bw, InstrKind::BackwardInput);
        s.program_mut(DeviceId(1))
            .insert(bw + 1, Instr::backward_weight(0u32, 0u32));
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn weight_half_before_input_half_is_rejected() {
        let mut s = good();
        let bw = s
            .program(DeviceId(1))
            .backward_pos(MicroId(0), PartId(0))
            .unwrap();
        s.program_mut(DeviceId(1))
            .replace_kind(bw, InstrKind::BackwardInput);
        s.program_mut(DeviceId(1))
            .insert(bw, Instr::backward_weight(0u32, 0u32));
        let errs = validate(&s).unwrap_err();
        assert!(errs.iter().any(
            |e| matches!(e, ValidationError::OrderViolation { what, .. } if what.contains("input-gradient"))
        ));
    }

    #[test]
    fn lone_input_half_is_rejected() {
        let mut s = good();
        let bw = s
            .program(DeviceId(1))
            .backward_pos(MicroId(0), PartId(0))
            .unwrap();
        s.program_mut(DeviceId(1))
            .replace_kind(bw, InstrKind::BackwardInput);
        let errs = validate(&s).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::Duplicate { .. } | ValidationError::Missing { .. })));
    }

    #[test]
    fn uneven_allreduce_counts_are_reported() {
        let mut s = good();
        s.program_mut(DeviceId(0)).push(Instr::all_reduce());
        let errs = validate(&s).unwrap_err();
        assert!(errs.iter().any(
            |e| matches!(e, ValidationError::OrderViolation { what, .. } if what.contains("AllReduce"))
        ));
    }
}
