//! Per-device instruction lists and the edit operations the graph tuner
//! (paper §5.1) performs on them.
//!
//! A [`DeviceProgram`] is an ordered list of [`Instr`] executed in-order by
//! one device; *horizontal dependencies* in the paper's terminology are
//! exactly this list order. The graph-tuner passes work by locating
//! instructions, substituting kinds, and moving instructions between slots,
//! so this module provides precise position queries and order-preserving
//! edits.

use crate::ids::{DeviceId, MicroId, PartId};
use crate::instr::{Instr, InstrKind, InstrTag};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ordered instruction list of one device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceProgram {
    /// The device executing this list.
    pub device: DeviceId,
    instrs: Vec<Instr>,
}

impl DeviceProgram {
    /// Creates an empty program for `device`.
    pub fn new(device: DeviceId) -> Self {
        Self {
            device,
            instrs: Vec::new(),
        }
    }

    /// Creates a program from an existing instruction vector.
    pub fn from_instrs(device: DeviceId, instrs: Vec<Instr>) -> Self {
        Self { device, instrs }
    }

    /// Appends an instruction.
    #[inline]
    pub fn push(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instructions, in execution order.
    #[inline]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Iterates over `(position, instruction)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Instr)> {
        self.instrs.iter().enumerate()
    }

    /// The instruction at `pos`.
    #[inline]
    pub fn get(&self, pos: usize) -> Option<&Instr> {
        self.instrs.get(pos)
    }

    /// Position of the first instruction matching `pred`.
    pub fn position(&self, pred: impl Fn(&Instr) -> bool) -> Option<usize> {
        self.instrs.iter().position(pred)
    }

    /// Position of the (unique) instruction with tag `tag` for `(micro, part)`.
    pub fn position_of(&self, tag: InstrTag, micro: MicroId, part: PartId) -> Option<usize> {
        self.position(|i| i.kind.tag() == tag && i.micro == micro && i.part == part)
    }

    /// Position of the forward (checkpointed or not) of `(micro, part)`.
    pub fn forward_pos(&self, micro: MicroId, part: PartId) -> Option<usize> {
        self.position_of(InstrTag::Forward, micro, part)
    }

    /// Position of the backward of `(micro, part)`.
    pub fn backward_pos(&self, micro: MicroId, part: PartId) -> Option<usize> {
        self.position_of(InstrTag::Backward, micro, part)
    }

    /// Position of the instruction that unblocks the upstream stage: the
    /// full backward, or the input-gradient half when split.
    pub fn effective_backward_pos(&self, micro: MicroId, part: PartId) -> Option<usize> {
        self.backward_pos(micro, part)
            .or_else(|| self.position_of(InstrTag::BackwardInput, micro, part))
    }

    /// Position of the recompute of `(micro, part)`.
    pub fn recompute_pos(&self, micro: MicroId, part: PartId) -> Option<usize> {
        self.position_of(InstrTag::Recompute, micro, part)
    }

    /// Counts instructions matching `pred`.
    pub fn count(&self, pred: impl Fn(&Instr) -> bool) -> usize {
        self.instrs.iter().filter(|i| pred(i)).count()
    }

    /// Replaces the kind of the instruction at `pos`.
    pub fn replace_kind(&mut self, pos: usize, kind: InstrKind) {
        self.instrs[pos].kind = kind;
    }

    /// Inserts `instr` at `pos`, shifting later instructions right.
    pub fn insert(&mut self, pos: usize, instr: Instr) {
        self.instrs.insert(pos, instr);
    }

    /// Removes and returns the instruction at `pos`.
    pub fn remove(&mut self, pos: usize) -> Instr {
        self.instrs.remove(pos)
    }

    /// Moves the instruction at `from` so that it ends up at position `to`
    /// (interpreted against the list *after* removal), preserving the
    /// relative order of all other instructions.
    pub fn shift(&mut self, from: usize, to: usize) {
        let instr = self.instrs.remove(from);
        self.instrs.insert(to, instr);
    }

    /// All distinct `(micro, part)` pairs that have a forward instruction
    /// in this program, in first-appearance order.
    pub fn forward_pairs(&self) -> Vec<(MicroId, PartId)> {
        let mut seen = Vec::new();
        for i in &self.instrs {
            if matches!(i.kind, InstrKind::Forward { .. }) && !seen.contains(&(i.micro, i.part)) {
                seen.push((i.micro, i.part));
            }
        }
        seen
    }

    /// Multiset of compute work `(tag, micro, part)` — used by tests to check
    /// that tuner passes never lose or duplicate compute (recomputes aside).
    pub fn compute_multiset(&self) -> Vec<(InstrTag, MicroId, PartId)> {
        let mut v: Vec<_> = self
            .instrs
            .iter()
            .filter(|i| i.kind.is_compute())
            .map(|i| (i.kind.tag(), i.micro, i.part))
            .collect();
        v.sort_by_key(|&(t, m, p)| (format!("{t:?}"), m, p));
        v
    }

    /// The peak number of simultaneously "on-the-fly" micro-batches on this
    /// device: micro-batches whose forward has been issued but whose
    /// backward has not yet completed (paper §2.1). For checkpointed
    /// forwards only a checkpoint is retained, so they are *excluded* when
    /// `count_ckpt` is false.
    pub fn peak_on_the_fly(&self, count_ckpt: bool) -> usize {
        let mut live = 0usize;
        let mut recomputed = 0usize;
        let mut peak = 0usize;
        for i in &self.instrs {
            match i.kind {
                InstrKind::Forward { ckpt: false } => live += 1,
                InstrKind::Forward { ckpt: true } if count_ckpt => live += 1,
                InstrKind::Recompute if !count_ckpt => recomputed += 1,
                // A split micro-batch retires at the *weight* half, not the
                // input half: the weight GEMM still reads the activation.
                InstrKind::Backward | InstrKind::BackwardWeight => {
                    let total = live + recomputed;
                    if total > 0 {
                        // Retire one micro-batch: prefer a recomputed one,
                        // since its activations are the freshest.
                        if recomputed > 0 {
                            recomputed -= 1;
                        } else {
                            live = live.saturating_sub(1);
                        }
                    }
                }
                _ => {}
            }
            peak = peak.max(live + recomputed);
        }
        peak
    }
}

impl fmt::Display for DeviceProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.device)?;
        for i in &self.instrs {
            write!(f, " {i}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a DeviceProgram {
    type Item = &'a Instr;
    type IntoIter = std::slice::Iter<'a, Instr>;
    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeviceProgram {
        let mut p = DeviceProgram::new(DeviceId(0));
        p.push(Instr::forward(0u32, 0u32));
        p.push(Instr::forward(1u32, 0u32));
        p.push(Instr::backward(0u32, 0u32));
        p.push(Instr::forward(2u32, 0u32));
        p.push(Instr::backward(1u32, 0u32));
        p.push(Instr::backward(2u32, 0u32));
        p
    }

    #[test]
    fn position_queries() {
        let p = sample();
        assert_eq!(p.forward_pos(MicroId(1), PartId(0)), Some(1));
        assert_eq!(p.backward_pos(MicroId(1), PartId(0)), Some(4));
        assert_eq!(p.forward_pos(MicroId(9), PartId(0)), None);
        assert_eq!(p.recompute_pos(MicroId(0), PartId(0)), None);
    }

    #[test]
    fn shift_preserves_other_order() {
        let mut p = sample();
        // Move B0 (pos 2) to the front.
        p.shift(2, 0);
        let s: Vec<String> = p.instrs().iter().map(|i| i.to_string()).collect();
        assert_eq!(s, vec!["B0^0", "F0^0", "F1^0", "F2^0", "B1^0", "B2^0"]);
    }

    #[test]
    fn replace_kind_toggles_checkpointing() {
        let mut p = sample();
        p.replace_kind(0, InstrKind::Forward { ckpt: true });
        assert!(p.instrs()[0].is_ckpt_forward());
        assert_eq!(p.instrs()[0].micro, MicroId(0));
    }

    #[test]
    fn peak_on_the_fly_counts_live_microbatches() {
        let p = sample();
        // F0 F1 -> 2 live; B0 -> 1; F2 -> 2; B1 -> 1; B2 -> 0. Peak 2.
        assert_eq!(p.peak_on_the_fly(true), 2);
    }

    #[test]
    fn peak_on_the_fly_ignores_checkpointed_forwards() {
        let mut p = DeviceProgram::new(DeviceId(0));
        for m in 0..4u32 {
            p.push(Instr::ckpt_forward(m, 0u32));
        }
        for m in 0..4u32 {
            p.push(Instr::recompute(m, 0u32));
            p.push(Instr::backward(m, 0u32));
        }
        // Checkpointed forwards keep no full activation; only one recompute
        // is live at a time.
        assert_eq!(p.peak_on_the_fly(false), 1);
        // If we count checkpoints as full residents we'd see 4.
        assert_eq!(p.peak_on_the_fly(true), 4);
    }

    #[test]
    fn forward_pairs_in_first_appearance_order() {
        let mut p = DeviceProgram::new(DeviceId(1));
        p.push(Instr::forward(1u32, 0u32));
        p.push(Instr::forward(0u32, 1u32));
        p.push(Instr::backward(1u32, 0u32));
        p.push(Instr::forward(1u32, 1u32));
        assert_eq!(
            p.forward_pairs(),
            vec![
                (MicroId(1), PartId(0)),
                (MicroId(0), PartId(1)),
                (MicroId(1), PartId(1)),
            ]
        );
    }

    #[test]
    fn compute_multiset_ignores_comm() {
        let mut p = sample();
        p.push(Instr::send_act(0u32, 0u32, DeviceId(1)));
        let before = p.compute_multiset();
        p.push(Instr::recv_grad(0u32, 0u32, DeviceId(1)));
        assert_eq!(before, p.compute_multiset());
        assert_eq!(before.len(), 6);
    }

    #[test]
    fn display_is_compact() {
        let p = sample();
        assert_eq!(p.to_string(), "d0: F0^0 F1^0 B0^0 F2^0 B1^0 B2^0");
    }
}
