//! # mario-ir — instruction IR and virtual pipeline for Mario
//!
//! This crate defines the intermediate representation the Mario pipeline
//! optimizer (PPoPP '25) manipulates:
//!
//! * [`instr`] — the pipeline instruction set (Table 3 of the paper):
//!   (checkpointed) forward, backward, recomputation, p2p activation and
//!   gradient transfers, all-reduce and optimizer step;
//! * [`list`] — per-device ordered instruction lists (the *horizontal*
//!   dependency dimension) and the edit operations the graph tuner uses;
//! * [`topology`] — the *virtual pipeline* (§5.2, Algorithm 1) that unifies
//!   1F1B/"V", Chimera/"X", Interleave/"W", GPipe and wave pipelines behind
//!   `find_prev_inst`/`find_next_inst` hop arithmetic (the *vertical*
//!   dependency dimension);
//! * [`schedule`] — a complete schedule: topology + route assignment + one
//!   program per device;
//! * [`cost`] — the cost-model trait consumed by the simulator and the
//!   cluster emulator, with the paper's unit-grid model as a reference
//!   implementation;
//! * [`ledger`] — the shared memory-accounting rules (static vs dynamic,
//!   checkpoint vs full activation) used identically by offline simulation
//!   and online emulation;
//! * [`perturb`] — degraded-cluster perturbation profiles (stragglers,
//!   slow links), the shared vocabulary that keeps the simulator's
//!   degraded mode and the emulator's fault layer bit-for-bit aligned;
//! * [`checkpoint`] — the model-state checkpointing policy (periodic
//!   checkpoint writes with explicit time and memory cost) the cluster
//!   emulator charges and its recovery loop resumes from;
//! * [`telemetry`] — the unified time-class flight recorder (per-device
//!   time breakdowns, per-link transfer statistics) populated with
//!   identical arithmetic by the simulator and the emulator;
//! * [`validate`] / [`exec`] — structural validation plus symbolic
//!   execution proving schedules deadlock-free under blocking p2p.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod cost;
pub mod exec;
pub mod ids;
pub mod instr;
pub mod ledger;
pub mod list;
pub mod perturb;
pub mod rules;
pub mod schedule;
pub mod span;
pub mod telemetry;
pub mod text;
pub mod topology;
pub mod validate;

pub use checkpoint::{CheckpointPolicy, ShardedWrite};
pub use cost::{ComputeKind, CostModel, Nanos, UnitCost};
pub use exec::{check_executable, min_channel_capacity, ExecError};
pub use ids::{DeviceId, MicroId, PartId, StageId};
pub use instr::{Instr, InstrKind, InstrTag};
pub use ledger::{AllocKey, MemLedger, OomError};
pub use list::DeviceProgram;
pub use perturb::{LinkSlack, PerturbationProfile, SlowdownWindow};
pub use rules::MemoryRules;
pub use schedule::Schedule;
pub use span::{OpSpan, SpanGraph, CKPT_PC};
pub use telemetry::{DeviceTelemetry, LinkSendStats, LinkTelemetry, Telemetry, TimeClasses};
pub use text::{from_text, to_text};
pub use topology::{SchemeKind, Topology};
pub use validate::{validate, validate_with, ValidateOptions, ValidationError};
