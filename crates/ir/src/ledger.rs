//! Per-device memory accounting shared by the offline memory simulator
//! (mario-core) and the online cluster emulator (mario-cluster).
//!
//! The paper's memory simulation (§5.2) splits the footprint into a *static*
//! part (weights, gradients, optimizer states, framework overhead) and a
//! *dynamic* part (live activations, checkpoints, transfer buffers). The
//! ledger applies the same allocation rules in both execution engines so the
//! simulator-vs-real comparison (Fig. 10) measures modeling error, not
//! bookkeeping divergence.

use crate::ids::{MicroId, PartId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// What a dynamic allocation holds; one live allocation per key at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocKey {
    /// Full activation set of one micro-batch on one partition (kept by a
    /// plain forward, or restored by a recompute).
    Act(MicroId, PartId),
    /// Stashed checkpoint (stage input) of one micro-batch (kept by a
    /// checkpointed forward).
    Ckpt(MicroId, PartId),
    /// Output boundary tensor waiting to be sent (pass-4 send buffer).
    OutBuf(MicroId, PartId),
    /// Received boundary tensor waiting to be consumed.
    InBuf(MicroId, PartId),
    /// Small stash kept between a split backward's input half and its
    /// weight half (the tensors the weight GEMM still needs).
    Wgrad(MicroId, PartId),
    /// Transient serialization buffer held while writing a model-state
    /// checkpoint (one per device; released when the write completes).
    Snapshot,
}

/// Error raised when an allocation would exceed the device capacity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OomError {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes already in use (static + dynamic).
    pub in_use: u64,
    /// Device capacity in bytes.
    pub capacity: u64,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: requested {} B with {} B in use of {} B capacity",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

/// A per-device memory ledger with peak tracking and optional capacity.
#[derive(Debug, Clone)]
pub struct MemLedger {
    static_bytes: u64,
    dynamic: u64,
    peak: u64,
    capacity: Option<u64>,
    live: HashMap<AllocKey, u64>,
}

impl MemLedger {
    /// Creates a ledger with `static_bytes` permanently resident and an
    /// optional device capacity (OOM checking is disabled when `None`).
    pub fn new(static_bytes: u64, capacity: Option<u64>) -> Self {
        Self {
            static_bytes,
            dynamic: 0,
            peak: static_bytes,
            capacity,
            live: HashMap::new(),
        }
    }

    /// Current total footprint (static + dynamic).
    #[inline]
    pub fn current(&self) -> u64 {
        self.static_bytes + self.dynamic
    }

    /// Current dynamic footprint only.
    #[inline]
    pub fn dynamic(&self) -> u64 {
        self.dynamic
    }

    /// Static footprint.
    #[inline]
    pub fn static_bytes(&self) -> u64 {
        self.static_bytes
    }

    /// Peak total footprint observed so far.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Number of live dynamic allocations.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// True if `key` currently holds a live allocation.
    pub fn is_live(&self, key: AllocKey) -> bool {
        self.live.contains_key(&key)
    }

    /// Allocates `bytes` under `key`.
    ///
    /// Zero-byte requests are recorded (so state machines stay uniform) but
    /// cost nothing. Allocating an already-live key is a logic error.
    pub fn alloc(&mut self, key: AllocKey, bytes: u64) -> Result<(), OomError> {
        if let Some(prev) = self.live.insert(key, bytes) {
            panic!("double allocation of {key:?} (previous {prev} B)");
        }
        self.dynamic += bytes;
        let now = self.current();
        if let Some(cap) = self.capacity {
            if now > cap {
                // Roll back so the caller can report a consistent state.
                self.live.remove(&key);
                self.dynamic -= bytes;
                return Err(OomError {
                    requested: bytes,
                    in_use: self.current(),
                    capacity: cap,
                });
            }
        }
        self.peak = self.peak.max(now);
        Ok(())
    }

    /// Frees the allocation under `key`, returning its size.
    ///
    /// Freeing a key that is not live is a logic error: it means the
    /// instruction stream violated the activation lifecycle.
    pub fn free(&mut self, key: AllocKey) -> u64 {
        let bytes = self
            .live
            .remove(&key)
            .unwrap_or_else(|| panic!("freeing non-live allocation {key:?}"));
        self.dynamic -= bytes;
        bytes
    }

    /// Frees `key` if live; returns the freed size (0 if it was not live).
    pub fn free_if_live(&mut self, key: AllocKey) -> u64 {
        if self.is_live(key) {
            self.free(key)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(m: u32) -> AllocKey {
        AllocKey::Act(MicroId(m), PartId(0))
    }

    #[test]
    fn tracks_peak_over_alloc_free_cycles() {
        let mut l = MemLedger::new(100, None);
        l.alloc(key(0), 50).unwrap();
        l.alloc(key(1), 50).unwrap();
        assert_eq!(l.current(), 200);
        l.free(key(0));
        l.alloc(key(2), 10).unwrap();
        assert_eq!(l.current(), 160);
        assert_eq!(l.peak(), 200);
        assert_eq!(l.dynamic(), 60);
        assert_eq!(l.static_bytes(), 100);
    }

    #[test]
    fn oom_is_detected_and_rolled_back() {
        let mut l = MemLedger::new(10, Some(100));
        l.alloc(key(0), 80).unwrap();
        let err = l.alloc(key(1), 20).unwrap_err();
        assert_eq!(err.requested, 20);
        assert_eq!(err.capacity, 100);
        assert_eq!(err.in_use, 90);
        // The failed allocation must not linger.
        assert!(!l.is_live(key(1)));
        assert_eq!(l.current(), 90);
        // And we can still free the old one and retry.
        l.free(key(0));
        l.alloc(key(1), 20).unwrap();
    }

    #[test]
    fn zero_byte_allocations_keep_state_machines_uniform() {
        let mut l = MemLedger::new(0, Some(10));
        l.alloc(AllocKey::Ckpt(MicroId(0), PartId(0)), 0).unwrap();
        assert!(l.is_live(AllocKey::Ckpt(MicroId(0), PartId(0))));
        assert_eq!(l.current(), 0);
        assert_eq!(l.free(AllocKey::Ckpt(MicroId(0), PartId(0))), 0);
    }

    #[test]
    #[should_panic(expected = "double allocation")]
    fn double_alloc_panics() {
        let mut l = MemLedger::new(0, None);
        l.alloc(key(0), 1).unwrap();
        let _ = l.alloc(key(0), 1);
    }

    #[test]
    #[should_panic(expected = "non-live allocation")]
    fn free_of_dead_key_panics() {
        let mut l = MemLedger::new(0, None);
        l.free(key(0));
    }

    #[test]
    fn free_if_live_is_permissive() {
        let mut l = MemLedger::new(0, None);
        assert_eq!(l.free_if_live(key(0)), 0);
        l.alloc(key(0), 5).unwrap();
        assert_eq!(l.free_if_live(key(0)), 5);
        assert_eq!(l.live_count(), 0);
    }

    #[test]
    fn distinct_key_kinds_do_not_collide() {
        let mut l = MemLedger::new(0, None);
        l.alloc(AllocKey::Act(MicroId(0), PartId(0)), 1).unwrap();
        l.alloc(AllocKey::Ckpt(MicroId(0), PartId(0)), 2).unwrap();
        l.alloc(AllocKey::OutBuf(MicroId(0), PartId(0)), 3).unwrap();
        l.alloc(AllocKey::InBuf(MicroId(0), PartId(0)), 4).unwrap();
        assert_eq!(l.current(), 10);
        assert_eq!(l.live_count(), 4);
    }
}
