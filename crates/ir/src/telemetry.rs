//! Unified time-class telemetry — the flight recorder shared by the DP
//! simulator and the cluster emulator.
//!
//! Both executors account every nanosecond of every device clock into the
//! same nine [`TimeClasses`], populated with *identical arithmetic* at
//! identical points (compute completion, send launch/block, recv wait,
//! checkpoint flush). The payoff is twofold:
//!
//! * **conservation** — per device, the classes sum exactly to the final
//!   clock ([`DeviceTelemetry::check_conservation`]); nothing is dropped
//!   and nothing is double-counted (checkpoint chunks absorbed into recv
//!   bubbles are carved *out* of `recv_blocked_ns` into
//!   `ckpt_absorbed_ns`, never counted twice);
//! * **parity** — with zero jitter the emulator's and simulator's full
//!   [`Telemetry`] agree bit for bit, the same property the repo already
//!   pins for makespans and peak memory.
//!
//! Per-link statistics ride along: packet/byte counts and blocked time on
//! each directed device pair, plus the maximum channel occupancy ever
//! observed (the emulator's un-acked send window and the simulator's
//! `outstanding` counter advance in lockstep, so even this is
//! parity-exact).

use crate::cost::Nanos;
use crate::ids::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where one device's virtual time went, by class. All classes are
/// disjoint and exhaustive: they sum to the device's final clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeClasses {
    /// Compute kernels (forward, backward, recompute), including any
    /// jitter, straggler factor or absorbed slowdown inflation.
    pub compute_ns: Nanos,
    /// Fixed p2p launch overhead paid at every send and recv.
    pub comm_launch_ns: Nanos,
    /// Waiting for channel capacity at sends (backpressure bubble).
    pub send_blocked_ns: Nanos,
    /// Waiting for a message at recvs (pipeline bubble), *excluding* the
    /// portion async checkpoint chunks drained into.
    pub recv_blocked_ns: Nanos,
    /// Recv-wait time consumed by asynchronously flushed checkpoint
    /// chunks — write cost the bubbles absorbed for free.
    pub ckpt_absorbed_ns: Nanos,
    /// Checkpoint write time charged synchronously to the clock:
    /// flat/sync-sharded boundary writes plus any async residue flushes.
    pub ckpt_sync_ns: Nanos,
    /// Gradient all-reduce time.
    pub allreduce_ns: Nanos,
    /// Optimizer step time.
    pub optimizer_ns: Nanos,
    /// One-time state-redistribution cost charged when an elastic
    /// reconfiguration rebuilds the pipeline on the surviving devices:
    /// the device's clock starts at this offset, fetching the layer
    /// state it did not already hold.
    #[serde(default)]
    pub reconfig_ns: Nanos,
}

impl TimeClasses {
    /// Sum of every class — must equal the device's final clock.
    pub fn total(&self) -> Nanos {
        self.compute_ns
            + self.comm_launch_ns
            + self.send_blocked_ns
            + self.recv_blocked_ns
            + self.ckpt_absorbed_ns
            + self.ckpt_sync_ns
            + self.allreduce_ns
            + self.optimizer_ns
            + self.reconfig_ns
    }

    /// Idle bubble time: send backpressure plus recv waits (the slots
    /// Mario hides recomputation and checkpoint chunks in). Absorbed
    /// chunk time is *not* a bubble — the device was writing.
    pub fn bubble_ns(&self) -> Nanos {
        self.send_blocked_ns + self.recv_blocked_ns
    }

    /// Records a blocking-recv wait of `gap` ns of which `drained` ns
    /// were consumed flushing checkpoint chunks. The single place the
    /// bubble/checkpoint split is decided, so the two classes can never
    /// double-count.
    ///
    /// # Panics
    /// Panics when `drained > gap` (chunks cannot drain time that was
    /// never idle).
    pub fn on_recv_gap(&mut self, gap: Nanos, drained: Nanos) {
        assert!(drained <= gap, "drained {drained} ns > recv gap {gap} ns");
        self.recv_blocked_ns += gap - drained;
        self.ckpt_absorbed_ns += drained;
    }

    /// Records a capacity-blocked send wait of `gap` ns of which `drained`
    /// ns were consumed flushing checkpoint chunks. Backpressure bubbles
    /// absorb async chunks exactly like recv bubbles; the split point is
    /// likewise unique so the classes cannot double-count.
    ///
    /// # Panics
    /// Panics when `drained > gap` (chunks cannot drain time that was
    /// never idle).
    pub fn on_send_gap(&mut self, gap: Nanos, drained: Nanos) {
        assert!(drained <= gap, "drained {drained} ns > send gap {gap} ns");
        self.send_blocked_ns += gap - drained;
        self.ckpt_absorbed_ns += drained;
    }
}

/// One device's telemetry: time classes plus counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceTelemetry {
    /// The device.
    pub device: DeviceId,
    /// Time-class breakdown of the device's final clock.
    pub classes: TimeClasses,
    /// Peak memory footprint, bytes.
    pub peak_mem: u64,
    /// Faults this device absorbed without failing (slowdowns, delays).
    pub absorbed_faults: u32,
    /// Restart-forcing faults attributed to this device across a
    /// recovery session (0 on a single clean run).
    pub hard_faults: u32,
}

impl DeviceTelemetry {
    /// Empty telemetry for `device`.
    pub fn new(device: DeviceId) -> Self {
        Self {
            device,
            ..Self::default()
        }
    }

    /// Verifies the conservation invariant against the device's final
    /// `clock`: Σ time classes == clock.
    pub fn check_conservation(&self, clock: Nanos) -> Result<(), String> {
        let total = self.classes.total();
        if total == clock {
            Ok(())
        } else {
            Err(format!(
                "{}: time classes sum to {total} ns but the clock reads {clock} ns ({:?})",
                self.device, self.classes
            ))
        }
    }
}

/// Send-side statistics one device accumulates per outgoing link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSendStats {
    /// Packets sent.
    pub packets: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Time the sender spent blocked on channel capacity, ns.
    pub blocked_ns: Nanos,
    /// Maximum un-acked packets ever in flight (channel occupancy).
    pub max_occupancy: u32,
}

impl LinkSendStats {
    /// Records one completed send: `bytes` of payload, `blocked` ns of
    /// capacity wait, `occupancy` packets in flight after the send.
    pub fn on_send(&mut self, bytes: u64, blocked: Nanos, occupancy: u32) {
        self.packets += 1;
        self.bytes += bytes;
        self.blocked_ns += blocked;
        self.max_occupancy = self.max_occupancy.max(occupancy);
    }
}

/// Telemetry for one directed link, aggregated over message classes and
/// partitions between the pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkTelemetry {
    /// Sending device.
    pub src: DeviceId,
    /// Receiving device.
    pub dst: DeviceId,
    /// Packets transferred.
    pub packets: u64,
    /// Payload bytes transferred.
    pub bytes: u64,
    /// Sender time blocked on channel capacity, ns.
    pub send_blocked_ns: Nanos,
    /// Receiver time waiting at recvs on this link, ns (the full wait,
    /// including any slice checkpoint chunks drained into).
    pub recv_wait_ns: Nanos,
    /// Maximum packets ever simultaneously in flight.
    pub max_occupancy: u32,
}

/// The full flight-recorder output of one run: per-device time-class
/// breakdowns and per-link transfer statistics, ordered by device and by
/// `(src, dst)` respectively.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Telemetry {
    /// Per-device breakdowns, in device order.
    pub devices: Vec<DeviceTelemetry>,
    /// Per-link statistics, ordered by `(src, dst)`.
    pub links: Vec<LinkTelemetry>,
}

impl Telemetry {
    /// Assembles the final telemetry from per-device breakdowns plus the
    /// send-side and recv-side link statistics both executors collect.
    /// Both call this same constructor, so link ordering and merge
    /// arithmetic cannot drift between them.
    pub fn assemble(
        devices: Vec<DeviceTelemetry>,
        sends: impl IntoIterator<Item = ((DeviceId, DeviceId), LinkSendStats)>,
        recv_waits: impl IntoIterator<Item = ((DeviceId, DeviceId), Nanos)>,
    ) -> Self {
        let mut map: BTreeMap<(u32, u32), LinkTelemetry> = BTreeMap::new();
        for ((src, dst), s) in sends {
            let link = map.entry((src.0, dst.0)).or_insert(LinkTelemetry {
                src,
                dst,
                ..Default::default()
            });
            link.packets += s.packets;
            link.bytes += s.bytes;
            link.send_blocked_ns += s.blocked_ns;
            link.max_occupancy = link.max_occupancy.max(s.max_occupancy);
        }
        for ((src, dst), wait) in recv_waits {
            let link = map.entry((src.0, dst.0)).or_insert(LinkTelemetry {
                src,
                dst,
                ..Default::default()
            });
            link.recv_wait_ns += wait;
        }
        Self {
            devices,
            links: map.into_values().collect(),
        }
    }

    /// The telemetry of `device`, if present.
    pub fn device(&self, device: DeviceId) -> Option<&DeviceTelemetry> {
        self.devices.iter().find(|d| d.device == device)
    }

    /// The statistics of the directed link `src -> dst`, if any traffic
    /// crossed it.
    pub fn link(&self, src: DeviceId, dst: DeviceId) -> Option<&LinkTelemetry> {
        self.links.iter().find(|l| l.src == src && l.dst == dst)
    }

    /// Checkpoint write time charged synchronously, summed over devices —
    /// must equal the run report's `ckpt_overhead_ns`.
    pub fn total_ckpt_sync_ns(&self) -> Nanos {
        self.devices.iter().map(|d| d.classes.ckpt_sync_ns).sum()
    }

    /// Checkpoint write time the bubbles absorbed, summed over devices.
    pub fn total_ckpt_absorbed_ns(&self) -> Nanos {
        self.devices.iter().map(|d| d.classes.ckpt_absorbed_ns).sum()
    }

    /// Fraction of total device lifetime spent idle (send backpressure +
    /// recv waits). In `(0, 1)` for any real pipeline: some bubble always
    /// exists, and no device idles its entire life.
    pub fn bubble_fraction(&self, device_clocks: &[Nanos]) -> f64 {
        let lifetime: Nanos = device_clocks.iter().sum();
        if lifetime == 0 {
            return 0.0;
        }
        let bubble: Nanos = self.devices.iter().map(|d| d.classes.bubble_ns()).sum();
        bubble as f64 / lifetime as f64
    }

    /// Verifies the conservation invariant on every device against its
    /// final clock. Returns the first violation, if any.
    pub fn check_conservation(&self, device_clocks: &[Nanos]) -> Result<(), String> {
        for d in &self.devices {
            let clock = device_clocks
                .get(d.device.index())
                .copied()
                .ok_or_else(|| format!("{}: no clock recorded", d.device))?;
            d.check_conservation(clock)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_sum_and_conserve() {
        let mut c = TimeClasses {
            compute_ns: 100,
            comm_launch_ns: 10,
            ..Default::default()
        };
        c.on_recv_gap(50, 20);
        c.ckpt_sync_ns = 5;
        c.reconfig_ns = 7;
        assert_eq!(c.recv_blocked_ns, 30);
        assert_eq!(c.ckpt_absorbed_ns, 20);
        assert_eq!(c.total(), 172);
        // Redistribution time is a charge, not an idle bubble.
        assert_eq!(c.bubble_ns(), 30);
        let mut d = DeviceTelemetry::new(DeviceId(3));
        d.classes = c;
        assert!(d.check_conservation(172).is_ok());
        assert!(d.check_conservation(173).is_err());
    }

    #[test]
    #[should_panic(expected = "recv gap")]
    fn draining_more_than_the_gap_is_rejected() {
        TimeClasses::default().on_recv_gap(10, 11);
    }

    #[test]
    fn send_gaps_split_like_recv_gaps() {
        let mut c = TimeClasses::default();
        c.on_send_gap(50, 30);
        assert_eq!(c.send_blocked_ns, 20);
        assert_eq!(c.ckpt_absorbed_ns, 30);
        // Both bubble classes stay bubbles; absorbed time does not.
        assert_eq!(c.bubble_ns(), 20);
        assert_eq!(c.total(), 50);
    }

    #[test]
    #[should_panic(expected = "send gap")]
    fn draining_more_than_the_send_gap_is_rejected() {
        TimeClasses::default().on_send_gap(10, 11);
    }

    #[test]
    fn assemble_merges_send_and_recv_sides() {
        let mut s = LinkSendStats::default();
        s.on_send(100, 5, 1);
        s.on_send(200, 0, 2);
        let t = Telemetry::assemble(
            vec![DeviceTelemetry::new(DeviceId(0)), DeviceTelemetry::new(DeviceId(1))],
            vec![((DeviceId(0), DeviceId(1)), s)],
            vec![((DeviceId(0), DeviceId(1)), 40)],
        );
        assert_eq!(t.links.len(), 1);
        let l = t.link(DeviceId(0), DeviceId(1)).unwrap();
        assert_eq!(l.packets, 2);
        assert_eq!(l.bytes, 300);
        assert_eq!(l.send_blocked_ns, 5);
        assert_eq!(l.recv_wait_ns, 40);
        assert_eq!(l.max_occupancy, 2);
        assert!(t.link(DeviceId(1), DeviceId(0)).is_none());
    }

    #[test]
    fn links_are_ordered_by_src_then_dst() {
        let t = Telemetry::assemble(
            vec![],
            vec![
                ((DeviceId(2), DeviceId(1)), LinkSendStats::default()),
                ((DeviceId(0), DeviceId(1)), LinkSendStats::default()),
                ((DeviceId(0), DeviceId(3)), LinkSendStats::default()),
            ],
            vec![],
        );
        let order: Vec<(u32, u32)> = t.links.iter().map(|l| (l.src.0, l.dst.0)).collect();
        assert_eq!(order, vec![(0, 1), (0, 3), (2, 1)]);
    }

    #[test]
    fn bubble_fraction_is_bounded() {
        let mut d = DeviceTelemetry::new(DeviceId(0));
        d.classes.compute_ns = 60;
        d.classes.recv_blocked_ns = 40;
        let t = Telemetry {
            devices: vec![d],
            links: vec![],
        };
        let f = t.bubble_fraction(&[100]);
        assert!((f - 0.4).abs() < 1e-12);
        assert!(t.check_conservation(&[100]).is_ok());
        assert!(t.check_conservation(&[99]).is_err());
        assert_eq!(Telemetry::default().bubble_fraction(&[]), 0.0);
    }
}
