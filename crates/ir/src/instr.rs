//! Pipeline instructions — the IR of a pipeline schedule.
//!
//! A schedule is one instruction list per device (Table 3 of the paper):
//! forward/backward compute, recomputation, point-to-point activation and
//! gradient transfers, the data-parallel all-reduce and the optimizer step.
//! Every instruction carries the `(micro, part)` pair that identifies which
//! micro-batch and which on-device partition (pipeline direction / model
//! chunk) it belongs to.

use crate::ids::{DeviceId, MicroId, PartId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The operation an [`Instr`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrKind {
    /// Forward computation of one micro-batch through one stage.
    ///
    /// `ckpt = true` marks a *checkpointed* forward (`CFW` in the paper):
    /// intermediate activations are dropped and only the stage input is
    /// stashed, to be restored later by a [`InstrKind::Recompute`].
    Forward {
        /// Whether activation checkpointing is applied to this forward.
        ckpt: bool,
    },
    /// Backward computation of one micro-batch through one stage.
    Backward,
    /// Input-gradient half of a split backward (ZB-H1-style, the paper's
    /// §8 future work): computes the gradient w.r.t. the stage input, which
    /// is all the upstream stage needs — the weight half can be deferred
    /// into bubbles.
    BackwardInput,
    /// Weight-gradient half of a split backward: flexible work that only
    /// the optimizer step depends on.
    BackwardWeight,
    /// Recomputation (`RC`): replays the forward pass from the stashed
    /// checkpoint to restore the activations needed by the backward.
    Recompute,
    /// Send the stage-boundary activation to the device holding the next
    /// stage (`SA`).
    SendAct {
        /// Destination device.
        peer: DeviceId,
    },
    /// Receive the stage-boundary activation from the device holding the
    /// previous stage (`RA`).
    RecvAct {
        /// Source device.
        peer: DeviceId,
    },
    /// Send the boundary gradient to the device holding the previous stage
    /// (`SG`).
    SendGrad {
        /// Destination device.
        peer: DeviceId,
    },
    /// Receive the boundary gradient from the device holding the next stage
    /// (`RG`).
    RecvGrad {
        /// Source device.
        peer: DeviceId,
    },
    /// Gradient all-reduce across the data-parallel dimension (`AR`).
    AllReduce,
    /// Optimizer step at the end of an iteration (`OS`).
    OptimizerStep,
}

impl InstrKind {
    /// True for forward, backward and recompute instructions.
    #[inline]
    pub fn is_compute(&self) -> bool {
        matches!(
            self,
            InstrKind::Forward { .. }
                | InstrKind::Backward
                | InstrKind::BackwardInput
                | InstrKind::BackwardWeight
                | InstrKind::Recompute
        )
    }

    /// True for point-to-point send/recv instructions.
    #[inline]
    pub fn is_p2p(&self) -> bool {
        self.peer().is_some()
    }

    /// The p2p peer device, if this is a p2p instruction.
    #[inline]
    pub fn peer(&self) -> Option<DeviceId> {
        match *self {
            InstrKind::SendAct { peer }
            | InstrKind::RecvAct { peer }
            | InstrKind::SendGrad { peer }
            | InstrKind::RecvGrad { peer } => Some(peer),
            _ => None,
        }
    }

    /// True for the sending half of a p2p pair.
    #[inline]
    pub fn is_send(&self) -> bool {
        matches!(self, InstrKind::SendAct { .. } | InstrKind::SendGrad { .. })
    }

    /// True for the receiving half of a p2p pair.
    #[inline]
    pub fn is_recv(&self) -> bool {
        matches!(self, InstrKind::RecvAct { .. } | InstrKind::RecvGrad { .. })
    }

    /// A kind tag that ignores payload fields (used to match send/recv pairs
    /// and find positions irrespective of the peer).
    #[inline]
    pub fn tag(&self) -> InstrTag {
        match self {
            InstrKind::Forward { .. } => InstrTag::Forward,
            InstrKind::Backward => InstrTag::Backward,
            InstrKind::BackwardInput => InstrTag::BackwardInput,
            InstrKind::BackwardWeight => InstrTag::BackwardWeight,
            InstrKind::Recompute => InstrTag::Recompute,
            InstrKind::SendAct { .. } => InstrTag::SendAct,
            InstrKind::RecvAct { .. } => InstrTag::RecvAct,
            InstrKind::SendGrad { .. } => InstrTag::SendGrad,
            InstrKind::RecvGrad { .. } => InstrTag::RecvGrad,
            InstrKind::AllReduce => InstrTag::AllReduce,
            InstrKind::OptimizerStep => InstrTag::OptimizerStep,
        }
    }
}

/// Payload-free discriminant of [`InstrKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrTag {
    /// Forward (checkpointed or not).
    Forward,
    /// Backward.
    Backward,
    /// Input-gradient half of a split backward.
    BackwardInput,
    /// Weight-gradient half of a split backward.
    BackwardWeight,
    /// Recomputation.
    Recompute,
    /// Send activation.
    SendAct,
    /// Receive activation.
    RecvAct,
    /// Send gradient.
    SendGrad,
    /// Receive gradient.
    RecvGrad,
    /// Data-parallel all-reduce.
    AllReduce,
    /// Optimizer step.
    OptimizerStep,
}

/// One pipeline instruction: an operation plus the `(micro, part)` pair it
/// acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instr {
    /// What to do.
    pub kind: InstrKind,
    /// Micro-batch id (subscript `m`).
    pub micro: MicroId,
    /// Partition id (superscript `p`).
    pub part: PartId,
}

impl Instr {
    /// Plain (non-checkpointed) forward.
    pub fn forward(micro: impl Into<MicroId>, part: impl Into<PartId>) -> Self {
        Self {
            kind: InstrKind::Forward { ckpt: false },
            micro: micro.into(),
            part: part.into(),
        }
    }

    /// Checkpointed forward (`CFW`).
    pub fn ckpt_forward(micro: impl Into<MicroId>, part: impl Into<PartId>) -> Self {
        Self {
            kind: InstrKind::Forward { ckpt: true },
            micro: micro.into(),
            part: part.into(),
        }
    }

    /// Backward.
    pub fn backward(micro: impl Into<MicroId>, part: impl Into<PartId>) -> Self {
        Self {
            kind: InstrKind::Backward,
            micro: micro.into(),
            part: part.into(),
        }
    }

    /// Input-gradient half of a split backward (`Bi`).
    pub fn backward_input(micro: impl Into<MicroId>, part: impl Into<PartId>) -> Self {
        Self {
            kind: InstrKind::BackwardInput,
            micro: micro.into(),
            part: part.into(),
        }
    }

    /// Weight-gradient half of a split backward (`Bw`).
    pub fn backward_weight(micro: impl Into<MicroId>, part: impl Into<PartId>) -> Self {
        Self {
            kind: InstrKind::BackwardWeight,
            micro: micro.into(),
            part: part.into(),
        }
    }

    /// Recomputation (`RC`).
    pub fn recompute(micro: impl Into<MicroId>, part: impl Into<PartId>) -> Self {
        Self {
            kind: InstrKind::Recompute,
            micro: micro.into(),
            part: part.into(),
        }
    }

    /// Send activation to `peer`.
    pub fn send_act(micro: impl Into<MicroId>, part: impl Into<PartId>, peer: DeviceId) -> Self {
        Self {
            kind: InstrKind::SendAct { peer },
            micro: micro.into(),
            part: part.into(),
        }
    }

    /// Receive activation from `peer`.
    pub fn recv_act(micro: impl Into<MicroId>, part: impl Into<PartId>, peer: DeviceId) -> Self {
        Self {
            kind: InstrKind::RecvAct { peer },
            micro: micro.into(),
            part: part.into(),
        }
    }

    /// Send gradient to `peer`.
    pub fn send_grad(micro: impl Into<MicroId>, part: impl Into<PartId>, peer: DeviceId) -> Self {
        Self {
            kind: InstrKind::SendGrad { peer },
            micro: micro.into(),
            part: part.into(),
        }
    }

    /// Receive gradient from `peer`.
    pub fn recv_grad(micro: impl Into<MicroId>, part: impl Into<PartId>, peer: DeviceId) -> Self {
        Self {
            kind: InstrKind::RecvGrad { peer },
            micro: micro.into(),
            part: part.into(),
        }
    }

    /// Data-parallel all-reduce (micro/part are irrelevant and set to 0).
    pub fn all_reduce() -> Self {
        Self {
            kind: InstrKind::AllReduce,
            micro: MicroId(0),
            part: PartId(0),
        }
    }

    /// Optimizer step (micro/part are irrelevant and set to 0).
    pub fn optimizer_step() -> Self {
        Self {
            kind: InstrKind::OptimizerStep,
            micro: MicroId(0),
            part: PartId(0),
        }
    }

    /// True if this instruction is the forward of `(micro, part)`,
    /// checkpointed or not.
    #[inline]
    pub fn is_forward_of(&self, micro: MicroId, part: PartId) -> bool {
        matches!(self.kind, InstrKind::Forward { .. }) && self.micro == micro && self.part == part
    }

    /// True if this instruction is the backward of `(micro, part)`.
    #[inline]
    pub fn is_backward_of(&self, micro: MicroId, part: PartId) -> bool {
        self.kind == InstrKind::Backward && self.micro == micro && self.part == part
    }

    /// True if this is a checkpointed forward.
    #[inline]
    pub fn is_ckpt_forward(&self) -> bool {
        matches!(self.kind, InstrKind::Forward { ckpt: true })
    }
}

impl fmt::Display for Instr {
    /// Compact notation mirroring the paper: `F3^0`, `cF3^0`, `B3^0`,
    /// `R3^0`, `SA3^0>d2`, `RA3^0<d0`, `AR`, `OS`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.micro.0;
        let p = self.part.0;
        match self.kind {
            InstrKind::Forward { ckpt: false } => write!(f, "F{m}^{p}"),
            InstrKind::Forward { ckpt: true } => write!(f, "cF{m}^{p}"),
            InstrKind::Backward => write!(f, "B{m}^{p}"),
            InstrKind::BackwardInput => write!(f, "Bi{m}^{p}"),
            InstrKind::BackwardWeight => write!(f, "Bw{m}^{p}"),
            InstrKind::Recompute => write!(f, "R{m}^{p}"),
            InstrKind::SendAct { peer } => write!(f, "SA{m}^{p}>{peer}"),
            InstrKind::RecvAct { peer } => write!(f, "RA{m}^{p}<{peer}"),
            InstrKind::SendGrad { peer } => write!(f, "SG{m}^{p}>{peer}"),
            InstrKind::RecvGrad { peer } => write!(f, "RG{m}^{p}<{peer}"),
            InstrKind::AllReduce => write!(f, "AR"),
            InstrKind::OptimizerStep => write!(f, "OS"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let i = Instr::forward(3u32, 1u32);
        assert_eq!(i.micro, MicroId(3));
        assert_eq!(i.part, PartId(1));
        assert!(matches!(i.kind, InstrKind::Forward { ckpt: false }));
        assert!(!i.is_ckpt_forward());
        assert!(Instr::ckpt_forward(0u32, 0u32).is_ckpt_forward());
    }

    #[test]
    fn compute_and_comm_predicates() {
        assert!(Instr::forward(0u32, 0u32).kind.is_compute());
        assert!(Instr::backward(0u32, 0u32).kind.is_compute());
        assert!(Instr::recompute(0u32, 0u32).kind.is_compute());
        assert!(!Instr::all_reduce().kind.is_compute());

        let sa = Instr::send_act(0u32, 0u32, DeviceId(2));
        assert!(sa.kind.is_p2p());
        assert!(sa.kind.is_send());
        assert!(!sa.kind.is_recv());
        assert_eq!(sa.kind.peer(), Some(DeviceId(2)));

        let rg = Instr::recv_grad(0u32, 0u32, DeviceId(1));
        assert!(rg.kind.is_recv());
        assert!(!rg.kind.is_send());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Instr::forward(3u32, 0u32).to_string(), "F3^0");
        assert_eq!(Instr::ckpt_forward(3u32, 0u32).to_string(), "cF3^0");
        assert_eq!(Instr::backward(2u32, 1u32).to_string(), "B2^1");
        assert_eq!(Instr::recompute(2u32, 1u32).to_string(), "R2^1");
        assert_eq!(
            Instr::send_act(1u32, 0u32, DeviceId(2)).to_string(),
            "SA1^0>d2"
        );
        assert_eq!(
            Instr::recv_act(1u32, 0u32, DeviceId(0)).to_string(),
            "RA1^0<d0"
        );
        assert_eq!(Instr::all_reduce().to_string(), "AR");
        assert_eq!(Instr::optimizer_step().to_string(), "OS");
    }

    #[test]
    fn tags_ignore_payload() {
        assert_eq!(
            InstrKind::Forward { ckpt: true }.tag(),
            InstrKind::Forward { ckpt: false }.tag()
        );
        assert_eq!(
            InstrKind::SendAct { peer: DeviceId(0) }.tag(),
            InstrKind::SendAct { peer: DeviceId(9) }.tag()
        );
        assert_ne!(InstrTag::SendAct, InstrTag::RecvAct);
    }

    #[test]
    fn is_forward_of_matches_both_ckpt_states() {
        let m = MicroId(5);
        let p = PartId(0);
        assert!(Instr::forward(5u32, 0u32).is_forward_of(m, p));
        assert!(Instr::ckpt_forward(5u32, 0u32).is_forward_of(m, p));
        assert!(!Instr::backward(5u32, 0u32).is_forward_of(m, p));
        assert!(!Instr::forward(4u32, 0u32).is_forward_of(m, p));
    }
}
