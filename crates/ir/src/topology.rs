//! The *virtual pipeline* abstraction (paper §5.2, Algorithm 1).
//!
//! Pipeline schemes differ wildly in how logical stages map onto physical
//! devices: 1F1B maps stage `s` to device `s`; Chimera runs two pipelines in
//! opposite directions at once; Interleave wraps `v` model chunks around the
//! device ring; Hanayo-style wave pipelines zig-zag. The virtual pipeline
//! unifies them: every scheme exposes, for each `(device, part)` pair, which
//! model stage it holds and where the activation travels next
//! (`find_next_inst`) or came from (`find_prev_inst`).

use crate::ids::{DeviceId, PartId, StageId};
use serde::{Deserialize, Serialize};

/// Which pipeline scheme shapes the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// GPipe: all forwards, then all backwards; one stage per device.
    GPipe,
    /// 1F1B ("V" shape): one-forward-one-backward steady state; one stage
    /// per device.
    OneFOneB,
    /// Chimera ("X" shape): two bidirectional pipelines; every device holds
    /// one *down* stage (part 0) and one *up* stage (part 1); model weights
    /// are replicated once per direction.
    Chimera,
    /// Interleave ("W" shape, Megatron interleaved): each device holds
    /// `chunks` model chunks; a micro-batch wraps around the device ring
    /// `chunks` times.
    Interleave {
        /// Number of model chunks per device (a.k.a. virtual pipeline size).
        chunks: u32,
    },
    /// Hanayo-style wave pipeline: like Interleave but consecutive chunks
    /// traverse the devices in alternating directions, so wave boundaries
    /// stay on-device.
    Wave {
        /// Number of waves (chunks) per device.
        chunks: u32,
    },
    /// Fill-drain forward-only chain (inference/serving): one stage per
    /// device, micro-batches flow 0→D−1 and are done — no backward pass,
    /// no optimizer step. Bubble fraction is the classic `(p−1)/(m+p−1)`.
    ForwardOnly,
    /// Zero-bubble ZB-H1 (Qi et al., ICLR '24): the 1F1B chain with every
    /// backward split into its input-gradient half `Bi` (critical path)
    /// and weight-gradient half `Bw`, the latter deferred into the
    /// warmup/cooldown and recv-gap bubbles. Same chain topology as
    /// 1F1B; the split lives in the instruction stream.
    ZeroBubbleH1,
    /// Zero-bubble V schedule: two model chunks per device arranged in a
    /// V (chunk 0 runs 0→D−1, chunk 1 reflects back D−1→0, like a
    /// two-chunk wave), with the ZB backward split. The V shape keeps
    /// both halves of a micro's backward on-device at the turn, so `Bw`
    /// deferral never crosses a link.
    ZeroBubbleV,
}

impl SchemeKind {
    /// Short display name used in tables ("V", "X", "W", ...).
    pub fn shape_letter(&self) -> &'static str {
        match self {
            SchemeKind::GPipe => "G",
            SchemeKind::OneFOneB => "V",
            SchemeKind::Chimera => "X",
            SchemeKind::Interleave { .. } => "W",
            SchemeKind::Wave { .. } => "H",
            SchemeKind::ForwardOnly => "F",
            SchemeKind::ZeroBubbleH1 => "Z",
            SchemeKind::ZeroBubbleV => "ZV",
        }
    }

    /// How many partitions (stages) each device holds under this scheme.
    pub fn parts_per_device(&self) -> u32 {
        match *self {
            SchemeKind::GPipe
            | SchemeKind::OneFOneB
            | SchemeKind::ForwardOnly
            | SchemeKind::ZeroBubbleH1 => 1,
            SchemeKind::Chimera | SchemeKind::ZeroBubbleV => 2,
            SchemeKind::Interleave { chunks } | SchemeKind::Wave { chunks } => chunks,
        }
    }

    /// How many distinct forward *routes* micro-batches may take.
    ///
    /// Only Chimera has two (the down and up pipelines); in every other
    /// scheme all micro-batches follow route 0.
    pub fn num_routes(&self) -> u32 {
        match self {
            SchemeKind::Chimera => 2,
            _ => 1,
        }
    }
}

/// The virtual pipeline: scheme + device count, with stage/hop arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// The pipeline scheme.
    pub scheme: SchemeKind,
    /// Number of devices `D` in the pipeline dimension.
    pub devices: u32,
}

impl Topology {
    /// Creates a topology, checking scheme-specific constraints.
    ///
    /// # Panics
    /// If `devices == 0`, if Chimera is requested with an odd device count,
    /// or if Interleave/Wave are requested with zero chunks.
    pub fn new(scheme: SchemeKind, devices: u32) -> Self {
        assert!(devices > 0, "pipeline needs at least one device");
        if matches!(scheme, SchemeKind::Chimera) {
            assert!(
                devices.is_multiple_of(2),
                "Chimera requires an even number of devices, got {devices}"
            );
        }
        if let SchemeKind::Interleave { chunks } | SchemeKind::Wave { chunks } = scheme {
            assert!(chunks > 0, "Interleave/Wave require at least one chunk");
        }
        Self { scheme, devices }
    }

    /// Number of partitions each device holds.
    #[inline]
    pub fn parts_per_device(&self) -> u32 {
        self.scheme.parts_per_device()
    }

    /// Total number of model stages along one forward route.
    ///
    /// Chimera's two routes each traverse all `D` stages (the model is split
    /// into `D` stages; both directions hold a full replica), so this is `D`
    /// for Chimera and `D × chunks` for Interleave/Wave.
    #[inline]
    pub fn num_stages(&self) -> u32 {
        match self.scheme {
            SchemeKind::GPipe
            | SchemeKind::OneFOneB
            | SchemeKind::ForwardOnly
            | SchemeKind::ZeroBubbleH1
            | SchemeKind::Chimera => self.devices,
            SchemeKind::ZeroBubbleV => self.devices * 2,
            SchemeKind::Interleave { chunks } | SchemeKind::Wave { chunks } => {
                self.devices * chunks
            }
        }
    }

    /// Number of distinct forward routes (see [`SchemeKind::num_routes`]).
    #[inline]
    pub fn num_routes(&self) -> u32 {
        self.scheme.num_routes()
    }

    /// The model stage held by `(device, part)`.
    ///
    /// For Chimera, both parts cover the same `D` model stages, mirrored:
    /// part 0 (down) puts stage `d` on device `d`; part 1 (up) puts stage
    /// `D-1-d` on device `d`.
    pub fn stage_of(&self, device: DeviceId, part: PartId) -> StageId {
        let d = device.0;
        let p = part.0;
        let dd = self.devices;
        debug_assert!(d < dd, "device {d} out of range (D={dd})");
        debug_assert!(
            p < self.parts_per_device(),
            "part {p} out of range for {:?}",
            self.scheme
        );
        match self.scheme {
            SchemeKind::GPipe
            | SchemeKind::OneFOneB
            | SchemeKind::ForwardOnly
            | SchemeKind::ZeroBubbleH1 => StageId(d),
            SchemeKind::ZeroBubbleV => {
                if p == 0 {
                    StageId(d)
                } else {
                    StageId(dd + (dd - 1 - d))
                }
            }
            SchemeKind::Chimera => {
                if p == 0 {
                    StageId(d)
                } else {
                    StageId(dd - 1 - d)
                }
            }
            SchemeKind::Interleave { .. } => StageId(p * dd + d),
            SchemeKind::Wave { .. } => {
                if p.is_multiple_of(2) {
                    StageId(p * dd + d)
                } else {
                    StageId(p * dd + (dd - 1 - d))
                }
            }
        }
    }

    /// The forward path of `route`: the `(device, part)` hops a micro-batch
    /// visits from the first to the last stage.
    pub fn forward_path(&self, route: u32) -> Vec<(DeviceId, PartId)> {
        let dd = self.devices;
        match self.scheme {
            SchemeKind::GPipe
            | SchemeKind::OneFOneB
            | SchemeKind::ForwardOnly
            | SchemeKind::ZeroBubbleH1 => {
                (0..dd).map(|d| (DeviceId(d), PartId(0))).collect()
            }
            SchemeKind::ZeroBubbleV => (0..dd)
                .map(|d| (DeviceId(d), PartId(0)))
                .chain((0..dd).rev().map(|d| (DeviceId(d), PartId(1))))
                .collect(),
            SchemeKind::Chimera => {
                if route == 0 {
                    (0..dd).map(|d| (DeviceId(d), PartId(0))).collect()
                } else {
                    (0..dd).rev().map(|d| (DeviceId(d), PartId(1))).collect()
                }
            }
            SchemeKind::Interleave { chunks } => (0..chunks)
                .flat_map(|p| (0..dd).map(move |d| (DeviceId(d), PartId(p))))
                .collect(),
            SchemeKind::Wave { chunks } => (0..chunks)
                .flat_map(|p| {
                    let fwd: Box<dyn Iterator<Item = u32>> = if p.is_multiple_of(2) {
                        Box::new(0..dd)
                    } else {
                        Box::new((0..dd).rev())
                    };
                    fwd.map(move |d| (DeviceId(d), PartId(p)))
                })
                .collect(),
        }
    }

    /// Where the activation produced by `(device, part)` goes next, or
    /// `None` if this is the last stage of its route.
    ///
    /// This is the paper's `find_next_inst` (Algorithm 1) restricted to the
    /// device/part coordinates: the micro id and instruction type pass
    /// through unchanged.
    pub fn next_hop(&self, device: DeviceId, part: PartId) -> Option<(DeviceId, PartId)> {
        let d = device.0;
        let p = part.0;
        let dd = self.devices;
        match self.scheme {
            SchemeKind::GPipe
            | SchemeKind::OneFOneB
            | SchemeKind::ForwardOnly
            | SchemeKind::ZeroBubbleH1 => {
                (d + 1 < dd).then(|| (DeviceId(d + 1), PartId(0)))
            }
            SchemeKind::ZeroBubbleV => {
                if p == 0 {
                    if d + 1 < dd {
                        Some((DeviceId(d + 1), PartId(0)))
                    } else {
                        // The V reflects: chunk 1 starts on the last device.
                        Some((DeviceId(d), PartId(1)))
                    }
                } else {
                    (d > 0).then(|| (DeviceId(d - 1), PartId(1)))
                }
            }
            SchemeKind::Chimera => {
                if p == 0 {
                    (d + 1 < dd).then(|| (DeviceId(d + 1), PartId(0)))
                } else {
                    (d > 0).then(|| (DeviceId(d - 1), PartId(1)))
                }
            }
            SchemeKind::Interleave { chunks } => {
                if d + 1 < dd {
                    Some((DeviceId(d + 1), PartId(p)))
                } else if p + 1 < chunks {
                    // Wrap around the ring into the next chunk.
                    Some((DeviceId(0), PartId(p + 1)))
                } else {
                    None
                }
            }
            SchemeKind::Wave { chunks } => {
                let forward_dir = p.is_multiple_of(2);
                let at_edge = if forward_dir { d + 1 == dd } else { d == 0 };
                if !at_edge {
                    let nd = if forward_dir { d + 1 } else { d - 1 };
                    Some((DeviceId(nd), PartId(p)))
                } else if p + 1 < chunks {
                    // Wave reflects: the next chunk starts on the same device.
                    Some((DeviceId(d), PartId(p + 1)))
                } else {
                    None
                }
            }
        }
    }

    /// Where the activation consumed by `(device, part)` came from, or
    /// `None` if this is the first stage of its route.
    ///
    /// This is the paper's `find_prev_inst` (Algorithm 1).
    pub fn prev_hop(&self, device: DeviceId, part: PartId) -> Option<(DeviceId, PartId)> {
        let d = device.0;
        let p = part.0;
        let dd = self.devices;
        match self.scheme {
            SchemeKind::GPipe
            | SchemeKind::OneFOneB
            | SchemeKind::ForwardOnly
            | SchemeKind::ZeroBubbleH1 => {
                (d > 0).then(|| (DeviceId(d - 1), PartId(0)))
            }
            SchemeKind::ZeroBubbleV => {
                if p == 0 {
                    (d > 0).then(|| (DeviceId(d - 1), PartId(0)))
                } else if d + 1 < dd {
                    Some((DeviceId(d + 1), PartId(1)))
                } else {
                    // Reflection point: chunk 1 on the last device follows
                    // chunk 0 on the same device.
                    Some((DeviceId(d), PartId(0)))
                }
            }
            SchemeKind::Chimera => {
                if p == 0 {
                    (d > 0).then(|| (DeviceId(d - 1), PartId(0)))
                } else {
                    (d + 1 < dd).then(|| (DeviceId(d + 1), PartId(1)))
                }
            }
            SchemeKind::Interleave { .. } => {
                if d > 0 {
                    Some((DeviceId(d - 1), PartId(p)))
                } else if p > 0 {
                    Some((DeviceId(dd - 1), PartId(p - 1)))
                } else {
                    None
                }
            }
            SchemeKind::Wave { .. } => {
                let forward_dir = p.is_multiple_of(2);
                let at_edge = if forward_dir { d == 0 } else { d + 1 == dd };
                if !at_edge {
                    let pd = if forward_dir { d - 1 } else { d + 1 };
                    Some((DeviceId(pd), PartId(p)))
                } else if p > 0 {
                    Some((DeviceId(d), PartId(p - 1)))
                } else {
                    None
                }
            }
        }
    }

    /// `(device, part)` holding the first stage of `route`.
    pub fn first_hop(&self, route: u32) -> (DeviceId, PartId) {
        match self.scheme {
            SchemeKind::Chimera if route == 1 => (DeviceId(self.devices - 1), PartId(1)),
            _ => (DeviceId(0), PartId(0)),
        }
    }

    /// `(device, part)` holding the last stage of `route`.
    pub fn last_hop(&self, route: u32) -> (DeviceId, PartId) {
        *self
            .forward_path(route)
            .last()
            .expect("forward path is never empty")
    }

    /// True if `(device, part)` holds the first stage of some route.
    pub fn is_first_stage(&self, device: DeviceId, part: PartId) -> bool {
        self.prev_hop(device, part).is_none()
    }

    /// True if `(device, part)` holds the last stage of some route.
    pub fn is_last_stage(&self, device: DeviceId, part: PartId) -> bool {
        self.next_hop(device, part).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_hops(t: &Topology) -> Vec<(DeviceId, PartId)> {
        (0..t.devices)
            .flat_map(|d| (0..t.parts_per_device()).map(move |p| (DeviceId(d), PartId(p))))
            .collect()
    }

    #[test]
    fn one_f_one_b_is_a_simple_chain() {
        let t = Topology::new(SchemeKind::OneFOneB, 4);
        assert_eq!(t.num_stages(), 4);
        assert_eq!(t.parts_per_device(), 1);
        assert_eq!(t.next_hop(DeviceId(0), PartId(0)), Some((DeviceId(1), PartId(0))));
        assert_eq!(t.next_hop(DeviceId(3), PartId(0)), None);
        assert_eq!(t.prev_hop(DeviceId(0), PartId(0)), None);
        assert_eq!(
            t.forward_path(0),
            vec![
                (DeviceId(0), PartId(0)),
                (DeviceId(1), PartId(0)),
                (DeviceId(2), PartId(0)),
                (DeviceId(3), PartId(0)),
            ]
        );
    }

    #[test]
    fn chimera_routes_are_mirrored() {
        let t = Topology::new(SchemeKind::Chimera, 4);
        assert_eq!(t.num_routes(), 2);
        assert_eq!(t.first_hop(0), (DeviceId(0), PartId(0)));
        assert_eq!(t.first_hop(1), (DeviceId(3), PartId(1)));
        assert_eq!(t.last_hop(0), (DeviceId(3), PartId(0)));
        assert_eq!(t.last_hop(1), (DeviceId(0), PartId(1)));
        // Up pipeline walks down the device indices.
        assert_eq!(
            t.next_hop(DeviceId(2), PartId(1)),
            Some((DeviceId(1), PartId(1)))
        );
        // Stage mapping is mirrored between the parts.
        assert_eq!(t.stage_of(DeviceId(1), PartId(0)), StageId(1));
        assert_eq!(t.stage_of(DeviceId(1), PartId(1)), StageId(2));
    }

    #[test]
    #[should_panic(expected = "even number of devices")]
    fn chimera_rejects_odd_device_counts() {
        let _ = Topology::new(SchemeKind::Chimera, 3);
    }

    #[test]
    fn interleave_wraps_around_the_ring() {
        let t = Topology::new(SchemeKind::Interleave { chunks: 2 }, 4);
        assert_eq!(t.num_stages(), 8);
        assert_eq!(t.stage_of(DeviceId(2), PartId(1)), StageId(6));
        assert_eq!(
            t.next_hop(DeviceId(3), PartId(0)),
            Some((DeviceId(0), PartId(1)))
        );
        assert_eq!(
            t.prev_hop(DeviceId(0), PartId(1)),
            Some((DeviceId(3), PartId(0)))
        );
        assert_eq!(t.next_hop(DeviceId(3), PartId(1)), None);
    }

    #[test]
    fn wave_reflects_on_device() {
        let t = Topology::new(SchemeKind::Wave { chunks: 2 }, 4);
        assert_eq!(t.num_stages(), 8);
        // Chunk 0 runs 0->3, chunk 1 runs 3->0; the reflection happens on d3.
        assert_eq!(
            t.next_hop(DeviceId(3), PartId(0)),
            Some((DeviceId(3), PartId(1)))
        );
        assert_eq!(
            t.next_hop(DeviceId(3), PartId(1)),
            Some((DeviceId(2), PartId(1)))
        );
        assert_eq!(t.last_hop(0), (DeviceId(0), PartId(1)));
        // Stage ids increase monotonically along the path.
        let path = t.forward_path(0);
        let stages: Vec<u32> = path.iter().map(|&(d, p)| t.stage_of(d, p).0).collect();
        assert_eq!(stages, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn next_and_prev_are_inverse_for_every_scheme() {
        let topos = [
            Topology::new(SchemeKind::GPipe, 5),
            Topology::new(SchemeKind::OneFOneB, 6),
            Topology::new(SchemeKind::Chimera, 6),
            Topology::new(SchemeKind::Interleave { chunks: 3 }, 4),
            Topology::new(SchemeKind::Wave { chunks: 3 }, 4),
            Topology::new(SchemeKind::ZeroBubbleH1, 5),
            Topology::new(SchemeKind::ZeroBubbleV, 4),
        ];
        for t in &topos {
            for (d, p) in all_hops(t) {
                if let Some((nd, np)) = t.next_hop(d, p) {
                    assert_eq!(
                        t.prev_hop(nd, np),
                        Some((d, p)),
                        "prev(next(x)) != x for {:?} at ({d}, {p})",
                        t.scheme
                    );
                }
                if let Some((pd, pp)) = t.prev_hop(d, p) {
                    assert_eq!(
                        t.next_hop(pd, pp),
                        Some((d, p)),
                        "next(prev(x)) != x for {:?} at ({d}, {p})",
                        t.scheme
                    );
                }
            }
        }
    }

    #[test]
    fn forward_paths_visit_every_stage_once() {
        let topos = [
            Topology::new(SchemeKind::OneFOneB, 8),
            Topology::new(SchemeKind::Chimera, 8),
            Topology::new(SchemeKind::Interleave { chunks: 2 }, 8),
            Topology::new(SchemeKind::Wave { chunks: 2 }, 8),
            Topology::new(SchemeKind::ZeroBubbleH1, 8),
            Topology::new(SchemeKind::ZeroBubbleV, 8),
        ];
        for t in &topos {
            for route in 0..t.num_routes() {
                let path = t.forward_path(route);
                assert_eq!(path.len() as u32, t.num_stages());
                let mut stages: Vec<u32> =
                    path.iter().map(|&(d, p)| t.stage_of(d, p).0).collect();
                stages.sort_unstable();
                stages.dedup();
                assert_eq!(stages.len() as u32, t.num_stages());
                // The path must agree with next_hop chaining.
                for w in path.windows(2) {
                    assert_eq!(t.next_hop(w[0].0, w[0].1), Some((w[1].0, w[1].1)));
                }
                assert_eq!(path[0], t.first_hop(route));
                assert_eq!(*path.last().unwrap(), t.last_hop(route));
            }
        }
    }

    #[test]
    fn shape_letters() {
        assert_eq!(SchemeKind::OneFOneB.shape_letter(), "V");
        assert_eq!(SchemeKind::Chimera.shape_letter(), "X");
        assert_eq!(SchemeKind::Interleave { chunks: 2 }.shape_letter(), "W");
        assert_eq!(SchemeKind::ZeroBubbleH1.shape_letter(), "Z");
        assert_eq!(SchemeKind::ZeroBubbleV.shape_letter(), "ZV");
    }

    #[test]
    fn zero_bubble_v_reflects_on_the_last_device() {
        let t = Topology::new(SchemeKind::ZeroBubbleV, 4);
        assert_eq!(t.num_stages(), 8);
        assert_eq!(t.parts_per_device(), 2);
        // Chunk 0 runs 0->3, chunk 1 runs 3->0; reflection on d3 stays local.
        assert_eq!(
            t.next_hop(DeviceId(3), PartId(0)),
            Some((DeviceId(3), PartId(1)))
        );
        assert_eq!(
            t.next_hop(DeviceId(3), PartId(1)),
            Some((DeviceId(2), PartId(1)))
        );
        assert_eq!(t.last_hop(0), (DeviceId(0), PartId(1)));
        // Stage ids increase monotonically along the path.
        let path = t.forward_path(0);
        let stages: Vec<u32> = path.iter().map(|&(d, p)| t.stage_of(d, p).0).collect();
        assert_eq!(stages, (0..8).collect::<Vec<_>>());
    }
}
