//! A complete pipeline schedule: one instruction list per device plus the
//! virtual-pipeline topology and the per-micro-batch route assignment.

use crate::ids::{DeviceId, MicroId, PartId};
use crate::instr::{Instr, InstrKind, InstrTag};
use crate::list::DeviceProgram;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A full schedule for one training iteration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// The virtual pipeline this schedule runs on.
    pub topology: Topology,
    /// Number of micro-batches `N` per iteration.
    pub micros: u32,
    /// Route taken by each micro-batch (always 0 except for Chimera, where
    /// 0 = down pipeline and 1 = up pipeline). Indexed by micro id.
    pub routes: Vec<u32>,
    programs: Vec<DeviceProgram>,
}

impl Schedule {
    /// Creates a schedule with empty per-device programs.
    pub fn empty(topology: Topology, micros: u32, routes: Vec<u32>) -> Self {
        assert_eq!(
            routes.len(),
            micros as usize,
            "one route per micro-batch required"
        );
        for &r in &routes {
            assert!(r < topology.num_routes(), "route {r} out of range");
        }
        let programs = (0..topology.devices)
            .map(|d| DeviceProgram::new(DeviceId(d)))
            .collect();
        Self {
            topology,
            micros,
            routes,
            programs,
        }
    }

    /// Creates a schedule from prebuilt programs.
    pub fn from_programs(
        topology: Topology,
        micros: u32,
        routes: Vec<u32>,
        programs: Vec<DeviceProgram>,
    ) -> Self {
        assert_eq!(programs.len() as u32, topology.devices);
        let mut s = Self::empty(topology, micros, routes);
        s.programs = programs;
        s
    }

    /// Number of devices.
    #[inline]
    pub fn devices(&self) -> u32 {
        self.topology.devices
    }

    /// The route of `micro`.
    #[inline]
    pub fn route_of(&self, micro: MicroId) -> u32 {
        self.routes[micro.index()]
    }

    /// The program of one device.
    #[inline]
    pub fn program(&self, device: DeviceId) -> &DeviceProgram {
        &self.programs[device.index()]
    }

    /// Mutable access to the program of one device.
    #[inline]
    pub fn program_mut(&mut self, device: DeviceId) -> &mut DeviceProgram {
        &mut self.programs[device.index()]
    }

    /// All programs, in device order.
    #[inline]
    pub fn programs(&self) -> &[DeviceProgram] {
        &self.programs
    }

    /// Mutable access to all programs.
    #[inline]
    pub fn programs_mut(&mut self) -> &mut [DeviceProgram] {
        &mut self.programs
    }

    /// Total instruction count across all devices.
    pub fn total_instrs(&self) -> usize {
        self.programs.iter().map(|p| p.len()).sum()
    }

    /// Counts instructions with the given tag across all devices.
    pub fn count_tag(&self, tag: InstrTag) -> usize {
        self.programs
            .iter()
            .map(|p| p.count(|i| i.kind.tag() == tag))
            .sum()
    }

    /// Counts checkpointed forwards across all devices.
    pub fn count_ckpt_forwards(&self) -> usize {
        self.programs
            .iter()
            .map(|p| p.count(|i| i.is_ckpt_forward()))
            .sum()
    }

    /// True if any forward in the schedule is checkpointed.
    pub fn has_checkpointing(&self) -> bool {
        self.count_ckpt_forwards() > 0
    }

    /// Per-device peak on-the-fly micro-batch count (see
    /// [`DeviceProgram::peak_on_the_fly`]).
    pub fn peak_on_the_fly_per_device(&self, count_ckpt: bool) -> Vec<usize> {
        self.programs
            .iter()
            .map(|p| p.peak_on_the_fly(count_ckpt))
            .collect()
    }

    /// Removes every communication and bookkeeping instruction, leaving only
    /// compute. Useful for shape-level comparisons in tests.
    pub fn compute_only(&self) -> Schedule {
        let mut s = self.clone();
        for p in &mut s.programs {
            let kept: Vec<Instr> = p
                .instrs()
                .iter()
                .copied()
                .filter(|i| i.kind.is_compute())
                .collect();
            *p = DeviceProgram::from_instrs(p.device, kept);
        }
        s
    }

    /// The `(device, part)` pairs that host compute for `micro` along its
    /// route, in forward order.
    pub fn forward_path_of(&self, micro: MicroId) -> Vec<(DeviceId, PartId)> {
        self.topology.forward_path(self.route_of(micro))
    }

    /// Whether the forward of `(micro, part)` on `device` was emitted as a
    /// checkpointed forward.
    pub fn is_ckpt(&self, device: DeviceId, micro: MicroId, part: PartId) -> bool {
        self.program(device)
            .instrs()
            .iter()
            .any(|i| i.is_forward_of(micro, part) && i.is_ckpt_forward())
    }

    /// Total number of forward compute instructions expected for this
    /// schedule: every micro crosses every stage of its route exactly once.
    pub fn expected_forward_count(&self) -> usize {
        (0..self.micros)
            .map(|m| self.topology.forward_path(self.routes[m as usize]).len())
            .sum()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule {:?} D={} N={}",
            self.topology.scheme, self.topology.devices, self.micros
        )?;
        for p in &self.programs {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

/// Convenience: does `kind` represent a checkpointed forward?
pub fn is_ckpt_kind(kind: &InstrKind) -> bool {
    matches!(kind, InstrKind::Forward { ckpt: true })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::SchemeKind;

    fn tiny() -> Schedule {
        let topo = Topology::new(SchemeKind::OneFOneB, 2);
        let mut s = Schedule::empty(topo, 2, vec![0, 0]);
        let d0 = s.program_mut(DeviceId(0));
        d0.push(Instr::forward(0u32, 0u32));
        d0.push(Instr::forward(1u32, 0u32));
        d0.push(Instr::backward(0u32, 0u32));
        d0.push(Instr::backward(1u32, 0u32));
        let d1 = s.program_mut(DeviceId(1));
        d1.push(Instr::forward(0u32, 0u32));
        d1.push(Instr::backward(0u32, 0u32));
        d1.push(Instr::forward(1u32, 0u32));
        d1.push(Instr::backward(1u32, 0u32));
        s
    }

    #[test]
    fn counts_and_totals() {
        let s = tiny();
        assert_eq!(s.total_instrs(), 8);
        assert_eq!(s.count_tag(InstrTag::Forward), 4);
        assert_eq!(s.count_tag(InstrTag::Backward), 4);
        assert_eq!(s.count_ckpt_forwards(), 0);
        assert!(!s.has_checkpointing());
        assert_eq!(s.expected_forward_count(), 4);
    }

    #[test]
    fn peak_on_the_fly_differs_per_device() {
        let s = tiny();
        assert_eq!(s.peak_on_the_fly_per_device(true), vec![2, 1]);
    }

    #[test]
    fn ckpt_detection() {
        let mut s = tiny();
        s.program_mut(DeviceId(0))
            .replace_kind(0, InstrKind::Forward { ckpt: true });
        assert!(s.is_ckpt(DeviceId(0), MicroId(0), PartId(0)));
        assert!(!s.is_ckpt(DeviceId(0), MicroId(1), PartId(0)));
        assert!(s.has_checkpointing());
    }

    #[test]
    #[should_panic(expected = "one route per micro-batch")]
    fn route_length_must_match_micros() {
        let topo = Topology::new(SchemeKind::OneFOneB, 2);
        let _ = Schedule::empty(topo, 3, vec![0]);
    }

    #[test]
    fn compute_only_strips_comm() {
        let mut s = tiny();
        s.program_mut(DeviceId(0))
            .push(Instr::send_act(0u32, 0u32, DeviceId(1)));
        s.program_mut(DeviceId(0)).push(Instr::optimizer_step());
        let c = s.compute_only();
        assert_eq!(c.program(DeviceId(0)).len(), 4);
        assert!(c
            .program(DeviceId(0))
            .instrs()
            .iter()
            .all(|i| i.kind.is_compute()));
    }
}
