//! Degraded-cluster perturbations shared by the DP simulator and the
//! cluster emulator.
//!
//! A [`PerturbationProfile`] describes a *known* deviation from the
//! pristine cluster the cost model assumes: per-device compute slowdowns
//! over instruction ranges (stragglers) and extra latency on directed
//! links (either one specific packet or every packet of a pair). It lives
//! next to [`crate::MemoryRules`] for the same reason: both sides of the
//! fidelity invariant — the offline simulator (`mario-core`) and the
//! threaded emulator (`mario-cluster`) — must consume one definition, so
//! a zero-jitter emulator run under an absorbable fault plan and a
//! simulation under the derived profile agree bit for bit.
//!
//! The arithmetic here mirrors the emulator's fault enforcement exactly:
//! slowdown factors multiply per matching window and are applied with the
//! same `f64` round-to-nearest; link latency shifts a packet's departure
//! timestamp while leaving the sender's own clock untouched.

use crate::cost::Nanos;
use crate::ids::DeviceId;
use serde::{Deserialize, Serialize};

/// A compute slowdown on one device over an instruction-index window:
/// instructions with `from_pc <= pc < until_pc` run `factor`× slower.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowdownWindow {
    /// The straggling device.
    pub device: DeviceId,
    /// Slowdown multiplier (e.g. 10.0). Factors of overlapping windows
    /// multiply, exactly as the emulator combines overlapping
    /// `Slowdown` faults.
    pub factor: f64,
    /// First affected instruction index.
    pub from_pc: usize,
    /// One past the last affected instruction index.
    pub until_pc: usize,
    /// `Some(i)`: only iteration `i` (0-based) is slowed — the
    /// emulator's per-iteration fault scoping. `None`: every iteration
    /// (a persistent straggler).
    pub iteration: Option<u32>,
}

/// Extra latency on the directed link `src -> dst`: the affected packets
/// depart `extra_ns` later in virtual time (the sender's clock is
/// unaffected — the wire is slow, not the kernel launch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSlack {
    /// Sending side of the link.
    pub src: DeviceId,
    /// Receiving side of the link.
    pub dst: DeviceId,
    /// `Some(n)`: only the `n`th packet of the pair (0-based, counting
    /// all classes and parts in the sender's program order *within one
    /// iteration* — the emulator's `LinkDelay` numbering, which resets
    /// every iteration). `None`: every packet.
    pub nth: Option<usize>,
    /// Extra virtual latency, ns.
    pub extra_ns: Nanos,
    /// `Some(i)`: only packets of iteration `i` (0-based) are delayed —
    /// the emulator's per-iteration fault scoping. `None`: every
    /// iteration (a persistently slow wire).
    pub iteration: Option<u32>,
}

/// A degraded-cluster description: per-device compute slowdowns plus
/// per-link added latency. The empty profile is the identity — it must
/// not perturb a simulation in any way.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PerturbationProfile {
    /// Active compute slowdowns.
    pub slowdowns: Vec<SlowdownWindow>,
    /// Active link latencies.
    pub link_slack: Vec<LinkSlack>,
}

impl PerturbationProfile {
    /// The identity profile: nothing is perturbed.
    pub fn identity() -> Self {
        Self::default()
    }

    /// True when this profile perturbs nothing.
    pub fn is_identity(&self) -> bool {
        self.slowdowns.is_empty() && self.link_slack.is_empty()
    }

    /// Adds a slowdown window.
    pub fn with_slowdown(mut self, w: SlowdownWindow) -> Self {
        self.slowdowns.push(w);
        self
    }

    /// Adds a whole-program straggler: every compute instruction on
    /// `device` runs `factor`× slower.
    pub fn with_straggler(self, device: DeviceId, factor: f64) -> Self {
        self.with_slowdown(SlowdownWindow {
            device,
            factor,
            from_pc: 0,
            until_pc: usize::MAX,
            iteration: None,
        })
    }

    /// Adds a link latency entry.
    pub fn with_link_slack(mut self, s: LinkSlack) -> Self {
        self.link_slack.push(s);
        self
    }

    /// Combined slowdown factor for instruction `pc` of iteration `iter`
    /// on `device` (the product over matching windows; 1.0 when none
    /// match).
    pub fn compute_factor(&self, device: DeviceId, iter: u32, pc: usize) -> f64 {
        let mut f = 1.0;
        for w in &self.slowdowns {
            if w.device == device
                && w.iteration.is_none_or(|i| i == iter)
                && (w.from_pc..w.until_pc).contains(&pc)
            {
                f *= w.factor;
            }
        }
        f
    }

    /// `ns` scaled by the slowdown at `(device, iter, pc)` —
    /// bit-identical to the emulator's enforcement: untouched when the
    /// factor is exactly 1.0, otherwise `round(ns * factor)` in `f64`.
    pub fn scaled_compute(&self, device: DeviceId, iter: u32, pc: usize, ns: Nanos) -> Nanos {
        let factor = self.compute_factor(device, iter, pc);
        if factor == 1.0 {
            ns
        } else {
            (ns as f64 * factor).round() as Nanos
        }
    }

    /// Extra departure latency for the `nth` packet of iteration `iter`
    /// sent on `src -> dst` (sum of the matching entries; `nth` counts
    /// within the iteration, matching the emulator's numbering).
    pub fn link_extra(&self, src: DeviceId, dst: DeviceId, iter: u32, nth: usize) -> Nanos {
        self.link_slack
            .iter()
            .filter(|s| {
                s.src == src
                    && s.dst == dst
                    && s.iteration.is_none_or(|i| i == iter)
                    && s.nth.is_none_or(|n| n == nth)
            })
            .map(|s| s.extra_ns)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_scales_nothing() {
        let p = PerturbationProfile::identity();
        assert!(p.is_identity());
        assert_eq!(p.compute_factor(DeviceId(0), 0, 7), 1.0);
        assert_eq!(p.scaled_compute(DeviceId(3), 0, 0, 12_345), 12_345);
        assert_eq!(p.link_extra(DeviceId(0), DeviceId(1), 0, 0), 0);
    }

    #[test]
    fn windows_multiply_and_bound() {
        let p = PerturbationProfile::identity()
            .with_slowdown(SlowdownWindow {
                device: DeviceId(1),
                factor: 2.0,
                from_pc: 2,
                until_pc: 6,
                iteration: None,
            })
            .with_slowdown(SlowdownWindow {
                device: DeviceId(1),
                factor: 3.0,
                from_pc: 4,
                until_pc: 8,
                iteration: None,
            });
        assert_eq!(p.compute_factor(DeviceId(1), 0, 1), 1.0);
        assert_eq!(p.compute_factor(DeviceId(1), 0, 2), 2.0);
        assert_eq!(p.compute_factor(DeviceId(1), 0, 5), 6.0);
        assert_eq!(p.compute_factor(DeviceId(1), 0, 7), 3.0);
        assert_eq!(p.compute_factor(DeviceId(1), 0, 8), 1.0);
        // Other devices untouched.
        assert_eq!(p.compute_factor(DeviceId(0), 0, 5), 1.0);
        // Rounding matches the emulator: round(1000 * 6.0).
        assert_eq!(p.scaled_compute(DeviceId(1), 0, 5, 1_000), 6_000);
    }

    #[test]
    fn straggler_covers_the_whole_program() {
        let p = PerturbationProfile::identity().with_straggler(DeviceId(2), 1.5);
        assert_eq!(p.scaled_compute(DeviceId(2), 0, 0, 1_000), 1_500);
        assert_eq!(p.scaled_compute(DeviceId(2), 7, usize::MAX - 1, 1_000), 1_500);
        assert_eq!(p.scaled_compute(DeviceId(0), 0, 0, 1_000), 1_000);
    }

    #[test]
    fn link_slack_matches_nth_or_all() {
        let p = PerturbationProfile::identity()
            .with_link_slack(LinkSlack {
                src: DeviceId(0),
                dst: DeviceId(1),
                nth: Some(2),
                extra_ns: 5_000,
                iteration: None,
            })
            .with_link_slack(LinkSlack {
                src: DeviceId(0),
                dst: DeviceId(1),
                nth: None,
                extra_ns: 100,
                iteration: None,
            });
        assert_eq!(p.link_extra(DeviceId(0), DeviceId(1), 0, 0), 100);
        assert_eq!(p.link_extra(DeviceId(0), DeviceId(1), 0, 2), 5_100);
        assert_eq!(p.link_extra(DeviceId(1), DeviceId(0), 0, 2), 0);
    }

    #[test]
    fn iteration_scope_gates_both_kinds() {
        let p = PerturbationProfile::identity()
            .with_slowdown(SlowdownWindow {
                device: DeviceId(0),
                factor: 2.0,
                from_pc: 0,
                until_pc: usize::MAX,
                iteration: Some(1),
            })
            .with_link_slack(LinkSlack {
                src: DeviceId(0),
                dst: DeviceId(1),
                nth: Some(0),
                extra_ns: 700,
                iteration: Some(2),
            });
        // Slowdown bites only in its iteration.
        assert_eq!(p.compute_factor(DeviceId(0), 0, 3), 1.0);
        assert_eq!(p.compute_factor(DeviceId(0), 1, 3), 2.0);
        assert_eq!(p.compute_factor(DeviceId(0), 2, 3), 1.0);
        // Link slack likewise; `nth` counts within the iteration.
        assert_eq!(p.link_extra(DeviceId(0), DeviceId(1), 1, 0), 0);
        assert_eq!(p.link_extra(DeviceId(0), DeviceId(1), 2, 0), 700);
        assert_eq!(p.link_extra(DeviceId(0), DeviceId(1), 2, 1), 0);
    }

    #[test]
    fn rounding_is_nearest() {
        let p = PerturbationProfile::identity().with_straggler(DeviceId(0), 1.0005);
        // 1000 * 1.0005 = 1000.5 -> rounds to 1001 (ties away from zero).
        assert_eq!(p.scaled_compute(DeviceId(0), 0, 0, 1_000), 1_001);
    }
}
