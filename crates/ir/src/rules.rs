//! The activation-lifecycle rules that map instructions to ledger
//! operations, shared verbatim by the offline memory simulator
//! (mario-core) and the online cluster emulator (mario-cluster).
//!
//! Lifecycle (paper §5.1/§5.2):
//!
//! * a plain forward retains the stage's **full activations** until its
//!   backward completes;
//! * a checkpointed forward retains only the **stashed stage input**
//!   (checkpoint); the **recompute** restores the full activations, and the
//!   backward then frees both;
//! * a forward whose boundary output crosses devices holds a **send
//!   buffer** until the `SA` completes (this is the buffer pass 4 relies on
//!   when preposing forwards while leaving `SA` in place);
//! * receive-side staging is treated as transient (the incoming boundary
//!   tensor is part of the consumer's activation accounting already).

use crate::cost::CostModel;
use crate::ids::DeviceId;
use crate::instr::{Instr, InstrKind};
use crate::ledger::{AllocKey, MemLedger, OomError};
use crate::schedule::Schedule;
use std::collections::HashSet;

/// Precomputed per-schedule facts needed to apply memory effects.
#[derive(Debug, Clone)]
pub struct MemoryRules {
    /// `(device, micro, part)` triples whose forward output crosses to a
    /// different device (and therefore needs a send buffer).
    crossing: HashSet<(u32, u32, u32)>,
    /// Forward-only (serving) lifecycle: no backward ever comes, so the
    /// full activations are released as soon as the forward completes and
    /// only the crossing send buffer outlives the instruction. Memory
    /// stays bounded at any request count.
    forward_only: bool,
}

impl MemoryRules {
    /// Extracts the boundary-crossing facts from `schedule`.
    pub fn new(schedule: &Schedule) -> Self {
        let mut crossing = HashSet::new();
        for m in 0..schedule.micros {
            let path = schedule.forward_path_of(crate::ids::MicroId(m));
            for w in path.windows(2) {
                let (d, p) = w[0];
                let (nd, _) = w[1];
                if nd != d {
                    crossing.insert((d.0, m, p.0));
                }
            }
        }
        let forward_only = matches!(
            schedule.topology.scheme,
            crate::topology::SchemeKind::ForwardOnly
        );
        Self {
            crossing,
            forward_only,
        }
    }

    /// True if the forward of `(micro, part)` on `device` sends its output
    /// to another device.
    pub fn crosses(&self, device: DeviceId, instr: &Instr) -> bool {
        self.crossing
            .contains(&(device.0, instr.micro.0, instr.part.0))
    }

    /// Applies the memory effect of `instr` (evaluated at its completion)
    /// to `ledger`, using `cost` for sizes.
    pub fn apply(
        &self,
        ledger: &mut MemLedger,
        cost: &dyn CostModel,
        device: DeviceId,
        instr: &Instr,
    ) -> Result<(), OomError> {
        let m = instr.micro;
        let p = instr.part;
        match instr.kind {
            InstrKind::Forward { ckpt } => {
                if self.forward_only {
                    // Inference: the activations live only for the duration
                    // of the forward itself (they peak against capacity),
                    // then everything but the boundary output is dropped.
                    ledger.alloc(AllocKey::Act(m, p), cost.act_full(device, p))?;
                    if self.crosses(device, instr) {
                        ledger.alloc(AllocKey::OutBuf(m, p), cost.boundary_bytes(device, p))?;
                    }
                    ledger.free_if_live(AllocKey::Act(m, p));
                    return Ok(());
                }
                if ckpt {
                    ledger.alloc(AllocKey::Ckpt(m, p), cost.act_ckpt(device, p))?;
                } else {
                    ledger.alloc(AllocKey::Act(m, p), cost.act_full(device, p))?;
                }
                if self.crosses(device, instr) {
                    ledger.alloc(AllocKey::OutBuf(m, p), cost.boundary_bytes(device, p))?;
                }
                Ok(())
            }
            InstrKind::Recompute => {
                ledger.alloc(AllocKey::Act(m, p), cost.act_full(device, p))
            }
            InstrKind::Backward => {
                ledger.free_if_live(AllocKey::Act(m, p));
                ledger.free_if_live(AllocKey::Ckpt(m, p));
                Ok(())
            }
            InstrKind::BackwardInput => {
                // ZB accounting: the weight GEMM still *reads* the stage's
                // activations, so the input-gradient half must not free them
                // — it only adds the small per-layer gradient stash. (An
                // earlier version freed `Act` here, under-counting every
                // split schedule's peak between `Bi` and `Bw`.)
                ledger.alloc(AllocKey::Wgrad(m, p), cost.wgrad_stash_bytes(device, p))
            }
            InstrKind::BackwardWeight => {
                // The deferred weight half is the true end of the micro's
                // lifecycle: activations, checkpoint stash, and the gradient
                // stash all retire here.
                ledger.free_if_live(AllocKey::Act(m, p));
                ledger.free_if_live(AllocKey::Wgrad(m, p));
                ledger.free_if_live(AllocKey::Ckpt(m, p));
                Ok(())
            }
            InstrKind::SendAct { .. } => {
                // The send buffer (if any) is released once the transfer
                // completes. SA tagged with the producer part == our part.
                ledger.free_if_live(AllocKey::OutBuf(m, p));
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use crate::ids::PartId;
    use crate::topology::{SchemeKind, Topology};

    fn two_dev_sched() -> Schedule {
        let topo = Topology::new(SchemeKind::OneFOneB, 2);
        Schedule::empty(topo, 2, vec![0, 0])
    }

    #[test]
    fn plain_forward_holds_full_activation_until_backward() {
        let s = two_dev_sched();
        let rules = MemoryRules::new(&s);
        let cost = UnitCost::paper_grid().with_ckpt_bytes(0);
        let mut l = MemLedger::new(0, None);
        let d = DeviceId(1); // last stage: no crossing output
        rules
            .apply(&mut l, &cost, d, &Instr::forward(0u32, 0u32))
            .unwrap();
        assert_eq!(l.current(), 1);
        rules
            .apply(&mut l, &cost, d, &Instr::backward(0u32, 0u32))
            .unwrap();
        assert_eq!(l.current(), 0);
    }

    #[test]
    fn split_backward_keeps_activation_live_until_the_weight_half() {
        let s = two_dev_sched();
        let rules = MemoryRules::new(&s);
        let cost = UnitCost {
            act_full_bytes: 10,
            ..UnitCost::paper_grid()
        };
        let mut l = MemLedger::new(0, None);
        let d = DeviceId(1); // last stage: no crossing output
        rules
            .apply(&mut l, &cost, d, &Instr::forward(0u32, 0u32))
            .unwrap();
        assert_eq!(l.current(), 10);
        // Bi must NOT free the activation: the weight GEMM reads it.
        rules
            .apply(&mut l, &cost, d, &Instr::backward_input(0u32, 0u32))
            .unwrap();
        assert_eq!(l.current(), 10);
        // Bw retires everything.
        rules
            .apply(&mut l, &cost, d, &Instr::backward_weight(0u32, 0u32))
            .unwrap();
        assert_eq!(l.current(), 0);
        assert_eq!(l.peak(), 10);
    }

    #[test]
    fn checkpointed_lifecycle_peaks_at_full_plus_ckpt() {
        let s = two_dev_sched();
        let rules = MemoryRules::new(&s);
        let cost = UnitCost {
            act_full_bytes: 10,
            act_ckpt_bytes: 1,
            ..UnitCost::paper_grid()
        };
        let mut l = MemLedger::new(0, None);
        let d = DeviceId(1);
        rules
            .apply(&mut l, &cost, d, &Instr::ckpt_forward(0u32, 0u32))
            .unwrap();
        assert_eq!(l.current(), 1); // checkpoint only
        rules
            .apply(&mut l, &cost, d, &Instr::recompute(0u32, 0u32))
            .unwrap();
        assert_eq!(l.current(), 11); // restored full + checkpoint
        rules
            .apply(&mut l, &cost, d, &Instr::backward(0u32, 0u32))
            .unwrap();
        assert_eq!(l.current(), 0);
        assert_eq!(l.peak(), 11);
    }

    #[test]
    fn crossing_forward_holds_send_buffer_until_sa() {
        let s = two_dev_sched();
        let rules = MemoryRules::new(&s);
        // Device 0's forward output crosses to device 1.
        assert!(rules.crosses(DeviceId(0), &Instr::forward(0u32, 0u32)));
        assert!(!rules.crosses(DeviceId(1), &Instr::forward(0u32, 0u32)));

        struct BoundaryCost;
        impl CostModel for BoundaryCost {
            fn compute_time(
                &self,
                _: DeviceId,
                _: PartId,
                _: crate::cost::ComputeKind,
            ) -> crate::cost::Nanos {
                1
            }
            fn act_full(&self, _: DeviceId, _: PartId) -> u64 {
                10
            }
            fn act_ckpt(&self, _: DeviceId, _: PartId) -> u64 {
                1
            }
            fn boundary_bytes(&self, _: DeviceId, _: PartId) -> u64 {
                5
            }
            fn p2p_time(&self, _: u64) -> crate::cost::Nanos {
                0
            }
            fn allreduce_time(&self, _: DeviceId) -> crate::cost::Nanos {
                0
            }
            fn optimizer_time(&self, _: DeviceId) -> crate::cost::Nanos {
                0
            }
            fn static_mem(&self, _: DeviceId) -> u64 {
                0
            }
        }

        let cost = BoundaryCost;
        let mut l = MemLedger::new(0, None);
        let d = DeviceId(0);
        rules
            .apply(&mut l, &cost, d, &Instr::forward(0u32, 0u32))
            .unwrap();
        assert_eq!(l.current(), 15); // act 10 + out buffer 5
        rules
            .apply(
                &mut l,
                &cost,
                d,
                &Instr::send_act(0u32, 0u32, DeviceId(1)),
            )
            .unwrap();
        assert_eq!(l.current(), 10);
    }

    #[test]
    fn oom_propagates_from_ledger() {
        let s = two_dev_sched();
        let rules = MemoryRules::new(&s);
        let cost = UnitCost {
            act_full_bytes: 100,
            ..UnitCost::paper_grid()
        };
        let mut l = MemLedger::new(50, Some(120));
        let err = rules
            .apply(&mut l, &cost, DeviceId(1), &Instr::forward(0u32, 0u32))
            .unwrap_err();
        assert_eq!(err.capacity, 120);
    }

    #[test]
    fn backward_without_forward_state_is_tolerated() {
        // remove-redundancy can leave BW without live Act only if the
        // stream is malformed; free_if_live keeps the ledger robust and the
        // validator catches the structural issue instead.
        let s = two_dev_sched();
        let rules = MemoryRules::new(&s);
        let cost = UnitCost::paper_grid();
        let mut l = MemLedger::new(0, None);
        rules
            .apply(&mut l, &cost, DeviceId(1), &Instr::backward(0u32, 0u32))
            .unwrap();
        assert_eq!(l.current(), 0);
    }
}
