//! Model-state checkpointing policy.
//!
//! Mario's activation checkpointing (the paper's subject) trades compute
//! for memory *within* an iteration; this module models the orthogonal
//! *model-state* checkpointing a production training system layers on
//! top so a fault does not erase the whole run. A [`CheckpointPolicy`]
//! makes the checkpoint write a first-class scheduled cost — every
//! `interval_iters` iterations each device pays `write_ns` of wall time
//! and a transient `mem_overhead` serialization buffer — instead of an
//! out-of-band fudge factor. The cluster emulator charges these costs on
//! checkpoint iterations and its recovery loop resumes from the last
//! checkpoint that completed on *every* device (a checkpoint is durable
//! only when the whole cluster wrote it).

use crate::cost::Nanos;
use serde::{Deserialize, Serialize};

/// Sharded checkpoint-write mode: instead of a flat `write_ns`, each
/// device's write cost is derived from its model-state shard size (the
/// cost model's `ckpt_shard_bytes`) at a configurable flush bandwidth,
/// split into fixed-size chunks. With [`ShardedWrite::async_overlap`]
/// set, the chunks drain during the *next* iteration's pipeline bubbles:
/// a chunk flushes whenever the device would otherwise idle at a
/// blocking recv, any residue is charged synchronously at the following
/// boundary, and the checkpoint only becomes durable once every chunk
/// flushed.
///
/// All arithmetic is integer-exact so the DP simulator and the cluster
/// emulator charge bit-identical costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedWrite {
    /// Flush bandwidth, bytes per microsecond (>= 1 effective).
    pub flush_bytes_per_us: u64,
    /// Fixed chunk size, bytes (>= 1 effective); the last chunk of a
    /// shard may be smaller.
    pub chunk_bytes: u64,
    /// Drain chunks asynchronously into the next iteration's bubbles
    /// instead of charging the whole write at the boundary.
    pub async_overlap: bool,
}

impl ShardedWrite {
    /// A synchronous sharded write at `flush_bytes_per_us` in
    /// `chunk_bytes` chunks.
    pub fn new(flush_bytes_per_us: u64, chunk_bytes: u64) -> Self {
        Self {
            flush_bytes_per_us,
            chunk_bytes,
            async_overlap: false,
        }
    }

    /// Builder: drain chunks into the next iteration's bubbles.
    pub fn with_async_overlap(mut self) -> Self {
        self.async_overlap = true;
        self
    }

    /// Time to flush `bytes`, ns (ceiling division: a partial microsecond
    /// of bandwidth still costs a whole nanosecond tick).
    pub fn flush_ns(&self, bytes: u64) -> Nanos {
        (bytes * 1_000).div_ceil(self.flush_bytes_per_us.max(1))
    }

    /// Per-chunk flush times for a `shard_bytes` shard: full chunks of
    /// [`ShardedWrite::chunk_bytes`] plus one final partial chunk. Empty
    /// for an empty shard (nothing to write — durable immediately).
    pub fn chunk_times(&self, shard_bytes: u64) -> Vec<Nanos> {
        let chunk = self.chunk_bytes.max(1);
        let mut times = Vec::with_capacity((shard_bytes / chunk) as usize + 1);
        let mut left = shard_bytes;
        while left > 0 {
            let this = left.min(chunk);
            times.push(self.flush_ns(this));
            left -= this;
        }
        times
    }
}

/// Periodic model-state checkpointing: every `interval_iters` completed
/// iterations, each device writes a checkpoint costing `write_ns` of
/// virtual time and a transient `mem_overhead`-byte serialization buffer.
/// With [`CheckpointPolicy::sharded`] set, the per-device cost comes from
/// the device's shard size instead of the flat `write_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Iterations between checkpoints (>= 1). A checkpoint is written at
    /// the end of iteration `i` whenever `(i + 1)` is a multiple of this.
    pub interval_iters: u32,
    /// Virtual time one device spends writing a checkpoint, ns (the
    /// serialize-and-flush cost on the training critical path). Ignored
    /// when [`CheckpointPolicy::sharded`] is set.
    pub write_ns: Nanos,
    /// Transient serialization-buffer bytes held while writing (counted
    /// against device capacity and released when the write completes).
    pub mem_overhead: u64,
    /// Sharded write mode (None = flat `write_ns` per device).
    #[serde(default)]
    pub sharded: Option<ShardedWrite>,
}

impl CheckpointPolicy {
    /// A free policy checkpointing every `interval_iters` iterations.
    ///
    /// # Panics
    /// Panics when `interval_iters` is zero.
    pub fn every(interval_iters: u32) -> Self {
        assert!(interval_iters >= 1, "checkpoint interval must be >= 1");
        Self {
            interval_iters,
            write_ns: 0,
            mem_overhead: 0,
            sharded: None,
        }
    }

    /// Sets the per-checkpoint write cost.
    pub fn with_write_ns(mut self, write_ns: Nanos) -> Self {
        self.write_ns = write_ns;
        self
    }

    /// Sets the transient serialization-buffer size.
    pub fn with_mem_overhead(mut self, bytes: u64) -> Self {
        self.mem_overhead = bytes;
        self
    }

    /// Switches the policy to sharded write mode.
    pub fn with_sharded(mut self, sharded: ShardedWrite) -> Self {
        self.sharded = Some(sharded);
        self
    }

    /// True when chunks of this policy drain asynchronously into the next
    /// iteration's bubbles (sharded mode with the overlap flag).
    pub fn async_overlap(&self) -> bool {
        self.sharded.is_some_and(|s| s.async_overlap)
    }

    /// Total write time one device pays for a checkpoint of `shard_bytes`
    /// of model state: the flat `write_ns` without sharding, the sum of
    /// the chunk flush times with it. Both executors use this exact sum,
    /// so sync and async modes flush the same total — overlap only moves
    /// it off the critical path.
    pub fn device_write_ns(&self, shard_bytes: u64) -> Nanos {
        match self.sharded {
            Some(s) => s.chunk_times(shard_bytes).iter().sum(),
            None => self.write_ns,
        }
    }

    /// The chunk flush times an async overlap drains for a `shard_bytes`
    /// shard (empty unless the policy is sharded).
    pub fn device_chunk_times(&self, shard_bytes: u64) -> Vec<Nanos> {
        match self.sharded {
            Some(s) => s.chunk_times(shard_bytes),
            None => Vec::new(),
        }
    }

    /// True when a checkpoint is written at the end of iteration `iter`
    /// (0-based): the first `interval_iters` iterations complete, then a
    /// write, and so on.
    pub fn is_boundary(&self, iter: u32) -> bool {
        (iter + 1).is_multiple_of(self.interval_iters)
    }

    /// Iterations covered by the last checkpoint a device completed
    /// *before* failing during iteration `fault_iter` — the largest
    /// checkpoint boundary at or below it (0 = nothing saved yet).
    pub fn saved_before(&self, fault_iter: u32) -> u32 {
        (fault_iter / self.interval_iters) * self.interval_iters
    }

    /// Checkpoint writes a clean run of `iters` iterations performs.
    pub fn writes_in(&self, iters: u32) -> u32 {
        iters / self.interval_iters
    }

    /// Total per-device write time a clean run of `iters` iterations
    /// spends checkpointing, ns.
    pub fn overhead_ns(&self, iters: u32) -> Nanos {
        self.writes_in(iters) as Nanos * self.write_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_every_interval() {
        let p = CheckpointPolicy::every(3);
        let written: Vec<u32> = (0..10).filter(|&i| p.is_boundary(i)).collect();
        assert_eq!(written, vec![2, 5, 8]);
        // Interval 1 checkpoints after every iteration.
        let each = CheckpointPolicy::every(1);
        assert!((0..5).all(|i| each.is_boundary(i)));
    }

    #[test]
    fn saved_before_is_the_last_completed_boundary() {
        let p = CheckpointPolicy::every(2);
        assert_eq!(p.saved_before(0), 0);
        assert_eq!(p.saved_before(1), 0);
        assert_eq!(p.saved_before(2), 2);
        assert_eq!(p.saved_before(3), 2);
        assert_eq!(p.saved_before(5), 4);
    }

    #[test]
    fn overhead_scales_with_writes() {
        let p = CheckpointPolicy::every(4).with_write_ns(100);
        assert_eq!(p.writes_in(3), 0);
        assert_eq!(p.writes_in(12), 3);
        assert_eq!(p.overhead_ns(12), 300);
        assert_eq!(p.overhead_ns(0), 0);
    }

    #[test]
    #[should_panic(expected = "interval must be >= 1")]
    fn zero_interval_is_rejected() {
        let _ = CheckpointPolicy::every(0);
    }

    #[test]
    fn chunk_times_cover_the_shard_exactly() {
        let s = ShardedWrite::new(2, 600);
        // 1500 B in 600 B chunks: 600, 600, 300.
        let times = s.chunk_times(1_500);
        assert_eq!(times, vec![300_000, 300_000, 150_000]);
        // Empty shard: nothing to flush.
        assert!(s.chunk_times(0).is_empty());
        // Sub-chunk shard: one partial chunk.
        assert_eq!(s.chunk_times(100), vec![50_000]);
    }

    #[test]
    fn flush_ns_rounds_up_and_survives_zero_bandwidth() {
        let s = ShardedWrite::new(3, 100);
        // 100 B at 3 B/µs = 33.3 µs, charged as 33334 ns.
        assert_eq!(s.flush_ns(100), 33_334);
        // Zero bandwidth is clamped to 1 B/µs instead of dividing by zero.
        let z = ShardedWrite::new(0, 100);
        assert_eq!(z.flush_ns(5), 5_000);
    }

    #[test]
    fn device_write_ns_dispatches_by_mode() {
        let flat = CheckpointPolicy::every(2).with_write_ns(777);
        assert_eq!(flat.device_write_ns(1 << 30), 777);
        assert!(flat.device_chunk_times(1 << 30).is_empty());
        assert!(!flat.async_overlap());

        let sharded = CheckpointPolicy::every(2).with_sharded(ShardedWrite::new(2, 600));
        assert_eq!(sharded.device_write_ns(1_500), 750_000);
        assert_eq!(sharded.device_chunk_times(1_500).len(), 3);
        assert!(!sharded.async_overlap());
        // Sync and async flush the same total; only the placement differs.
        let overl = CheckpointPolicy::every(2)
            .with_sharded(ShardedWrite::new(2, 600).with_async_overlap());
        assert!(overl.async_overlap());
        assert_eq!(
            overl.device_write_ns(1_500),
            sharded.device_write_ns(1_500)
        );
        // An empty shard is durable immediately at zero cost.
        assert_eq!(overl.device_write_ns(0), 0);
        assert!(overl.device_chunk_times(0).is_empty());
    }

    #[test]
    fn zero_chunk_size_is_clamped_not_divided_by() {
        let s = ShardedWrite::new(1, 0);
        // chunk_bytes 0 behaves as 1-byte chunks: no infinite loop, exact
        // coverage.
        let times = s.chunk_times(3);
        assert_eq!(times.len(), 3);
        assert_eq!(times.iter().sum::<Nanos>(), 3 * 1_000);
    }
}
