//! Model-state checkpointing policy.
//!
//! Mario's activation checkpointing (the paper's subject) trades compute
//! for memory *within* an iteration; this module models the orthogonal
//! *model-state* checkpointing a production training system layers on
//! top so a fault does not erase the whole run. A [`CheckpointPolicy`]
//! makes the checkpoint write a first-class scheduled cost — every
//! `interval_iters` iterations each device pays `write_ns` of wall time
//! and a transient `mem_overhead` serialization buffer — instead of an
//! out-of-band fudge factor. The cluster emulator charges these costs on
//! checkpoint iterations and its recovery loop resumes from the last
//! checkpoint that completed on *every* device (a checkpoint is durable
//! only when the whole cluster wrote it).

use crate::cost::Nanos;
use serde::{Deserialize, Serialize};

/// Periodic model-state checkpointing: every `interval_iters` completed
/// iterations, each device writes a checkpoint costing `write_ns` of
/// virtual time and a transient `mem_overhead`-byte serialization buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Iterations between checkpoints (>= 1). A checkpoint is written at
    /// the end of iteration `i` whenever `(i + 1)` is a multiple of this.
    pub interval_iters: u32,
    /// Virtual time one device spends writing a checkpoint, ns (the
    /// serialize-and-flush cost on the training critical path).
    pub write_ns: Nanos,
    /// Transient serialization-buffer bytes held while writing (counted
    /// against device capacity and released when the write completes).
    pub mem_overhead: u64,
}

impl CheckpointPolicy {
    /// A free policy checkpointing every `interval_iters` iterations.
    ///
    /// # Panics
    /// Panics when `interval_iters` is zero.
    pub fn every(interval_iters: u32) -> Self {
        assert!(interval_iters >= 1, "checkpoint interval must be >= 1");
        Self {
            interval_iters,
            write_ns: 0,
            mem_overhead: 0,
        }
    }

    /// Sets the per-checkpoint write cost.
    pub fn with_write_ns(mut self, write_ns: Nanos) -> Self {
        self.write_ns = write_ns;
        self
    }

    /// Sets the transient serialization-buffer size.
    pub fn with_mem_overhead(mut self, bytes: u64) -> Self {
        self.mem_overhead = bytes;
        self
    }

    /// True when a checkpoint is written at the end of iteration `iter`
    /// (0-based): the first `interval_iters` iterations complete, then a
    /// write, and so on.
    pub fn is_boundary(&self, iter: u32) -> bool {
        (iter + 1).is_multiple_of(self.interval_iters)
    }

    /// Iterations covered by the last checkpoint a device completed
    /// *before* failing during iteration `fault_iter` — the largest
    /// checkpoint boundary at or below it (0 = nothing saved yet).
    pub fn saved_before(&self, fault_iter: u32) -> u32 {
        (fault_iter / self.interval_iters) * self.interval_iters
    }

    /// Checkpoint writes a clean run of `iters` iterations performs.
    pub fn writes_in(&self, iters: u32) -> u32 {
        iters / self.interval_iters
    }

    /// Total per-device write time a clean run of `iters` iterations
    /// spends checkpointing, ns.
    pub fn overhead_ns(&self, iters: u32) -> Nanos {
        self.writes_in(iters) as Nanos * self.write_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_every_interval() {
        let p = CheckpointPolicy::every(3);
        let written: Vec<u32> = (0..10).filter(|&i| p.is_boundary(i)).collect();
        assert_eq!(written, vec![2, 5, 8]);
        // Interval 1 checkpoints after every iteration.
        let each = CheckpointPolicy::every(1);
        assert!((0..5).all(|i| each.is_boundary(i)));
    }

    #[test]
    fn saved_before_is_the_last_completed_boundary() {
        let p = CheckpointPolicy::every(2);
        assert_eq!(p.saved_before(0), 0);
        assert_eq!(p.saved_before(1), 0);
        assert_eq!(p.saved_before(2), 2);
        assert_eq!(p.saved_before(3), 2);
        assert_eq!(p.saved_before(5), 4);
    }

    #[test]
    fn overhead_scales_with_writes() {
        let p = CheckpointPolicy::every(4).with_write_ns(100);
        assert_eq!(p.writes_in(3), 0);
        assert_eq!(p.writes_in(12), 3);
        assert_eq!(p.overhead_ns(12), 300);
        assert_eq!(p.overhead_ns(0), 0);
    }

    #[test]
    #[should_panic(expected = "interval must be >= 1")]
    fn zero_interval_is_rejected() {
        let _ = CheckpointPolicy::every(0);
    }
}
