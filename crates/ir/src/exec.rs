//! Symbolic lock-step execution of a schedule, used to prove that an
//! instruction list is *executable*: every receive finds its matching send,
//! channel buffers never overflow into a cyclic wait, and the whole
//! iteration drains without deadlock.
//!
//! This mirrors the blocking p2p semantics the paper's pass 4 must respect
//! ("`SA` and `RA` must be paired to avoid deadlock", §5.1): each directed
//! device pair owns one FIFO channel *per message class and partition*
//! (activations and gradients of each model chunk travel on separate
//! links, as with distinct NCCL tags / per-chunk process groups)
//! with a small bounded capacity — one in-flight message by default, like a
//! single pre-allocated communication buffer. A send blocks when the buffer
//! is full; a receive blocks until a message is available and must match
//! the head message exactly.

use crate::ids::{DeviceId, MicroId, PartId};
use crate::instr::InstrKind;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Message class carried on a channel (activation or gradient).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgClass {
    /// Stage-boundary activation (SA → RA).
    Act,
    /// Stage-boundary gradient (SG → RG).
    Grad,
}

/// A message in flight on a directed channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Msg {
    /// Activation or gradient.
    pub class: MsgClass,
    /// Micro-batch id.
    pub micro: MicroId,
    /// Partition id (tagged with the producer-side part).
    pub part: PartId,
}

/// Why symbolic execution failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecError {
    /// No device could make progress. Carries `(device, pc, instr)` for
    /// every unfinished device.
    Deadlock(Vec<(DeviceId, usize, String)>),
    /// A receive found a non-matching message at the channel head.
    MessageMismatch {
        /// The receiving device.
        device: DeviceId,
        /// Position of the receive in its program.
        pc: usize,
        /// What the receive expected.
        expected: Msg,
        /// What was at the head of the channel.
        found: Msg,
    },
    /// A receive names a peer that never sends on that channel.
    UnmatchedRecv {
        /// The receiving device.
        device: DeviceId,
        /// Position of the receive in its program.
        pc: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Deadlock(states) => {
                write!(f, "deadlock; blocked devices:")?;
                for (d, pc, i) in states {
                    write!(f, " [{d} at #{pc}: {i}]")?;
                }
                Ok(())
            }
            ExecError::MessageMismatch {
                device,
                pc,
                expected,
                found,
            } => write!(
                f,
                "message mismatch on {device} at #{pc}: expected {expected:?}, found {found:?}"
            ),
            ExecError::UnmatchedRecv { device, pc } => {
                write!(f, "receive on {device} at #{pc} can never be satisfied")
            }
        }
    }
}

impl std::error::Error for ExecError {}

fn msg_of(kind: &InstrKind, micro: MicroId, part: PartId) -> Option<(MsgClass, Msg)> {
    let class = match kind {
        InstrKind::SendAct { .. } | InstrKind::RecvAct { .. } => MsgClass::Act,
        InstrKind::SendGrad { .. } | InstrKind::RecvGrad { .. } => MsgClass::Grad,
        _ => return None,
    };
    Some((class, Msg { class, micro, part }))
}

/// Symbolically executes `schedule` with per-channel FIFO buffers of
/// `channel_capacity` messages. Returns the total number of "firings"
/// (executed instructions) on success.
pub fn check_executable(schedule: &Schedule, channel_capacity: usize) -> Result<usize, ExecError> {
    assert!(channel_capacity >= 1, "channels need capacity >= 1");
    let devices = schedule.devices() as usize;
    let mut pc = vec![0usize; devices];
    let mut channels: HashMap<(DeviceId, DeviceId, MsgClass, PartId), VecDeque<Msg>> = HashMap::new();
    let mut fired_total = 0usize;

    loop {
        let mut fired = false;
        let mut all_done = true;

        // Barrier bookkeeping for AllReduce: every device must be parked at
        // an AllReduce simultaneously before any may proceed.
        let at_allreduce = (0..devices)
            .filter(|&d| {
                schedule.programs()[d]
                    .get(pc[d])
                    .is_some_and(|i| i.kind == InstrKind::AllReduce)
            })
            .count();

        for (d, pc_d) in pc.iter_mut().enumerate() {
            let prog = &schedule.programs()[d];
            let Some(instr) = prog.get(*pc_d) else {
                continue;
            };
            all_done = false;
            let dev = DeviceId(d as u32);
            let can_fire = match instr.kind {
                InstrKind::Forward { .. }
                | InstrKind::Backward
                | InstrKind::BackwardInput
                | InstrKind::BackwardWeight
                | InstrKind::Recompute
                | InstrKind::OptimizerStep => true,
                InstrKind::AllReduce => at_allreduce == devices,
                InstrKind::SendAct { peer } | InstrKind::SendGrad { peer } => {
                    let (class, msg) = msg_of(&instr.kind, instr.micro, instr.part)
                        .expect("send produces a message");
                    let chan = channels.entry((dev, peer, class, instr.part)).or_default();
                    if chan.len() < channel_capacity {
                        chan.push_back(msg);
                        true
                    } else {
                        false
                    }
                }
                InstrKind::RecvAct { peer } | InstrKind::RecvGrad { peer } => {
                    let (class, _) = msg_of(&instr.kind, instr.micro, instr.part)
                        .expect("recv expects a message");
                    let chan = channels.entry((peer, dev, class, instr.part)).or_default();
                    match chan.front() {
                        Some(&head) => {
                            let (_, want) = msg_of(&instr.kind, instr.micro, instr.part)
                                .expect("recv expects a message");
                            if head == want {
                                chan.pop_front();
                                true
                            } else {
                                return Err(ExecError::MessageMismatch {
                                    device: dev,
                                    pc: *pc_d,
                                    expected: want,
                                    found: head,
                                });
                            }
                        }
                        None => false,
                    }
                }
            };
            if can_fire {
                *pc_d += 1;
                fired = true;
                fired_total += 1;
            }
        }

        if all_done {
            return Ok(fired_total);
        }
        if !fired {
            // Better diagnostics: a receive whose peer has already finished
            // its program (with an empty channel) can never be satisfied —
            // report it as such rather than as a generic deadlock.
            for d in 0..devices {
                let Some(i) = schedule.programs()[d].get(pc[d]) else {
                    continue;
                };
                if let InstrKind::RecvAct { peer } | InstrKind::RecvGrad { peer } = i.kind {
                    let peer_done =
                        schedule.programs()[peer.index()].get(pc[peer.index()]).is_none();
                    let (class, _) = msg_of(&i.kind, i.micro, i.part).expect("recv");
                    let empty = channels
                        .get(&(peer, DeviceId(d as u32), class, i.part))
                        .is_none_or(|c| c.is_empty());
                    if peer_done && empty {
                        return Err(ExecError::UnmatchedRecv {
                            device: DeviceId(d as u32),
                            pc: pc[d],
                        });
                    }
                }
            }
            let states = (0..devices)
                .filter_map(|d| {
                    schedule.programs()[d]
                        .get(pc[d])
                        .map(|i| (DeviceId(d as u32), pc[d], i.to_string()))
                })
                .collect();
            return Err(ExecError::Deadlock(states));
        }
    }
}

/// Smallest per-channel FIFO capacity under which `schedule` executes to
/// completion, searched over `1..=8` (`None` when even capacity 8 cannot
/// drain the schedule — it is unexecutable for a structural reason, not a
/// buffering one).
///
/// Symbolic execution is timing-independent, so a capacity proven
/// sufficient here is sufficient for any cost model: making instructions
/// take time only restricts the set of interleavings, and in-order
/// devices with FIFO links can never need *more* buffering when some
/// firings happen later.
pub fn min_channel_capacity(schedule: &Schedule) -> Option<usize> {
    (1..=8).find(|&cap| check_executable(schedule, cap).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::topology::{SchemeKind, Topology};

    fn two_device_schedule(d0: Vec<Instr>, d1: Vec<Instr>) -> Schedule {
        let topo = Topology::new(SchemeKind::OneFOneB, 2);
        let mut s = Schedule::empty(topo, 1, vec![0]);
        for i in d0 {
            s.program_mut(DeviceId(0)).push(i);
        }
        for i in d1 {
            s.program_mut(DeviceId(1)).push(i);
        }
        s
    }

    #[test]
    fn matched_send_recv_executes() {
        let s = two_device_schedule(
            vec![
                Instr::forward(0u32, 0u32),
                Instr::send_act(0u32, 0u32, DeviceId(1)),
            ],
            vec![
                Instr::recv_act(0u32, 0u32, DeviceId(0)),
                Instr::forward(0u32, 0u32),
            ],
        );
        assert_eq!(check_executable(&s, 1).unwrap(), 4);
    }

    #[test]
    fn recv_without_send_is_an_unmatched_recv() {
        // The peer finishes its whole program without sending: the receive
        // can never complete, and the diagnosis says so precisely.
        let s = two_device_schedule(
            vec![Instr::forward(0u32, 0u32)],
            vec![Instr::recv_act(0u32, 0u32, DeviceId(0))],
        );
        let err = check_executable(&s, 1).unwrap_err();
        match err {
            ExecError::UnmatchedRecv { device, pc } => {
                assert_eq!(device, DeviceId(1));
                assert_eq!(pc, 0);
            }
            other => panic!("expected unmatched recv, got {other}"),
        }
    }

    #[test]
    fn mutual_recv_wait_is_still_a_deadlock() {
        // Both peers are alive but each waits on the other: a true cycle.
        let s = two_device_schedule(
            vec![
                Instr::recv_grad(0u32, 0u32, DeviceId(1)),
                Instr::send_act(0u32, 0u32, DeviceId(1)),
            ],
            vec![
                Instr::recv_act(0u32, 0u32, DeviceId(0)),
                Instr::send_grad(0u32, 0u32, DeviceId(0)),
            ],
        );
        let err = check_executable(&s, 1).unwrap_err();
        assert!(matches!(err, ExecError::Deadlock(_)), "{err}");
    }

    #[test]
    fn wrong_order_messages_are_reported() {
        // d0 sends micro 1 first but d1 expects micro 0 first.
        let s = two_device_schedule(
            vec![
                Instr::send_act(1u32, 0u32, DeviceId(1)),
                Instr::send_act(0u32, 0u32, DeviceId(1)),
            ],
            vec![
                Instr::recv_act(0u32, 0u32, DeviceId(0)),
                Instr::recv_act(1u32, 0u32, DeviceId(0)),
            ],
        );
        let err = check_executable(&s, 2).unwrap_err();
        assert!(matches!(err, ExecError::MessageMismatch { .. }));
    }

    #[test]
    fn capacity_one_blocks_second_send_until_drained() {
        // d0 wants to push two sends before d1 receives anything; with
        // capacity 1 this requires interleaving, which d1's program allows.
        let s = two_device_schedule(
            vec![
                Instr::send_act(0u32, 0u32, DeviceId(1)),
                Instr::send_act(1u32, 0u32, DeviceId(1)),
            ],
            vec![
                Instr::recv_act(0u32, 0u32, DeviceId(0)),
                Instr::recv_act(1u32, 0u32, DeviceId(0)),
            ],
        );
        assert!(check_executable(&s, 1).is_ok());
    }

    #[test]
    fn cyclic_rendezvous_wait_is_a_deadlock() {
        // Both devices send first with full channels -> classic head-on
        // deadlock once capacity is exhausted. Fill the buffers with a
        // first exchange that is never drained.
        let s = two_device_schedule(
            vec![
                Instr::send_act(0u32, 0u32, DeviceId(1)),
                Instr::send_act(1u32, 0u32, DeviceId(1)),
                Instr::recv_grad(0u32, 0u32, DeviceId(1)),
            ],
            vec![
                Instr::send_grad(0u32, 0u32, DeviceId(0)),
                Instr::send_grad(1u32, 0u32, DeviceId(0)),
                Instr::recv_act(0u32, 0u32, DeviceId(0)),
            ],
        );
        // Capacity 1: each device fires its first send, then blocks on the
        // second send because the peer never drains -> deadlock.
        let err = check_executable(&s, 1).unwrap_err();
        assert!(matches!(err, ExecError::Deadlock(_)), "got {err}");
        // Capacity 2 resolves it.
        assert!(check_executable(&s, 2).is_ok());
    }

    #[test]
    fn allreduce_is_a_barrier() {
        let s = two_device_schedule(
            vec![Instr::forward(0u32, 0u32), Instr::all_reduce()],
            vec![Instr::all_reduce(), Instr::forward(0u32, 0u32)],
        );
        assert!(check_executable(&s, 1).is_ok());

        // If one device lacks the AllReduce, the other deadlocks.
        let s = two_device_schedule(
            vec![Instr::all_reduce()],
            vec![Instr::forward(0u32, 0u32)],
        );
        assert!(matches!(
            check_executable(&s, 1),
            Err(ExecError::Deadlock(_))
        ));
    }

    #[test]
    fn empty_schedule_is_trivially_executable() {
        let s = two_device_schedule(vec![], vec![]);
        assert_eq!(check_executable(&s, 1).unwrap(), 0);
    }

    #[test]
    fn min_capacity_finds_the_smallest_sufficient_buffer() {
        // The head-on rendezvous from `cyclic_rendezvous_wait_is_a_deadlock`
        // needs capacity 2.
        let s = two_device_schedule(
            vec![
                Instr::send_act(0u32, 0u32, DeviceId(1)),
                Instr::send_act(1u32, 0u32, DeviceId(1)),
                Instr::recv_grad(0u32, 0u32, DeviceId(1)),
            ],
            vec![
                Instr::send_grad(0u32, 0u32, DeviceId(0)),
                Instr::send_grad(1u32, 0u32, DeviceId(0)),
                Instr::recv_act(0u32, 0u32, DeviceId(0)),
            ],
        );
        assert_eq!(min_channel_capacity(&s), Some(2));

        // A matched pair drains at capacity 1.
        let s = two_device_schedule(
            vec![Instr::send_act(0u32, 0u32, DeviceId(1))],
            vec![Instr::recv_act(0u32, 0u32, DeviceId(0))],
        );
        assert_eq!(min_channel_capacity(&s), Some(1));

        // A structurally unmatched recv has no sufficient capacity.
        let s = two_device_schedule(
            vec![Instr::forward(0u32, 0u32)],
            vec![Instr::recv_act(0u32, 0u32, DeviceId(0))],
        );
        assert_eq!(min_channel_capacity(&s), None);
    }
}
