//! The cost-model interface consumed by the simulator (mario-core) and the
//! cluster emulator (mario-cluster).
//!
//! The paper's simulator assigns each instruction a latency and a memory
//! effect obtained from lightweight profiling (§5.2). This trait is the
//! seam: `mario-model` provides analytic and profiled implementations, while
//! [`UnitCost`] provides the idealized "forward = t, backward = 2t" grid
//! model the paper uses in its figures (§5.1: "we assume the latency across
//! stages are balanced and the backward latency is twice that of forward").

use crate::ids::{DeviceId, PartId};
use crate::instr::{Instr, InstrKind};
use serde::{Deserialize, Serialize};

/// Virtual time, in nanoseconds.
pub type Nanos = u64;

/// The compute instruction classes with distinct latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComputeKind {
    /// Forward pass of a stage (checkpointed forwards take the same time).
    Forward,
    /// Backward pass of a stage.
    Backward,
    /// Input-gradient half of a split backward (≈ half a backward).
    BackwardInput,
    /// Weight-gradient half of a split backward (≈ half a backward).
    BackwardWeight,
    /// Recomputation: replays the forward, so usually `≈ Forward`.
    Recompute,
}

/// Per-instruction latency and memory quantities for a given schedule.
///
/// Implementations must be cheap to call: the DP simulator queries them for
/// every instruction, and the schedule tuner runs thousands of simulations.
pub trait CostModel: Send + Sync {
    /// Latency of a compute instruction on the stage held by
    /// `(device, part)`.
    fn compute_time(&self, device: DeviceId, part: PartId, kind: ComputeKind) -> Nanos;

    /// Full activation bytes retained by a *non-checkpointed* forward of one
    /// micro-batch on `(device, part)`, released by the matching backward.
    fn act_full(&self, device: DeviceId, part: PartId) -> u64;

    /// Checkpoint bytes (the stashed stage input) retained by a
    /// *checkpointed* forward, released by the matching backward.
    fn act_ckpt(&self, device: DeviceId, part: PartId) -> u64;

    /// Bytes of the stage-boundary tensor carried by `SA`/`RA` (gradients
    /// `SG`/`RG` are the same shape).
    fn boundary_bytes(&self, device: DeviceId, part: PartId) -> u64;

    /// Wire time for a p2p transfer of `bytes` over the default
    /// (cross-node) fabric.
    fn p2p_time(&self, bytes: u64) -> Nanos;

    /// Wire time for a transfer between two specific devices. The default
    /// ignores placement; hierarchical models override this to give
    /// intra-node neighbours (NVLink) a faster link than cross-node pairs
    /// (InfiniBand) — the paper's cluster is 16 nodes × 4 GPUs.
    fn p2p_time_between(&self, _from: DeviceId, _to: DeviceId, bytes: u64) -> Nanos {
        self.p2p_time(bytes)
    }

    /// Fixed per-call overhead a device pays to issue a p2p send/recv.
    fn p2p_launch_overhead(&self) -> Nanos {
        0
    }

    /// Bytes retained between a split backward's input half and its weight
    /// half — the layer inputs the weight GEMMs still read. Boundary-sized
    /// by default (ZB's accounting keeps this term small).
    fn wgrad_stash_bytes(&self, device: DeviceId, part: PartId) -> u64 {
        self.boundary_bytes(device, part)
    }

    /// Latency of the data-parallel gradient all-reduce on `device`.
    fn allreduce_time(&self, device: DeviceId) -> Nanos;

    /// Latency of the optimizer step on `device`.
    fn optimizer_time(&self, device: DeviceId) -> Nanos;

    /// Static bytes resident on `device` for the whole iteration: weights,
    /// gradients, optimizer states, plus framework overhead (the regression
    /// bias `b` of §5.2).
    fn static_mem(&self, device: DeviceId) -> u64;

    /// Bytes of model state this device contributes to one model-state
    /// checkpoint — the shard a sharded
    /// [`crate::checkpoint::CheckpointPolicy`] flushes. Defaults to the
    /// device's static memory; analytic models override this with the
    /// per-stage parameter bytes (framework overhead is resident memory,
    /// not checkpointed state).
    fn ckpt_shard_bytes(&self, device: DeviceId) -> u64 {
        self.static_mem(device)
    }

    /// Device-occupancy duration of an arbitrary instruction.
    ///
    /// For p2p instructions this is only the launch overhead — the transfer
    /// itself is modeled by the scheduler/emulator as a cross-device
    /// dependency, not as device occupancy.
    fn duration(&self, device: DeviceId, instr: &Instr) -> Nanos {
        match instr.kind {
            InstrKind::Forward { .. } => self.compute_time(device, instr.part, ComputeKind::Forward),
            InstrKind::Backward => self.compute_time(device, instr.part, ComputeKind::Backward),
            InstrKind::BackwardInput => {
                self.compute_time(device, instr.part, ComputeKind::BackwardInput)
            }
            InstrKind::BackwardWeight => {
                self.compute_time(device, instr.part, ComputeKind::BackwardWeight)
            }
            InstrKind::Recompute => {
                self.compute_time(device, instr.part, ComputeKind::Recompute)
            }
            InstrKind::SendAct { .. }
            | InstrKind::RecvAct { .. }
            | InstrKind::SendGrad { .. }
            | InstrKind::RecvGrad { .. } => self.p2p_launch_overhead(),
            InstrKind::AllReduce => self.allreduce_time(device),
            InstrKind::OptimizerStep => self.optimizer_time(device),
        }
    }
}

/// The idealized unit-grid cost model of the paper's figures: every stage is
/// balanced, forward takes `t`, backward takes `2t`, recompute takes `t`,
/// communication is free, and one micro-batch's activations weigh one unit.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UnitCost {
    /// The grid unit `t`, in nanoseconds.
    pub unit: Nanos,
    /// Backward-to-forward latency ratio numerator over 1 (default 2).
    pub backward_ratio: u32,
    /// Bytes of one micro-batch's full activations (default 1).
    pub act_full_bytes: u64,
    /// Bytes of one micro-batch's checkpoint (default 0: idealized).
    pub act_ckpt_bytes: u64,
    /// Bytes of model state each device contributes to a model-state
    /// checkpoint (default 0: checkpoint writes are free on the unit
    /// grid unless a test opts in).
    #[serde(default)]
    pub ckpt_shard_bytes: u64,
}

impl UnitCost {
    /// The model used throughout the paper's illustrations: `t = 1µs`,
    /// backward = 2t, free communication.
    pub fn paper_grid() -> Self {
        Self {
            unit: 1_000,
            backward_ratio: 2,
            act_full_bytes: 1,
            act_ckpt_bytes: 0,
            ckpt_shard_bytes: 0,
        }
    }

    /// Like [`UnitCost::paper_grid`] but with a nonzero checkpoint size, for
    /// memory-accounting tests.
    pub fn with_ckpt_bytes(mut self, bytes: u64) -> Self {
        self.act_ckpt_bytes = bytes;
        self
    }

    /// Like [`UnitCost::paper_grid`] but with a nonzero model-state shard,
    /// so sharded checkpoint writes have real cost on the unit grid.
    pub fn with_shard_bytes(mut self, bytes: u64) -> Self {
        self.ckpt_shard_bytes = bytes;
        self
    }
}

impl Default for UnitCost {
    fn default() -> Self {
        Self::paper_grid()
    }
}

impl CostModel for UnitCost {
    fn compute_time(&self, _device: DeviceId, _part: PartId, kind: ComputeKind) -> Nanos {
        match kind {
            ComputeKind::Forward | ComputeKind::Recompute => self.unit,
            ComputeKind::Backward => self.unit * self.backward_ratio as u64,
            // Split halves: dgrad and wgrad are each about half a backward.
            ComputeKind::BackwardInput | ComputeKind::BackwardWeight => {
                self.unit * self.backward_ratio as u64 / 2
            }
        }
    }

    fn act_full(&self, _device: DeviceId, _part: PartId) -> u64 {
        self.act_full_bytes
    }

    fn act_ckpt(&self, _device: DeviceId, _part: PartId) -> u64 {
        self.act_ckpt_bytes
    }

    fn boundary_bytes(&self, _device: DeviceId, _part: PartId) -> u64 {
        0
    }

    fn p2p_time(&self, _bytes: u64) -> Nanos {
        0
    }

    fn allreduce_time(&self, _device: DeviceId) -> Nanos {
        0
    }

    fn optimizer_time(&self, _device: DeviceId) -> Nanos {
        0
    }

    fn static_mem(&self, _device: DeviceId) -> u64 {
        0
    }

    fn ckpt_shard_bytes(&self, _device: DeviceId) -> u64 {
        self.ckpt_shard_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cost_matches_paper_grid() {
        let c = UnitCost::paper_grid();
        let d = DeviceId(0);
        let p = PartId(0);
        assert_eq!(c.compute_time(d, p, ComputeKind::Forward), 1_000);
        assert_eq!(c.compute_time(d, p, ComputeKind::Backward), 2_000);
        assert_eq!(c.compute_time(d, p, ComputeKind::Recompute), 1_000);
        assert_eq!(c.p2p_time(123), 0);
    }

    #[test]
    fn duration_dispatches_by_kind() {
        let c = UnitCost::paper_grid();
        let d = DeviceId(0);
        assert_eq!(c.duration(d, &Instr::forward(0u32, 0u32)), 1_000);
        assert_eq!(c.duration(d, &Instr::ckpt_forward(0u32, 0u32)), 1_000);
        assert_eq!(c.duration(d, &Instr::backward(0u32, 0u32)), 2_000);
        assert_eq!(c.duration(d, &Instr::recompute(0u32, 0u32)), 1_000);
        assert_eq!(c.duration(d, &Instr::send_act(0u32, 0u32, DeviceId(1))), 0);
        assert_eq!(c.duration(d, &Instr::all_reduce()), 0);
        assert_eq!(c.duration(d, &Instr::optimizer_step()), 0);
    }

    #[test]
    fn ckpt_bytes_builder() {
        let c = UnitCost::paper_grid().with_ckpt_bytes(7);
        assert_eq!(c.act_ckpt(DeviceId(0), PartId(0)), 7);
        assert_eq!(c.act_full(DeviceId(0), PartId(0)), 1);
    }

    #[test]
    fn shard_bytes_builder_and_default() {
        // Default: shard follows static memory (0 on the unit grid).
        let c = UnitCost::paper_grid();
        assert_eq!(c.ckpt_shard_bytes(DeviceId(0)), 0);
        let c = c.with_shard_bytes(4_096);
        assert_eq!(c.ckpt_shard_bytes(DeviceId(3)), 4_096);
        // Static memory is unchanged: the shard is checkpoint payload,
        // not resident state.
        assert_eq!(c.static_mem(DeviceId(3)), 0);
    }
}
