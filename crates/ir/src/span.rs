//! The executed span graph — the causal layer under the telemetry
//! flight recorder.
//!
//! [`crate::Telemetry`] says *where* a device's nanoseconds went (nine
//! classes summing to the clock); the span graph says *why*: one
//! [`OpSpan`] per executed instruction occurrence records when the device
//! reached it, when it completed, how much intrinsic busy time it
//! charged, and — for receives — when the matching packet departed its
//! sender and how long the wire took. Everything else a critical-path
//! analyzer needs (program order, FIFO send/recv pairing, the bounded
//! channel's capacity acks) is *structural*: it follows from the schedule
//! and the channel capacity alone and is timing-independent, so it is
//! deliberately not captured.
//!
//! All three executors — the DP simulator (`mario-core`), the threaded
//! emulator and the discrete-event emulator (`mario-cluster`) — populate
//! the graph with identical arithmetic, extending the bit-for-bit parity
//! invariant from clocks and telemetry down to every span field. The
//! spans are numeric-only (no rendered instruction names): the `pc`
//! indexes the device program, so renderers resolve names through the
//! schedule and parity comparisons stay pure integer equality.

use crate::cost::Nanos;
use crate::ids::DeviceId;
use serde::{Deserialize, Serialize};

/// The `pc` recorded on spans that do not correspond to a program
/// instruction: end-of-iteration checkpoint-boundary writes (`CKPT`) and
/// the end-of-run residue drain.
pub const CKPT_PC: u32 = u32::MAX;

/// One executed instruction occurrence.
///
/// Timing invariants (shared by all executors):
///
/// * computes: `end == max(start, gate_ns) + work_ns` (the gate is the
///   serving ingress release; 0 outside serving mode);
/// * sends: `end == max(start + work_ns, freed)` where `freed` is the
///   capacity-ack time — the arrival of the `(k - capacity)`-th receive
///   on the same channel, recoverable structurally;
/// * receives: `end == max(start + work_ns, sent_at + wire_ns)`;
/// * everything else: `end == start + work_ns`.
///
/// Within a device, spans tile the clock: each span's `start` is the
/// previous span's `end` (the first starts at the startup offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpSpan {
    /// Executing device.
    pub device: DeviceId,
    /// Training iteration (0-based).
    pub iter: u32,
    /// Index into the device program, or [`CKPT_PC`] for checkpoint
    /// boundary/drain spans.
    pub pc: u32,
    /// Device clock when the instruction was reached.
    pub start: Nanos,
    /// Device clock when it completed.
    pub end: Nanos,
    /// Intrinsic busy time charged: compute duration (slowdown-scaled),
    /// p2p launch overhead (sends *and* receives), all-reduce, optimizer
    /// or synchronously paid checkpoint-write time.
    pub work_ns: Nanos,
    /// Receives: the matching packet's departure timestamp, including any
    /// link-fault/perturbation delay. 0 otherwise.
    pub sent_at: Nanos,
    /// Receives: the wire transfer duration `p2p_time_between(src, dst,
    /// bytes)`. 0 otherwise.
    pub wire_ns: Nanos,
    /// Serving mode: the exogenous ingress release gate on first-stage
    /// forwards (the wall-clock time before which the micro-batch may not
    /// start). 0 otherwise.
    pub gate_ns: Nanos,
}

impl OpSpan {
    /// True for checkpoint boundary/drain spans (no program instruction).
    pub fn is_ckpt(&self) -> bool {
        self.pc == CKPT_PC
    }

    /// The span's wall-clock extent.
    pub fn duration(&self) -> Nanos {
        self.end - self.start
    }

    /// Idle time inside the span: the extent not covered by intrinsic
    /// work (a blocked send, a recv wait, or a serving release wait).
    pub fn idle_ns(&self) -> Nanos {
        self.duration().saturating_sub(self.work_ns)
    }
}

/// The executed span graph of one run: per-device spans in execution
/// (= program) order, plus the two run-level constants structural edge
/// reconstruction needs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanGraph {
    /// `spans[d]` — device `d`'s spans in execution order, tiling
    /// `[startup_offset, device_clock]`.
    pub per_device: Vec<Vec<OpSpan>>,
    /// The bounded-channel depth the run executed under (capacity acks:
    /// the `k`-th send on a channel waits for the `(k - capacity)`-th
    /// receive's arrival).
    pub channel_capacity: usize,
    /// The run makespan (max device clock).
    pub makespan: Nanos,
}

impl SpanGraph {
    /// An empty graph for `devices` devices at `channel_capacity`.
    pub fn new(devices: usize, channel_capacity: usize) -> Self {
        Self {
            per_device: vec![Vec::new(); devices],
            channel_capacity,
            makespan: 0,
        }
    }

    /// Records one span (appended to its device's stream).
    pub fn push(&mut self, span: OpSpan) {
        let d = span.device.0 as usize;
        if d >= self.per_device.len() {
            self.per_device.resize(d + 1, Vec::new());
        }
        self.per_device[d].push(span);
    }

    /// Total spans across devices.
    pub fn len(&self) -> usize {
        self.per_device.iter().map(Vec::len).sum()
    }

    /// True when no span was recorded.
    pub fn is_empty(&self) -> bool {
        self.per_device.iter().all(Vec::is_empty)
    }

    /// Checks the per-device tiling invariant: spans are contiguous
    /// (`span[i].start == span[i-1].end`) and each device's last `end`
    /// equals its clock. Returns the offending device on failure.
    pub fn check_tiling(&self, device_clocks: &[Nanos]) -> Result<(), DeviceId> {
        for (d, spans) in self.per_device.iter().enumerate() {
            let dev = DeviceId(d as u32);
            let mut cursor = spans.first().map(|s| s.start);
            for s in spans {
                if Some(s.start) != cursor || s.end < s.start {
                    return Err(dev);
                }
                cursor = Some(s.end);
            }
            if let (Some(last), Some(&clock)) = (spans.last(), device_clocks.get(d)) {
                if last.end != clock {
                    return Err(dev);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(device: u32, start: Nanos, end: Nanos) -> OpSpan {
        OpSpan {
            device: DeviceId(device),
            iter: 0,
            pc: 0,
            start,
            end,
            work_ns: end - start,
            sent_at: 0,
            wire_ns: 0,
            gate_ns: 0,
        }
    }

    #[test]
    fn push_grows_and_indexes_by_device() {
        let mut g = SpanGraph::new(1, 1);
        g.push(span(2, 0, 5));
        g.push(span(0, 0, 3));
        assert_eq!(g.per_device.len(), 3);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        assert_eq!(g.per_device[2][0].end, 5);
    }

    #[test]
    fn tiling_accepts_contiguous_and_rejects_holes() {
        let mut g = SpanGraph::new(1, 1);
        g.push(span(0, 0, 3));
        g.push(span(0, 3, 7));
        assert_eq!(g.check_tiling(&[7]), Ok(()));
        // Clock mismatch.
        assert_eq!(g.check_tiling(&[9]), Err(DeviceId(0)));
        // A hole between spans.
        g.push(span(0, 8, 9));
        assert_eq!(g.check_tiling(&[9]), Err(DeviceId(0)));
    }

    #[test]
    fn idle_is_extent_minus_work() {
        let mut s = span(0, 10, 20);
        s.work_ns = 4;
        assert_eq!(s.duration(), 10);
        assert_eq!(s.idle_ns(), 6);
        assert!(!s.is_ckpt());
        s.pc = CKPT_PC;
        assert!(s.is_ckpt());
    }
}
