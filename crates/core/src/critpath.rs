//! Critical-path analysis and counterfactual re-timing over the executed
//! span graph.
//!
//! The span graph ([`mario_ir::SpanGraph`]) records *what happened*; this
//! module explains *why the makespan is what it is*:
//!
//! * [`analyze`] walks the recorded graph backward from the
//!   makespan-defining device and produces the **exact critical path** —
//!   a chain of contiguous segments (compute, p2p launches, wire
//!   transfers, exogenous waits, checkpoint writes, reconfiguration
//!   charges) whose lengths sum to the makespan *bit for bit* — plus
//!   per-op **slack** (how much each op could slow, all else fixed,
//!   before the makespan moves) and per-link wire slack.
//! * [`whatif`] re-times the recorded graph under counterfactual costs
//!   (a straggler profile, extra link latency, free checkpoint writes)
//!   without re-running anything, by a forward max-plus replay over the
//!   recorded structure.
//!
//! # Structure, not timestamps
//!
//! Only three edge families exist, and all are reconstructed from the
//! schedule and the channel capacity — never from the recorded times:
//!
//! 1. **program order**: each span follows its device predecessor;
//! 2. **wire**: the `k`-th receive on a `(src, dst, class, part)` channel
//!    pairs with the `k`-th send (links are FIFO);
//! 3. **capacity ack**: the `k`-th send on a channel waits for the
//!    `(k − capacity)`-th receive's arrival (the bounded buffer).
//!
//! Reconstructing capacity edges structurally (instead of recording which
//! sends happened to block) keeps [`whatif`] sound: under a counterfactual
//! the ack window can start binding on a send that never blocked in the
//! recording.
//!
//! # Validity domain
//!
//! The backward walk and the slack pass are exact for every recorded run.
//! [`whatif`] is exact — equal to a ground-truth re-simulation — when the
//! counterfactual *adds* perturbations on top of the recorded run and the
//! checkpoint policy is none/flat/sharded-sync (`free_checkpoint`
//! included). Async-overlap checkpointing drains write chunks into
//! whatever idle gaps the new timing produces, which the replay cannot
//! reproduce from recorded drains alone; removing a *recorded*
//! perturbation (destraggling) divides rounded integers and is exact only
//! when the factor round-trips (e.g. 2.0 on even costs). The `critpath`
//! bench pins the exact domain against real re-simulations.

use mario_ir::exec::MsgClass;
use mario_ir::{
    DeviceId, InstrKind, Nanos, OpSpan, PerturbationProfile, Schedule, SpanGraph, CKPT_PC,
};
use serde::Serialize;
use std::collections::HashMap;

/// A directed channel identity, matching the executors' link keying.
type ChanKey = (u32, u32, MsgClass, u32);

/// A span's position: `(device index, index within the device stream)`.
type NodeId = (usize, usize);

/// Attribution class of one critical-path segment, designed to reconcile
/// with [`mario_ir::TimeClasses`]: `Compute`→`compute_ns`,
/// `CommLaunch`→`comm_launch_ns`, `Wire`→the receiver's wait classes,
/// `Bubble`→`recv_blocked_ns` (+ any `ckpt_absorbed_ns` drained into the
/// wait), `Ckpt`→`ckpt_sync_ns`, `Reconfig`→`reconfig_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SegClass {
    /// Forward/backward/recompute kernel time.
    Compute,
    /// Fixed p2p launch overhead (send or recv side).
    CommLaunch,
    /// Wire transfer time of a gating message, plus any injected link
    /// delay between the send's completion and the packet's departure.
    Wire,
    /// Exogenous wait: a serving ingress gate the pipeline cannot cause
    /// or cure (includes any checkpoint chunks drained into it).
    Bubble,
    /// Checkpoint write time paid synchronously on the path.
    Ckpt,
    /// Gradient all-reduce.
    AllReduce,
    /// Optimizer step.
    Optimizer,
    /// Startup offset: elastic-reconfiguration state redistribution.
    Reconfig,
}

/// One contiguous segment of the critical path.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PathSegment {
    /// Device the segment is attributed to (for [`SegClass::Wire`], the
    /// receiving side of the link).
    pub device: DeviceId,
    /// Segment start (ns).
    pub start: Nanos,
    /// Segment end (ns).
    pub end: Nanos,
    /// Attribution class.
    pub class: SegClass,
    /// Program counter of the owning span ([`CKPT_PC`] for checkpoint
    /// and reconfiguration segments).
    pub pc: u32,
    /// Iteration of the owning span.
    pub iter: u32,
}

impl PathSegment {
    /// Segment length, ns.
    pub fn len_ns(&self) -> Nanos {
        self.end - self.start
    }
}

/// Per-class totals over the critical path. [`PathBreakdown::total`]
/// equals the makespan exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PathBreakdown {
    /// Kernel time on the path.
    pub compute_ns: Nanos,
    /// p2p launch overhead on the path.
    pub comm_launch_ns: Nanos,
    /// Wire transfer (and injected delay) time on the path.
    pub wire_ns: Nanos,
    /// Exogenous waits on the path.
    pub bubble_ns: Nanos,
    /// Synchronous checkpoint writes on the path.
    pub ckpt_ns: Nanos,
    /// All-reduce time on the path.
    pub allreduce_ns: Nanos,
    /// Optimizer time on the path.
    pub optimizer_ns: Nanos,
    /// Reconfiguration startup charge on the path.
    pub reconfig_ns: Nanos,
}

impl PathBreakdown {
    /// Sum of every class — equals the makespan bit for bit.
    pub fn total(&self) -> Nanos {
        self.compute_ns
            + self.comm_launch_ns
            + self.wire_ns
            + self.bubble_ns
            + self.ckpt_ns
            + self.allreduce_ns
            + self.optimizer_ns
            + self.reconfig_ns
    }

    /// All communication on the path: launches plus gating wire time.
    pub fn comm_ns(&self) -> Nanos {
        self.comm_launch_ns + self.wire_ns
    }

    fn add(&mut self, class: SegClass, ns: Nanos) {
        match class {
            SegClass::Compute => self.compute_ns += ns,
            SegClass::CommLaunch => self.comm_launch_ns += ns,
            SegClass::Wire => self.wire_ns += ns,
            SegClass::Bubble => self.bubble_ns += ns,
            SegClass::Ckpt => self.ckpt_ns += ns,
            SegClass::AllReduce => self.allreduce_ns += ns,
            SegClass::Optimizer => self.optimizer_ns += ns,
            SegClass::Reconfig => self.reconfig_ns += ns,
        }
    }
}

/// What [`analyze`] produces.
#[derive(Debug, Clone, Serialize)]
pub struct CritReport {
    /// The recorded makespan (max device clock).
    pub makespan: Nanos,
    /// The critical path in increasing time order: contiguous segments
    /// tiling `[0, makespan]` exactly.
    pub path: Vec<PathSegment>,
    /// Per-class totals over `path`; `breakdown.total() == makespan`.
    pub breakdown: PathBreakdown,
    /// `slack[d][i]` — how much span `i` of device `d` could lengthen,
    /// everything else fixed, before the makespan moves. Exact per-op
    /// sensitivity; ops on the critical path have slack 0.
    pub slack: Vec<Vec<Nanos>>,
    /// `on_path[d][i]` — whether span `i` of device `d` contributed a
    /// segment to the path.
    pub on_path: Vec<Vec<bool>>,
    /// Per directed link `(src, dst)`: the minimum over its messages of
    /// the extra wire latency the link could absorb before the makespan
    /// moves, sorted by `(src, dst)`.
    pub link_slack: Vec<((DeviceId, DeviceId), Nanos)>,
}

impl CritReport {
    /// The path's zero-slack ops (non-bubble, non-reconfig segments),
    /// deduplicated, longest first: the "top offenders" list bench
    /// summaries publish.
    pub fn top_path_ops(&self, n: usize) -> Vec<PathSegment> {
        let mut ops: Vec<PathSegment> = Vec::new();
        for seg in &self.path {
            if matches!(seg.class, SegClass::Bubble | SegClass::Reconfig) {
                continue;
            }
            match ops
                .iter_mut()
                .find(|o| o.device == seg.device && o.pc == seg.pc && o.iter == seg.iter)
            {
                // Merge multiple segments of one op (a gated compute
                // contributes both halves of its extent).
                Some(o) => {
                    o.start = o.start.min(seg.start);
                    o.end = o.end.max(seg.end);
                }
                None => ops.push(*seg),
            }
        }
        ops.sort_by_key(|o| (std::cmp::Reverse(o.len_ns()), o.device.0, o.start));
        ops.truncate(n);
        ops
    }
}

/// How a span interacts with the rest of the graph.
enum NodeKind {
    /// Compute, all-reduce, optimizer or checkpoint span: program-order
    /// edges only. Carries the attribution class of its busy time.
    Local(SegClass),
    /// A p2p send: `ord`-th on its channel; `ack` is the receive whose
    /// arrival frees its buffer slot (None while the window is filling);
    /// `delta` is the recorded injected delay between the send's
    /// completion and the packet's departure.
    Send {
        key: ChanKey,
        ord: usize,
        delta: Nanos,
        ack: Option<NodeId>,
    },
    /// A p2p recv: `ord`-th on its channel, paired with `send`.
    Recv {
        key: ChanKey,
        ord: usize,
        send: Option<NodeId>,
    },
}

/// The reconstructed structural graph: one [`NodeKind`] per span.
struct Structure {
    kind: Vec<Vec<NodeKind>>,
}

fn class_of(kind: &InstrKind) -> MsgClass {
    match kind {
        InstrKind::SendAct { .. } | InstrKind::RecvAct { .. } => MsgClass::Act,
        _ => MsgClass::Grad,
    }
}

/// Reconstructs pairing and capacity edges from the schedule and the
/// channel capacity. Timestamps are never consulted, except to record
/// each send's injected-delay `delta` (an exogenous input, like costs).
fn build_structure(schedule: &Schedule, g: &SpanGraph) -> Structure {
    let mut sends: HashMap<ChanKey, Vec<NodeId>> = HashMap::new();
    let mut recvs: HashMap<ChanKey, Vec<NodeId>> = HashMap::new();
    let mut kind: Vec<Vec<NodeKind>> = Vec::with_capacity(g.per_device.len());
    for (d, spans) in g.per_device.iter().enumerate() {
        let program = schedule.program(DeviceId(d as u32));
        let mut kinds = Vec::with_capacity(spans.len());
        for (i, s) in spans.iter().enumerate() {
            let instr = if s.pc == CKPT_PC {
                None
            } else {
                program.get(s.pc as usize)
            };
            let k = match instr.map(|x| x.kind) {
                Some(ik @ (InstrKind::SendAct { peer } | InstrKind::SendGrad { peer })) => {
                    let key = (d as u32, peer.0, class_of(&ik), instr.unwrap().part.0);
                    let q = sends.entry(key).or_default();
                    let ord = q.len();
                    q.push((d, i));
                    NodeKind::Send {
                        key,
                        ord,
                        delta: 0,
                        ack: None,
                    }
                }
                Some(ik @ (InstrKind::RecvAct { peer } | InstrKind::RecvGrad { peer })) => {
                    let key = (peer.0, d as u32, class_of(&ik), instr.unwrap().part.0);
                    let q = recvs.entry(key).or_default();
                    let ord = q.len();
                    q.push((d, i));
                    NodeKind::Recv {
                        key,
                        ord,
                        send: None,
                    }
                }
                Some(InstrKind::AllReduce) => NodeKind::Local(SegClass::AllReduce),
                Some(InstrKind::OptimizerStep) => NodeKind::Local(SegClass::Optimizer),
                Some(_) => NodeKind::Local(SegClass::Compute),
                None => NodeKind::Local(SegClass::Ckpt),
            };
            kinds.push(k);
        }
        kind.push(kinds);
    }
    // Resolve the FIFO pairings and capacity acks.
    let capacity = g.channel_capacity.max(1);
    for (dl, kinds) in kind.iter_mut().enumerate() {
        for (i, k) in kinds.iter_mut().enumerate() {
            match k {
                NodeKind::Send {
                    key,
                    ord,
                    delta,
                    ack,
                } => {
                    if *ord >= capacity {
                        *ack = recvs.get(key).and_then(|q| q.get(*ord - capacity)).copied();
                    }
                    // The recorded packet departure minus the send's own
                    // completion: an injected link delay, 0 otherwise.
                    if let Some(&(rd, ri)) = recvs.get(key).and_then(|q| q.get(*ord)) {
                        let r = g.per_device[rd][ri];
                        *delta = r.sent_at.saturating_sub(g.per_device[dl][i].end);
                    }
                }
                NodeKind::Recv { key, ord, send } => {
                    *send = sends.get(key).and_then(|q| q.get(*ord)).copied();
                }
                NodeKind::Local(_) => {}
            }
        }
    }
    Structure { kind }
}

/// Analyzes one recorded run: exact critical path, per-op slack,
/// per-link slack. The spans must come from the run's schedule (the `pc`
/// fields index its device programs) — all three executors produce them
/// via `record_spans` / the simulator's `SimTimeline::spans`.
pub fn analyze(schedule: &Schedule, g: &SpanGraph) -> CritReport {
    let st = build_structure(schedule, g);
    let (slack, link_slack) = compute_slack(g, &st);
    let (path, on_path) = walk_path(g, &st);
    let mut breakdown = PathBreakdown::default();
    for seg in &path {
        breakdown.add(seg.class, seg.len_ns());
    }
    debug_assert_eq!(
        breakdown.total(),
        g.makespan,
        "critical path does not tile the makespan"
    );
    CritReport {
        makespan: g.makespan,
        path,
        breakdown,
        slack,
        on_path,
        link_slack,
    }
}

/// Is this span's end gated by something other than its own start+work?
fn gated_by_wait(s: &OpSpan) -> bool {
    s.end > s.start + s.work_ns
}

/// Backward walk from the makespan: returns the path (increasing time)
/// and the on-path marking. Every hop follows the *binding* cause of the
/// current time, so segment lengths sum to the makespan exactly.
fn walk_path(g: &SpanGraph, st: &Structure) -> (Vec<PathSegment>, Vec<Vec<bool>>) {
    let mut on_path: Vec<Vec<bool>> = g.per_device.iter().map(|v| vec![false; v.len()]).collect();
    let mut segs: Vec<PathSegment> = Vec::new();
    // The makespan-defining device (ties: lowest id), walking from its
    // last span.
    let Some((mut d, _)) = g
        .per_device
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .max_by(|(da, a), (db, b)| {
            let ea = a.last().unwrap().end;
            let eb = b.last().unwrap().end;
            ea.cmp(&eb).then(db.cmp(da))
        })
    else {
        return (segs, on_path);
    };
    let mut i = g.per_device[d].len() - 1;
    loop {
        let s = g.per_device[d][i];
        let dev = DeviceId(d as u32);
        if gated_by_wait(&s) {
            match &st.kind[d][i] {
                NodeKind::Recv {
                    send: Some((sd, sj)),
                    ..
                } => {
                    let (sd, sj) = (*sd, *sj);
                    // The wire gated: s.end == sent_at + wire.
                    on_path[d][i] = true;
                    segs.push(PathSegment {
                        device: dev,
                        start: s.sent_at,
                        end: s.end,
                        class: SegClass::Wire,
                        pc: s.pc,
                        iter: s.iter,
                    });
                    let send = g.per_device[sd][sj];
                    if s.sent_at > send.end {
                        // Injected link delay between the send completing
                        // and the packet departing.
                        segs.push(PathSegment {
                            device: dev,
                            start: send.end,
                            end: s.sent_at,
                            class: SegClass::Wire,
                            pc: s.pc,
                            iter: s.iter,
                        });
                    }
                    d = sd;
                    i = sj;
                    continue;
                }
                NodeKind::Send {
                    ack: Some((rd, rj)),
                    ..
                } => {
                    // Capacity-blocked: the ack (the paired receive's
                    // arrival) equals s.end. The wait's extent is covered
                    // by the receiver's own chain; the send's launch
                    // happened before the wait and is off the path.
                    let (rd, rj) = (*rd, *rj);
                    on_path[d][i] = true;
                    d = rd;
                    i = rj;
                    continue;
                }
                _ => {
                    // A wait with no recorded in-graph cause (a serving
                    // gate, or a missing pairing on a partial graph):
                    // exogenous bubble down to the intrinsic work.
                    on_path[d][i] = true;
                    let work_start = s.end - s.work_ns;
                    segs.push(PathSegment {
                        device: dev,
                        start: work_start,
                        end: s.end,
                        class: local_class(st, d, i),
                        pc: s.pc,
                        iter: s.iter,
                    });
                    segs.push(PathSegment {
                        device: dev,
                        start: s.start,
                        end: work_start,
                        class: SegClass::Bubble,
                        pc: s.pc,
                        iter: s.iter,
                    });
                }
            }
        } else {
            // Plain span: its whole extent is on the path.
            on_path[d][i] = true;
            if s.end > s.start {
                segs.push(PathSegment {
                    device: dev,
                    start: s.start,
                    end: s.end,
                    class: local_class(st, d, i),
                    pc: s.pc,
                    iter: s.iter,
                });
            }
        }
        // Continue on-device; at the stream head, what remains is the
        // startup offset.
        if i == 0 {
            let first = g.per_device[d][0];
            if first.start > 0 {
                segs.push(PathSegment {
                    device: dev,
                    start: 0,
                    end: first.start,
                    class: SegClass::Reconfig,
                    pc: CKPT_PC,
                    iter: 0,
                });
            }
            break;
        }
        i -= 1;
    }
    segs.reverse();
    (segs, on_path)
}

/// The attribution class of a span's own busy time.
fn local_class(st: &Structure, d: usize, i: usize) -> SegClass {
    match st.kind[d][i] {
        NodeKind::Send { .. } | NodeKind::Recv { .. } => SegClass::CommLaunch,
        NodeKind::Local(class) => class,
    }
}

/// Per-op slack table plus per-link minimum headroom.
type SlackTables = (Vec<Vec<Nanos>>, Vec<((DeviceId, DeviceId), Nanos)>);

/// CPM slack: latest-completion times by a backward pass over the
/// structural DAG in reverse topological order (Kahn), then
/// `slack = L − end`. Per-link slack is the minimum message headroom
/// `L(recv) − (sent_at + wire)` per directed pair.
fn compute_slack(g: &SpanGraph, st: &Structure) -> SlackTables {
    // Flatten node ids.
    let mut offset = Vec::with_capacity(g.per_device.len());
    let mut n = 0usize;
    for v in &g.per_device {
        offset.push(n);
        n += v.len();
    }
    let id = |d: usize, i: usize| offset[d] + i;
    // Forward edges (from, to, weight) meaning L[from] <= L[to] - weight.
    let mut edges: Vec<(usize, usize, Nanos)> = Vec::with_capacity(n * 2);
    for (d, spans) in g.per_device.iter().enumerate() {
        for (i, s) in spans.iter().enumerate() {
            if i + 1 < spans.len() {
                // Program edge: the successor's end tracks our end plus
                // its intrinsic work (all executor arithmetic reduces to
                // end' = max(pred_end-or-floor, ...) + work for the
                // program dependency).
                edges.push((id(d, i), id(d, i + 1), spans[i + 1].work_ns));
            }
            match &st.kind[d][i] {
                NodeKind::Recv {
                    send: Some((sd, sj)),
                    ..
                } => {
                    // Wire edge: arrival >= send.end + delta + wire.
                    let delta = s.sent_at.saturating_sub(g.per_device[*sd][*sj].end);
                    edges.push((id(*sd, *sj), id(d, i), s.wire_ns + delta));
                }
                NodeKind::Send {
                    ack: Some((rd, rj)),
                    ..
                } => {
                    // Capacity edge: our end >= the ack recv's arrival.
                    edges.push((id(*rd, *rj), id(d, i), 0));
                }
                _ => {}
            }
        }
    }
    // Kahn topological order.
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (e, (from, to, _)) in edges.iter().enumerate() {
        out[*from].push(e);
        indeg[*to] += 1;
        let _ = to;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&u| indeg[u] == 0).collect();
    let mut topo = Vec::with_capacity(n);
    while let Some(u) = queue.pop() {
        topo.push(u);
        for &e in &out[u] {
            let (_, to, _) = edges[e];
            indeg[to] -= 1;
            if indeg[to] == 0 {
                queue.push(to);
            }
        }
    }
    debug_assert_eq!(topo.len(), n, "span graph has a structural cycle");
    // Backward pass.
    let mut latest = vec![g.makespan; n];
    for &u in topo.iter().rev() {
        for &e in &out[u] {
            let (_, to, w) = edges[e];
            latest[u] = latest[u].min(latest[to].saturating_sub(w));
        }
    }
    let slack: Vec<Vec<Nanos>> = g
        .per_device
        .iter()
        .enumerate()
        .map(|(d, spans)| {
            spans
                .iter()
                .enumerate()
                .map(|(i, s)| latest[id(d, i)].saturating_sub(s.end))
                .collect()
        })
        .collect();
    // Per-link wire headroom.
    let mut per_link: HashMap<(DeviceId, DeviceId), Nanos> = HashMap::new();
    for (d, spans) in g.per_device.iter().enumerate() {
        for (i, s) in spans.iter().enumerate() {
            if let NodeKind::Recv {
                key,
                send: Some(_), ..
            } = &st.kind[d][i]
            {
                let pair = (DeviceId(key.0), DeviceId(key.1));
                let headroom = latest[id(d, i)].saturating_sub(s.sent_at + s.wire_ns);
                per_link
                    .entry(pair)
                    .and_modify(|h| *h = (*h).min(headroom))
                    .or_insert(headroom);
            }
        }
    }
    let mut link_slack: Vec<_> = per_link.into_iter().collect();
    link_slack.sort_by_key(|((s, r), _)| (s.0, r.0));
    (slack, link_slack)
}

/// A counterfactual to re-time the recorded graph under.
#[derive(Debug, Clone)]
pub struct WhatIf<'a> {
    /// Perturbations applied *on top of* the recorded run: compute
    /// slowdowns (factors multiply the recorded, already-scaled work) and
    /// extra link latency (added to each packet's recorded departure
    /// delay).
    pub profile: &'a PerturbationProfile,
    /// Re-time as if checkpoint writes were free (both boundary writes
    /// and end-of-run drains).
    pub free_checkpoint: bool,
}

impl<'a> WhatIf<'a> {
    /// A counterfactual that only applies `profile`.
    pub fn perturb(profile: &'a PerturbationProfile) -> Self {
        Self {
            profile,
            free_checkpoint: false,
        }
    }
}

/// What [`whatif`] produces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct WhatIfResult {
    /// Re-timed final clock per device.
    pub device_clocks: Vec<Nanos>,
    /// Re-timed makespan.
    pub makespan: Nanos,
}

/// Re-times the recorded graph under `w` without re-running any
/// executor: a forward max-plus replay over the recorded structure with
/// the executors' exact arithmetic (same launch charges, same
/// `arrival = max(ready, sent_at + wire)`, same ack-window blocking,
/// same `round(ns × factor)` scaling). See the module docs for the
/// domain on which this equals a ground-truth re-simulation.
pub fn whatif(schedule: &Schedule, g: &SpanGraph, w: &WhatIf<'_>) -> WhatIfResult {
    let st = build_structure(schedule, g);
    let devices = g.per_device.len();
    let mut clock: Vec<Nanos> = (0..devices)
        .map(|d| g.per_device[d].first().map_or(0, |s| s.start))
        .collect();
    let mut next = vec![0usize; devices];
    // Re-timed packet departures and arrivals per channel, in FIFO order.
    let mut departures: HashMap<ChanKey, Vec<Nanos>> = HashMap::new();
    let mut arrivals: HashMap<ChanKey, Vec<Nanos>> = HashMap::new();
    // Per-iteration packet numbering per (src, dst) pair, the emulator's
    // `sends_to` counter (reset each iteration).
    let mut nth: Vec<HashMap<u32, usize>> = vec![HashMap::new(); devices];
    let mut cur_iter: Vec<u32> = vec![0; devices];
    let capacity = g.channel_capacity.max(1);

    loop {
        let mut progressed = false;
        for d in 0..devices {
            while next[d] < g.per_device[d].len() {
                let i = next[d];
                let s = g.per_device[d][i];
                if s.iter != cur_iter[d] {
                    cur_iter[d] = s.iter;
                    nth[d].clear();
                }
                match &st.kind[d][i] {
                    NodeKind::Local(_) => {
                        let work = if s.pc == CKPT_PC {
                            if w.free_checkpoint {
                                0
                            } else {
                                s.work_ns
                            }
                        } else {
                            w.profile
                                .scaled_compute(DeviceId(d as u32), s.iter, s.pc as usize, s.work_ns)
                        };
                        // The serving gate is exogenous: it holds under
                        // any counterfactual.
                        clock[d] = clock[d].max(s.gate_ns) + work;
                    }
                    NodeKind::Send {
                        key, ord, delta, ..
                    } => {
                        let (key, ord, delta) = (*key, *ord, *delta);
                        // Capacity ack: the (ord - capacity)-th arrival
                        // must exist before this send can complete.
                        let ack = if ord >= capacity {
                            match arrivals.get(&key).and_then(|v| v.get(ord - capacity)) {
                                Some(&t) => t,
                                None => break, // blocked: peer must advance
                            }
                        } else {
                            0
                        };
                        let ready = clock[d] + s.work_ns;
                        clock[d] = ready.max(ack);
                        let n = nth[d].entry(key.1).or_insert(0);
                        let extra =
                            w.profile
                                .link_extra(DeviceId(d as u32), DeviceId(key.1), s.iter, *n);
                        *n += 1;
                        let q = departures.entry(key).or_default();
                        debug_assert_eq!(q.len(), ord);
                        q.push(clock[d] + delta + extra);
                    }
                    NodeKind::Recv { key, ord, .. } => {
                        let (key, ord) = (*key, *ord);
                        let sent = match departures.get(&key).and_then(|v| v.get(ord)) {
                            Some(&t) => t,
                            None => break, // blocked: sender must advance
                        };
                        let ready = clock[d] + s.work_ns;
                        let arrival = ready.max(sent + s.wire_ns);
                        let q = arrivals.entry(key).or_default();
                        debug_assert_eq!(q.len(), ord);
                        q.push(arrival);
                        clock[d] = arrival;
                    }
                }
                next[d] = i + 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    debug_assert!(
        (0..devices).all(|d| next[d] == g.per_device[d].len()),
        "what-if replay did not quiesce (structural deadlock in recording?)"
    );
    WhatIfResult {
        makespan: clock.iter().copied().max().unwrap_or(0),
        device_clocks: clock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{simulate_timeline_ckpt, simulate_timeline_serving, simulate_timeline_with};
    use mario_ir::{CheckpointPolicy, LinkSlack, SchemeKind, SlowdownWindow, UnitCost};
    use mario_schedules::{generate, ScheduleConfig};

    fn run(scheme: SchemeKind, devices: u32, micros: u32) -> (mario_ir::Schedule, crate::SimTimeline) {
        let s = generate(ScheduleConfig::new(scheme, devices, micros));
        let t = simulate_timeline_with(
            &s,
            &UnitCost::paper_grid(),
            1,
            &PerturbationProfile::identity(),
        )
        .unwrap();
        (s, t)
    }

    /// The path tiles [0, makespan] exactly: contiguous, in order, and
    /// the per-class breakdown reconciles bit for bit.
    fn assert_path_invariants(report: &CritReport) {
        assert_eq!(report.breakdown.total(), report.makespan);
        let mut cursor = 0;
        for seg in &report.path {
            assert_eq!(seg.start, cursor, "path has a gap or overlap");
            assert!(seg.end >= seg.start);
            cursor = seg.end;
        }
        assert_eq!(cursor, report.makespan, "path does not reach the makespan");
    }

    #[test]
    fn path_tiles_makespan_all_schemes() {
        for (scheme, cap) in [
            (SchemeKind::GPipe, 1),
            (SchemeKind::OneFOneB, 1),
            (SchemeKind::Chimera, 2),
            (SchemeKind::Interleave { chunks: 2 }, 2),
            (SchemeKind::Wave { chunks: 2 }, 2),
            (SchemeKind::ForwardOnly, 1),
            (SchemeKind::ZeroBubbleH1, 1),
            (SchemeKind::ZeroBubbleV, 2),
        ] {
            let s = generate(ScheduleConfig::new(scheme, 4, 8));
            let t = simulate_timeline_ckpt(
                &s,
                &UnitCost::paper_grid(),
                cap,
                &PerturbationProfile::identity(),
                2,
                None,
            )
            .unwrap();
            let report = analyze(&s, &t.spans);
            assert_eq!(report.makespan, t.total_ns, "{scheme:?}");
            assert_path_invariants(&report);
            // Training runs have no exogenous gates: the path never
            // contains a bubble, and every on-path op has zero slack.
            assert_eq!(report.breakdown.bubble_ns, 0, "{scheme:?}");
            for (d, ops) in report.on_path.iter().enumerate() {
                for (i, &on) in ops.iter().enumerate() {
                    if on {
                        assert_eq!(
                            report.slack[d][i], 0,
                            "{scheme:?}: on-path op (d{d}, #{i}) has slack"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zb_h1_path_shorter_than_1f1b_by_closed_form() {
        // 1F1B makespan (3m + 3(p-1))t vs ZB-H1 (3m + 2(p-1))t: the
        // critical path is exactly (p-1)t shorter.
        for (p, m) in [(2u32, 4u32), (4, 8), (8, 16)] {
            let (s1, t1) = run(SchemeKind::OneFOneB, p, m);
            let (sz, tz) = run(SchemeKind::ZeroBubbleH1, p, m);
            let r1 = analyze(&s1, &t1.spans);
            let rz = analyze(&sz, &tz.spans);
            assert_path_invariants(&r1);
            assert_path_invariants(&rz);
            assert_eq!(
                r1.makespan - rz.makespan,
                ((p - 1) * 1_000) as u64,
                "p={p} m={m}"
            );
        }
    }

    #[test]
    fn one_f_one_b_last_stage_warmup_recv_has_zero_slack() {
        // The last stage of 1F1B is busy back-to-back from its first
        // activation's arrival to the end of the iteration: its warmup
        // recv sits on the critical path and has zero slack.
        let (s, t) = run(SchemeKind::OneFOneB, 4, 8);
        let report = analyze(&s, &t.spans);
        let last = 3usize;
        let program = s.program(DeviceId(last as u32));
        let first_recv = t.spans.per_device[last]
            .iter()
            .position(|sp| {
                sp.pc != CKPT_PC
                    && matches!(
                        program.get(sp.pc as usize).map(|x| x.kind),
                        Some(InstrKind::RecvAct { .. })
                    )
            })
            .expect("last stage has a warmup recv");
        assert_eq!(report.slack[last][first_recv], 0);
        assert!(report.on_path[last][first_recv]);
    }

    #[test]
    fn zb_h1_backfilled_bw_slack_equals_the_bubble_it_fills() {
        // A ZB-H1 weight-gradient op backfilled in front of a critical
        // wire-gated recv can slow by exactly the recv's idle gap before
        // the makespan moves: slack(Bw) == the bubble it fills.
        let (s, t) = run(SchemeKind::ZeroBubbleH1, 4, 8);
        let report = analyze(&s, &t.spans);
        let mut checked = 0;
        for (d, spans) in t.spans.per_device.iter().enumerate() {
            let program = s.program(DeviceId(d as u32));
            for i in 0..spans.len().saturating_sub(1) {
                let cur = spans[i];
                let nxt = spans[i + 1];
                let is_bw = cur.pc != CKPT_PC
                    && matches!(
                        program.get(cur.pc as usize).map(|x| x.kind),
                        Some(InstrKind::BackwardWeight)
                    );
                let nxt_gap = nxt.end.saturating_sub(nxt.start + nxt.work_ns);
                // Successor: a critical (slack-0) arrival-gated recv.
                let nxt_recv = nxt.pc != CKPT_PC
                    && matches!(
                        program.get(nxt.pc as usize).map(|x| x.kind),
                        Some(InstrKind::RecvAct { .. } | InstrKind::RecvGrad { .. })
                    );
                if is_bw && nxt_recv && nxt_gap > 0 && report.slack[d][i + 1] == 0 {
                    assert_eq!(
                        report.slack[d][i], nxt_gap,
                        "d{d} op#{i}: Bw slack != bubble"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no backfilled Bw found in ZB-H1");
    }

    #[test]
    fn whatif_identity_reproduces_the_recording() {
        for scheme in [SchemeKind::OneFOneB, SchemeKind::ZeroBubbleH1] {
            let (s, t) = run(scheme, 4, 8);
            let w = whatif(
                &s,
                &t.spans,
                &WhatIf::perturb(&PerturbationProfile::identity()),
            );
            assert_eq!(w.makespan, t.total_ns, "{scheme:?}");
            assert_eq!(w.device_clocks, t.device_clocks, "{scheme:?}");
        }
    }

    #[test]
    fn whatif_straggler_matches_ground_truth_resimulation() {
        let (s, t) = run(SchemeKind::OneFOneB, 4, 8);
        for dev in 0..4u32 {
            let profile =
                PerturbationProfile::identity().with_straggler(DeviceId(dev), 3.0);
            let truth =
                simulate_timeline_with(&s, &UnitCost::paper_grid(), 1, &profile).unwrap();
            let w = whatif(&s, &t.spans, &WhatIf::perturb(&profile));
            assert_eq!(w.makespan, truth.total_ns, "straggler d{dev}");
            assert_eq!(w.device_clocks, truth.device_clocks, "straggler d{dev}");
        }
    }

    #[test]
    fn whatif_windowed_slowdown_matches_ground_truth() {
        let (s, t) = run(SchemeKind::ZeroBubbleH1, 4, 8);
        let profile = PerturbationProfile::identity().with_slowdown(SlowdownWindow {
            device: DeviceId(1),
            factor: 2.5,
            from_pc: 3,
            until_pc: 17,
            iteration: Some(0),
        });
        let truth = simulate_timeline_with(&s, &UnitCost::paper_grid(), 1, &profile).unwrap();
        let w = whatif(&s, &t.spans, &WhatIf::perturb(&profile));
        assert_eq!(w.makespan, truth.total_ns);
        assert_eq!(w.device_clocks, truth.device_clocks);
    }

    #[test]
    fn whatif_link_latency_matches_ground_truth() {
        let (s, t) = run(SchemeKind::OneFOneB, 4, 8);
        for (nth, iteration) in [(None, None), (Some(2), Some(0))] {
            let profile = PerturbationProfile::identity().with_link_slack(LinkSlack {
                src: DeviceId(0),
                dst: DeviceId(1),
                nth,
                extra_ns: 700,
                iteration,
            });
            let truth =
                simulate_timeline_with(&s, &UnitCost::paper_grid(), 1, &profile).unwrap();
            let w = whatif(&s, &t.spans, &WhatIf::perturb(&profile));
            assert_eq!(w.makespan, truth.total_ns, "nth={nth:?}");
            assert_eq!(w.device_clocks, truth.device_clocks, "nth={nth:?}");
        }
    }

    #[test]
    fn whatif_free_checkpoint_matches_policy_free_resimulation() {
        // Record WITH a synchronous flat checkpoint, re-time with
        // free_checkpoint: must equal the ground-truth run without any
        // checkpoint overhead.
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let identity = PerturbationProfile::identity();
        let policy = CheckpointPolicy::every(1).with_write_ns(5_000);
        let ck = simulate_timeline_ckpt(&s, &UnitCost::paper_grid(), 1, &identity, 2, Some(policy))
            .unwrap();
        let free = simulate_timeline_ckpt(&s, &UnitCost::paper_grid(), 1, &identity, 2, None)
            .unwrap();
        let w = whatif(
            &s,
            &ck.spans,
            &WhatIf {
                profile: &identity,
                free_checkpoint: true,
            },
        );
        assert_eq!(w.makespan, free.total_ns);
        assert_eq!(w.device_clocks, free.device_clocks);
        // And the recorded run attributes the write to the path.
        let report = analyze(&s, &ck.spans);
        assert_path_invariants(&report);
        assert!(report.breakdown.ckpt_ns > 0);
    }

    #[test]
    fn serving_gate_shows_up_as_path_bubble() {
        // A held ingress release starves the pipeline: the wait must
        // surface on the path as an exogenous bubble, and the path must
        // still tile the makespan exactly.
        let s = generate(ScheduleConfig::new(SchemeKind::ForwardOnly, 4, 4));
        let release: Vec<Nanos> = vec![0, 10_000, 20_000, 30_000];
        let (t, _done) = simulate_timeline_serving(
            &s,
            &UnitCost::paper_grid(),
            1,
            &PerturbationProfile::identity(),
            &release,
        )
        .unwrap();
        let report = analyze(&s, &t.spans);
        assert_path_invariants(&report);
        assert!(report.breakdown.bubble_ns > 0, "gate wait not attributed");
    }

    #[test]
    fn link_slack_is_positive_off_the_critical_chain() {
        let (s, t) = run(SchemeKind::OneFOneB, 4, 8);
        let report = analyze(&s, &t.spans);
        assert!(!report.link_slack.is_empty());
        // Zero-cost wires: every recorded message arrived instantly, so
        // headroom is bounded by the receiver's own latest-start time and
        // is never "negative" (saturated at 0 on the critical chain).
        for ((src, dst), ns) in &report.link_slack {
            assert!(src.0 != dst.0);
            let _ = ns;
        }
    }

    #[test]
    fn top_path_ops_are_sorted_and_bounded() {
        let (s, t) = run(SchemeKind::OneFOneB, 4, 8);
        let report = analyze(&s, &t.spans);
        let top = report.top_path_ops(5);
        assert!(top.len() <= 5);
        for w in top.windows(2) {
            assert!(w[0].len_ns() >= w[1].len_ns());
        }
        assert!(top.iter().all(|o| !matches!(o.class, SegClass::Bubble)));
    }
}
