//! Pass 4 — *prepose-forward* (paper §5.1): move checkpointed forwards
//! into earlier pipeline bubbles. Because a checkpointed forward retains
//! only a tiny stashed input, pulling extra micro-batches forward no longer
//! explodes memory (the reason this is infeasible without checkpointing),
//! and the idle slot it leaves behind lets pass 2 hide more recomputation.
//!
//! Mechanics: the device program is parsed into *groups* — one compute
//! instruction plus its attached receives (before) and sends (after). A
//! checkpointed-forward group may swap with an immediately preceding
//! backward/recompute group. Such a swap never reorders two messages on
//! the same directed channel (the forward group's `RA`/`SA` and the
//! backward group's `RG`/`SG` travel on disjoint links), so channel FIFO
//! order is preserved — this is the send-buffer discipline the paper
//! describes for keeping `SA`/`RA` paired under blocking p2p.
//!
//! Each candidate swap is accepted only if the simulated makespan strictly
//! improves and (when a capacity is given) memory still fits — the
//! "iteratively applied, simulator-guided" refinement of §5.3.

use crate::simulator::{simulate_memory, simulate_timeline};
use mario_ir::{CostModel, DeviceId, DeviceProgram, Instr, InstrKind, Nanos, Schedule};

/// Options shared by the simulator-guided passes.
#[derive(Debug, Clone, Copy)]
pub struct PreposeOptions {
    /// p2p buffer depth assumed by the timeline simulation.
    pub channel_capacity: usize,
    /// Per-device memory budget; swaps that exceed it are rejected.
    pub mem_capacity: Option<u64>,
    /// Upper bound on improvement rounds.
    pub max_rounds: usize,
}

impl Default for PreposeOptions {
    fn default() -> Self {
        Self {
            channel_capacity: 1,
            mem_capacity: None,
            max_rounds: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupKind {
    CkptForward,
    PlainForward,
    Backward,
    Recompute,
    Other,
}

#[derive(Debug, Clone, Copy)]
struct Group {
    start: usize,
    end: usize, // exclusive
    kind: GroupKind,
}

/// Parses a program into compute groups with attached communication.
fn parse_groups(prog: &DeviceProgram) -> Vec<Group> {
    let instrs = prog.instrs();
    let mut groups = Vec::new();
    let mut i = 0usize;
    while i < instrs.len() {
        let start = i;
        // Leading receives attach to the next compute.
        while i < instrs.len() && instrs[i].kind.is_recv() {
            i += 1;
        }
        if i < instrs.len() && instrs[i].kind.is_compute() {
            let kind = match instrs[i].kind {
                InstrKind::Forward { ckpt: true } => GroupKind::CkptForward,
                InstrKind::Forward { ckpt: false } => GroupKind::PlainForward,
                // Split halves group like the full backward: either may
                // legally swap with a checkpointed forward (the simulator
                // guard rejects harmful swaps anyway).
                InstrKind::Backward
                | InstrKind::BackwardInput
                | InstrKind::BackwardWeight => GroupKind::Backward,
                InstrKind::Recompute => GroupKind::Recompute,
                _ => unreachable!(),
            };
            i += 1;
            // Trailing sends attach to this compute.
            while i < instrs.len() && instrs[i].kind.is_send() {
                i += 1;
            }
            groups.push(Group {
                start,
                end: i,
                kind,
            });
        } else {
            // Dangling comm / collective / optimizer instructions become
            // opaque singleton groups.
            if i == start {
                i += 1;
            }
            groups.push(Group {
                start,
                end: i,
                kind: GroupKind::Other,
            });
        }
    }
    groups
}

fn rebuild(prog: &DeviceProgram, groups: &[Group], order: &[usize]) -> DeviceProgram {
    let instrs = prog.instrs();
    let mut out: Vec<Instr> = Vec::with_capacity(instrs.len());
    for &g in order {
        out.extend_from_slice(&instrs[groups[g].start..groups[g].end]);
    }
    DeviceProgram::from_instrs(prog.device, out)
}

fn fits(schedule: &Schedule, cost: &dyn CostModel, cap: Option<u64>) -> bool {
    match cap {
        None => true,
        Some(c) => simulate_memory(schedule, cost, Some(c)).oom.is_none(),
    }
}

/// Runs the prepose-forward pass. Returns the number of accepted swaps.
pub fn prepose_forward(
    schedule: &mut Schedule,
    cost: &dyn CostModel,
    opts: PreposeOptions,
) -> usize {
    let mut accepted = 0usize;
    let mut best: Nanos = match simulate_timeline(schedule, cost, opts.channel_capacity) {
        Ok(t) => t.total_ns,
        Err(_) => return 0,
    };
    for _ in 0..opts.max_rounds {
        let mut improved = false;
        for d in 0..schedule.devices() {
            let dev = DeviceId(d);
            loop {
                let groups = parse_groups(schedule.program(dev));
                // Find a ckpt-forward group preceded by a backward or
                // recompute group whose swap improves the makespan.
                let mut applied = false;
                for gi in 1..groups.len() {
                    if groups[gi].kind != GroupKind::CkptForward {
                        continue;
                    }
                    if !matches!(
                        groups[gi - 1].kind,
                        GroupKind::Backward | GroupKind::Recompute
                    ) {
                        continue;
                    }
                    let mut order: Vec<usize> = (0..groups.len()).collect();
                    order.swap(gi - 1, gi);
                    let candidate_prog = rebuild(schedule.program(dev), &groups, &order);
                    let old_prog =
                        std::mem::replace(schedule.program_mut(dev), candidate_prog);
                    let ok = match simulate_timeline(schedule, cost, opts.channel_capacity) {
                        Ok(t) if t.total_ns < best => {
                            fits(schedule, cost, opts.mem_capacity).then_some(t.total_ns)
                        }
                        _ => None,
                    };
                    match ok {
                        Some(t) => {
                            best = t;
                            accepted += 1;
                            applied = true;
                            improved = true;
                            break;
                        }
                        None => {
                            *schedule.program_mut(dev) = old_prog;
                        }
                    }
                }
                if !applied {
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::apply_checkpoint::apply_checkpoint;
    use crate::passes::overlap_recompute::overlap_recompute;
    use crate::passes::remove_redundancy::remove_redundancy;
    use mario_ir::{validate, SchemeKind, UnitCost};
    use mario_schedules::{generate, ScheduleConfig};

    fn prepared(scheme: SchemeKind, d: u32, n: u32) -> Schedule {
        let mut s = generate(ScheduleConfig::new(scheme, d, n));
        apply_checkpoint(&mut s);
        overlap_recompute(&mut s);
        remove_redundancy(&mut s);
        s
    }

    #[test]
    fn group_parsing_attaches_comm_to_compute() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 3, 4));
        let groups = parse_groups(s.program(DeviceId(1)));
        // Every group is contiguous and covers the program exactly.
        let total: usize = groups.iter().map(|g| g.end - g.start).sum();
        assert_eq!(total, s.program(DeviceId(1)).len());
        for w in groups.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Middle device: each forward group is RA + F + SA (3 instrs).
        let f_groups: Vec<_> = groups
            .iter()
            .filter(|g| g.kind == GroupKind::PlainForward)
            .collect();
        assert!(f_groups.iter().all(|g| g.end - g.start == 3));
    }

    #[test]
    fn prepose_never_invalidates_and_never_regresses() {
        let cost = UnitCost::paper_grid();
        for scheme in [SchemeKind::OneFOneB, SchemeKind::Chimera] {
            let mut s = prepared(scheme, 4, 8);
            let before = simulate_timeline(&s, &cost, 1).unwrap().total_ns;
            prepose_forward(&mut s, &cost, PreposeOptions::default());
            validate(&s).unwrap_or_else(|e| panic!("{scheme:?}: {e:?}"));
            let after = simulate_timeline(&s, &cost, 1).unwrap().total_ns;
            assert!(after <= before, "{scheme:?}: {after} > {before}");
        }
    }

    #[test]
    fn prepose_improves_checkpointed_1f1b() {
        // The Fig. 2 situation: with checkpointing applied and overlap
        // done, preposing forwards reclaims more bubble time.
        let cost = UnitCost::paper_grid();
        let mut s = prepared(SchemeKind::OneFOneB, 4, 4);
        let before = simulate_timeline(&s, &cost, 1).unwrap().total_ns;
        let swaps = prepose_forward(&mut s, &cost, PreposeOptions::default());
        // Re-run overlap after preposing (the passes iterate).
        overlap_recompute(&mut s);
        let after = simulate_timeline(&s, &cost, 1).unwrap().total_ns;
        assert!(
            swaps > 0 && after < before,
            "swaps={swaps}, {before} -> {after}"
        );
    }

    #[test]
    fn memory_cap_rejects_explosive_swaps() {
        let cost = UnitCost::paper_grid().with_ckpt_bytes(1);
        let mut s = prepared(SchemeKind::OneFOneB, 4, 8);
        let base_mem = simulate_memory(&s, &cost, None).max_peak();
        // A cap exactly at the current peak: swaps may still be accepted,
        // but never one that pushes past the cap.
        prepose_forward(
            &mut s,
            &cost,
            PreposeOptions {
                mem_capacity: Some(base_mem),
                ..Default::default()
            },
        );
        assert!(simulate_memory(&s, &cost, None).max_peak() <= base_mem);
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
    }
}
