//! Pass 5 (extension) — *split-backward*, the paper's stated future work
//! (§8: "Mario can further adopt the split backward parts of ZB-H1 to
//! overlap remaining bubbles").
//!
//! Following Zero Bubble (Qi et al., ICLR'24), each backward is split into
//! its **input-gradient** half `Bi` (on the critical path: the upstream
//! stage waits for it) and its **weight-gradient** half `Bw` (off the
//! critical path: only the optimizer step consumes it). `Bi` stays where
//! the backward was — and the `SG` that ships the input gradient now fires
//! half a backward earlier — while `Bw` is *deferred* into the next
//! communication-wait slot (just before the following `RG`/`RA`) or, for
//! the tail micro-batches, to the end of the iteration, where the cooldown
//! bubbles absorb it.
//!
//! Memory note: the stage's activations stay live until `Bw` (the weight
//! GEMM reads them), so deferral trades a bounded amount of extra live
//! activation for bubble reduction — exactly ZB-H1's trade.

use mario_ir::{DeviceId, Instr, InstrKind, Schedule};

/// How far a deferred `Bw` may float.
#[derive(Debug, Clone, Copy)]
pub struct SplitOptions {
    /// Maximum number of weight-halves deferred per device; halves beyond
    /// the cap are placed directly after their input half (bounds the
    /// total wgrad stashes held across the iteration).
    pub max_deferred: usize,
}

impl Default for SplitOptions {
    fn default() -> Self {
        Self { max_deferred: 4 }
    }
}

/// Splits every full backward into `Bi` + deferred `Bw`. Returns the number
/// of backwards split. Idempotent (already-split pairs are left alone).
pub fn split_backward(schedule: &mut Schedule, opts: SplitOptions) -> usize {
    let mut split = 0;
    for d in 0..schedule.devices() {
        let prog = schedule.program_mut(DeviceId(d));
        let pairs: Vec<_> = prog
            .instrs()
            .iter()
            .filter(|i| i.kind == InstrKind::Backward)
            .map(|i| (i.micro, i.part))
            .collect();
        let mut deferred = 0usize;
        for (m, p) in pairs {
            let b = prog.backward_pos(m, p).expect("collected above");
            prog.replace_kind(b, InstrKind::BackwardInput);
            // Find the insertion slot for Bw: just before the next receive
            // after the (possibly present) SG that follows Bi — the device
            // would idle there waiting for a message anyway. Past
            // `max_deferred`, fall back to right after Bi (degenerate but
            // memory-safe).
            let mut slot = b + 1;
            // Skip the sends attached to Bi (SG of this micro).
            while slot < prog.len() && prog.instrs()[slot].kind.is_send() {
                slot += 1;
            }
            if deferred < opts.max_deferred {
                let mut probe = slot;
                while probe < prog.len() {
                    let instr = &prog.instrs()[probe];
                    let k = &instr.kind;
                    if k.is_recv() {
                        // Only a receive of the *same* part is a legal wait
                        // slot: floating past another chunk's receive would
                        // reorder `Bw` against that part's per-(pair, class,
                        // part) FIFO traffic on interleaved/bidirectional
                        // schedules. A different-part receive ends the float
                        // window — fall back to right after `Bi`.
                        if instr.part == p {
                            slot = probe;
                            deferred += 1;
                        }
                        break;
                    }
                    if matches!(k, InstrKind::AllReduce | InstrKind::OptimizerStep) {
                        slot = probe;
                        deferred += 1;
                        break;
                    }
                    probe += 1;
                }
                if probe == prog.len() {
                    slot = prog.len();
                    deferred += 1;
                }
            }
            prog.insert(slot, Instr {
                kind: InstrKind::BackwardWeight,
                micro: m,
                part: p,
            });
            split += 1;
        }
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{apply_checkpoint, overlap_recompute, remove_redundancy};
    use crate::simulator::{simulate_memory, simulate_timeline};
    use mario_ir::{validate, InstrTag, SchemeKind, UnitCost};
    use mario_schedules::{generate, ScheduleConfig};

    #[test]
    fn split_schedules_stay_valid_on_every_scheme() {
        for scheme in [
            SchemeKind::GPipe,
            SchemeKind::OneFOneB,
            SchemeKind::Chimera,
            SchemeKind::Interleave { chunks: 2 },
        ] {
            let mut s = generate(ScheduleConfig::new(scheme, 4, 8));
            let n = split_backward(&mut s, SplitOptions::default());
            assert!(n > 0);
            let opts = mario_ir::ValidateOptions {
                channel_capacity: 2,
                ..Default::default()
            };
            mario_ir::validate_with(&s, opts).unwrap_or_else(|e| panic!("{scheme:?}: {e:?}"));
            assert_eq!(s.count_tag(InstrTag::Backward), 0);
            assert_eq!(
                s.count_tag(InstrTag::BackwardInput),
                s.count_tag(InstrTag::BackwardWeight)
            );
        }
    }

    #[test]
    fn split_reduces_1f1b_makespan() {
        // ZB-H1's claim: deferring W halves fills the warmup/cooldown
        // bubbles, shortening the iteration.
        let cost = UnitCost::paper_grid();
        let base = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let t_base = simulate_timeline(&base, &cost, 1).unwrap().total_ns;
        let mut zb = base.clone();
        split_backward(&mut zb, SplitOptions::default());
        let t_zb = simulate_timeline(&zb, &cost, 1).unwrap().total_ns;
        assert!(
            t_zb < t_base,
            "split backward should shrink the bubble: {t_zb} vs {t_base}"
        );
    }

    #[test]
    fn split_costs_bounded_extra_memory() {
        let cost = UnitCost::paper_grid();
        let base = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let m_base = simulate_memory(&base, &cost, None).max_peak();
        let mut zb = base.clone();
        split_backward(
            &mut zb,
            SplitOptions { max_deferred: 2 },
        );
        let m_zb = simulate_memory(&zb, &cost, None).max_peak();
        assert!(
            m_zb <= m_base + 2,
            "deferral cap must bound extra memory: {m_zb} vs {m_base}"
        );
    }

    #[test]
    fn composes_with_mario_checkpointing() {
        let cost = UnitCost::paper_grid();
        let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        apply_checkpoint(&mut s);
        overlap_recompute(&mut s);
        remove_redundancy(&mut s);
        split_backward(&mut s, SplitOptions::default());
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
        // The split halves of checkpointed pairs still free the restored
        // activations: memory stays at the Mario level (one replica plus
        // the bounded deferrals).
        let peaks = simulate_memory(&s, &cost, None).peak;
        assert!(peaks.iter().all(|&p| p <= 4), "{peaks:?}");
    }

    /// Regression (interleaved deferral): a deferred `Bw` must never float
    /// past a receive belonging to a different part/chunk — on W/X schedules
    /// that reorders it against the other chunk's FIFO traffic.
    fn assert_bw_never_crosses_foreign_recv(s: &Schedule) {
        for d in 0..s.devices() {
            let prog = s.program(DeviceId(d));
            for (bw_pos, i) in prog.iter() {
                if i.kind != InstrKind::BackwardWeight {
                    continue;
                }
                let bi_pos = prog
                    .position(|x| {
                        x.kind == InstrKind::BackwardInput
                            && x.micro == i.micro
                            && x.part == i.part
                    })
                    .expect("every Bw has a Bi");
                for between in &prog.instrs()[bi_pos..bw_pos] {
                    if between.kind.is_recv() {
                        assert_eq!(
                            between.part, i.part,
                            "d{d}: Bw{}^{} floated past a part-{} receive",
                            i.micro.0, i.part.0, between.part.0
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn deferred_bw_stays_within_its_part_on_interleave() {
        let mut s = generate(ScheduleConfig::new(
            SchemeKind::Interleave { chunks: 2 },
            4,
            8,
        ));
        split_backward(&mut s, SplitOptions::default());
        let opts = mario_ir::ValidateOptions {
            channel_capacity: 2,
            ..Default::default()
        };
        mario_ir::validate_with(&s, opts).unwrap_or_else(|e| panic!("{e:?}"));
        assert_bw_never_crosses_foreign_recv(&s);
    }

    #[test]
    fn deferred_bw_stays_within_its_part_on_chimera() {
        let mut s = generate(ScheduleConfig::new(SchemeKind::Chimera, 4, 8));
        split_backward(&mut s, SplitOptions::default());
        let opts = mario_ir::ValidateOptions {
            channel_capacity: 2,
            ..Default::default()
        };
        mario_ir::validate_with(&s, opts).unwrap_or_else(|e| panic!("{e:?}"));
        assert_bw_never_crosses_foreign_recv(&s);
    }

    #[test]
    fn idempotent() {
        let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        assert!(split_backward(&mut s, SplitOptions::default()) > 0);
        assert_eq!(split_backward(&mut s, SplitOptions::default()), 0);
    }

    #[test]
    fn runs_on_the_emulator() {
        let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        split_backward(&mut s, SplitOptions::default());
        let r = mario_cluster::run(
            &s,
            &UnitCost::paper_grid(),
            mario_cluster::EmulatorConfig::default(),
        )
        .unwrap();
        assert!(r.total_ns > 0);
        // Simulator and emulator still agree exactly.
        let sim = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
        assert_eq!(sim.device_clocks, r.device_clocks);
    }
}
