//! Pass 3 — *remove-redundancy* (paper §5.1): when a checkpointed forward
//! and its backward are adjacent (no other compute in between), the
//! activation would be dropped and instantly restored — pure overhead with
//! no memory benefit — so the checkpoint and its recompute are removed.
//!
//! This fires on the last pipeline stage (where 1F1B strictly alternates
//! F/B) and in cool-down tails.

use mario_ir::{InstrKind, Schedule};

/// Reverts pointless checkpoints. Returns the number reverted. Idempotent.
pub fn remove_redundancy(schedule: &mut Schedule) -> usize {
    let mut reverted = 0;
    for d in 0..schedule.devices() {
        let prog = schedule.program_mut(mario_ir::DeviceId(d));
        let pairs: Vec<_> = prog
            .instrs()
            .iter()
            .filter(|i| i.is_ckpt_forward())
            .map(|i| (i.micro, i.part))
            .collect();
        for (m, p) in pairs {
            let f = prog.forward_pos(m, p).expect("pair exists");
            let b = prog
                .effective_backward_pos(m, p)
                .expect("ckpt pair has backward");
            let rc = prog
                .recompute_pos(m, p)
                .expect("ckpt pair has recompute");
            // Any compute other than our own recompute between CFW and BW?
            let other_compute = (f + 1..b)
                .any(|i| i != rc && prog.instrs()[i].kind.is_compute());
            if !other_compute {
                prog.replace_kind(f, InstrKind::Forward { ckpt: false });
                prog.remove(rc);
                reverted += 1;
            }
        }
    }
    reverted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::apply_checkpoint::apply_checkpoint;
    use crate::passes::overlap_recompute::overlap_recompute;
    use mario_ir::{validate, DeviceId, InstrTag, SchemeKind};
    use mario_schedules::{generate, ScheduleConfig};

    #[test]
    fn last_device_checkpoints_are_all_removed() {
        let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        apply_checkpoint(&mut s);
        let n = remove_redundancy(&mut s);
        assert!(n >= 8, "at least the last device's 8 pairs, got {n}");
        let last = s.program(DeviceId(3));
        assert_eq!(last.count(|i| i.is_ckpt_forward()), 0);
        assert_eq!(last.count(|i| i.kind == InstrKind::Recompute), 0);
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn early_devices_keep_their_checkpoints() {
        let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        apply_checkpoint(&mut s);
        remove_redundancy(&mut s);
        // Device 0's steady-state pairs have other compute in between.
        assert!(s.program(DeviceId(0)).count(|i| i.is_ckpt_forward()) > 0);
    }

    #[test]
    fn idempotent_and_order_independent_with_overlap() {
        let mut a = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        apply_checkpoint(&mut a);
        overlap_recompute(&mut a);
        remove_redundancy(&mut a);
        assert_eq!(remove_redundancy(&mut a), 0);
        validate(&a).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn recompute_count_matches_ckpt_count_afterwards() {
        for scheme in [
            SchemeKind::OneFOneB,
            SchemeKind::Chimera,
            SchemeKind::Interleave { chunks: 2 },
        ] {
            let mut s = generate(ScheduleConfig::new(scheme, 4, 8));
            apply_checkpoint(&mut s);
            remove_redundancy(&mut s);
            assert_eq!(
                s.count_ckpt_forwards(),
                s.count_tag(InstrTag::Recompute),
                "{scheme:?}"
            );
            validate(&s).unwrap_or_else(|e| panic!("{scheme:?}: {e:?}"));
        }
    }

    #[test]
    fn gpipe_keeps_all_checkpoints() {
        // GPipe never has F adjacent to its own B (all forwards first).
        let mut s = generate(ScheduleConfig::new(SchemeKind::GPipe, 4, 8));
        apply_checkpoint(&mut s);
        // Exception: with N micro-batches, the *last* micro-batch's forward
        // on the last device is immediately followed by backwards — but in
        // GPipe order B0 comes first, so only if N == 1 would it be
        // adjacent. With N = 8 nothing is removed on devices 0..2; on the
        // last device, F7 is followed by B0..B7, and only B7 matches F7's
        // pair, so the span contains other compute.
        assert_eq!(remove_redundancy(&mut s), 0);
    }
}
