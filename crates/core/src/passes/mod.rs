//! The graph tuner (paper §5.1): four optimization passes applied
//! iteratively to tessellate activation checkpointing into a pipeline
//! schedule.

pub mod apply_checkpoint;
pub mod overlap_recompute;
pub mod prepose_forward;
pub mod remove_redundancy;
pub mod split_backward;

pub use apply_checkpoint::apply_checkpoint;
pub use overlap_recompute::overlap_recompute;
pub use prepose_forward::{prepose_forward, PreposeOptions};
pub use remove_redundancy::remove_redundancy;
pub use split_backward::{split_backward, SplitOptions};

use mario_ir::{CostModel, Schedule};
use serde::{Deserialize, Serialize};

/// What the pass pipeline did.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassStats {
    /// Forwards converted to checkpointed forwards (pass 1).
    pub checkpointed: usize,
    /// Recomputes hoisted into bubbles (pass 2).
    pub overlapped: usize,
    /// Redundant checkpoints reverted (pass 3).
    pub reverted: usize,
    /// Forward groups preposed (pass 4).
    pub preposed: usize,
}

/// Which passes to run.
#[derive(Debug, Clone, Copy)]
pub struct GraphTunerOptions {
    /// Run pass 1 (apply-checkpoint).
    pub checkpoint: bool,
    /// Run pass 2 (overlap-recompute).
    pub overlap: bool,
    /// Run pass 3 (remove-redundancy).
    pub remove_redundant: bool,
    /// Run pass 4 (prepose-forward, simulator-guided).
    pub prepose: bool,
    /// Options for the simulator-guided pass.
    pub prepose_opts: PreposeOptions,
}

impl Default for GraphTunerOptions {
    fn default() -> Self {
        Self {
            checkpoint: true,
            overlap: true,
            remove_redundant: true,
            prepose: true,
            prepose_opts: PreposeOptions::default(),
        }
    }
}

impl GraphTunerOptions {
    /// Naive checkpointing only (the paper's `ckpt` configuration).
    pub fn ckpt_only() -> Self {
        Self {
            overlap: false,
            remove_redundant: false,
            prepose: false,
            ..Default::default()
        }
    }

    /// Full Mario optimization (the paper's `ovlp` configuration).
    pub fn mario() -> Self {
        Self::default()
    }
}

/// Runs the graph tuner: pass 1, then passes 2–4 iterated to a fixpoint
/// (pass 4 is simulator-guided, so each accepted prepose can expose new
/// overlap opportunities for pass 2).
pub fn run_graph_tuner(
    schedule: &mut Schedule,
    cost: &dyn CostModel,
    opts: GraphTunerOptions,
) -> PassStats {
    let mut stats = PassStats::default();
    if opts.checkpoint {
        stats.checkpointed = apply_checkpoint(schedule);
    }
    if opts.overlap {
        stats.overlapped += overlap_recompute(schedule);
    }
    if opts.remove_redundant {
        stats.reverted += remove_redundancy(schedule);
    }
    if opts.prepose {
        for _ in 0..opts.prepose_opts.max_rounds {
            let moved = prepose_forward(schedule, cost, opts.prepose_opts);
            stats.preposed += moved;
            if opts.overlap {
                stats.overlapped += overlap_recompute(schedule);
            }
            if opts.remove_redundant {
                stats.reverted += remove_redundancy(schedule);
            }
            if moved == 0 {
                break;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{simulate_memory, simulate_timeline};
    use mario_ir::{validate, InstrTag, SchemeKind, UnitCost};
    use mario_schedules::{generate, ScheduleConfig};

    #[test]
    fn full_pipeline_is_valid_and_faster_than_naive_ckpt() {
        let cost = UnitCost::paper_grid();
        for scheme in [
            SchemeKind::OneFOneB,
            SchemeKind::Chimera,
            SchemeKind::Interleave { chunks: 2 },
        ] {
            let base = generate(ScheduleConfig::new(scheme, 4, 8));
            let mut naive = base.clone();
            run_graph_tuner(&mut naive, &cost, GraphTunerOptions::ckpt_only());
            let mut mario = base.clone();
            let stats = run_graph_tuner(&mut mario, &cost, GraphTunerOptions::mario());
            validate(&mario).unwrap_or_else(|e| panic!("{scheme:?}: {e:?}"));
            assert!(stats.checkpointed > 0);
            let t_naive = simulate_timeline(&naive, &cost, 1).unwrap().total_ns;
            let t_mario = simulate_timeline(&mario, &cost, 1).unwrap().total_ns;
            assert!(
                t_mario < t_naive,
                "{scheme:?}: mario {t_mario} vs naive ckpt {t_naive}"
            );
        }
    }

    #[test]
    fn tuned_schedule_preserves_compute_multiset_modulo_recompute() {
        let cost = UnitCost::paper_grid();
        let base = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let mut tuned = base.clone();
        run_graph_tuner(&mut tuned, &cost, GraphTunerOptions::mario());
        assert_eq!(
            base.count_tag(InstrTag::Forward),
            tuned.count_tag(InstrTag::Forward)
        );
        assert_eq!(
            base.count_tag(InstrTag::Backward),
            tuned.count_tag(InstrTag::Backward)
        );
    }

    #[test]
    fn mario_flattens_the_memory_profile() {
        // Table 1: base 1F1B peaks at D×M_θ on device 0; Mario at ~M_θ.
        let cost = UnitCost::paper_grid();
        let base = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let mut tuned = base.clone();
        run_graph_tuner(&mut tuned, &cost, GraphTunerOptions::mario());
        let base_mem = simulate_memory(&base, &cost, None);
        let tuned_mem = simulate_memory(&tuned, &cost, None);
        assert_eq!(base_mem.peak[0], 4);
        assert!(tuned_mem.peak[0] <= 2, "{:?}", tuned_mem.peak);
        // Balanced: spread of at most one replica across devices.
        let spread = tuned_mem.max_peak() - tuned_mem.min_peak();
        assert!(spread <= 1, "{:?}", tuned_mem.peak);
    }

    #[test]
    fn stats_accumulate_sanely() {
        let cost = UnitCost::paper_grid();
        let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let stats = run_graph_tuner(&mut s, &cost, GraphTunerOptions::mario());
        assert_eq!(stats.checkpointed, 4 * 8);
        assert!(stats.overlapped > 0);
        assert!(stats.reverted >= 8);
    }
}
