//! Pass 2 — *overlap-recompute* (paper §5.1): move each recomputation in
//! front of the `RG` that precedes its backward, so the recompute executes
//! while the gradient is still in flight — concurrently with the next
//! device's backward — instead of serializing after it.
//!
//! "If RC_i is incorrectly placed after RG_i, it must wait for RG_i to
//! finish, … causing RC_i on device j to wait for BW_i on device j+1 and
//! losing the opportunity for concurrent execution."

use mario_ir::{InstrKind, Schedule};

/// Hoists recomputes ahead of the receive-gradient chain preceding their
/// backward. Returns the number of recomputes moved. Idempotent.
pub fn overlap_recompute(schedule: &mut Schedule) -> usize {
    let mut moved = 0;
    for d in 0..schedule.devices() {
        let prog = schedule.program_mut(mario_ir::DeviceId(d));
        // Collect (micro, part) pairs with a recompute first; positions are
        // re-queried per edit.
        let pairs: Vec<_> = prog
            .instrs()
            .iter()
            .filter(|i| i.kind == InstrKind::Recompute)
            .map(|i| (i.micro, i.part))
            .collect();
        for (m, p) in pairs {
            let rc = prog.recompute_pos(m, p).expect("pair has recompute");
            let bw = prog
                .effective_backward_pos(m, p)
                .expect("recompute has backward");
            // Find the start of the contiguous RecvGrad chain directly
            // before the backward (skipping the recompute itself).
            let mut target = bw;
            while target > 0 {
                let idx = target - 1;
                if idx == rc {
                    target = idx;
                    continue;
                }
                if matches!(prog.instrs()[idx].kind, InstrKind::RecvGrad { .. }) {
                    target = idx;
                } else {
                    break;
                }
            }
            if rc > target {
                prog.shift(rc, target);
                moved += 1;
            }
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::apply_checkpoint::apply_checkpoint;
    use crate::simulator::simulate_timeline;
    use mario_ir::{validate, DeviceId, MicroId, PartId, SchemeKind, UnitCost};
    use mario_schedules::{generate, ScheduleConfig};

    #[test]
    fn recompute_lands_before_the_recv_grad() {
        let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        apply_checkpoint(&mut s);
        let moved = overlap_recompute(&mut s);
        assert!(moved > 0);
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
        // On a non-last device, the pattern must now be RC .. RG .. BW.
        let prog = s.program(DeviceId(1));
        for m in 0..8u32 {
            let rc = prog.recompute_pos(MicroId(m), PartId(0)).unwrap();
            let bw = prog.backward_pos(MicroId(m), PartId(0)).unwrap();
            let rg = prog
                .position(|i| {
                    matches!(i.kind, InstrKind::RecvGrad { .. }) && i.micro == MicroId(m)
                })
                .unwrap();
            assert!(rc < rg && rg < bw, "m{m}: rc={rc} rg={rg} bw={bw}");
        }
    }

    #[test]
    fn idempotent() {
        let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        apply_checkpoint(&mut s);
        overlap_recompute(&mut s);
        assert_eq!(overlap_recompute(&mut s), 0);
    }

    #[test]
    fn overlap_reduces_makespan_vs_naive_checkpointing() {
        // The motivation experiment: naive ckpt serializes recompute on the
        // critical path; overlapping hides (part of) it in bubbles.
        let cost = UnitCost::paper_grid();
        let mut naive = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 4));
        apply_checkpoint(&mut naive);
        let t_naive = simulate_timeline(&naive, &cost, 1).unwrap().total_ns;

        let mut ovlp = naive.clone();
        overlap_recompute(&mut ovlp);
        let t_ovlp = simulate_timeline(&ovlp, &cost, 1).unwrap().total_ns;
        assert!(
            t_ovlp < t_naive,
            "overlap {t_ovlp} should beat naive {t_naive}"
        );
    }

    #[test]
    fn last_stage_has_no_rg_and_keeps_rc_adjacent() {
        let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 4));
        apply_checkpoint(&mut s);
        overlap_recompute(&mut s);
        let prog = s.program(DeviceId(3));
        for m in 0..4u32 {
            let rc = prog.recompute_pos(MicroId(m), PartId(0)).unwrap();
            let bw = prog.backward_pos(MicroId(m), PartId(0)).unwrap();
            assert_eq!(rc + 1, bw);
        }
    }

    #[test]
    fn valid_on_all_schemes() {
        for scheme in [
            SchemeKind::GPipe,
            SchemeKind::OneFOneB,
            SchemeKind::Chimera,
            SchemeKind::Interleave { chunks: 2 },
        ] {
            let mut s = generate(ScheduleConfig::new(scheme, 4, 8));
            apply_checkpoint(&mut s);
            overlap_recompute(&mut s);
            validate(&s).unwrap_or_else(|e| panic!("{scheme:?}: {e:?}"));
        }
    }
}
