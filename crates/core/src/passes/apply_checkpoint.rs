//! Pass 1 — *apply-checkpoint* (paper §5.1): replace every paired forward
//! with a checkpointed forward and insert its recomputation immediately
//! before the corresponding backward, so only one replica of full
//! activations is live per stage at a time.

use mario_ir::{Instr, InstrKind, Schedule};

/// Applies checkpointing to every (micro, part) pair on every device.
/// Returns the number of forwards converted. Idempotent.
pub fn apply_checkpoint(schedule: &mut Schedule) -> usize {
    let mut converted = 0;
    for d in 0..schedule.devices() {
        let prog = schedule.program_mut(mario_ir::DeviceId(d));
        let pairs = prog.forward_pairs();
        for (m, p) in pairs {
            let f = prog
                .forward_pos(m, p)
                .expect("forward_pairs returned a live pair");
            if prog.instrs()[f].is_ckpt_forward() {
                continue;
            }
            let Some(b) = prog.effective_backward_pos(m, p) else {
                // No backward on this device (malformed input) — skip.
                continue;
            };
            prog.replace_kind(f, InstrKind::Forward { ckpt: true });
            // "The distance between RC_i and BW_i should be minimized":
            // insert the recompute directly before the backward.
            prog.insert(b, Instr::recompute(m, p));
            converted += 1;
        }
    }
    converted
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::{validate, DeviceId, InstrTag, MicroId, PartId, SchemeKind};
    use mario_schedules::{generate, ScheduleConfig};

    #[test]
    fn converts_every_forward_and_stays_valid() {
        let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let forwards = s.count_tag(InstrTag::Forward);
        let n = apply_checkpoint(&mut s);
        assert_eq!(n, forwards);
        assert_eq!(s.count_ckpt_forwards(), forwards);
        assert_eq!(s.count_tag(InstrTag::Recompute), forwards);
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn recompute_sits_directly_before_backward() {
        let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        apply_checkpoint(&mut s);
        for d in 0..4u32 {
            let prog = s.program(DeviceId(d));
            for m in 0..8u32 {
                let rc = prog.recompute_pos(MicroId(m), PartId(0)).unwrap();
                let bw = prog.backward_pos(MicroId(m), PartId(0)).unwrap();
                assert_eq!(rc + 1, bw, "d{d} m{m}");
            }
        }
    }

    #[test]
    fn idempotent() {
        let mut s = generate(ScheduleConfig::new(SchemeKind::Chimera, 4, 8));
        let first = apply_checkpoint(&mut s);
        assert!(first > 0);
        assert_eq!(apply_checkpoint(&mut s), 0);
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn works_on_every_scheme() {
        for scheme in [
            SchemeKind::GPipe,
            SchemeKind::OneFOneB,
            SchemeKind::Chimera,
            SchemeKind::Interleave { chunks: 2 },
        ] {
            let mut s = generate(ScheduleConfig::new(scheme, 4, 8));
            apply_checkpoint(&mut s);
            validate(&s).unwrap_or_else(|e| panic!("{scheme:?}: {e:?}"));
        }
    }

    #[test]
    fn memory_collapses_to_one_replica() {
        let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        apply_checkpoint(&mut s);
        // Counting only full activations (ckpt excluded), every device
        // holds at most one restored replica at a time.
        let peaks = s.peak_on_the_fly_per_device(false);
        assert!(peaks.iter().all(|&p| p <= 1), "{peaks:?}");
    }
}
