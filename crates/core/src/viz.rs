//! Pipeline visualization (paper §5.2 "Visualization", Fig. 5): render a
//! simulated timeline as an ASCII Gantt chart or an SVG document, so users
//! can inspect bubble distribution and checkpoint placement instead of
//! staring at throughput numbers.

use crate::simulator::SimTimeline;
use mario_ir::Nanos;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct VizOptions {
    /// Virtual nanoseconds per character cell (ASCII) / per pixel (SVG).
    pub ns_per_cell: Nanos,
    /// Show micro-batch digits instead of instruction-class letters.
    pub show_micro_ids: bool,
}

impl Default for VizOptions {
    fn default() -> Self {
        Self {
            ns_per_cell: 1_000,
            show_micro_ids: false,
        }
    }
}

fn glyph(instr: &str, show_micro: bool) -> Option<char> {
    // Events are rendered from their compact notation: F3^0, cF3^0, B3^0,
    // R3^0; comm/collective events are zero-width in the unit grid and
    // skipped.
    let (class, rest) = if let Some(r) = instr.strip_prefix("cF") {
        ('f', r)
    } else if let Some(r) = instr.strip_prefix('F') {
        ('F', r)
    } else if let Some(r) = instr.strip_prefix("Bi") {
        ('b', r)
    } else if let Some(r) = instr.strip_prefix("Bw") {
        ('w', r)
    } else if let Some(r) = instr.strip_prefix('B') {
        ('B', r)
    } else if let Some(r) = instr.strip_prefix('R') {
        if instr.starts_with("RA") || instr.starts_with("RG") {
            return None;
        }
        ('R', r)
    } else {
        return None;
    };
    if show_micro {
        let digit = rest
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse::<u32>()
            .ok()?;
        Some(char::from_digit(digit % 10, 10).unwrap())
    } else {
        Some(class)
    }
}

/// Renders an ASCII Gantt chart: one row per device, `.` for bubbles.
pub fn render_ascii(timeline: &SimTimeline, opts: VizOptions) -> String {
    let devices = timeline.device_clocks.len();
    let width = (timeline.total_ns / opts.ns_per_cell) as usize + 1;
    let mut grid = vec![vec!['.'; width]; devices];
    for e in &timeline.events {
        let Some(g) = glyph(&e.instr, opts.show_micro_ids) else {
            continue;
        };
        let s = (e.start / opts.ns_per_cell) as usize;
        let t = (e.end / opts.ns_per_cell) as usize;
        for cell in grid[e.device.index()].iter_mut().take(t.max(s + 1)).skip(s) {
            *cell = g;
        }
    }
    let mut out = String::new();
    for (d, row) in grid.iter().enumerate() {
        out.push_str(&format!("d{d}: "));
        // Trim trailing idle cells.
        let last = row
            .iter()
            .rposition(|&c| c != '.')
            .map(|p| p + 1)
            .unwrap_or(0);
        out.extend(row[..last].iter());
        out.push('\n');
    }
    out
}

/// Renders a minimal SVG Gantt chart.
pub fn render_svg(timeline: &SimTimeline, opts: VizOptions) -> String {
    let devices = timeline.device_clocks.len();
    let row_h = 22u64;
    let width = timeline.total_ns / opts.ns_per_cell + 40;
    let height = devices as u64 * row_h + 10;
    let mut out = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}">"#
    );
    for e in &timeline.events {
        let color = if e.instr.starts_with("cF") {
            "#7fb3d5" // checkpointed forward: light blue
        } else if e.instr.starts_with('F') {
            "#2e86c1" // forward: blue
        } else if e.instr.starts_with("Bi") {
            "#1e8449" // backward input half: dark green
        } else if e.instr.starts_with("Bw") {
            "#a9dfbf" // backward weight half: pale green
        } else if e.instr.starts_with('B') {
            "#27ae60" // backward: green
        } else if e.instr.starts_with('R') && !e.instr.starts_with("RA") && !e.instr.starts_with("RG")
        {
            "#e67e22" // recompute: orange
        } else {
            continue;
        };
        let x = e.start / opts.ns_per_cell + 30;
        let w = ((e.end - e.start) / opts.ns_per_cell).max(1);
        let y = e.device.0 as u64 * row_h + 4;
        out.push_str(&format!(
            r##"<rect x="{x}" y="{y}" width="{w}" height="{h}" fill="{color}" stroke="#333" stroke-width="0.5"><title>{t}</title></rect>"##,
            h = row_h - 6,
            t = e.instr
        ));
    }
    for d in 0..devices {
        out.push_str(&format!(
            r#"<text x="2" y="{y}" font-size="10">d{d}</text>"#,
            y = d as u64 * row_h + 16
        ));
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::simulate_timeline;
    use mario_ir::{SchemeKind, UnitCost};
    use mario_schedules::{generate, ScheduleConfig};

    fn timeline() -> SimTimeline {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 3, 3));
        simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap()
    }

    #[test]
    fn ascii_has_one_row_per_device() {
        let a = render_ascii(&timeline(), VizOptions::default());
        assert_eq!(a.lines().count(), 3);
        assert!(a.contains('F'));
        assert!(a.contains('B'));
    }

    #[test]
    fn last_device_starts_with_bubbles() {
        let a = render_ascii(&timeline(), VizOptions::default());
        let last = a.lines().last().unwrap();
        // 1F1B: device 2 idles 2 cells before its first forward.
        assert!(last.starts_with("d2: ..F"), "{last}");
    }

    #[test]
    fn micro_id_mode_uses_digits() {
        let a = render_ascii(
            &timeline(),
            VizOptions {
                show_micro_ids: true,
                ..Default::default()
            },
        );
        assert!(a.contains('0'));
        assert!(a.contains('2'));
        assert!(!a.contains('F'));
    }

    #[test]
    fn checkpointed_timeline_shows_recomputes() {
        let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 3, 3));
        crate::passes::apply_checkpoint(&mut s);
        let t = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
        let a = render_ascii(&t, VizOptions::default());
        assert!(a.contains('R'), "{a}");
        assert!(a.contains('f'), "{a}");
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = render_svg(&timeline(), VizOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.matches("<rect").count() >= 9); // 3 devices × 3 F + B
    }
}
