//! # mario-core — the Mario pipeline optimizer (PPoPP '25)
//!
//! The paper's primary contribution, reproduced end to end:
//!
//! * [`passes`] — the **graph tuner** (§5.1): four optimization passes
//!   that tessellate activation checkpointing into any pipeline schedule —
//!   `apply-checkpoint`, `overlap-recompute`, `remove-redundancy` and the
//!   simulator-guided `prepose-forward`;
//! * [`simulator`] — the **simulator-based performance model** (§5.2): a
//!   dynamic-programming timeline simulation plus device-level memory
//!   simulation, semantically aligned with the cluster emulator;
//! * [`tuner`] — the **schedule tuner** (§5.3): grid search over
//!   `(a, b, pp, dp, mbs)` maximizing simulated throughput under the
//!   device-memory constraint (Equation 1);
//! * [`viz`] — timeline visualization (Fig. 5): ASCII and SVG Gantt charts;
//! * [`api`] — the Listing-1 user interface: `optimize` + `run`;
//! * [`elastic`] — elastic recovery planning: shrink the pipeline onto the
//!   fault's survivors, price the state redistribution, and compare
//!   shrink-and-continue against wait-and-resume.

#![warn(missing_docs)]

pub mod api;
pub mod critpath;
pub mod elastic;
pub mod passes;
pub mod serving;
pub mod simulator;
pub mod trace;
pub mod tuner;
pub mod viz;

pub use api::{optimize, run, MarioConfig, Optimized};
pub use critpath::{analyze, whatif, CritReport, PathBreakdown, PathSegment, SegClass, WhatIf, WhatIfResult};
pub use elastic::{
    compare_policies, plan_shrink, ElasticPlan, ElasticSetup, LayerScaledCost, PolicyComparison,
};
pub use passes::{
    apply_checkpoint, overlap_recompute, prepose_forward, remove_redundancy, run_graph_tuner,
    split_backward, GraphTunerOptions, PassStats, PreposeOptions, SplitOptions,
};
pub use serving::simulate_serving;
pub use simulator::{
    memory_series, simulate, simulate_memory, simulate_timeline, simulate_timeline_ckpt,
    simulate_timeline_iters, simulate_timeline_serving, simulate_timeline_startup,
    simulate_timeline_with, MemReport, MemSeries, SimError, SimEvent, SimOptions, SimReport,
    SimTimeline,
};
pub use trace::{
    emu_to_chrome_trace, emu_to_chrome_trace_rich, rich_chrome_trace, rich_chrome_trace_annotated,
    sim_to_chrome_trace, sim_to_chrome_trace_annotated, sim_to_chrome_trace_rich, to_chrome_trace,
    TraceEvent, COUNTER_PID,
};
pub use tuner::{
    admissible, daly_interval, effective_write_ns, evaluate, fit_fault_rate, fit_fault_rate_on,
    tune, tune_checkpoint_interval, Candidate, CandidateFailure, CheckpointTuning, Evaluation,
    FaultHistory, RecoveryReport, RecoveryTuning, SchemeChoice, SearchStats, TuneError,
    TuneResult, TunerConfig, MAX_DEGRADED_EVALS, MAX_VALIDATION_RUNS,
};
pub use viz::{render_ascii, render_svg, VizOptions};
