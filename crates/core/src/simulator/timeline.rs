//! The dynamic-programming timeline simulator (paper §5.2).
//!
//! Instead of hand-identifying critical paths, the simulator infers the
//! earliest start time of every instruction from its dependencies:
//! *horizontal* (in-order execution within a device's instruction list) and
//! *vertical* (p2p messages between devices, per Algorithm 1's virtual
//! pipeline). Semantics deliberately match the cluster emulator
//! (mario-cluster) instruction for instruction — bounded per-class FIFO
//! channels, launch overheads, transfer latency — so with zero jitter the
//! two produce identical timelines, and the simulator-accuracy experiment
//! (Fig. 10) isolates genuine modeling error (profiling regression,
//! jitter).
//!
//! [`simulate_timeline_with`] extends the alignment to *degraded*
//! clusters: a [`PerturbationProfile`] (stragglers, slow links) scales
//! every instruction's duration and every packet's departure time exactly
//! as the emulator's fault layer enforces the corresponding absorbable
//! fault plan, so a zero-jitter faulted run and a degraded
//! simulation still agree bit for bit — the property that lets
//! the tuner predict a straggler's impact without paying an emulator run.

use mario_ir::exec::MsgClass;
use mario_ir::{
    AllocKey, CheckpointPolicy, CostModel, DeviceId, DeviceTelemetry, InstrKind, LinkSendStats,
    MemLedger, MemoryRules, Nanos, OpSpan, PerturbationProfile, Schedule, SpanGraph, Telemetry,
    CKPT_PC,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// One simulated instruction occurrence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimEvent {
    /// Executing device.
    pub device: DeviceId,
    /// Rendered instruction.
    pub instr: String,
    /// Earliest start (ns).
    pub start: Nanos,
    /// Finish (ns).
    pub end: Nanos,
}

/// The simulated timeline of one iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimTimeline {
    /// Every instruction with its start/end, ordered by (start, device).
    pub events: Vec<SimEvent>,
    /// Final clock per device.
    pub device_clocks: Vec<Nanos>,
    /// Iteration makespan (max device clock).
    pub total_ns: Nanos,
    /// Virtual time spent writing model-state checkpoints, summed across
    /// devices, ns (0 unless a policy was passed to
    /// [`simulate_timeline_ckpt`]). With async overlap only the residue
    /// the bubbles could not hide is counted — the emulator's
    /// `RunReport::ckpt_overhead_ns` semantics, bit for bit.
    #[serde(default)]
    pub ckpt_overhead_ns: Nanos,
    /// Iterations covered by the last cluster-durable checkpoint (None
    /// when no policy was active) — the emulator's
    /// `RunReport::last_checkpoint` semantics.
    #[serde(default)]
    pub last_checkpoint: Option<u32>,
    /// The simulated flight-recorder output: per-device time-class
    /// breakdowns (conserving each device clock exactly) and per-link
    /// transfer statistics, bit-identical to a zero-jitter emulator run's
    /// `RunReport::telemetry`.
    #[serde(default)]
    pub telemetry: Telemetry,
    /// The executed span graph (one [`OpSpan`] per instruction occurrence
    /// plus checkpoint boundaries), the input to
    /// `mario_core::critpath::analyze` — bit-identical to a zero-jitter
    /// emulator run captured with `record_spans`.
    #[serde(default)]
    pub spans: SpanGraph,
}

impl SimTimeline {
    /// Training throughput in samples/s for `samples` per iteration.
    pub fn throughput(&self, samples: u64) -> f64 {
        samples as f64 / (self.total_ns as f64 / 1e9)
    }

    /// Total idle ("bubble") time summed over devices: device lifetime not
    /// spent in compute. Communication waits count as bubble — they are
    /// exactly the idle slots Mario hides recomputation in.
    pub fn bubble_ns(&self) -> Nanos {
        let is_compute = |i: &str| {
            i.starts_with('F')
                || i.starts_with("cF")
                || i.starts_with('B')
                || (i.starts_with('R') && !i.starts_with("RA") && !i.starts_with("RG"))
        };
        let mut busy: HashMap<u32, Nanos> = HashMap::new();
        for e in &self.events {
            if is_compute(&e.instr) {
                *busy.entry(e.device.0).or_default() += e.end - e.start;
            }
        }
        self.device_clocks
            .iter()
            .enumerate()
            .map(|(d, &c)| c.saturating_sub(busy.get(&(d as u32)).copied().unwrap_or(0)))
            .sum()
    }
}

/// Why a simulation failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimError {
    /// The schedule deadlocks under the given channel capacity.
    Deadlock(String),
    /// A receive saw a mismatched message.
    Mismatch(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(s) => write!(f, "simulated deadlock: {s}"),
            SimError::Mismatch(s) => write!(f, "simulated comm mismatch: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MsgId {
    class: MsgClass,
    micro: u32,
    part: u32,
}

#[derive(Debug, Default)]
struct Channel {
    /// In-flight messages: (identity, sent_at).
    queue: VecDeque<(MsgId, Nanos)>,
    /// Dequeue timestamps not yet consumed by the sender's capacity logic.
    dequeues: VecDeque<Nanos>,
    /// Messages sent so far minus dequeue-acks consumed by sender.
    outstanding: usize,
}

/// Simulates `schedule` under `cost` with per-class FIFO channels of
/// `channel_capacity`, assuming a pristine cluster.
pub fn simulate_timeline(
    schedule: &Schedule,
    cost: &dyn CostModel,
    channel_capacity: usize,
) -> Result<SimTimeline, SimError> {
    simulate_timeline_with(schedule, cost, channel_capacity, &PerturbationProfile::identity())
}

/// Simulates `schedule` on a *degraded* cluster described by `profile`:
/// compute instructions on straggling devices are scaled by their
/// slowdown windows (indexed by instruction pc, like the emulator's
/// `Slowdown` faults) and perturbed packets depart late by the link's
/// extra latency while the sender's clock is unaffected (the emulator's
/// `LinkDelay` semantics). With the identity profile this is exactly
/// [`simulate_timeline`].
pub fn simulate_timeline_with(
    schedule: &Schedule,
    cost: &dyn CostModel,
    channel_capacity: usize,
    profile: &PerturbationProfile,
) -> Result<SimTimeline, SimError> {
    simulate_timeline_iters(schedule, cost, channel_capacity, profile, 1)
}

/// [`simulate_timeline_with`] over `iterations` back-to-back training
/// iterations, mirroring the emulator's multi-iteration runs: device
/// clocks and channel state persist across the iteration boundary (the
/// next iteration's warmup overlaps the previous flush, exactly as the
/// threaded devices do), while per-pair packet numbering and the
/// profile's iteration-scoped windows reset each iteration.
pub fn simulate_timeline_iters(
    schedule: &Schedule,
    cost: &dyn CostModel,
    channel_capacity: usize,
    profile: &PerturbationProfile,
    iterations: u32,
) -> Result<SimTimeline, SimError> {
    simulate_timeline_ckpt(schedule, cost, channel_capacity, profile, iterations, None)
}

/// Per-device checkpoint-write state mirroring the emulator's
/// `DeviceRuntime` chunk-drain bookkeeping: what is pending, what was
/// actually paid, and which checkpoint is durable. The arithmetic below
/// must stay literally identical to `mario-cluster::device` — the
/// `simulator_matches_emulator` property covers both flat and
/// sharded-async policies.
struct CkptSim {
    policy: CheckpointPolicy,
    /// Remaining chunk flush times of the in-flight async write.
    pending: Vec<VecDeque<Nanos>>,
    /// Iterations the in-flight write will cover once every chunk lands.
    pending_iters: Vec<u32>,
    /// Write time charged synchronously to each device's clock.
    paid: Vec<Nanos>,
    /// Iterations covered by each device's last durable checkpoint.
    last_ck: Vec<u32>,
}

impl CkptSim {
    fn new(policy: CheckpointPolicy, devices: usize) -> Self {
        Self {
            policy,
            pending: (0..devices).map(|_| VecDeque::new()).collect(),
            pending_iters: vec![0; devices],
            paid: vec![0; devices],
            last_ck: vec![0; devices],
        }
    }

    /// Flushes whole chunks into an idle gap of `gap` ns (a blocking recv
    /// wait or a capacity-blocked send). The checkpoint becomes durable
    /// only when the queue empties.
    /// Returns the flush time drained into the gap (the telemetry's
    /// `ckpt_absorbed_ns`) — the emulator's `drain_chunks`, bit for bit.
    fn drain(&mut self, d: usize, mut gap: Nanos) -> Nanos {
        let mut drained = 0;
        if self.pending[d].is_empty() {
            return drained;
        }
        while let Some(&chunk) = self.pending[d].front() {
            if chunk > gap {
                return drained;
            }
            gap -= chunk;
            drained += chunk;
            self.pending[d].pop_front();
        }
        self.last_ck[d] = self.pending_iters[d];
        drained
    }

    /// Synchronously pays whatever the previous async write could not
    /// hide, advancing the device clock. Returns the residue paid.
    fn flush_residue(&mut self, d: usize, clock: &mut Nanos) -> Nanos {
        if self.pending[d].is_empty() {
            return 0;
        }
        let residue: Nanos = self.pending[d].iter().sum();
        self.pending[d].clear();
        *clock += residue;
        self.paid[d] += residue;
        self.last_ck[d] = self.pending_iters[d];
        residue
    }

    /// End-of-iteration checkpoint boundary — the mirror of the
    /// emulator's `checkpoint_boundary`, including the transient
    /// serialization buffer held against `ledger` at its peak. Returns
    /// the write time charged synchronously to the clock (the
    /// telemetry's `ckpt_sync_ns`).
    #[allow(clippy::too_many_arguments)]
    fn boundary(
        &mut self,
        d: usize,
        iter_idx: u32,
        cost: &dyn CostModel,
        clock: &mut Nanos,
        ledger: &mut MemLedger,
        events: &mut Vec<SimEvent>,
        spans: &mut SpanGraph,
    ) -> Nanos {
        if !self.policy.is_boundary(iter_idx) {
            return 0;
        }
        let dev = DeviceId(d as u32);
        let start = *clock;
        let mut paid = self.flush_residue(d, clock);
        // The serialization buffer counts against the peak exactly as the
        // emulator holds it (the unchecked ledger cannot OOM — capacity
        // enforcement is the emulator's job).
        ledger
            .alloc(AllocKey::Snapshot, self.policy.mem_overhead)
            .expect("unchecked ledger never rejects the snapshot buffer");
        ledger.free(AllocKey::Snapshot);
        let shard = cost.ckpt_shard_bytes(dev);
        if self.policy.async_overlap() {
            let chunks = self.policy.device_chunk_times(shard);
            if chunks.is_empty() {
                self.last_ck[d] = iter_idx + 1;
            } else {
                self.pending[d] = chunks.into();
                self.pending_iters[d] = iter_idx + 1;
            }
        } else {
            let write = self.policy.device_write_ns(shard);
            *clock += write;
            self.paid[d] += write;
            paid += write;
            self.last_ck[d] = iter_idx + 1;
        }
        events.push(SimEvent {
            device: dev,
            instr: "CKPT".to_string(),
            start,
            end: *clock,
        });
        spans.push(OpSpan {
            device: dev,
            iter: iter_idx,
            pc: CKPT_PC,
            start,
            end: *clock,
            work_ns: *clock - start,
            sent_at: 0,
            wire_ns: 0,
            gate_ns: 0,
        });
        paid
    }

    /// End-of-run drain: no bubbles remain, so any residue is paid
    /// synchronously (the emulator's `drain_checkpoint`). Returns the
    /// residue paid.
    fn drain_end(
        &mut self,
        d: usize,
        iterations: u32,
        clock: &mut Nanos,
        events: &mut Vec<SimEvent>,
        spans: &mut SpanGraph,
    ) -> Nanos {
        let start = *clock;
        let paid = self.flush_residue(d, clock);
        if *clock > start {
            events.push(SimEvent {
                device: DeviceId(d as u32),
                instr: "CKPT".to_string(),
                start,
                end: *clock,
            });
            spans.push(OpSpan {
                device: DeviceId(d as u32),
                iter: iterations.saturating_sub(1),
                pc: CKPT_PC,
                start,
                end: *clock,
                work_ns: *clock - start,
                sent_at: 0,
                wire_ns: 0,
                gate_ns: 0,
            });
        }
        paid
    }
}

/// [`simulate_timeline_iters`] with a model-state checkpointing policy:
/// each device pays its write at every interval boundary exactly as the
/// cluster emulator charges it — synchronously for flat/sharded-sync
/// policies, or chunk-by-chunk into the next iteration's recv bubbles
/// when the policy asks for async overlap (any residue is charged at the
/// following boundary, or at end of run). With `None` this is exactly
/// [`simulate_timeline_iters`].
pub fn simulate_timeline_ckpt(
    schedule: &Schedule,
    cost: &dyn CostModel,
    channel_capacity: usize,
    profile: &PerturbationProfile,
    iterations: u32,
    checkpoint: Option<CheckpointPolicy>,
) -> Result<SimTimeline, SimError> {
    simulate_timeline_startup(
        schedule,
        cost,
        channel_capacity,
        profile,
        iterations,
        checkpoint,
        &[],
    )
}

/// [`simulate_timeline_ckpt`] with per-device *startup offsets*: device
/// `d`'s clock begins at `startup[d]` (0 when the slice is short), and the
/// offset is recorded in the `reconfig_ns` telemetry class so Σ classes ==
/// device clock still holds. This models the one-time state-redistribution
/// cost of an elastic reconfiguration — survivors start executing only
/// once the layer state they did not already hold has been fetched —
/// mirroring the emulator's `run_with_faults_startup` bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn simulate_timeline_startup(
    schedule: &Schedule,
    cost: &dyn CostModel,
    channel_capacity: usize,
    profile: &PerturbationProfile,
    iterations: u32,
    checkpoint: Option<CheckpointPolicy>,
    startup: &[Nanos],
) -> Result<SimTimeline, SimError> {
    simulate_core(
        schedule,
        cost,
        channel_capacity,
        profile,
        iterations,
        checkpoint,
        startup,
        None,
    )
    .map(|(t, _)| t)
}

/// Serving-mode simulation: one forward-only iteration under an
/// *ingress release schedule*. A first-stage `Forward` for micro-batch
/// `m` may not start before `release[m]` — the wait is recv-blocked idle
/// time exactly like a link wait (async checkpoint chunks drain into it)
/// — and each micro-batch's completion time is taken at the last-stage
/// `Forward`'s finish. Returns the timeline plus per-micro completion
/// times, bit-identical to a zero-jitter emulator `run_serving` on both
/// backends (the egress record is observational: an un-gated run is
/// bit-identical to an un-instrumented one).
pub fn simulate_timeline_serving(
    schedule: &Schedule,
    cost: &dyn CostModel,
    channel_capacity: usize,
    profile: &PerturbationProfile,
    release: &[Nanos],
) -> Result<(SimTimeline, Vec<Option<Nanos>>), SimError> {
    simulate_core(
        schedule,
        cost,
        channel_capacity,
        profile,
        1,
        None,
        &[],
        Some(release),
    )
}

#[allow(clippy::too_many_arguments)]
fn simulate_core(
    schedule: &Schedule,
    cost: &dyn CostModel,
    channel_capacity: usize,
    profile: &PerturbationProfile,
    iterations: u32,
    checkpoint: Option<CheckpointPolicy>,
    startup: &[Nanos],
    serving: Option<&[Nanos]>,
) -> Result<(SimTimeline, Vec<Option<Nanos>>), SimError> {
    assert!(channel_capacity >= 1);
    assert!(iterations >= 1);
    let devices = schedule.devices() as usize;
    // Global instruction cursor per device: local pc = gpc % len,
    // iteration = gpc / len.
    let mut gpc = vec![0usize; devices];
    let mut clocks: Vec<Nanos> = (0..devices)
        .map(|d| startup.get(d).copied().unwrap_or(0))
        .collect();
    let mut chans: HashMap<(u32, u32, MsgClass, u32), Channel> = HashMap::new();
    // Packets sent per (src, dst) pair *this iteration*, all classes and
    // parts in program order — the emulator's link-fault packet
    // numbering, which resets every iteration.
    let mut sends_to: Vec<HashMap<u32, usize>> = vec![HashMap::new(); devices];
    let mut cur_iter = vec![0u32; devices];
    let mut events: Vec<SimEvent> =
        Vec::with_capacity(schedule.total_instrs() * iterations as usize);
    let mut spans = SpanGraph::new(devices, channel_capacity);
    // Per-micro completion board (serving mode): earliest last-stage
    // forward finish — the emulator's `ServeBoard::record` (fetch_min).
    let mut completions: Vec<Option<Nanos>> = match serving {
        Some(_) => vec![None; schedule.micros as usize],
        None => Vec::new(),
    };
    let mut ckpt = checkpoint.map(|p| CkptSim::new(p, devices));
    // The flight recorder: per-device time classes, a memory ledger per
    // device replaying the emulator's exact `apply` sequence (compute and
    // send sites only), and per-link transfer statistics.
    let mut tel: Vec<DeviceTelemetry> = (0..devices)
        .map(|d| {
            let mut t = DeviceTelemetry::new(DeviceId(d as u32));
            t.classes.reconfig_ns = startup.get(d).copied().unwrap_or(0);
            t
        })
        .collect();
    let rules = MemoryRules::new(schedule);
    let mut ledgers: Vec<MemLedger> = (0..devices)
        .map(|d| MemLedger::new(cost.static_mem(DeviceId(d as u32)), None))
        .collect();
    let mut link_sends: HashMap<(u32, u32), LinkSendStats> = HashMap::new();
    let mut recv_waits: HashMap<(u32, u32), Nanos> = HashMap::new();

    // The emulator runs the checkpoint boundary every iteration even for
    // a device with an empty program; the main loop below skips such
    // devices, so process their boundaries (which never block) up front.
    if let Some(ck) = ckpt.as_mut() {
        for (d, clock) in clocks.iter_mut().enumerate() {
            if schedule.program(DeviceId(d as u32)).is_empty() {
                for it in 0..iterations {
                    tel[d].classes.ckpt_sync_ns +=
                        ck.boundary(d, it, cost, clock, &mut ledgers[d], &mut events, &mut spans);
                }
            }
        }
    }

    let class_of = |k: &InstrKind| match k {
        InstrKind::SendAct { .. } | InstrKind::RecvAct { .. } => MsgClass::Act,
        _ => MsgClass::Grad,
    };

    loop {
        let mut fired = false;
        let mut all_done = true;
        for d in 0..devices {
            let dev = DeviceId(d as u32);
            let prog = schedule.program(dev);
            let len = prog.len();
            if len == 0 || gpc[d] >= len * iterations as usize {
                continue;
            }
            let lpc = gpc[d] % len;
            let iter = (gpc[d] / len) as u32;
            if iter != cur_iter[d] {
                cur_iter[d] = iter;
                sends_to[d].clear();
            }
            let &instr = &prog.instrs()[lpc];
            all_done = false;
            let start = clocks[d];
            // Span-capture fields for this firing, filled in by the arms.
            let (mut sp_work, mut sp_sent, mut sp_wire, mut sp_gate) = (0, 0, 0, 0);
            let fired_now = match instr.kind {
                InstrKind::Forward { .. }
                | InstrKind::Backward
                | InstrKind::BackwardInput
                | InstrKind::BackwardWeight
                | InstrKind::Recompute => {
                    // Serving ingress gate: a first-stage forward may not
                    // start before its micro-batch was released. The wait
                    // is recv-blocked idle time (checkpoint chunks drain
                    // into it) — the emulator's gate, bit for bit.
                    if let Some(release) = serving {
                        if matches!(instr.kind, InstrKind::Forward { .. })
                            && schedule.topology.is_first_stage(dev, instr.part)
                        {
                            sp_gate = release.get(instr.micro.index()).copied().unwrap_or(0);
                            let gap = sp_gate.saturating_sub(clocks[d]);
                            let drained = match ckpt.as_mut() {
                                Some(ck) => ck.drain(d, gap),
                                None => 0,
                            };
                            tel[d].classes.on_recv_gap(gap, drained);
                            clocks[d] += gap;
                        }
                    }
                    let dur = profile.scaled_compute(dev, iter, lpc, cost.duration(dev, &instr));
                    sp_work = dur;
                    clocks[d] += dur;
                    tel[d].classes.compute_ns += dur;
                    rules
                        .apply(&mut ledgers[d], cost, dev, &instr)
                        .expect("unchecked ledger never rejects an allocation");
                    // Serving egress: a last-stage forward completes its
                    // micro-batch (observational — never read back here).
                    if serving.is_some()
                        && matches!(instr.kind, InstrKind::Forward { .. })
                        && schedule.topology.is_last_stage(dev, instr.part)
                    {
                        let slot = &mut completions[instr.micro.index()];
                        *slot = Some(slot.map_or(clocks[d], |v| v.min(clocks[d])));
                    }
                    true
                }
                InstrKind::AllReduce => {
                    let dt = cost.allreduce_time(dev);
                    sp_work = dt;
                    clocks[d] += dt;
                    tel[d].classes.allreduce_ns += dt;
                    true
                }
                InstrKind::OptimizerStep => {
                    let dt = cost.optimizer_time(dev);
                    sp_work = dt;
                    clocks[d] += dt;
                    tel[d].classes.optimizer_ns += dt;
                    true
                }
                InstrKind::SendAct { peer } | InstrKind::SendGrad { peer } => {
                    let class = class_of(&instr.kind);
                    let launch = cost.p2p_launch_overhead();
                    let ch = chans.entry((dev.0, peer.0, class, instr.part.0)).or_default();
                    let blocked;
                    if ch.outstanding == channel_capacity {
                        // Blocked until the receiver dequeues the oldest
                        // in-flight message; that time is known only after
                        // the receiver fires, so wait for it.
                        if let Some(t) = ch.dequeues.pop_front() {
                            ch.outstanding -= 1;
                            let ready = clocks[d] + launch;
                            clocks[d] = ready.max(t);
                            blocked = clocks[d] - ready;
                        } else {
                            continue;
                        }
                    } else {
                        clocks[d] += launch;
                        blocked = 0;
                    }
                    let id = MsgId {
                        class,
                        micro: instr.micro.0,
                        part: instr.part.0,
                    };
                    // A perturbed link delays the packet's departure while
                    // the sender's own clock is unaffected, exactly like
                    // the emulator's delayed send.
                    let nth = {
                        let c = sends_to[d].entry(peer.0).or_insert(0);
                        let n = *c;
                        *c += 1;
                        n
                    };
                    let extra = profile.link_extra(dev, peer, iter, nth);
                    ch.queue.push_back((id, clocks[d] + extra));
                    ch.outstanding += 1;
                    sp_work = launch;
                    tel[d].classes.comm_launch_ns += launch;
                    // A capacity wait is idle time exactly like a recv
                    // wait: async checkpoint chunks drain into it too —
                    // the emulator's send-side chunk flush, bit for bit.
                    let drained = match ckpt.as_mut() {
                        Some(ck) => ck.drain(d, blocked),
                        None => 0,
                    };
                    tel[d].classes.on_send_gap(blocked, drained);
                    // Bytes are counted at the send site with the sender's
                    // id — the emulator's exact accounting.
                    link_sends.entry((dev.0, peer.0)).or_default().on_send(
                        cost.boundary_bytes(dev, instr.part),
                        blocked,
                        ch.outstanding as u32,
                    );
                    rules
                        .apply(&mut ledgers[d], cost, dev, &instr)
                        .expect("unchecked ledger never rejects an allocation");
                    true
                }
                InstrKind::RecvAct { peer } | InstrKind::RecvGrad { peer } => {
                    let class = class_of(&instr.kind);
                    let ch = chans.entry((peer.0, dev.0, class, instr.part.0)).or_default();
                    match ch.queue.front() {
                        Some(&(id, sent_at)) => {
                            let want = MsgId {
                                class,
                                micro: instr.micro.0,
                                part: instr.part.0,
                            };
                            if id != want {
                                return Err(SimError::Mismatch(format!(
                                    "{dev} expected {want:?}, found {id:?}"
                                )));
                            }
                            ch.queue.pop_front();
                            let bytes = cost.boundary_bytes(dev, instr.part);
                            let launch = cost.p2p_launch_overhead();
                            let wire = cost.p2p_time_between(peer, dev, bytes);
                            let ready = clocks[d] + launch;
                            let arrival = ready.max(sent_at + wire);
                            (sp_work, sp_sent, sp_wire) = (launch, sent_at, wire);
                            // The wait for this message is exactly the
                            // idle gap an async checkpoint write drains
                            // into — the emulator's recv-side chunk flush.
                            // The drained slice is checkpoint time, the
                            // rest a genuine pipeline bubble.
                            let gap = arrival - ready;
                            let drained = match ckpt.as_mut() {
                                Some(ck) => ck.drain(d, gap),
                                None => 0,
                            };
                            tel[d].classes.comm_launch_ns += launch;
                            tel[d].classes.on_recv_gap(gap, drained);
                            *recv_waits.entry((peer.0, dev.0)).or_default() += gap;
                            ch.dequeues.push_back(arrival);
                            clocks[d] = arrival;
                            true
                        }
                        None => false,
                    }
                }
            };
            if fired_now {
                events.push(SimEvent {
                    device: dev,
                    instr: instr.to_string(),
                    start,
                    end: clocks[d],
                });
                spans.push(OpSpan {
                    device: dev,
                    iter,
                    pc: lpc as u32,
                    start,
                    end: clocks[d],
                    work_ns: sp_work,
                    sent_at: sp_sent,
                    wire_ns: sp_wire,
                    gate_ns: sp_gate,
                });
                gpc[d] += 1;
                fired = true;
                // Completing the program's last instruction is the
                // emulator's end-of-iteration checkpoint boundary.
                if gpc[d].is_multiple_of(len) {
                    if let Some(ck) = ckpt.as_mut() {
                        let done = (gpc[d] / len - 1) as u32;
                        tel[d].classes.ckpt_sync_ns += ck.boundary(
                            d,
                            done,
                            cost,
                            &mut clocks[d],
                            &mut ledgers[d],
                            &mut events,
                            &mut spans,
                        );
                    }
                }
            }
        }
        if all_done {
            break;
        }
        if !fired {
            let blocked: Vec<String> = (0..devices)
                .filter_map(|d| {
                    let prog = &schedule.programs()[d];
                    if prog.is_empty() || gpc[d] >= prog.len() * iterations as usize {
                        return None;
                    }
                    let lpc = gpc[d] % prog.len();
                    prog.get(lpc)
                        .map(|i| format!("d{d}#{lpc} iter {}: {i}", gpc[d] / prog.len()))
                })
                .collect();
            return Err(SimError::Deadlock(blocked.join(", ")));
        }
    }

    // No bubbles remain past the last instruction: pay any async residue
    // synchronously so the final checkpoint is durable when the run ends.
    if let Some(ck) = ckpt.as_mut() {
        for (d, clock) in clocks.iter_mut().enumerate() {
            tel[d].classes.ckpt_sync_ns +=
                ck.drain_end(d, iterations, clock, &mut events, &mut spans);
        }
    }

    events.sort_by_key(|e| (e.start, e.device.0));
    let total_ns = clocks.iter().copied().max().unwrap_or(0);
    spans.makespan = total_ns;
    debug_assert!(
        spans.check_tiling(&clocks).is_ok(),
        "span tiling violated on {:?}",
        spans.check_tiling(&clocks)
    );
    let (ckpt_overhead_ns, last_checkpoint) = match &ckpt {
        Some(ck) => (
            ck.paid.iter().sum(),
            Some(ck.last_ck.iter().copied().min().unwrap_or(0)),
        ),
        None => (0, None),
    };
    for (d, t) in tel.iter_mut().enumerate() {
        t.peak_mem = ledgers[d].peak();
    }
    // Assemble through the shared constructor (same as the emulator's
    // runner) and assert the conservation invariant: every nanosecond of
    // every device clock is accounted to exactly one time class.
    let telemetry = Telemetry::assemble(
        tel,
        link_sends
            .into_iter()
            .map(|((s, r), v)| ((DeviceId(s), DeviceId(r)), v)),
        recv_waits
            .into_iter()
            .map(|((s, r), v)| ((DeviceId(s), DeviceId(r)), v)),
    );
    debug_assert!(
        telemetry.check_conservation(&clocks).is_ok(),
        "telemetry conservation violated: {:?}",
        telemetry.check_conservation(&clocks)
    );
    debug_assert_eq!(telemetry.total_ckpt_sync_ns(), ckpt_overhead_ns);
    Ok((
        SimTimeline {
            events,
            device_clocks: clocks,
            total_ns,
            ckpt_overhead_ns,
            last_checkpoint,
            telemetry,
            spans,
        },
        completions,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::{SchemeKind, UnitCost};
    use mario_schedules::{generate, ScheduleConfig};

    #[test]
    fn matches_1f1b_closed_form() {
        for (d, n) in [(2u32, 4u32), (4, 8), (8, 16)] {
            let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, d, n));
            let t = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
            assert_eq!(t.total_ns, ((3 * (d - 1) + 3 * n) * 1_000) as u64);
        }
    }

    #[test]
    fn deadlock_is_reported() {
        use mario_ir::{Instr, Schedule, Topology};
        let topo = Topology::new(SchemeKind::OneFOneB, 2);
        let mut s = Schedule::empty(topo, 1, vec![0]);
        s.program_mut(DeviceId(0))
            .push(Instr::recv_grad(0u32, 0u32, DeviceId(1)));
        s.program_mut(DeviceId(1))
            .push(Instr::recv_act(0u32, 0u32, DeviceId(0)));
        let err = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap_err();
        assert!(matches!(err, SimError::Deadlock(_)));
    }

    #[test]
    fn bubble_accounting() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 4));
        let t = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
        // Each device is busy 3N units; makespan is 3(N + D - 1).
        let expect_bubble: u64 = (0..4u64).map(|_| 3 * 3 * 1_000).sum();
        // Devices finish at different times; bubble = sum(clock_d - busy_d).
        assert!(t.bubble_ns() > 0);
        assert!(t.bubble_ns() <= expect_bubble * 2);
    }

    #[test]
    fn event_count_matches_instruction_count() {
        let s = generate(ScheduleConfig::new(SchemeKind::Chimera, 4, 8));
        let t = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
        assert_eq!(t.events.len(), s.total_instrs());
    }

    #[test]
    fn identity_profile_is_bit_identical_to_baseline() {
        for scheme in [SchemeKind::OneFOneB, SchemeKind::Chimera] {
            let s = generate(ScheduleConfig::new(scheme, 4, 8));
            let base = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
            let degr = simulate_timeline_with(
                &s,
                &UnitCost::paper_grid(),
                1,
                &PerturbationProfile::identity(),
            )
            .unwrap();
            assert_eq!(base.device_clocks, degr.device_clocks, "{scheme:?}");
            assert_eq!(base.total_ns, degr.total_ns, "{scheme:?}");
        }
    }

    #[test]
    fn straggler_stretches_the_pipeline() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let base = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
        let profile = PerturbationProfile::identity().with_straggler(DeviceId(0), 2.0);
        let degr =
            simulate_timeline_with(&s, &UnitCost::paper_grid(), 1, &profile).unwrap();
        // The straggling first stage gates the whole pipeline: the
        // degraded makespan must grow, and every device finishes no
        // earlier than in the pristine run.
        assert!(degr.total_ns > base.total_ns);
        for (b, d) in base.device_clocks.iter().zip(&degr.device_clocks) {
            assert!(d >= b);
        }
    }

    #[test]
    fn slow_link_shifts_downstream_arrivals() {
        // Unit grid has free comm; give the perturbed link real latency.
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let base = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
        let profile = PerturbationProfile::identity().with_link_slack(mario_ir::LinkSlack {
            src: DeviceId(0),
            dst: DeviceId(1),
            nth: None,
            extra_ns: 10_000,
            iteration: None,
        });
        let degr =
            simulate_timeline_with(&s, &UnitCost::paper_grid(), 1, &profile).unwrap();
        assert!(degr.total_ns > base.total_ns);
        // Backpressure propagates the slack upstream through the bounded
        // channel: no device finishes earlier than in the pristine run.
        for (b, d) in base.device_clocks.iter().zip(&degr.device_clocks) {
            assert!(d >= b);
        }
    }

    #[test]
    fn nth_packet_slack_hits_only_that_packet() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 2, 4));
        let all = PerturbationProfile::identity().with_link_slack(mario_ir::LinkSlack {
            src: DeviceId(0),
            dst: DeviceId(1),
            nth: None,
            extra_ns: 3_000,
            iteration: None,
        });
        let one = PerturbationProfile::identity().with_link_slack(mario_ir::LinkSlack {
            src: DeviceId(0),
            dst: DeviceId(1),
            nth: Some(0),
            extra_ns: 3_000,
            iteration: None,
        });
        let t_all = simulate_timeline_with(&s, &UnitCost::paper_grid(), 1, &all).unwrap();
        let t_one = simulate_timeline_with(&s, &UnitCost::paper_grid(), 1, &one).unwrap();
        let t_base = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
        assert!(t_one.total_ns >= t_base.total_ns);
        assert!(t_all.total_ns >= t_one.total_ns);
    }

    #[test]
    fn multi_iteration_simulation_matches_single_iteration_structure() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 4));
        let one = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
        let three = simulate_timeline_iters(
            &s,
            &UnitCost::paper_grid(),
            1,
            &PerturbationProfile::identity(),
            3,
        )
        .unwrap();
        assert_eq!(three.events.len(), 3 * s.total_instrs());
        // Back-to-back iterations overlap across the boundary, so the
        // makespan is at least 2 but at most 3 single-iteration spans.
        assert!(three.total_ns >= 2 * one.total_ns);
        assert!(three.total_ns <= 3 * one.total_ns);
    }

    #[test]
    fn checkpointed_simulation_charges_writes_and_reports_durability() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let cost = UnitCost::paper_grid();
        let idle = PerturbationProfile::identity();
        let base = simulate_timeline_iters(&s, &cost, 1, &idle, 4).unwrap();
        assert_eq!(base.last_checkpoint, None);
        assert_eq!(base.ckpt_overhead_ns, 0);
        let policy = mario_ir::CheckpointPolicy::every(2).with_write_ns(500);
        let ck = simulate_timeline_ckpt(&s, &cost, 1, &idle, 4, Some(policy)).unwrap();
        // 2 writes of 500 ns on each of the 4 devices, plus a CKPT event
        // per boundary per device.
        assert_eq!(ck.last_checkpoint, Some(4));
        assert_eq!(ck.ckpt_overhead_ns, 4 * 2 * 500);
        assert_eq!(ck.total_ns, base.total_ns + 2 * 500);
        assert_eq!(ck.events.len(), base.events.len() + 4 * 2);
        // An async sharded policy over a zero-byte shard is free and
        // durable immediately.
        let sharded = mario_ir::CheckpointPolicy::every(2)
            .with_sharded(mario_ir::ShardedWrite::new(1, 1).with_async_overlap());
        let free = simulate_timeline_ckpt(&s, &cost, 1, &idle, 4, Some(sharded)).unwrap();
        assert_eq!(free.last_checkpoint, Some(4));
        assert_eq!(free.ckpt_overhead_ns, 0);
        assert_eq!(free.device_clocks, base.device_clocks);
    }

    #[test]
    fn forward_only_fill_drain_closed_form() {
        // Fill–drain under the unit grid (F = 1000 ns, free comm): the
        // makespan is (m + p − 1)·F and device d drains at (d + m)·F —
        // the closed form the serve bench and CI gate pin.
        for (p, m) in [(2u32, 4u32), (4, 8), (8, 3)] {
            let s = generate(ScheduleConfig::new(SchemeKind::ForwardOnly, p, m));
            let (t, done) = simulate_timeline_serving(
                &s,
                &UnitCost::paper_grid(),
                1,
                &PerturbationProfile::identity(),
                &vec![0; m as usize],
            )
            .unwrap();
            assert_eq!(t.total_ns, ((m + p - 1) * 1_000) as u64, "p={p} m={m}");
            for (d, &c) in t.device_clocks.iter().enumerate() {
                assert_eq!(c, ((d as u32 + m) * 1_000) as u64, "p={p} m={m} d={d}");
            }
            assert!(done.iter().all(|c| c.is_some()));
        }
    }

    #[test]
    fn serving_release_gates_first_stage_forwards() {
        let s = generate(ScheduleConfig::new(SchemeKind::ForwardOnly, 2, 3));
        let (t, done) = simulate_timeline_serving(
            &s,
            &UnitCost::paper_grid(),
            1,
            &PerturbationProfile::identity(),
            &[0, 5_000, 5_000],
        )
        .unwrap();
        // Micro 0 flows ungated; micros 1 and 2 wait at stage 0 until
        // their release, then pipeline back to back.
        assert_eq!(done, vec![Some(2_000), Some(7_000), Some(8_000)]);
        assert_eq!(t.total_ns, 8_000);
        // The gate is recv-blocked idle: conservation still holds (the
        // debug_assert in simulate_core checked it), and the first
        // stage's recv_blocked class carries the 4_000 ns wait.
        assert!(t.telemetry.devices[0].classes.recv_blocked_ns >= 4_000);
    }

    #[test]
    fn empty_release_gate_is_bit_identical_to_ungated() {
        let s = generate(ScheduleConfig::new(SchemeKind::ForwardOnly, 4, 6));
        let base = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
        let (gated, done) = simulate_timeline_serving(
            &s,
            &UnitCost::paper_grid(),
            1,
            &PerturbationProfile::identity(),
            &[],
        )
        .unwrap();
        assert_eq!(base.device_clocks, gated.device_clocks);
        assert_eq!(base.total_ns, gated.total_ns);
        assert_eq!(done.len(), 6);
        assert!(done.iter().all(|c| c.is_some()));
    }

    #[test]
    fn iteration_scoped_straggler_slows_only_its_iteration() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 4));
        let base = simulate_timeline_iters(
            &s,
            &UnitCost::paper_grid(),
            1,
            &PerturbationProfile::identity(),
            3,
        )
        .unwrap();
        let scoped = PerturbationProfile::identity().with_slowdown(mario_ir::SlowdownWindow {
            device: DeviceId(0),
            factor: 3.0,
            from_pc: 0,
            until_pc: usize::MAX,
            iteration: Some(1),
        });
        let always = PerturbationProfile::identity().with_straggler(DeviceId(0), 3.0);
        let t_scoped =
            simulate_timeline_iters(&s, &UnitCost::paper_grid(), 1, &scoped, 3).unwrap();
        let t_always =
            simulate_timeline_iters(&s, &UnitCost::paper_grid(), 1, &always, 3).unwrap();
        assert!(t_scoped.total_ns > base.total_ns);
        assert!(t_always.total_ns > t_scoped.total_ns);
    }
}
