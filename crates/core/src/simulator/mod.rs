//! The simulator-based performance model (paper §5.2): timeline + memory.

pub mod memsim;
pub mod timeline;

pub use memsim::{memory_series, simulate_memory, MemReport, MemSeries, OomAt};
pub use timeline::{
    simulate_timeline, simulate_timeline_ckpt, simulate_timeline_iters, simulate_timeline_serving,
    simulate_timeline_startup,
    simulate_timeline_with, SimError, SimEvent, SimTimeline,
};

use mario_ir::{CostModel, Schedule};
use serde::{Deserialize, Serialize};

/// Combined simulation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// The timing result.
    pub timeline: SimTimeline,
    /// The memory result.
    pub memory: MemReport,
}

impl SimReport {
    /// Throughput in samples/s for `samples` per iteration.
    pub fn throughput(&self, samples: u64) -> f64 {
        self.timeline.throughput(samples)
    }
}

/// Simulation options.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// p2p buffer depth.
    pub channel_capacity: usize,
    /// Per-device memory capacity for OOM detection.
    pub mem_capacity: Option<u64>,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            channel_capacity: 1,
            mem_capacity: None,
        }
    }
}

/// Runs both the timeline and memory simulations.
pub fn simulate(
    schedule: &Schedule,
    cost: &dyn CostModel,
    opts: SimOptions,
) -> Result<SimReport, SimError> {
    let timeline = simulate_timeline(schedule, cost, opts.channel_capacity)?;
    let memory = simulate_memory(schedule, cost, opts.mem_capacity);
    Ok(SimReport { timeline, memory })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::{SchemeKind, UnitCost};
    use mario_schedules::{generate, ScheduleConfig};

    #[test]
    fn combined_report() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let r = simulate(&s, &UnitCost::paper_grid(), SimOptions::default()).unwrap();
        assert!(r.throughput(128) > 0.0);
        assert_eq!(r.memory.peak.len(), 4);
    }

    /// The headline fidelity property: with zero jitter, the DP simulator
    /// and the threaded cluster emulator produce *identical* timelines.
    #[test]
    fn simulator_equals_emulator_without_jitter() {
        for scheme in [
            SchemeKind::GPipe,
            SchemeKind::OneFOneB,
            SchemeKind::Chimera,
            SchemeKind::Interleave { chunks: 2 },
        ] {
            let s = generate(ScheduleConfig::new(scheme, 4, 8));
            let sim = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
            let emu = mario_cluster::run(
                &s,
                &UnitCost::paper_grid(),
                mario_cluster::EmulatorConfig::default(),
            )
            .unwrap();
            assert_eq!(sim.device_clocks, emu.device_clocks, "{scheme:?}");
            assert_eq!(sim.total_ns, emu.total_ns, "{scheme:?}");
        }
    }
}
