//! Device-level memory simulation (paper §5.2): accumulate static memory,
//! track peak dynamic memory by walking each device's instruction list with
//! the shared activation-lifecycle rules.

use mario_ir::{CostModel, DeviceId, MemLedger, MemoryRules, Schedule};
use serde::{Deserialize, Serialize};

/// Per-device peak memory, plus the first OOM if a capacity was given.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemReport {
    /// Peak bytes per device (static + dynamic).
    pub peak: Vec<u64>,
    /// Static bytes per device.
    pub static_bytes: Vec<u64>,
    /// First device that would OOM under the given capacity, if any. Peaks
    /// for all devices are still reported (computed without the cap), which
    /// is how the paper fills Table 5's OOM rows from the simulator.
    pub oom: Option<OomAt>,
}

/// Where an OOM occurs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OomAt {
    /// The faulting device.
    pub device: DeviceId,
    /// Instruction index in the device program.
    pub pc: usize,
    /// Rendered instruction.
    pub instr: String,
}

impl MemReport {
    /// Max peak across devices.
    pub fn max_peak(&self) -> u64 {
        self.peak.iter().copied().max().unwrap_or(0)
    }

    /// Min peak across devices (Table 5 reports `[min, max]`).
    pub fn min_peak(&self) -> u64 {
        self.peak.iter().copied().min().unwrap_or(0)
    }

    /// Whether the schedule fits in `capacity` bytes per device.
    pub fn fits(&self, capacity: u64) -> bool {
        self.max_peak() <= capacity
    }
}

/// One device's memory level after each of its instructions — the series
/// behind Fig. 7-style plots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemSeries {
    /// The device.
    pub device: DeviceId,
    /// `(instruction index, total bytes after executing it)`.
    pub points: Vec<(usize, u64)>,
}

/// Computes the per-instruction memory level series for every device.
pub fn memory_series(schedule: &Schedule, cost: &dyn CostModel) -> Vec<MemSeries> {
    let rules = MemoryRules::new(schedule);
    schedule
        .programs()
        .iter()
        .map(|prog| {
            let dev = prog.device;
            let mut ledger = MemLedger::new(cost.static_mem(dev), None);
            let points = prog
                .iter()
                .map(|(pc, instr)| {
                    rules
                        .apply(&mut ledger, cost, dev, instr)
                        .expect("capacity disabled");
                    (pc, ledger.current())
                })
                .collect();
            MemSeries {
                device: dev,
                points,
            }
        })
        .collect()
}

/// Simulates memory for every device. `capacity` only marks the OOM point;
/// peaks are always computed in full.
pub fn simulate_memory(
    schedule: &Schedule,
    cost: &dyn CostModel,
    capacity: Option<u64>,
) -> MemReport {
    let rules = MemoryRules::new(schedule);
    let mut peak = Vec::with_capacity(schedule.devices() as usize);
    let mut static_bytes = Vec::with_capacity(schedule.devices() as usize);
    let mut oom: Option<OomAt> = None;
    for prog in schedule.programs() {
        let dev = prog.device;
        let mut ledger = MemLedger::new(cost.static_mem(dev), None);
        static_bytes.push(ledger.static_bytes());
        let mut device_oom: Option<OomAt> = None;
        for (pc, instr) in prog.iter() {
            rules
                .apply(&mut ledger, cost, dev, instr)
                .expect("capacity disabled; alloc cannot fail");
            if let Some(cap) = capacity {
                if ledger.current() > cap && device_oom.is_none() {
                    device_oom = Some(OomAt {
                        device: dev,
                        pc,
                        instr: instr.to_string(),
                    });
                }
            }
        }
        debug_assert_eq!(
            ledger.live_count(),
            0,
            "{dev}: activations leaked across the iteration"
        );
        peak.push(ledger.peak());
        if oom.is_none() {
            oom = device_oom;
        }
    }
    MemReport {
        peak,
        static_bytes,
        oom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::{SchemeKind, UnitCost};
    use mario_schedules::{generate, ScheduleConfig};

    #[test]
    fn one_f_one_b_peaks_decline_with_device_index() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let r = simulate_memory(&s, &UnitCost::paper_grid(), None);
        assert_eq!(r.peak, vec![4, 3, 2, 1]);
        assert_eq!(r.max_peak(), 4);
        assert_eq!(r.min_peak(), 1);
        assert!(r.oom.is_none());
    }

    #[test]
    fn gpipe_peaks_at_n_everywhere() {
        let s = generate(ScheduleConfig::new(SchemeKind::GPipe, 4, 8));
        let r = simulate_memory(&s, &UnitCost::paper_grid(), None);
        assert_eq!(r.peak, vec![8; 4]);
    }

    #[test]
    fn oom_location_is_reported_but_peaks_complete() {
        let s = generate(ScheduleConfig::new(SchemeKind::GPipe, 2, 8));
        let r = simulate_memory(&s, &UnitCost::paper_grid(), Some(4));
        let oom = r.oom.clone().expect("should OOM");
        assert_eq!(oom.device, DeviceId(0));
        assert_eq!(r.peak[0], 8); // still fully computed
        assert!(!r.fits(4));
        assert!(r.fits(8));
    }

    #[test]
    fn memory_series_tracks_the_sawtooth() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 2, 4));
        let series = memory_series(&s, &UnitCost::paper_grid());
        assert_eq!(series.len(), 2);
        let d1: Vec<u64> = series[1].points.iter().map(|&(_, b)| b).collect();
        // Last device alternates F (+1) and B (-1): a 1-0 sawtooth over
        // the compute instructions; comm points repeat the level.
        let max = *d1.iter().max().unwrap();
        let min = *d1.iter().min().unwrap();
        assert_eq!(max, 1);
        assert_eq!(min, 0);
        assert_eq!(*d1.last().unwrap(), 0, "all freed at iteration end");
        // Series peak equals the report peak.
        let rep = simulate_memory(&s, &UnitCost::paper_grid(), None);
        assert_eq!(max, rep.peak[1]);
    }

    #[test]
    fn matches_cluster_emulator_peaks() {
        for scheme in [
            SchemeKind::OneFOneB,
            SchemeKind::Chimera,
            SchemeKind::Interleave { chunks: 2 },
        ] {
            let s = generate(ScheduleConfig::new(scheme, 4, 8));
            let sim = simulate_memory(&s, &UnitCost::paper_grid(), None);
            let emu = mario_cluster::run(
                &s,
                &UnitCost::paper_grid(),
                mario_cluster::EmulatorConfig::default(),
            )
            .unwrap();
            assert_eq!(sim.peak, emu.peak_mem, "{scheme:?}");
        }
    }
}
