//! The user-facing API, mirroring the paper's Listing 1:
//!
//! ```text
//! mario_conf = { 'pipeline_scheme': 'Auto|V|X|W|...',
//!                'global_batch_size': 128,
//!                'num_device': 32,
//!                'memory_per_device': '40G' }
//! schedule = mario.optimize(mario_conf, model_conf)
//! mario.run(schedule)
//! ```
//!
//! [`optimize`] runs the schedule tuner and returns the tuned schedule plus
//! the cost model it was evaluated under; [`run`] executes it on the
//! emulated cluster.

use crate::passes::{run_graph_tuner, GraphTunerOptions, PassStats, PreposeOptions};
use crate::simulator::{simulate, SimOptions, SimReport};
use crate::tuner::{evaluate, tune, topology_of, Evaluation, SchemeChoice, TuneError, TunerConfig};
use mario_cluster::{EmuError, EmulatorConfig, RunReport};
use mario_ir::Schedule;
use mario_model::{AnalyticCost, GpuSpec, ModelConfig, TrainSetup};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};

/// The Mario configuration (paper Listing 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarioConfig {
    /// Pipeline scheme: `Auto` searches V/X/W.
    pub pipeline_scheme: SchemeChoice,
    /// Global batch size.
    pub global_batch_size: u32,
    /// Number of devices in the cluster.
    pub num_devices: u32,
    /// Memory per device, bytes (`'40G'` in the listing).
    pub memory_per_device: u64,
}

impl MarioConfig {
    /// A configuration with `Auto` scheme selection.
    pub fn auto(num_devices: u32, global_batch_size: u32, memory_per_device: u64) -> Self {
        Self {
            pipeline_scheme: SchemeChoice::Auto,
            global_batch_size,
            num_devices,
            memory_per_device,
        }
    }
}

/// An optimized, ready-to-run schedule.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The tuned instruction lists.
    pub schedule: Schedule,
    /// The winning grid point and its simulated performance.
    pub evaluation: Evaluation,
    /// The training setup the schedule was built for.
    pub setup: TrainSetup,
    /// What the graph tuner did.
    pub stats: PassStats,
    /// Wall-clock tuning time.
    pub tuning_time: std::time::Duration,
}

impl Optimized {
    /// Re-simulates the optimized schedule (e.g. after inspecting it).
    pub fn simulate(&self) -> SimReport {
        let cost = AnalyticCost::new(&self.setup);
        simulate(&self.schedule, &cost, SimOptions::default()).expect("tuned schedule simulates")
    }
}

/// Searches for the best (scheme, pp, dp, mbs, checkpointing) combination
/// and materializes the tuned schedule (paper `mario.optimize`).
pub fn optimize(
    mario_conf: &MarioConfig,
    model_conf: &ModelConfig,
    gpu: &GpuSpec,
) -> Result<Optimized, TuneError> {
    let cfg = TunerConfig {
        scheme_choice: mario_conf.pipeline_scheme.clone(),
        ..TunerConfig::new(
            mario_conf.num_devices,
            mario_conf.global_batch_size,
            mario_conf.memory_per_device,
        )
    };
    let result = tune(model_conf, gpu, &cfg)?;
    let best = result.best.clone();

    // Rebuild the winning schedule (the tuner's evaluation is throwaway).
    let cand = best.candidate;
    let micros = crate::tuner::admissible(model_conf, &cand, cfg.gbs)
        .expect("winning candidate is admissible");
    let topo = topology_of(cand.scheme, cand.pp);
    let setup = TrainSetup::pipeline(model_conf.clone(), gpu.clone(), topo, cand.mbs)
        .with_dp(cand.dp);
    let cost = AnalyticCost::new(&setup);
    let mut schedule = generate(
        ScheduleConfig::new(cand.scheme, cand.pp, micros).allreduce(cand.dp > 1),
    );
    let stats = if cand.mario {
        run_graph_tuner(
            &mut schedule,
            &cost,
            GraphTunerOptions {
                prepose_opts: PreposeOptions {
                    mem_capacity: Some(mario_conf.memory_per_device),
                    ..Default::default()
                },
                ..GraphTunerOptions::mario()
            },
        )
    } else {
        PassStats::default()
    };
    // Consistency check: the rebuilt schedule must evaluate as well as the
    // tuner promised (modulo prepose rounds).
    debug_assert!(evaluate(model_conf, gpu, &cfg, cand).is_some());
    Ok(Optimized {
        schedule,
        evaluation: best,
        setup,
        stats,
        tuning_time: result.tuning_time,
    })
}

/// Executes an optimized schedule on the emulated cluster (paper
/// `mario.run`).
pub fn run(opt: &Optimized, emu: EmulatorConfig) -> Result<RunReport, EmuError> {
    let cost = AnalyticCost::new(&opt.setup);
    mario_cluster::run(&opt.schedule, &cost, emu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimize_then_run_round_trip() {
        let mario_conf = MarioConfig::auto(8, 32, 40 * (1 << 30));
        let model = ModelConfig::gpt3_1_6b();
        let gpu = GpuSpec::a100_40g();
        let opt = optimize(&mario_conf, &model, &gpu).unwrap();
        assert!(opt.evaluation.throughput > 0.0);
        mario_ir::validate(&opt.schedule).unwrap_or_else(|e| panic!("{e:?}"));

        let report = run(
            &opt,
            EmulatorConfig {
                mem_capacity: Some(mario_conf.memory_per_device),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.total_ns > 0);
        // The emulated iteration time should be within ~25% of the
        // simulator's promise (prepose rounds differ between tuning and
        // the final build).
        let sim_ns = opt.evaluation.iter_ns as f64;
        let emu_ns = report.iter_ns as f64;
        let rel = (emu_ns - sim_ns).abs() / sim_ns;
        assert!(rel < 0.25, "sim {sim_ns:.3e} ns vs emu {emu_ns:.3e} ns");
    }

    #[test]
    fn fixed_scheme_choice_is_respected() {
        let mario_conf = MarioConfig {
            pipeline_scheme: SchemeChoice::Fixed(vec![mario_ir::SchemeKind::OneFOneB]),
            ..MarioConfig::auto(8, 32, 40 * (1 << 30))
        };
        let opt = optimize(&mario_conf, &ModelConfig::llama2_3b(), &GpuSpec::a100_40g()).unwrap();
        assert_eq!(
            opt.evaluation.candidate.scheme,
            mario_ir::SchemeKind::OneFOneB
        );
    }
}
