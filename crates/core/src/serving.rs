//! Serving-mode prediction: the emulator's request loop driven by the DP
//! timeline simulator.
//!
//! [`simulate_serving`] runs the *same* batching / retry / telemetry
//! arithmetic as `mario_cluster::serving::serve`
//! ([`mario_cluster::serve_with`] is shared verbatim), but each attempt
//! is priced by [`simulate_timeline_serving`] instead of an emulator
//! run. On a pristine or absorbably-degraded cluster (stragglers, slow
//! links — a [`PerturbationProfile`]) the predicted per-request
//! completion times are bit-identical to a zero-jitter emulated serve:
//! that is the serving extension of the simulator-accuracy story
//! (paper Fig. 10), and `tests/properties.rs` enforces it three ways
//! (simulator / thread emulator / event emulator).
//!
//! Hard faults (crashes, rack failures) are the emulator's domain — the
//! simulator models degradation, not failure, so its serve loop never
//! retries: a [`SimError`] surfaces immediately.

use crate::simulator::timeline::{simulate_timeline_serving, SimError};
use mario_cluster::{serve_with, BatchPolicy, Request, RetryPolicy, RunReport, ServeOutcome};
use mario_ir::{CostModel, PerturbationProfile, Schedule};

/// Simulator-backed serving run over `requests`.
///
/// `build` fabricates the forward-only schedule for a given micro-batch
/// count (one micro-batch per request batch), exactly as the emulator's
/// `serve` asks of it; `channel_capacity` and `profile` are the usual
/// simulator knobs. Returns the same [`ServeOutcome`] the emulator
/// produces: per-request completion times, the batch layout, the final
/// attempt's [`RunReport`] with its `serving` digest stamped, and an
/// empty fault log (the simulator never injects hard faults).
pub fn simulate_serving(
    mut build: impl FnMut(u32) -> Schedule,
    cost: &dyn CostModel,
    channel_capacity: usize,
    profile: &PerturbationProfile,
    batch: BatchPolicy,
    retry: RetryPolicy,
    requests: &[Request],
) -> Result<ServeOutcome, SimError> {
    serve_with(
        requests,
        batch,
        retry,
        |micros, release, _attempt| {
            let schedule = build(micros);
            match simulate_timeline_serving(&schedule, cost, channel_capacity, profile, release) {
                Ok((t, completions)) => {
                    // Fabricate the emulator's report shape from the
                    // simulated timeline; the shared serve loop stamps
                    // the serving digest onto it.
                    let rep = RunReport {
                        total_ns: t.total_ns,
                        iter_ns: t.total_ns,
                        peak_mem: t.telemetry.devices.iter().map(|d| d.peak_mem).collect(),
                        device_clocks: t.device_clocks,
                        last_checkpoint: t.last_checkpoint,
                        ckpt_overhead_ns: t.ckpt_overhead_ns,
                        telemetry: t.telemetry,
                        spans: Some(t.spans),
                        ..RunReport::default()
                    };
                    (Ok(rep), completions)
                }
                Err(e) => (Err(e), Vec::new()),
            }
        },
        // Degradation is absorbable by construction; a simulated
        // deadlock or mismatch is a schedule bug, never a retryable
        // infrastructure fault.
        |_e: &SimError| None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_cluster::poisson_arrivals;
    use mario_ir::{SchemeKind, UnitCost};
    use mario_schedules::{generate, ScheduleConfig};

    fn forward_only(devices: u32) -> impl FnMut(u32) -> Schedule {
        move |micros| generate(ScheduleConfig::new(SchemeKind::ForwardOnly, devices, micros))
    }

    #[test]
    fn simulated_serve_completes_every_request() {
        let requests = poisson_arrivals(7, 12, 1_500, 60_000);
        let out = simulate_serving(
            forward_only(4),
            &UnitCost::paper_grid(),
            1,
            &PerturbationProfile::identity(),
            BatchPolicy::default(),
            RetryPolicy::default(),
            &requests,
        )
        .unwrap();
        assert_eq!(out.completions.len(), requests.len());
        assert!(out.completions.iter().all(|c| c.is_some()));
        assert!(out.fault_log.is_empty());
        let digest = out.report.unwrap().serving.unwrap();
        assert_eq!(digest.requests, 12);
        assert_eq!(digest.completed, 12);
        assert_eq!(digest.retries, 0);
    }

    #[test]
    fn straggler_degrades_latency_but_not_completeness() {
        let requests = poisson_arrivals(7, 12, 1_500, 60_000);
        let cost = UnitCost::paper_grid();
        let idle = PerturbationProfile::identity();
        let slow = PerturbationProfile::identity().with_straggler(mario_ir::DeviceId(0), 3.0);
        let base = simulate_serving(
            forward_only(4),
            &cost,
            1,
            &idle,
            BatchPolicy::default(),
            RetryPolicy::default(),
            &requests,
        )
        .unwrap();
        let degr = simulate_serving(
            forward_only(4),
            &cost,
            1,
            &slow,
            BatchPolicy::default(),
            RetryPolicy::default(),
            &requests,
        )
        .unwrap();
        let (b, d) = (
            base.report.unwrap().serving.unwrap(),
            degr.report.unwrap().serving.unwrap(),
        );
        assert_eq!(d.completed, b.completed);
        assert!(d.p99_ns > b.p99_ns);
    }
}
