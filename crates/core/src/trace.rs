//! Chrome-trace export: serialize a simulated or emulated timeline to the
//! Trace Event Format consumed by `chrome://tracing` / Perfetto, giving an
//! interactive alternative to the ASCII/SVG Gantt charts.
//!
//! Two tiers of export:
//!
//! * [`to_chrome_trace`] — slices grouped into one process per pipeline
//!   *part* (parsed from the `F0^1`-style instruction notation, so
//!   Chimera's up and down pipelines land in separate process groups),
//!   with `process_name`/`thread_name` metadata;
//! * [`rich_chrome_trace`] (and the [`sim_to_chrome_trace_rich`] /
//!   [`emu_to_chrome_trace_rich`] wrappers) — additionally emits flow
//!   arrows connecting every send slice to its matching recv slice,
//!   per-device live-memory counter tracks (replayed through the shared
//!   `MemoryRules` ledger), per-link queue-depth counter tracks, and
//!   schedule-aware thread names (`device N · stage S`).
//!
//! The writer is self-contained (no JSON dependency): the event fields are
//! numbers plus instruction names from our own compact notation, so the
//! only escaping required is for the quote/backslash/control classes.

use crate::critpath::CritReport;
use crate::simulator::{memory_series, SimTimeline};
use mario_cluster::TimelineEvent;
use mario_ir::{CostModel, DeviceId, Nanos, PartId, Schedule, SpanGraph};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// One trace event, format-agnostic.
#[derive(Debug, Clone)]
pub struct TraceEvent<'a> {
    /// Row (device).
    pub device: u32,
    /// Display name.
    pub name: &'a str,
    /// Start, ns.
    pub start: Nanos,
    /// End, ns.
    pub end: Nanos,
}

/// The synthetic process id counter tracks are parented under, so memory
/// and link-depth series render as one "counters" group instead of being
/// interleaved with the per-part slice tracks.
pub const COUNTER_PID: u32 = 9999;

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn category(name: &str) -> &'static str {
    if name.starts_with("cF") {
        "ckpt-forward"
    } else if name.starts_with('F') {
        "forward"
    } else if name.starts_with("Bi") {
        "backward-input"
    } else if name.starts_with("Bw") {
        "backward-weight"
    } else if name.starts_with('B') {
        "backward"
    } else if name.starts_with("RA") || name.starts_with("RG") {
        "recv"
    } else if name.starts_with('R') {
        "recompute"
    } else if name.starts_with("SA") || name.starts_with("SG") {
        "send"
    } else {
        "other"
    }
}

/// The pipeline part encoded in the instruction notation (`F3^1` → 1),
/// used as the Perfetto process id so each part renders as its own group.
/// Part-free instructions (`AR`, `OS`, `CKPT`) and foreign names fall back
/// to part 0.
fn part_of(name: &str) -> u32 {
    let Some(caret) = name.find('^') else {
        return 0;
    };
    let digits: String = name[caret + 1..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().unwrap_or(0)
}

/// Identity of one logical transfer: `(activation?, micro, part, src,
/// dst)`. A send and its matching recv parse to the same key; repeated
/// iterations repeat keys and are paired FIFO.
type XferKey = (bool, u32, u32, u32, u32);

fn xfer_key(device: u32, name: &str, send: bool) -> Option<XferKey> {
    let (prefix_act, prefix_grad, sep) = if send {
        ("SA", "SG", '>')
    } else {
        ("RA", "RG", '<')
    };
    let act = if name.starts_with(prefix_act) {
        true
    } else if name.starts_with(prefix_grad) {
        false
    } else {
        return None;
    };
    let (mp, peer) = name[2..].split_once(sep)?;
    let (m, p) = mp.split_once('^')?;
    let peer: u32 = peer.strip_prefix('d')?.parse().ok()?;
    let (m, p) = (m.parse().ok()?, p.parse().ok()?);
    Some(if send {
        (act, m, p, device, peer)
    } else {
        (act, m, p, peer, device)
    })
}

/// Incremental Trace Event Format writer.
struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Self {
        Self {
            out: String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["),
            first: true,
        }
    }

    fn open(&mut self) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
    }

    /// A slice with optional causal annotation: `Some((on_path, slack))`
    /// stamps `args.cp` / `args.slack_ns`, and critical-path slices get a
    /// reserved color name so the path pops visually in the viewer.
    fn slice_annotated(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        start: Nanos,
        end: Nanos,
        annot: Option<(bool, Nanos)>,
    ) {
        self.open();
        self.out
            .push_str(&format!("{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\""));
        escape(name, &mut self.out);
        self.out.push_str("\",\"cat\":\"");
        self.out.push_str(category(name));
        self.out.push_str(&format!(
            "\",\"ts\":{:.3},\"dur\":{:.3}",
            start as f64 / 1e3,
            (end - start) as f64 / 1e3
        ));
        if let Some((cp, slack)) = annot {
            if cp {
                self.out.push_str(",\"cname\":\"terrible\"");
            }
            self.out.push_str(&format!(
                ",\"args\":{{\"cp\":{cp},\"slack_ns\":{slack}}}"
            ));
        }
        self.out.push('}');
    }

    /// An instant marker (`ph: i`), e.g. a serving completion.
    fn instant(&mut self, pid: u32, tid: u32, name: &str, ts: Nanos) {
        self.open();
        self.out
            .push_str(&format!("{{\"ph\":\"i\",\"s\":\"g\",\"pid\":{pid},\"tid\":{tid},\"name\":\""));
        escape(name, &mut self.out);
        self.out.push_str(&format!(
            "\",\"cat\":\"serving\",\"ts\":{:.3}}}",
            ts as f64 / 1e3
        ));
    }

    /// `M`-phase metadata: names a process (`tid: None`) or a thread.
    fn metadata(&mut self, pid: u32, tid: Option<u32>, kind: &str, name: &str) {
        self.open();
        self.out.push_str(&format!("{{\"ph\":\"M\",\"pid\":{pid}"));
        if let Some(tid) = tid {
            self.out.push_str(&format!(",\"tid\":{tid}"));
        }
        self.out.push_str(&format!(",\"name\":\"{kind}\",\"args\":{{\"name\":\""));
        escape(name, &mut self.out);
        self.out.push_str("\"}}");
    }

    fn counter(&mut self, pid: u32, name: &str, ts: Nanos, series: &str, value: u64) {
        self.open();
        self.out.push_str(&format!("{{\"ph\":\"C\",\"pid\":{pid},\"name\":\""));
        escape(name, &mut self.out);
        self.out.push_str(&format!(
            "\",\"ts\":{:.3},\"args\":{{\"{series}\":{value}}}}}",
            ts as f64 / 1e3
        ));
    }

    /// A flow arrow `s`/`f` pair binding a send slice to its recv slice.
    fn flow(&mut self, id: u64, from: (u32, u32, Nanos), to: (u32, u32, Nanos)) {
        self.open();
        self.out.push_str(&format!(
            "{{\"ph\":\"s\",\"id\":{id},\"pid\":{},\"tid\":{},\"ts\":{:.3},\"name\":\"xfer\",\"cat\":\"flow\"}}",
            from.0,
            from.1,
            from.2 as f64 / 1e3
        ));
        self.open();
        self.out.push_str(&format!(
            "{{\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"pid\":{},\"tid\":{},\"ts\":{:.3},\"name\":\"xfer\",\"cat\":\"flow\"}}",
            to.0,
            to.1,
            to.2 as f64 / 1e3
        ));
    }

    fn finish(mut self) -> String {
        self.out.push_str("]}");
        self.out
    }
}

/// Emits slices plus the process/thread naming metadata. Thread names come
/// from `thread_name(part, device)`.
fn write_slices<'a>(
    w: &mut Writer,
    events: &[TraceEvent<'a>],
    thread_name: impl Fn(u32, u32) -> String,
) {
    write_slices_annotated(w, events, thread_name, &[]);
}

/// [`write_slices`] with per-event causal annotations (parallel to
/// `events`; pass `&[]` for none).
fn write_slices_annotated<'a>(
    w: &mut Writer,
    events: &[TraceEvent<'a>],
    thread_name: impl Fn(u32, u32) -> String,
    annots: &[Option<(bool, Nanos)>],
) {
    // (part → devices) seen, for the metadata pass.
    let mut groups: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let pid = part_of(e.name);
        groups.entry(pid).or_default().insert(e.device);
        w.slice_annotated(
            pid,
            e.device,
            e.name,
            e.start,
            e.end,
            annots.get(i).copied().flatten(),
        );
    }
    for (pid, devices) in groups {
        w.metadata(pid, None, "process_name", &format!("pipeline part {pid}"));
        for d in devices {
            w.metadata(pid, Some(d), "thread_name", &thread_name(pid, d));
        }
    }
}

/// Renders events as a Chrome Trace Event Format JSON document
/// (`displayTimeUnit: ns`; durations are emitted in microseconds as the
/// format requires). Slices are grouped into one process per pipeline
/// part — Chimera's two pipelines get separate groups instead of the
/// historical constant `pid 0` — and every process/thread carries naming
/// metadata.
pub fn to_chrome_trace<'a>(events: impl IntoIterator<Item = TraceEvent<'a>>) -> String {
    let events: Vec<TraceEvent<'a>> = events.into_iter().collect();
    let mut w = Writer::new();
    write_slices(&mut w, &events, |_, d| format!("device {d}"));
    w.finish()
}

/// The enriched export: slices and naming metadata (threads are
/// `device N · stage S`, the stage resolved through the schedule's
/// virtual-pipeline topology), flow arrows binding each send to the recv
/// that consumes its payload (paired FIFO per logical transfer, so
/// multi-iteration timelines pair correctly), a live-memory counter track
/// per device (the schedule replayed through the shared `MemoryRules`
/// ledger — the same arithmetic both executors charge), and a queue-depth
/// counter track per directed link (+1 when a send completes, −1 when the
/// matching recv drains it). Counter tracks live under the synthetic
/// [`COUNTER_PID`] process.
///
/// Memory counters replay the fault-free program, so on a faulted
/// emulator timeline they describe the schedule's intended footprint, not
/// the truncated run.
pub fn rich_chrome_trace<'a>(
    events: &[TraceEvent<'a>],
    schedule: &Schedule,
    cost: &dyn CostModel,
) -> String {
    rich_chrome_trace_annotated(events, schedule, cost, None, None)
}

/// [`rich_chrome_trace`] with causal overlays.
///
/// * `crit` — the recorded span graph and its [`CritReport`]: every slice
///   that matches a recorded span gets `args.cp` (on the critical path?)
///   and `args.slack_ns` (how much it could slow before the makespan
///   moves), and critical-path slices get a distinct reserved color.
///   Slices are matched to spans by `(device, start, end)` extent, so the
///   overlay works on both the simulator's and the emulators' timelines.
/// * `completions` — serving completion times per micro-batch (the
///   ServeBoard record of a forward-only run): each lands as a global
///   instant marker at the moment the last stage finished that micro.
pub fn rich_chrome_trace_annotated<'a>(
    events: &[TraceEvent<'a>],
    schedule: &Schedule,
    cost: &dyn CostModel,
    crit: Option<(&SpanGraph, &CritReport)>,
    completions: Option<&[Option<Nanos>]>,
) -> String {
    let topo = &schedule.topology;
    let mut w = Writer::new();
    // Causal overlay: recorded spans keyed by extent, consumed FIFO so a
    // repeated (device, start, end) — e.g. zero-length boundary markers —
    // pairs in order.
    let annots: Vec<Option<(bool, Nanos)>> = match crit {
        Some((spans, report)) => {
            let mut by_extent: HashMap<(u32, Nanos, Nanos), VecDeque<(usize, usize)>> =
                HashMap::new();
            for (d, ops) in spans.per_device.iter().enumerate() {
                for (i, s) in ops.iter().enumerate() {
                    by_extent
                        .entry((s.device.0, s.start, s.end))
                        .or_default()
                        .push_back((d, i));
                }
            }
            events
                .iter()
                .map(|e| {
                    by_extent
                        .get_mut(&(e.device, e.start, e.end))
                        .and_then(VecDeque::pop_front)
                        .map(|(d, i)| (report.on_path[d][i], report.slack[d][i]))
                })
                .collect()
        }
        None => Vec::new(),
    };
    write_slices_annotated(
        &mut w,
        events,
        |p, d| {
            format!(
                "device {d} · stage {}",
                topo.stage_of(DeviceId(d), PartId(p)).0
            )
        },
        &annots,
    );
    // Serving completion markers: one instant per finished micro-batch.
    if let Some(done) = completions {
        for (m, t) in done.iter().enumerate() {
            if let Some(t) = t {
                w.instant(0, 0, &format!("serve: micro {m} done"), *t);
            }
        }
    }

    // Flow arrows: sends queue their slice under the transfer key, recvs
    // consume FIFO. An `s` event anchors at the send slice start and the
    // matching `f` at the recv slice end, so the arrow spans the whole
    // transfer even when backpressure stretches the send.
    // Two passes because the event stream is start-ordered and a recv
    // slice can *start* (begin waiting) before its send slice does: first
    // queue every send under its key, then pair recvs FIFO — per key both
    // sides come from a single device, so array order is program order.
    let mut pending: HashMap<XferKey, VecDeque<&TraceEvent<'a>>> = HashMap::new();
    let mut next_id = 0u64;
    // Queue-depth deltas per directed link: +1 at send end, −1 at recv end.
    let mut depth: BTreeMap<(u32, u32), Vec<(Nanos, i64)>> = BTreeMap::new();
    for e in events {
        if let Some(key) = xfer_key(e.device, e.name, true) {
            pending.entry(key).or_default().push_back(e);
            depth.entry((key.3, key.4)).or_default().push((e.end, 1));
        }
    }
    for e in events {
        if let Some(key) = xfer_key(e.device, e.name, false) {
            if let Some(send) = pending.get_mut(&key).and_then(VecDeque::pop_front) {
                w.flow(
                    next_id,
                    (part_of(send.name), send.device, send.start),
                    (part_of(e.name), e.device, e.end),
                );
                next_id += 1;
            }
            depth.entry((key.3, key.4)).or_default().push((e.end, -1));
        }
    }

    // Live-memory counters: each device's non-checkpoint events follow its
    // program order, so the per-instruction ledger series maps onto event
    // end times (cycled per iteration for multi-iteration timelines).
    w.metadata(COUNTER_PID, None, "process_name", "counters");
    for series in memory_series(schedule, cost) {
        let d = series.device;
        if series.points.is_empty() {
            continue;
        }
        let name = format!("mem d{}", d.0);
        let mut i = 0usize;
        for e in events.iter().filter(|e| e.device == d.0 && e.name != "CKPT") {
            w.counter(COUNTER_PID, &name, e.end, "bytes", series.points[i].1);
            i = (i + 1) % series.points.len();
        }
    }

    // Link queue-depth counters: accumulate the deltas in time order (a
    // drain at the same instant applies before a fill, keeping the series
    // at its minimal envelope).
    for ((src, dst), mut deltas) in depth {
        deltas.sort_by_key(|&(ts, delta)| (ts, delta));
        let name = format!("link d{src}\u{2192}d{dst}");
        let mut level = 0i64;
        for (ts, delta) in deltas {
            level += delta;
            w.counter(COUNTER_PID, &name, ts, "packets", level.max(0) as u64);
        }
    }
    w.finish()
}

/// Exports a simulated timeline.
pub fn sim_to_chrome_trace(t: &SimTimeline) -> String {
    to_chrome_trace(t.events.iter().map(|e| TraceEvent {
        device: e.device.0,
        name: &e.instr,
        start: e.start,
        end: e.end,
    }))
}

/// Exports an emulated timeline (requires `record_timeline: true`).
pub fn emu_to_chrome_trace(events: &[TimelineEvent]) -> String {
    to_chrome_trace(events.iter().map(|e| TraceEvent {
        device: e.device.0,
        name: &e.instr,
        start: e.start,
        end: e.end,
    }))
}

/// Exports a simulated timeline with flow arrows, counter tracks and
/// schedule-aware thread names (see [`rich_chrome_trace`]).
pub fn sim_to_chrome_trace_rich(
    t: &SimTimeline,
    schedule: &Schedule,
    cost: &dyn CostModel,
) -> String {
    let events: Vec<TraceEvent<'_>> = t
        .events
        .iter()
        .map(|e| TraceEvent {
            device: e.device.0,
            name: &e.instr,
            start: e.start,
            end: e.end,
        })
        .collect();
    rich_chrome_trace(&events, schedule, cost)
}

/// Exports a simulated timeline with the causal overlay: everything
/// [`sim_to_chrome_trace_rich`] emits, plus per-slice `cp`/`slack_ns`
/// annotations from `report` (computed over `t.spans`) and, for serving
/// runs, per-micro completion markers.
pub fn sim_to_chrome_trace_annotated(
    t: &SimTimeline,
    schedule: &Schedule,
    cost: &dyn CostModel,
    report: &CritReport,
    completions: Option<&[Option<Nanos>]>,
) -> String {
    let events: Vec<TraceEvent<'_>> = t
        .events
        .iter()
        .map(|e| TraceEvent {
            device: e.device.0,
            name: &e.instr,
            start: e.start,
            end: e.end,
        })
        .collect();
    rich_chrome_trace_annotated(&events, schedule, cost, Some((&t.spans, report)), completions)
}

/// Exports an emulated timeline with flow arrows, counter tracks and
/// schedule-aware thread names (requires `record_timeline: true`; see
/// [`rich_chrome_trace`]).
pub fn emu_to_chrome_trace_rich(
    events: &[TimelineEvent],
    schedule: &Schedule,
    cost: &dyn CostModel,
) -> String {
    let events: Vec<TraceEvent<'_>> = events
        .iter()
        .map(|e| TraceEvent {
            device: e.device.0,
            name: &e.instr,
            start: e.start,
            end: e.end,
        })
        .collect();
    rich_chrome_trace(&events, schedule, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::simulate_timeline;
    use mario_ir::{SchemeKind, UnitCost};
    use mario_schedules::{generate, ScheduleConfig};

    fn trace() -> String {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 3, 3));
        let t = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
        sim_to_chrome_trace(&t)
    }

    #[test]
    fn emits_one_event_per_instruction() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 3, 3));
        let t = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
        let json = sim_to_chrome_trace(&t);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), s.total_instrs());
    }

    #[test]
    fn document_is_structurally_sound() {
        let json = trace();
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Balanced braces/brackets (no nesting surprises in our writer).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"cat\":\"forward\""));
        assert!(json.contains("\"cat\":\"backward\""));
    }

    #[test]
    fn escaping_handles_hostile_names() {
        let ev = [TraceEvent {
            device: 0,
            name: "we\"ird\\na\nme",
            start: 0,
            end: 1,
        }];
        let json = to_chrome_trace(ev);
        assert!(json.contains("we\\\"ird\\\\na\\u000ame"));
    }

    #[test]
    fn categories_cover_every_notation() {
        for (name, cat) in [
            ("F0^0", "forward"),
            ("cF0^0", "ckpt-forward"),
            ("B0^0", "backward"),
            ("Bi0^0", "backward-input"),
            ("Bw0^0", "backward-weight"),
            ("R0^0", "recompute"),
            ("SA0^0>d1", "send"),
            ("RG0^0<d1", "recv"),
            ("AR", "other"),
        ] {
            assert_eq!(category(name), cat, "{name}");
        }
    }

    #[test]
    fn emulator_timeline_exports_too() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 2, 2));
        let r = mario_cluster::run(
            &s,
            &UnitCost::paper_grid(),
            mario_cluster::EmulatorConfig {
                record_timeline: true,
                ..Default::default()
            },
        )
        .unwrap();
        let json = emu_to_chrome_trace(&r.timeline);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), s.total_instrs());
    }

    #[test]
    fn metadata_names_every_process_and_thread() {
        let json = trace();
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("pipeline part 0"));
        assert!(json.contains("device 0"));
        // 1F1B has a single part, so a single process group.
        assert!(!json.contains("pipeline part 1"));
    }

    #[test]
    fn chimera_parts_get_separate_process_groups() {
        let s = generate(ScheduleConfig::new(SchemeKind::Chimera, 2, 2));
        let t = simulate_timeline(&s, &UnitCost::paper_grid(), 2).unwrap();
        let json = sim_to_chrome_trace(&t);
        // Both pipelines present, each with its own named process.
        assert!(json.contains("pipeline part 0"));
        assert!(json.contains("pipeline part 1"));
        assert!(json.contains("\"pid\":1,"));
    }

    #[test]
    fn part_parsing_handles_every_notation() {
        assert_eq!(part_of("F3^1"), 1);
        assert_eq!(part_of("SA0^12>d1"), 12);
        assert_eq!(part_of("AR"), 0);
        assert_eq!(part_of("CKPT"), 0);
        assert_eq!(part_of("we^ird"), 0);
    }

    #[test]
    fn transfer_keys_pair_sends_with_recvs() {
        // d0 sends act (micro 0, part 1) to d2; d2 receives it.
        assert_eq!(xfer_key(0, "SA0^1>d2", true), Some((true, 0, 1, 0, 2)));
        assert_eq!(xfer_key(2, "RA0^1<d0", false), Some((true, 0, 1, 0, 2)));
        // Gradients pair too, and directions are distinct keys.
        assert_eq!(xfer_key(2, "SG0^0>d1", true), Some((false, 0, 0, 2, 1)));
        assert_eq!(xfer_key(1, "RG0^0<d2", false), Some((false, 0, 0, 2, 1)));
        // Non-transfers parse to nothing.
        assert_eq!(xfer_key(0, "F0^0", true), None);
        assert_eq!(xfer_key(0, "AR", false), None);
    }

    #[test]
    fn rich_trace_pairs_every_transfer_with_a_flow_arrow() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 3, 3));
        let cost = UnitCost::paper_grid();
        let t = simulate_timeline(&s, &cost, 1).unwrap();
        let json = sim_to_chrome_trace_rich(&t, &s, &cost);
        let sends = t
            .events
            .iter()
            .filter(|e| e.instr.starts_with("SA") || e.instr.starts_with("SG"))
            .count();
        assert!(sends > 0);
        assert_eq!(json.matches("\"ph\":\"s\"").count(), sends);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), sends);
        // Schedule-aware thread names and both counter families present.
        assert!(json.contains("device 0 · stage 0"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("mem d0"));
        assert!(json.contains("link d0\u{2192}d1"));
        assert!(json.contains("\"name\":\"counters\""));
        // Still structurally sound.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn rich_trace_covers_the_emulator_and_multi_part_schemes() {
        let s = generate(ScheduleConfig::new(SchemeKind::Chimera, 2, 2));
        let cost = UnitCost::paper_grid();
        let r = mario_cluster::run(
            &s,
            &cost,
            mario_cluster::EmulatorConfig {
                record_timeline: true,
                channel_capacity: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let json = emu_to_chrome_trace_rich(&r.timeline, &s, &cost);
        // Chimera device 0 hosts stage 0 of part 0 and the last stage of
        // part 1 — the thread metadata reflects both.
        assert!(json.contains("device 0 · stage 0"));
        assert!(json.contains("pipeline part 1"));
        let sends = r
            .timeline
            .iter()
            .filter(|e| e.instr.starts_with("SA") || e.instr.starts_with("SG"))
            .count();
        assert_eq!(json.matches("\"ph\":\"s\"").count(), sends);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), sends);
    }

    #[test]
    fn annotated_trace_marks_the_critical_path() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 3, 4));
        let cost = UnitCost::paper_grid();
        let t = simulate_timeline(&s, &cost, 1).unwrap();
        let report = crate::critpath::analyze(&s, &t.spans);
        let json = sim_to_chrome_trace_annotated(&t, &s, &cost, &report, None);
        // Every instruction slice got an annotation, critical-path ones
        // carry the reserved color, and at least one off-path slice
        // reports nonzero slack.
        let slices = t.events.len();
        assert_eq!(json.matches("\"cp\":").count(), slices);
        let on_path: usize = report
            .on_path
            .iter()
            .flatten()
            .filter(|&&on| on)
            .count();
        assert_eq!(json.matches("\"cname\":\"terrible\"").count(), on_path);
        assert!(json.contains("\"cp\":true"));
        assert!(json.matches("\"slack_ns\":0").count() >= on_path);
        // Structurally sound JSON with the overlay present.
        assert!(json.contains("\"slack_ns\":"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn annotated_trace_emits_serving_completion_markers() {
        use crate::simulator::timeline::simulate_timeline_serving;
        use mario_ir::PerturbationProfile;
        let s = generate(ScheduleConfig::new(SchemeKind::ForwardOnly, 3, 3));
        let cost = UnitCost::paper_grid();
        let release = vec![0, 5_000, 9_000];
        let (t, done) =
            simulate_timeline_serving(&s, &cost, 1, &PerturbationProfile::identity(), &release)
                .unwrap();
        let report = crate::critpath::analyze(&s, &t.spans);
        let json = sim_to_chrome_trace_annotated(&t, &s, &cost, &report, Some(&done));
        let finished = done.iter().filter(|c| c.is_some()).count();
        assert_eq!(finished, 3);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), finished);
        assert!(json.contains("serve: micro 0 done"));
        // The held releases surface as path bubbles in the report the
        // overlay was built from.
        assert!(report.breakdown.bubble_ns > 0);
    }
}
