//! Chrome-trace export: serialize a simulated or emulated timeline to the
//! Trace Event Format consumed by `chrome://tracing` / Perfetto, giving an
//! interactive alternative to the ASCII/SVG Gantt charts.
//!
//! The writer is self-contained (no JSON dependency): the event fields are
//! numbers plus instruction names from our own compact notation, so the
//! only escaping required is for the quote/backslash/control classes.

use crate::simulator::SimTimeline;
use mario_cluster::TimelineEvent;
use mario_ir::Nanos;

/// One trace event, format-agnostic.
#[derive(Debug, Clone)]
pub struct TraceEvent<'a> {
    /// Row (device).
    pub device: u32,
    /// Display name.
    pub name: &'a str,
    /// Start, ns.
    pub start: Nanos,
    /// End, ns.
    pub end: Nanos,
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn category(name: &str) -> &'static str {
    if name.starts_with("cF") {
        "ckpt-forward"
    } else if name.starts_with('F') {
        "forward"
    } else if name.starts_with("Bi") {
        "backward-input"
    } else if name.starts_with("Bw") {
        "backward-weight"
    } else if name.starts_with('B') {
        "backward"
    } else if name.starts_with("RA") || name.starts_with("RG") {
        "recv"
    } else if name.starts_with('R') {
        "recompute"
    } else if name.starts_with("SA") || name.starts_with("SG") {
        "send"
    } else {
        "other"
    }
}

/// Renders events as a Chrome Trace Event Format JSON document
/// (`displayTimeUnit: ns`; durations are emitted in microseconds as the
/// format requires).
pub fn to_chrome_trace<'a>(events: impl IntoIterator<Item = TraceEvent<'a>>) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"ph\":\"X\",\"pid\":0,\"tid\":");
        out.push_str(&e.device.to_string());
        out.push_str(",\"name\":\"");
        escape(e.name, &mut out);
        out.push_str("\",\"cat\":\"");
        out.push_str(category(e.name));
        out.push_str("\",\"ts\":");
        out.push_str(&format!("{:.3}", e.start as f64 / 1e3));
        out.push_str(",\"dur\":");
        out.push_str(&format!("{:.3}", (e.end - e.start) as f64 / 1e3));
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Exports a simulated timeline.
pub fn sim_to_chrome_trace(t: &SimTimeline) -> String {
    to_chrome_trace(t.events.iter().map(|e| TraceEvent {
        device: e.device.0,
        name: &e.instr,
        start: e.start,
        end: e.end,
    }))
}

/// Exports an emulated timeline (requires `record_timeline: true`).
pub fn emu_to_chrome_trace(events: &[TimelineEvent]) -> String {
    to_chrome_trace(events.iter().map(|e| TraceEvent {
        device: e.device.0,
        name: &e.instr,
        start: e.start,
        end: e.end,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::simulate_timeline;
    use mario_ir::{SchemeKind, UnitCost};
    use mario_schedules::{generate, ScheduleConfig};

    fn trace() -> String {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 3, 3));
        let t = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
        sim_to_chrome_trace(&t)
    }

    #[test]
    fn emits_one_event_per_instruction() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 3, 3));
        let t = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
        let json = sim_to_chrome_trace(&t);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), s.total_instrs());
    }

    #[test]
    fn document_is_structurally_sound() {
        let json = trace();
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Balanced braces/brackets (no nesting surprises in our writer).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"cat\":\"forward\""));
        assert!(json.contains("\"cat\":\"backward\""));
    }

    #[test]
    fn escaping_handles_hostile_names() {
        let ev = [TraceEvent {
            device: 0,
            name: "we\"ird\\na\nme",
            start: 0,
            end: 1,
        }];
        let json = to_chrome_trace(ev);
        assert!(json.contains("we\\\"ird\\\\na\\u000ame"));
    }

    #[test]
    fn categories_cover_every_notation() {
        for (name, cat) in [
            ("F0^0", "forward"),
            ("cF0^0", "ckpt-forward"),
            ("B0^0", "backward"),
            ("Bi0^0", "backward-input"),
            ("Bw0^0", "backward-weight"),
            ("R0^0", "recompute"),
            ("SA0^0>d1", "send"),
            ("RG0^0<d1", "recv"),
            ("AR", "other"),
        ] {
            assert_eq!(category(name), cat, "{name}");
        }
    }

    #[test]
    fn emulator_timeline_exports_too() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 2, 2));
        let r = mario_cluster::run(
            &s,
            &UnitCost::paper_grid(),
            mario_cluster::EmulatorConfig {
                record_timeline: true,
                ..Default::default()
            },
        )
        .unwrap();
        let json = emu_to_chrome_trace(&r.timeline);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), s.total_instrs());
    }
}
