//! The schedule tuner (paper §5.3): grid search over
//! `(a, b, pp, dp, mbs)` — checkpointing on/off, scheme, pipeline depth,
//! data-parallel degree, micro-batch size — maximizing simulated training
//! throughput under the device-memory constraint (Equation 1). Each grid
//! point costs one schedule generation + graph tuning + simulation, a few
//! milliseconds, against minutes per configuration on a real cluster.

use crate::elastic::{compare_policies, plan_shrink, ElasticSetup};
use crate::passes::{run_graph_tuner, GraphTunerOptions, PreposeOptions};
use crate::simulator::{simulate_memory, simulate_timeline, simulate_timeline_with, SimError};
use mario_cluster::{FaultPlan, FaultReport, RecoveryPolicy};
use mario_ir::{
    min_channel_capacity, CheckpointPolicy, CostModel, DeviceId, PerturbationProfile, Schedule,
    SchemeKind, Topology,
};
use mario_model::{AnalyticCost, GpuSpec, ModelConfig, TrainSetup};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Scheme selection: fixed or automatic (paper Listing 1:
/// `'Auto|V|X|W|...'`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemeChoice {
    /// Search across V, X and W.
    Auto,
    /// Search across V, X, W plus the zero-bubble family (Z, ZV).
    AutoZb,
    /// Search only the given schemes.
    Fixed(Vec<SchemeKind>),
}

impl SchemeChoice {
    /// The schemes this choice enumerates.
    pub fn schemes(&self) -> Vec<SchemeKind> {
        match self {
            SchemeChoice::Auto => vec![
                SchemeKind::OneFOneB,
                SchemeKind::Chimera,
                SchemeKind::Interleave { chunks: 2 },
            ],
            SchemeChoice::AutoZb => vec![
                SchemeKind::OneFOneB,
                SchemeKind::Chimera,
                SchemeKind::Interleave { chunks: 2 },
                SchemeKind::ZeroBubbleH1,
                SchemeKind::ZeroBubbleV,
            ],
            SchemeChoice::Fixed(v) => v.clone(),
        }
    }
}

/// Tuner knobs (the search space of Equation 1).
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Scheme choice (`b`).
    pub scheme_choice: SchemeChoice,
    /// Total devices `D` in the cluster.
    pub total_devices: u32,
    /// Global batch size.
    pub gbs: u32,
    /// Device memory budget `dmem`, bytes.
    pub mem_capacity: u64,
    /// Micro-batch sizes to try (`mbs ∈ {1, 2, 4, 8, …}`).
    pub mbs_options: Vec<u32>,
    /// Minimum pipeline depth (Eq. 1 uses `4 ≤ pp ≤ D`).
    pub min_pp: u32,
    /// Checkpointing options (`a ∈ {False, True}`).
    pub ckpt_options: Vec<bool>,
    /// p2p buffer depth assumed in simulation.
    pub channel_capacity: usize,
    /// Data-parallel efficiency coefficient per doubling (§5.3 extends `F`
    /// "to support the dp parameter, which multiplies an efficiency
    /// coefficient").
    pub dp_efficiency: f64,
    /// Enable the simulator-guided prepose pass during evaluation (slower
    /// but matches the full Mario pipeline).
    pub prepose: bool,
    /// Validate the winning candidate on the cluster emulator before
    /// accepting it, falling back to the next-best candidate when
    /// validation fails (at most [`MAX_VALIDATION_RUNS`] emulator runs).
    pub validate_on_emulator: bool,
    /// Which emulator backend validation runs on. Both agree bit-for-bit
    /// (the parity proptests pin it); the event backend validates
    /// candidates at device counts where a thread per device cannot even
    /// spawn.
    pub validation_backend: mario_cluster::EmulatorBackend,
    /// Known cluster degradation (stragglers, slow links). When set, the
    /// tuner re-simulates its top-[`MAX_DEGRADED_EVALS`] candidates under
    /// this profile, records the degraded iteration time next to the
    /// fault-free one, and re-ranks them by degraded time — so a schedule
    /// that only wins on a pristine cluster cannot be selected over one
    /// that absorbs the known straggler.
    pub perturbation: Option<PerturbationProfile>,
    /// Anticipated fault environment for checkpoint-interval tuning. When
    /// set, [`tune`] derives a Young/Daly-optimal [`CheckpointPolicy`] for
    /// the winning candidate and reports it on
    /// [`TuneResult::checkpoint_policy`]; when the plan carries no hard
    /// fault, no policy is emitted (checkpointing a fault-free run only
    /// costs write time).
    pub checkpoint: Option<CheckpointTuning>,
    /// Anticipated hard-fault scenario for elastic-recovery planning.
    /// When set, [`tune`] prices both recovery policies for the winning
    /// candidate — wait for a replacement and resume at full width, or
    /// shrink onto the survivors and continue degraded — and reports the
    /// cheaper one with its crossover horizon on [`TuneResult::recovery`].
    pub recovery: Option<RecoveryTuning>,
    /// Skip full evaluation of grid points whose *busy-time floor*
    /// already caps their throughput at or below the best candidate seen
    /// so far. The floor is [`busy_floor`] — the slowest device's summed
    /// instruction occupancy in the generated (untuned) schedule, a
    /// critical-path lower bound on the simulated iteration time that
    /// costs one schedule generation instead of graph-tuning plus
    /// simulation. Pruned points stay on the curve as
    /// [`CandidateFailure::BoundPruned`] and are counted in
    /// [`SearchStats::pruned_bound`]. The winner is provably unchanged:
    /// a pruned candidate's true time is at least the floor, so its true
    /// throughput can never exceed the incumbent it was compared to.
    /// The comparison is on fault-free throughput: combined with
    /// [`TunerConfig::perturbation`], pruned points are also excluded
    /// from the degraded re-ranking pass.
    pub bound_prune: bool,
}

impl TunerConfig {
    /// Sensible defaults for a cluster of `total_devices` A100s.
    pub fn new(total_devices: u32, gbs: u32, mem_capacity: u64) -> Self {
        Self {
            scheme_choice: SchemeChoice::Auto,
            total_devices,
            gbs,
            mem_capacity,
            mbs_options: vec![1, 2, 4, 8],
            min_pp: 4,
            ckpt_options: vec![false, true],
            channel_capacity: 1,
            dp_efficiency: 0.97,
            prepose: true,
            validate_on_emulator: false,
            validation_backend: mario_cluster::EmulatorBackend::default(),
            perturbation: None,
            checkpoint: None,
            recovery: None,
            bound_prune: false,
        }
    }
}

/// Inputs for elastic-recovery policy tuning: the fault scenario to plan
/// for and the cluster constants that price waiting vs. shrinking.
#[derive(Debug, Clone)]
pub struct RecoveryTuning {
    /// Devices assumed lost to the hard fault (ids in the winning
    /// candidate's pipeline, `0..pp`).
    pub lost_devices: Vec<DeviceId>,
    /// Iterations left to run when the fault strikes.
    pub remaining_iters: u32,
    /// Expected wait for a replacement device, ns (the wait-and-resume
    /// policy pays this once before resuming at full width).
    pub replacement_wait_ns: u64,
    /// Model-state bytes per layer, pricing the shrink's redistribution.
    pub state_bytes_per_layer: u64,
    /// Link bandwidth for fetching redistributed state, bytes/µs.
    pub fetch_bytes_per_us: u64,
}

/// The tuner's elastic-recovery verdict for the winning candidate (see
/// [`crate::elastic::compare_policies`] for the pricing model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The cheaper policy for the configured scenario.
    pub policy: RecoveryPolicy,
    /// Tail time under wait-and-resume.
    pub wait_total_ns: u64,
    /// Tail time under shrink-and-continue.
    pub shrink_total_ns: u64,
    /// Remaining-iteration horizon where the policies tie (`None` when
    /// one dominates everywhere).
    pub crossover_remaining: Option<u64>,
    /// Simulated iteration time of the shrunk pipeline.
    pub shrunk_iter_ns: u64,
    /// One-time state-redistribution cost of the shrink.
    pub reconfig_ns: u64,
    /// Width of the shrunk pipeline.
    pub shrunk_devices: u32,
}

/// Inputs for checkpoint-interval tuning: the anticipated fault
/// environment plus the per-checkpoint costs the emulator will charge
/// (see `mario_ir::CheckpointPolicy`).
#[derive(Debug, Clone)]
pub struct CheckpointTuning {
    /// The fault plan the run is expected to face; its hard-fault count
    /// over [`CheckpointTuning::total_iters`] sets the failure rate λ.
    pub plan: FaultPlan,
    /// Planned run length, iterations.
    pub total_iters: u32,
    /// Cost of writing one checkpoint, ns (the Young/Daly `C`).
    pub write_ns: u64,
    /// Transient serialization-buffer size charged at each boundary,
    /// bytes (forwarded onto the emitted policy).
    pub mem_overhead: u64,
    /// Observed fault history from earlier runs. When present and it
    /// contains at least one hard fault, its fitted rate replaces the
    /// plan-implied uniform prior `hard_faults / total_iters` — the plan
    /// says what *could* fail, the history says how often it actually
    /// does.
    pub history: Option<FaultHistory>,
    /// Devices the tuned run will actually occupy. When set, the fitted
    /// rate is scoped to hard faults attributed to *these* devices
    /// ([`FaultHistory::fitted_rate_on`]): a history dominated by a lemon
    /// device the new placement avoids then yields a lower λ and a longer
    /// interval, while placing onto the lemon shortens it. `None` keeps
    /// the cluster-wide rate.
    pub devices: Option<Vec<DeviceId>>,
}

/// Fault observations accumulated across completed (or recovered) runs,
/// the empirical alternative to a plan-implied failure rate.
#[derive(Debug, Clone, Default)]
pub struct FaultHistory {
    /// Every fault report observed (absorbed and fatal alike; fitting
    /// keeps only the hard ones).
    pub reports: Vec<FaultReport>,
    /// Total iterations those observations cover, across all runs.
    pub iterations: u64,
}

impl FaultHistory {
    /// Folds one run's fault log and iteration count into the history.
    pub fn record<I: IntoIterator<Item = FaultReport>>(&mut self, reports: I, iterations: u32) {
        self.reports.extend(reports);
        self.iterations += iterations as u64;
    }

    /// The fitted hard-fault rate, failures per iteration (see
    /// [`fit_fault_rate`]).
    pub fn fitted_rate(&self) -> Option<f64> {
        fit_fault_rate(&self.reports, self.iterations)
    }

    /// The fitted hard-fault rate counting only events attributed to
    /// `devices` (see [`fit_fault_rate_on`]): the per-placement rate a
    /// tuner should use when the new run occupies a subset of the devices
    /// the history was observed on.
    pub fn fitted_rate_on(&self, devices: &[DeviceId]) -> Option<f64> {
        fit_fault_rate_on(&self.reports, self.iterations, devices)
    }

    /// Hard-fault (restart-forcing) events binned by the faulty
    /// component's device (`FaultKind::site`), sorted by device id. Uses
    /// the same counting rules as [`fit_fault_rate`]: absorbable faults
    /// are skipped and a correlated group is ONE event, attributed to the
    /// site of its first report. This is the device-binning hook for
    /// fitting per-device fault rates from a shared history.
    pub fn hard_faults_by_device(&self) -> Vec<(DeviceId, u64)> {
        let mut seen_groups: Vec<&str> = Vec::new();
        let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
        for r in &self.reports {
            if r.fault.is_absorbable() {
                continue;
            }
            if let Some(g) = r.group.as_deref() {
                if seen_groups.contains(&g) {
                    continue;
                }
                seen_groups.push(g);
            }
            *counts.entry(r.fault.site().0).or_default() += 1;
        }
        counts.into_iter().map(|(d, n)| (DeviceId(d), n)).collect()
    }
}

/// Fits a hard-fault rate (failures per iteration) to observed fault
/// reports: restart-forcing events over iterations observed. Absorbable
/// faults (slowdowns, link delays) never force a restart and are
/// ignored; reports sharing a correlated [`FaultGroup`]
/// (`mario_cluster::FaultGroup`) count as ONE event — a rack failure is
/// one restart no matter how many crash-and-stall reports it spawned.
/// `None` when nothing was observed (no iterations, or no hard fault) —
/// the caller falls back to its prior.
pub fn fit_fault_rate(reports: &[FaultReport], iterations: u64) -> Option<f64> {
    if iterations == 0 {
        return None;
    }
    let mut seen_groups: Vec<&str> = Vec::new();
    let mut events = 0u64;
    for r in reports {
        if r.fault.is_absorbable() {
            continue;
        }
        match r.group.as_deref() {
            Some(g) => {
                if !seen_groups.contains(&g) {
                    seen_groups.push(g);
                    events += 1;
                }
            }
            None => events += 1,
        }
    }
    if events == 0 {
        return None;
    }
    Some(events as f64 / iterations as f64)
}

/// [`fit_fault_rate`] scoped to a device subset: only restart-forcing
/// events whose attributed site is in `devices` count. Attribution follows
/// [`FaultHistory::hard_faults_by_device`] — a correlated group is one
/// event at its first report's site — so the per-device counts and the
/// scoped rates partition the global rate exactly. `None` when no scoped
/// hard fault was observed (the caller falls back to its prior, not the
/// cluster-wide rate: a placement that avoids every observed lemon should
/// not inherit the lemons' λ).
pub fn fit_fault_rate_on(
    reports: &[FaultReport],
    iterations: u64,
    devices: &[DeviceId],
) -> Option<f64> {
    if iterations == 0 {
        return None;
    }
    let mut seen_groups: Vec<&str> = Vec::new();
    let mut events = 0u64;
    for r in reports {
        if r.fault.is_absorbable() {
            continue;
        }
        // Group dedup must consume the group *before* the site filter:
        // a correlated event is attributed to its first report's site
        // only, even when later members of the group sit on in-scope
        // devices.
        if let Some(g) = r.group.as_deref() {
            if seen_groups.contains(&g) {
                continue;
            }
            seen_groups.push(g);
        }
        if devices.contains(&r.fault.site()) {
            events += 1;
        }
    }
    if events == 0 {
        return None;
    }
    Some(events as f64 / iterations as f64)
}

/// The effective per-checkpoint write cost a run actually exhibited: its
/// slowdown relative to a checkpoint-free run of the same schedule,
/// amortized over the writes. This is the Young/Daly `C` to feed back
/// into [`daly_interval`] for an async-overlap policy — bubbles absorb
/// part of every write, so the analytic per-device cost overstates it.
pub fn effective_write_ns(base_total_ns: u64, ckpt_total_ns: u64, writes: u32) -> u64 {
    if writes == 0 {
        return 0;
    }
    ckpt_total_ns.saturating_sub(base_total_ns) / writes as u64
}

/// The Young/Daly optimal checkpoint interval, in iterations:
/// `k* = sqrt(2·C / (T·λ))` where `C` is the checkpoint write cost, `T`
/// the iteration time and `λ` the expected hard faults per iteration.
/// Rounded to the nearest whole interval and clamped to
/// `[1, total_iters]`; `None` when the fault rate is zero (no fault ⇒
/// checkpoints are pure overhead) or the run is empty.
pub fn daly_interval(
    iter_ns: u64,
    write_ns: u64,
    faults_per_iter: f64,
    total_iters: u32,
) -> Option<u32> {
    if total_iters == 0 || faults_per_iter <= 0.0 || iter_ns == 0 {
        return None;
    }
    let k = (2.0 * write_ns as f64 / (iter_ns as f64 * faults_per_iter)).sqrt();
    Some((k.round() as u32).clamp(1, total_iters))
}

/// Derives the [`CheckpointPolicy`] [`tune`] attaches to its winner:
/// Young/Daly with `λ` fitted from [`CheckpointTuning::history`] when
/// observations exist, falling back to the plan-implied uniform prior
/// `hard_faults / total_iters`. `None` when neither source shows a hard
/// fault — absorbable faults (jitter, link slowdowns) are survived in
/// place and never force a restart, so they contribute nothing to the
/// failure rate.
pub fn tune_checkpoint_interval(
    iter_ns: u64,
    tuning: &CheckpointTuning,
) -> Option<CheckpointPolicy> {
    if tuning.total_iters == 0 {
        return None;
    }
    let fitted = tuning.history.as_ref().and_then(|h| match &tuning.devices {
        Some(devs) => h.fitted_rate_on(devs),
        None => h.fitted_rate(),
    });
    let lambda = match fitted {
        Some(fitted) => fitted,
        None => {
            let hard = tuning.plan.hard_faults();
            if hard == 0 {
                return None;
            }
            hard as f64 / tuning.total_iters as f64
        }
    };
    let k = daly_interval(iter_ns, tuning.write_ns, lambda, tuning.total_iters)?;
    Some(
        CheckpointPolicy::every(k)
            .with_write_ns(tuning.write_ns)
            .with_mem_overhead(tuning.mem_overhead),
    )
}

/// Upper bound on emulator runs [`tune`] spends validating candidates when
/// [`TunerConfig::validate_on_emulator`] is set. If every validated
/// candidate fails, the search degrades gracefully to the best remaining
/// unvalidated one instead of aborting.
pub const MAX_VALIDATION_RUNS: usize = 8;

/// Upper bound on candidates re-simulated under
/// [`TunerConfig::perturbation`]. Degraded re-evaluation is a re-ranking
/// of the head of the fault-free ranking, not a second full grid search.
pub const MAX_DEGRADED_EVALS: usize = 8;

/// One point of the search grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    /// Pipeline scheme (`b`).
    pub scheme: SchemeKind,
    /// Pipeline depth (`pp`).
    pub pp: u32,
    /// Data-parallel degree (`dp = D / pp`).
    pub dp: u32,
    /// Micro-batch size.
    pub mbs: u32,
    /// Mario checkpointing enabled (`a`).
    pub mario: bool,
}

impl std::fmt::Display for Candidate {
    /// The paper's Fig. 11 label format `x-y-z` (scheme, PP, mbs), plus a
    /// `+M` marker when Mario is on.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}-{}-{}{}",
            self.scheme.shape_letter(),
            self.pp,
            self.mbs,
            if self.mario { "+M" } else { "" }
        )
    }
}

/// Why a candidate was rejected. Failed candidates stay on the search
/// curve with their cause recorded, instead of silently vanishing (or,
/// worse, aborting the whole search).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CandidateFailure {
    /// Peak memory exceeds the device budget (the Eq. 1 penalty).
    Oom {
        /// Worst per-device peak, bytes.
        peak: u64,
        /// The budget it exceeds, bytes.
        capacity: u64,
    },
    /// The DP simulator found a deadlock under blocking p2p.
    SimDeadlock(String),
    /// The DP simulator saw mis-paired communication.
    SimMismatch(String),
    /// Emulator validation failed (only with
    /// [`TunerConfig::validate_on_emulator`]).
    Emulation(String),
    /// Skipped by bound pruning (only with [`TunerConfig::bound_prune`]):
    /// the busy-time floor already caps this candidate's throughput at or
    /// below the best one seen when it was visited.
    BoundPruned {
        /// The admissible lower bound on the iteration time, ns.
        bound_ns: u64,
    },
}

impl std::fmt::Display for CandidateFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CandidateFailure::Oom { peak, capacity } => {
                write!(f, "OOM: peak {peak} B over budget {capacity} B")
            }
            CandidateFailure::SimDeadlock(s) => write!(f, "{s}"),
            CandidateFailure::SimMismatch(s) => write!(f, "{s}"),
            CandidateFailure::Emulation(s) => write!(f, "emulator validation failed: {s}"),
            CandidateFailure::BoundPruned { bound_ns } => {
                write!(f, "bound-pruned: busy floor {bound_ns} ns cannot beat the incumbent")
            }
        }
    }
}

/// A simulated evaluation of one candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evaluation {
    /// The grid point.
    pub candidate: Candidate,
    /// Cluster-wide throughput, samples/s (0 when the candidate OOMs —
    /// the Eq. 1 penalty).
    pub throughput: f64,
    /// Simulated iteration time, ns.
    pub iter_ns: u64,
    /// Simulated iteration time under [`TunerConfig::perturbation`], ns.
    /// `None` until the degraded re-evaluation pass fills it in (only the
    /// top-[`MAX_DEGRADED_EVALS`] fault-free candidates are re-simulated).
    pub degraded_iter_ns: Option<u64>,
    /// Per-device peak memory range `[min, max]`, bytes.
    pub peak_mem: (u64, u64),
    /// Whether the candidate exceeds the memory budget.
    pub oom: bool,
    /// Why the candidate is infeasible, when it is.
    pub failure: Option<CandidateFailure>,
}

impl Evaluation {
    /// True when the candidate is usable (no recorded failure).
    pub fn feasible(&self) -> bool {
        self.failure.is_none()
    }

    /// Predicted slowdown under the degraded profile
    /// (`degraded / fault-free`), when both times are known.
    pub fn degraded_slowdown(&self) -> Option<f64> {
        match (self.degraded_iter_ns, self.iter_ns) {
            (Some(d), t) if t > 0 => Some(d as f64 / t as f64),
            _ => None,
        }
    }

    /// Causal attribution for this evaluation: rebuilds the candidate's
    /// exact schedule (graph tuning included), re-simulates it, and runs
    /// the critical-path analyzer over the recorded span graph — *why* is
    /// the iteration time what it is, nanosecond by nanosecond. `None`
    /// when the candidate is inadmissible or its simulation fails. The
    /// rebuilt makespan equals [`Evaluation::iter_ns`] for feasible
    /// candidates (the whole pipeline is deterministic).
    pub fn explain(
        &self,
        model: &ModelConfig,
        gpu: &GpuSpec,
        cfg: &TunerConfig,
    ) -> Option<crate::critpath::CritReport> {
        let micros = admissible(model, &self.candidate, cfg.gbs)?;
        let (schedule, cost, cap) = build_schedule(model, gpu, cfg, self.candidate, micros);
        let timeline = simulate_timeline(&schedule, &cost, cap).ok()?;
        Some(crate::critpath::analyze(&schedule, &timeline.spans))
    }
}

/// Search-effort accounting for one [`tune`] invocation: how many grid
/// points were generated, why the rejected ones were pruned, and how much
/// simulation/emulation work the search spent. Attached to
/// [`TuneResult::stats`] so benches and the flight recorder can report
/// search cost next to search outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Grid points enumerated (every `(scheme, pp, mbs, a)` combination
    /// the loops visited).
    pub generated: u64,
    /// Pruned before simulation: structurally inadmissible (divisibility,
    /// scheme constraints, too few layers).
    pub inadmissible: u64,
    /// Candidates carried through schedule generation + simulation.
    pub simulated: u64,
    /// Simulated candidates pruned for exceeding the memory budget (the
    /// Eq. 1 penalty).
    pub pruned_oom: u64,
    /// Simulated candidates pruned by a simulation failure (deadlock or
    /// mis-paired communication).
    pub pruned_sim_failure: u64,
    /// Grid points skipped by the busy-floor bound without simulation
    /// (only with [`TunerConfig::bound_prune`]).
    pub pruned_bound: u64,
    /// Re-simulations under [`TunerConfig::perturbation`] (bounded by
    /// [`MAX_DEGRADED_EVALS`]).
    pub degraded_evals: u64,
    /// Cluster-emulator validation runs (bounded by
    /// [`MAX_VALIDATION_RUNS`]).
    pub emulator_runs: u64,
    /// Top-level DP timeline-simulator invocations (one per simulated
    /// candidate plus one per degraded re-evaluation; prepose-internal
    /// simulations are not counted).
    pub dp_invocations: u64,
    /// Wall-clock time of the search (equals
    /// [`TuneResult::tuning_time`]).
    pub wall_time: Duration,
}

/// The outcome of a grid search.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best feasible evaluation.
    pub best: Evaluation,
    /// Every evaluation, in search order (the Fig. 11 curve).
    pub curve: Vec<Evaluation>,
    /// Candidates that looked best but failed emulator validation, with
    /// the cause (empty unless [`TunerConfig::validate_on_emulator`]).
    pub rejected: Vec<(Candidate, CandidateFailure)>,
    /// The Young/Daly checkpoint policy for the winner, derived from
    /// [`TunerConfig::checkpoint`] and the winner's simulated iteration
    /// time. `None` when no tuning inputs were given or the fault plan
    /// carries no hard fault.
    pub checkpoint_policy: Option<CheckpointPolicy>,
    /// Elastic-recovery verdict for the winner under
    /// [`TunerConfig::recovery`]: which policy is cheaper for the
    /// configured fault scenario and where the crossover sits. `None`
    /// when no scenario was given or no admissible shrunk pipeline
    /// exists.
    pub recovery: Option<RecoveryReport>,
    /// Search-effort accounting: candidates generated, pruned (with
    /// cause), simulated, emulated, and wall time.
    pub stats: SearchStats,
    /// Wall-clock time of the search.
    pub tuning_time: Duration,
}

impl TuneResult {
    /// [`Evaluation::explain`] for the winning candidate: the critical
    /// path and per-op slack of the schedule the search selected.
    pub fn explain_best(
        &self,
        model: &ModelConfig,
        gpu: &GpuSpec,
        cfg: &TunerConfig,
    ) -> Option<crate::critpath::CritReport> {
        self.best.explain(model, gpu, cfg)
    }
}

/// Errors from tuning.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TuneError {
    /// No grid point satisfied the constraints (all OOM or invalid).
    NoFeasibleConfig,
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::NoFeasibleConfig => write!(f, "no feasible configuration found"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Topology for a candidate.
pub fn topology_of(scheme: SchemeKind, pp: u32) -> Topology {
    Topology::new(scheme, pp)
}

/// Channel buffer depth a scheme is known to need under blocking p2p, as
/// a closed-form **upper bound** per scheme family. The tuner no longer
/// uses this table directly — [`build_schedule`] derives the minimal
/// sufficient capacity from the concrete schedule's send/recv order
/// (`mario_ir::min_channel_capacity`), which can be smaller (e.g. small
/// Chimera instances run at capacity 1) — but the table is kept as the
/// debug-assertion ceiling on the derivation and as the conservative
/// fallback for schedules whose capacity cannot be proven within the
/// probe range.
pub fn scheme_channel_capacity(scheme: SchemeKind) -> usize {
    match scheme {
        // ZB-V's reflected second chunk needs the same buffer depth as a
        // two-chunk wave at larger scales.
        SchemeKind::Wave { .. } | SchemeKind::Chimera | SchemeKind::ZeroBubbleV => 2,
        _ => 1,
    }
}

/// Checks the structural constraints of a candidate; returns the
/// micro-batch count if admissible.
pub fn admissible(model: &ModelConfig, cand: &Candidate, gbs: u32) -> Option<u32> {
    if cand.pp * cand.dp == 0 {
        return None;
    }
    let denom = cand.dp * cand.mbs;
    if !gbs.is_multiple_of(denom) {
        return None;
    }
    let micros = gbs / denom;
    if micros == 0 {
        return None;
    }
    match cand.scheme {
        SchemeKind::Chimera if !cand.pp.is_multiple_of(2) || !micros.is_multiple_of(2) => {
            return None;
        }
        SchemeKind::Interleave { .. } if !micros.is_multiple_of(cand.pp) => {
            return None;
        }
        _ => {}
    }
    let stages = topology_of(cand.scheme, cand.pp).num_stages();
    if model.layers < stages {
        return None;
    }
    Some(micros)
}

/// Builds the (optionally graph-tuned) schedule and cost model for an
/// admissible candidate, together with the **effective channel capacity**
/// — the single construction path shared by simulation-based evaluation,
/// degraded re-evaluation and emulator validation, so all of them judge
/// the exact same schedule under the exact same buffer depth. The
/// returned capacity is the one the graph-tuner's `PreposeOptions` used;
/// computing it anywhere else can silently diverge from it.
fn build_schedule(
    model: &ModelConfig,
    gpu: &GpuSpec,
    cfg: &TunerConfig,
    cand: Candidate,
    micros: u32,
) -> (Schedule, AnalyticCost, usize) {
    let topo = topology_of(cand.scheme, cand.pp);
    let setup = TrainSetup::pipeline(model.clone(), gpu.clone(), topo, cand.mbs)
        .with_dp(cand.dp);
    let cost = AnalyticCost::new(&setup);
    let mut schedule = generate(
        ScheduleConfig::new(cand.scheme, cand.pp, micros).allreduce(cand.dp > 1),
    );
    // Minimal sufficient buffer depth, proven by symbolic execution of
    // this exact schedule (timing-independent, so it holds under any cost
    // model). The per-scheme table is the ceiling: a derivation above it
    // would mean the closed-form bound is wrong.
    let derived = min_channel_capacity(&schedule)
        .unwrap_or_else(|| scheme_channel_capacity(cand.scheme));
    debug_assert!(
        derived <= scheme_channel_capacity(cand.scheme),
        "{:?}: derived capacity {derived} exceeds the scheme table's {}",
        cand.scheme,
        scheme_channel_capacity(cand.scheme)
    );
    let cap = cfg.channel_capacity.max(derived);
    if cand.mario {
        let opts = GraphTunerOptions {
            prepose: cfg.prepose,
            prepose_opts: PreposeOptions {
                channel_capacity: cap,
                mem_capacity: Some(cfg.mem_capacity),
                max_rounds: 2,
            },
            ..GraphTunerOptions::mario()
        };
        run_graph_tuner(&mut schedule, &cost, opts);
    }
    // The graph tuner must keep the schedule executable at the capacity
    // its prepose pass was given.
    debug_assert!(
        min_channel_capacity(&schedule).is_some_and(|c| c <= cap),
        "graph tuner raised the capacity requirement of {} above {cap}",
        cand
    );
    (schedule, cost, cap)
}

/// Cluster throughput (samples/s) of `cand` at iteration time `iter_ns`,
/// with the DP-efficiency discount applied. 0 when the time is unknown.
fn throughput_of(cfg: &TunerConfig, cand: &Candidate, iter_ns: u64) -> f64 {
    if iter_ns == 0 {
        return 0.0;
    }
    let eff = cfg.dp_efficiency.powf((cand.dp as f64).log2());
    (cfg.gbs as f64 / (iter_ns as f64 / 1e9)) * eff
}

/// An admissible lower bound on a candidate's simulated iteration time:
/// the slowest device's summed instruction occupancy in the *generated*
/// schedule, before graph tuning. Every device executes its program
/// serially, so the makespan is at least any device's busy time; the
/// graph tuner only adds work (checkpoint recompute) or reorders it, so
/// the untuned floor also bounds the tuned schedule. One schedule
/// generation, no simulation — the cheap test [`tune`] uses for
/// [`TunerConfig::bound_prune`].
pub fn busy_floor(model: &ModelConfig, gpu: &GpuSpec, cand: &Candidate, micros: u32) -> u64 {
    let topo = topology_of(cand.scheme, cand.pp);
    let setup =
        TrainSetup::pipeline(model.clone(), gpu.clone(), topo, cand.mbs).with_dp(cand.dp);
    let cost = AnalyticCost::new(&setup);
    let schedule = generate(
        ScheduleConfig::new(cand.scheme, cand.pp, micros).allreduce(cand.dp > 1),
    );
    (0..schedule.devices())
        .map(|d| {
            let dev = DeviceId(d);
            schedule
                .program(dev)
                .into_iter()
                .map(|instr| cost.duration(dev, instr))
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0)
}

/// Simulates one candidate end to end. Returns `None` when the candidate is
/// structurally inadmissible; candidates that OOM or fail in simulation
/// return an [`Evaluation`] with the failure recorded, so the search curve
/// keeps every grid point and the tuner can degrade gracefully instead of
/// dropping causes on the floor.
pub fn evaluate(
    model: &ModelConfig,
    gpu: &GpuSpec,
    cfg: &TunerConfig,
    cand: Candidate,
) -> Option<Evaluation> {
    let micros = admissible(model, &cand, cfg.gbs)?;
    let (schedule, cost, cap) = build_schedule(model, gpu, cfg, cand, micros);
    let mem = simulate_memory(&schedule, &cost, Some(cfg.mem_capacity));
    let oom = !mem.fits(cfg.mem_capacity);
    let peak_mem = (mem.min_peak(), mem.max_peak());
    let (iter_ns, sim_failure) = match simulate_timeline(&schedule, &cost, cap) {
        Ok(timeline) => (timeline.total_ns, None),
        Err(SimError::Deadlock(s)) => (0, Some(CandidateFailure::SimDeadlock(s))),
        Err(SimError::Mismatch(s)) => (0, Some(CandidateFailure::SimMismatch(s))),
    };
    // OOM is the primary Eq. 1 penalty; a simulation failure is reported
    // when memory fits.
    let failure = if oom {
        Some(CandidateFailure::Oom {
            peak: peak_mem.1,
            capacity: cfg.mem_capacity,
        })
    } else {
        sim_failure
    };
    let throughput = if failure.is_some() {
        0.0
    } else {
        throughput_of(cfg, &cand, iter_ns)
    };
    Some(Evaluation {
        candidate: cand,
        throughput,
        iter_ns,
        degraded_iter_ns: None,
        peak_mem,
        oom,
        failure,
    })
}

/// Runs the full grid search (Equation 1).
pub fn tune(model: &ModelConfig, gpu: &GpuSpec, cfg: &TunerConfig) -> Result<TuneResult, TuneError> {
    let started = Instant::now();
    let mut stats = SearchStats::default();
    let mut curve = Vec::new();
    for scheme in cfg.scheme_choice.schemes() {
        for pp in 1..=cfg.total_devices {
            if pp < cfg.min_pp || !cfg.total_devices.is_multiple_of(pp) {
                continue;
            }
            let dp = cfg.total_devices / pp;
            for &mbs in &cfg.mbs_options {
                for &mario in &cfg.ckpt_options {
                    let cand = Candidate {
                        scheme,
                        pp,
                        dp,
                        mbs,
                        mario,
                    };
                    stats.generated += 1;
                    // Busy-floor pruning: a candidate whose cheap lower
                    // bound cannot beat the incumbent is recorded and
                    // skipped without simulating it. Comparing ≤ against
                    // an earlier candidate is winner-preserving — a tie
                    // would lose the stable ranking to the incumbent
                    // anyway.
                    if cfg.bound_prune {
                        let incumbent = curve
                            .iter()
                            .filter(|e: &&Evaluation| e.feasible())
                            .map(|e| e.throughput)
                            .fold(0.0f64, f64::max);
                        if incumbent > 0.0 {
                            if let Some(micros) = admissible(model, &cand, cfg.gbs) {
                                let bound_ns = busy_floor(model, gpu, &cand, micros);
                                if throughput_of(cfg, &cand, bound_ns) <= incumbent {
                                    stats.pruned_bound += 1;
                                    curve.push(Evaluation {
                                        candidate: cand,
                                        throughput: 0.0,
                                        iter_ns: 0,
                                        degraded_iter_ns: None,
                                        peak_mem: (0, 0),
                                        oom: false,
                                        failure: Some(CandidateFailure::BoundPruned {
                                            bound_ns,
                                        }),
                                    });
                                    continue;
                                }
                            }
                        }
                    }
                    match evaluate(model, gpu, cfg, cand) {
                        Some(eval) => {
                            stats.simulated += 1;
                            stats.dp_invocations += 1;
                            match eval.failure {
                                Some(CandidateFailure::Oom { .. }) => stats.pruned_oom += 1,
                                Some(_) => stats.pruned_sim_failure += 1,
                                None => {}
                            }
                            curve.push(eval);
                        }
                        None => stats.inadmissible += 1,
                    }
                }
            }
        }
    }
    // Rank feasible candidates best-first by fault-free throughput.
    let mut order: Vec<usize> = (0..curve.len()).filter(|&i| curve[i].feasible()).collect();
    order.sort_by(|&a, &b| curve[b].throughput.total_cmp(&curve[a].throughput));

    // Degraded re-evaluation: re-simulate the head of the ranking under
    // the caller's perturbation profile and re-rank it by degraded
    // iteration time, so the selected schedule is the one that best
    // absorbs the known straggler — not the one that only wins on a
    // pristine cluster. Both times are reported on the evaluations.
    if let Some(profile) = &cfg.perturbation {
        let k = order.len().min(MAX_DEGRADED_EVALS);
        for &i in &order[..k] {
            let cand = curve[i].candidate;
            let Some(micros) = admissible(model, &cand, cfg.gbs) else {
                continue;
            };
            let (schedule, cost, cap) = build_schedule(model, gpu, cfg, cand, micros);
            stats.degraded_evals += 1;
            stats.dp_invocations += 1;
            if let Ok(t) = simulate_timeline_with(&schedule, &cost, cap, profile) {
                curve[i].degraded_iter_ns = Some(t.total_ns);
            }
        }
        // Stable sort: equal degraded times keep the fault-free order;
        // candidates whose degraded simulation failed sink to the end of
        // the re-evaluated prefix.
        order[..k].sort_by_key(|&i| curve[i].degraded_iter_ns.unwrap_or(u64::MAX));
    }

    // With emulator validation on, walk down the ranking: a candidate the
    // emulator rejects (a schedule the simulator mis-judged) is recorded
    // with its cause and the search degrades to the next-best instead of
    // aborting. Validation effort is bounded; past the bound the
    // next-best candidate is accepted as-is. The bounded validations run
    // concurrently on scoped threads — results are merged in candidate
    // order, so the selected schedule and the rejection log are identical
    // to the serial walk.
    let mut rejected = Vec::new();
    let mut best: Option<Evaluation> = None;
    if cfg.validate_on_emulator {
        let k = order.len().min(MAX_VALIDATION_RUNS);
        stats.emulator_runs += k as u64;
        let outcomes: Vec<Result<(), CandidateFailure>> = std::thread::scope(|scope| {
            let handles: Vec<_> = order[..k]
                .iter()
                .map(|&i| {
                    let cand = curve[i].candidate;
                    scope.spawn(move || validate_candidate(model, gpu, cfg, cand))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("validation thread panicked"))
                .collect()
        });
        for (slot, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(()) => {
                    best = Some(curve[order[slot]].clone());
                    break;
                }
                Err(cause) => rejected.push((curve[order[slot]].candidate, cause)),
            }
        }
        if best.is_none() {
            // Every validated candidate failed: degrade gracefully to the
            // best remaining unvalidated one.
            best = order.get(k).map(|&i| curve[i].clone());
        }
    } else {
        best = order.first().map(|&i| curve[i].clone());
    }
    let best = best.ok_or(TuneError::NoFeasibleConfig)?;
    let checkpoint_policy = cfg
        .checkpoint
        .as_ref()
        .and_then(|t| tune_checkpoint_interval(best.iter_ns, t));
    // Elastic-recovery pricing for the winner: plan the shrink onto the
    // survivors of the configured fault, simulate the shrunk pipeline's
    // iteration time with the same build pipeline as the grid search
    // (graph tuning included), and compare both policies over the
    // remaining-iteration tail.
    let recovery = cfg.recovery.as_ref().and_then(|r| {
        let micros = admissible(model, &best.candidate, cfg.gbs)?;
        let setup = ElasticSetup {
            scheme: best.candidate.scheme,
            devices: best.candidate.pp,
            micros,
            layers: model.layers,
            state_bytes_per_layer: r.state_bytes_per_layer,
            fetch_bytes_per_us: r.fetch_bytes_per_us,
        };
        let plan = plan_shrink(&setup, &r.lost_devices)?;
        let shrunk = Candidate {
            pp: plan.devices,
            ..best.candidate
        };
        let (schedule, cost, cap) = build_schedule(model, gpu, cfg, shrunk, micros);
        stats.dp_invocations += 1;
        let shrunk_iter_ns = simulate_timeline(&schedule, &cost, cap).ok()?.total_ns;
        let reconfig_ns = plan.startup_ns.iter().copied().max().unwrap_or(0);
        let cmp = compare_policies(
            best.iter_ns,
            shrunk_iter_ns,
            reconfig_ns,
            r.replacement_wait_ns,
            r.remaining_iters,
        );
        Some(RecoveryReport {
            policy: cmp.policy,
            wait_total_ns: cmp.wait_total_ns,
            shrink_total_ns: cmp.shrink_total_ns,
            crossover_remaining: cmp.crossover_remaining,
            shrunk_iter_ns,
            reconfig_ns,
            shrunk_devices: plan.devices,
        })
    });
    let tuning_time = started.elapsed();
    stats.wall_time = tuning_time;
    Ok(TuneResult {
        best,
        curve,
        rejected,
        checkpoint_policy,
        recovery,
        stats,
        tuning_time,
    })
}

/// Replays one candidate's exact schedule on the cluster emulator (real
/// threads, blocking p2p, memory ledger) and reports the structured cause
/// when the run fails.
fn validate_candidate(
    model: &ModelConfig,
    gpu: &GpuSpec,
    cfg: &TunerConfig,
    cand: Candidate,
) -> Result<(), CandidateFailure> {
    let micros = admissible(model, &cand, cfg.gbs)
        .ok_or_else(|| CandidateFailure::Emulation("candidate became inadmissible".into()))?;
    let (schedule, cost, cap) = build_schedule(model, gpu, cfg, cand, micros);
    let emu_cfg = mario_cluster::EmulatorConfig {
        channel_capacity: cap,
        mem_capacity: Some(cfg.mem_capacity),
        backend: cfg.validation_backend,
        ..Default::default()
    };
    match mario_cluster::run(&schedule, &cost, emu_cfg) {
        Ok(_) => Ok(()),
        Err(e) => Err(CandidateFailure::Emulation(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TunerConfig {
        TunerConfig {
            mbs_options: vec![1, 2],
            prepose: false, // keep unit tests fast
            ..TunerConfig::new(8, 32, 40 * (1 << 30))
        }
    }

    #[test]
    fn tune_finds_a_feasible_config_for_gpt3_1_6b() {
        let r = tune(
            &ModelConfig::gpt3_1_6b(),
            &GpuSpec::a100_40g(),
            &small_cfg(),
        )
        .unwrap();
        assert!(r.best.throughput > 0.0);
        assert!(!r.curve.is_empty());
        // The best config must be at least as good as every non-OOM point.
        for e in &r.curve {
            assert!(r.best.throughput >= e.throughput);
        }
    }

    #[test]
    fn admissibility_rules() {
        let m = ModelConfig::gpt3_1_6b();
        // Chimera needs even pp and even micros.
        let c = Candidate {
            scheme: SchemeKind::Chimera,
            pp: 5,
            dp: 1,
            mbs: 1,
            mario: false,
        };
        assert!(admissible(&m, &c, 32).is_none());
        // Interleave needs micros % pp == 0.
        let c = Candidate {
            scheme: SchemeKind::Interleave { chunks: 2 },
            pp: 8,
            dp: 1,
            mbs: 3,
            mario: false,
        };
        assert!(admissible(&m, &c, 32).is_none());
        // Too many stages for the layer count.
        let shallow = ModelConfig {
            layers: 4,
            ..ModelConfig::gpt3_1_6b()
        };
        let c = Candidate {
            scheme: SchemeKind::OneFOneB,
            pp: 8,
            dp: 1,
            mbs: 1,
            mario: false,
        };
        assert!(admissible(&shallow, &c, 32).is_none());
        // A good 1F1B candidate.
        let c = Candidate {
            scheme: SchemeKind::OneFOneB,
            pp: 8,
            dp: 1,
            mbs: 2,
            mario: true,
        };
        assert_eq!(admissible(&m, &c, 32), Some(16));
    }

    #[test]
    fn oom_candidates_get_zero_throughput_but_stay_on_the_curve() {
        // A tiny memory budget makes everything OOM except nothing.
        let cfg = TunerConfig {
            mem_capacity: 1 << 30, // 1 GB: static alone exceeds this
            ..small_cfg()
        };
        let err = tune(&ModelConfig::gpt3_13b(), &GpuSpec::a100_40g(), &cfg);
        assert_eq!(err.unwrap_err(), TuneError::NoFeasibleConfig);
    }

    #[test]
    fn candidate_label_format() {
        let c = Candidate {
            scheme: SchemeKind::OneFOneB,
            pp: 64,
            dp: 1,
            mbs: 16,
            mario: true,
        };
        assert_eq!(c.to_string(), "V-64-16+M");
    }

    #[test]
    fn mario_enables_configs_that_oom_without_it() {
        // GPT3-13B on 32 devices at mbs 2: base 1F1B OOMs on 40 GB (Table
        // 5 V-base max = 122 GB), Mario fits (V-ovlp max = 14 GB).
        let model = ModelConfig::gpt3_13b();
        let gpu = GpuSpec::a100_40g();
        let cfg = TunerConfig {
            prepose: false,
            ..TunerConfig::new(32, 128, 40 * (1 << 30))
        };
        let base = evaluate(
            &model,
            &gpu,
            &cfg,
            Candidate {
                scheme: SchemeKind::OneFOneB,
                pp: 32,
                dp: 1,
                mbs: 2,
                mario: false,
            },
        )
        .unwrap();
        let mario = evaluate(
            &model,
            &gpu,
            &cfg,
            Candidate {
                scheme: SchemeKind::OneFOneB,
                pp: 32,
                dp: 1,
                mbs: 2,
                mario: true,
            },
        )
        .unwrap();
        assert!(base.oom, "base should OOM: {:?}", base.peak_mem);
        assert!(!mario.oom, "mario should fit: {:?}", mario.peak_mem);
        assert!(mario.throughput > 0.0);
        // The cause is recorded, not just the flag.
        assert!(
            matches!(base.failure, Some(CandidateFailure::Oom { .. })),
            "{:?}",
            base.failure
        );
        assert!(mario.feasible());
    }

    #[test]
    fn infeasible_candidates_keep_their_cause_on_the_curve() {
        let cfg = TunerConfig {
            mem_capacity: 1 << 30, // 1 GB: everything OOMs
            ..small_cfg()
        };
        let mut curve = Vec::new();
        for scheme in cfg.scheme_choice.schemes() {
            for &mbs in &cfg.mbs_options {
                let cand = Candidate {
                    scheme,
                    pp: 8,
                    dp: 1,
                    mbs,
                    mario: false,
                };
                if let Some(e) = evaluate(&ModelConfig::gpt3_13b(), &GpuSpec::a100_40g(), &cfg, cand)
                {
                    curve.push(e);
                }
            }
        }
        assert!(!curve.is_empty());
        for e in &curve {
            assert!(!e.feasible());
            assert!(e.failure.is_some(), "cause must be recorded: {:?}", e.candidate);
            assert_eq!(e.throughput, 0.0);
        }
    }

    #[test]
    fn emulator_validation_accepts_a_sound_best_candidate() {
        let cfg = TunerConfig {
            validate_on_emulator: true,
            ..small_cfg()
        };
        let r = tune(&ModelConfig::gpt3_1_6b(), &GpuSpec::a100_40g(), &cfg).unwrap();
        // The simulator and emulator agree on these schedules, so the top
        // candidate validates first try and nothing is rejected.
        assert!(r.rejected.is_empty(), "{:?}", r.rejected);
        assert!(r.best.throughput > 0.0);
    }

    #[test]
    fn event_backend_validation_selects_the_same_candidate() {
        // Backend parity holds on the exact schedules the tuner replays,
        // so routing validation through the event executor must change
        // nothing about the outcome — only how far it can scale.
        let model = ModelConfig::gpt3_1_6b();
        let gpu = GpuSpec::a100_40g();
        let thread = tune(
            &model,
            &gpu,
            &TunerConfig {
                validate_on_emulator: true,
                ..small_cfg()
            },
        )
        .unwrap();
        let event = tune(
            &model,
            &gpu,
            &TunerConfig {
                validate_on_emulator: true,
                validation_backend: mario_cluster::EmulatorBackend::Event,
                ..small_cfg()
            },
        )
        .unwrap();
        assert_eq!(thread.best.candidate, event.best.candidate);
        assert_eq!(thread.best.iter_ns, event.best.iter_ns);
        assert!(event.rejected.is_empty(), "{:?}", event.rejected);
    }

    #[test]
    fn parallel_validation_is_deterministic() {
        let cfg = TunerConfig {
            validate_on_emulator: true,
            ..small_cfg()
        };
        let model = ModelConfig::gpt3_1_6b();
        let gpu = GpuSpec::a100_40g();
        let a = tune(&model, &gpu, &cfg).unwrap();
        for _ in 0..3 {
            let b = tune(&model, &gpu, &cfg).unwrap();
            assert_eq!(a.best.candidate, b.best.candidate);
            assert_eq!(
                a.rejected.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
                b.rejected.iter().map(|(c, _)| *c).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn channel_capacity_flows_through_the_single_build_path() {
        // Regression: the effective capacity used to be computed in three
        // places (`evaluate`, `build_schedule`, `validate_candidate`) and
        // could diverge. It now exists only inside `build_schedule`, which
        // derives the minimal sufficient depth from the concrete schedule
        // instead of the per-scheme table; the table stays the ceiling.
        let model = ModelConfig::gpt3_1_6b();
        let gpu = GpuSpec::a100_40g();
        let cfg = TunerConfig {
            channel_capacity: 1,
            ..small_cfg()
        };
        for (scheme, pp, mbs) in [
            (SchemeKind::Chimera, 8u32, 1u32),
            (SchemeKind::Wave { chunks: 2 }, 8, 1),
            (SchemeKind::OneFOneB, 8, 1),
        ] {
            let cand = Candidate {
                scheme,
                pp,
                dp: 1,
                mbs,
                mario: scheme != SchemeKind::OneFOneB,
            };
            let micros = admissible(&model, &cand, 32).expect("admissible");
            let (_, _, cap) = build_schedule(&model, &gpu, &cfg, cand, micros);
            // The derivation is the single source of truth: the effective
            // capacity equals the proven minimum of this exact schedule
            // (floored by the configured depth), never above the table.
            let expected = mario_ir::min_channel_capacity(&generate(
                ScheduleConfig::new(scheme, pp, micros),
            ))
            .expect("schedule is executable within the probe range");
            assert_eq!(cap, expected.max(cfg.channel_capacity), "{scheme:?}");
            assert!(cap <= scheme_channel_capacity(scheme), "{scheme:?}: {cap}");
        }
        // The derivation can beat the table: this Chimera instance proves
        // executable at depth 1 even though the closed-form bound says 2 —
        // and the threaded emulator agrees, completing at the derived
        // depth. The table survives only as the derivation's ceiling.
        let cand = Candidate {
            scheme: SchemeKind::Chimera,
            pp: 8,
            dp: 1,
            mbs: 1,
            mario: false,
        };
        let micros = admissible(&model, &cand, 32).unwrap();
        let (schedule, cost, cap) = build_schedule(&model, &gpu, &cfg, cand, micros);
        assert_eq!(cap, 1);
        let emu = mario_cluster::run(
            &schedule,
            &cost,
            mario_cluster::EmulatorConfig {
                channel_capacity: cap,
                ..Default::default()
            },
        )
        .expect("emulator completes at the derived capacity");
        assert!(emu.total_ns > 0);
        // A configured depth above the derived minimum is respected.
        let cand = Candidate {
            scheme: SchemeKind::OneFOneB,
            pp: 8,
            dp: 1,
            mbs: 1,
            mario: false,
        };
        let micros = admissible(&model, &cand, 32).unwrap();
        let wide = TunerConfig {
            channel_capacity: 4,
            ..small_cfg()
        };
        let (_, _, cap) = build_schedule(&model, &gpu, &wide, cand, micros);
        assert_eq!(cap, 4);
    }

    #[test]
    fn daly_interval_tracks_cost_and_rate() {
        // Pricier checkpoints stretch the interval...
        let cheap = daly_interval(1000, 100, 0.1, 100).unwrap();
        let pricey = daly_interval(1000, 10_000, 0.1, 100).unwrap();
        assert!(pricey > cheap, "{pricey} vs {cheap}");
        // ...while a higher fault rate shrinks it.
        let calm = daly_interval(1000, 1000, 0.01, 100).unwrap();
        let stormy = daly_interval(1000, 1000, 1.0, 100).unwrap();
        assert!(stormy < calm, "{stormy} vs {calm}");
        // Free checkpoints saturate at "every iteration"; the clamp keeps
        // the interval within the run.
        assert_eq!(daly_interval(1000, 0, 0.5, 100), Some(1));
        assert_eq!(daly_interval(10, 1 << 40, 0.001, 12), Some(12));
        // No faults or no run: nothing to tune.
        assert_eq!(daly_interval(1000, 100, 0.0, 100), None);
        assert_eq!(daly_interval(1000, 100, 0.5, 0), None);
    }

    fn fault_report(fault: mario_cluster::FaultKind, group: Option<&str>) -> FaultReport {
        FaultReport {
            fault,
            device: mario_ir::DeviceId(0),
            pc: 0,
            instr: String::new(),
            blocked_peer: None,
            vtime: 0,
            iteration: 0,
            last_checkpoint: 0,
            ckpt_paid_ns: 0,
            group: group.map(str::to_string),
            detail: String::new(),
        }
    }

    #[test]
    fn fitted_rate_counts_restart_events_not_reports() {
        use mario_cluster::FaultKind;
        use mario_ir::DeviceId;
        let crash = FaultKind::Crash {
            device: DeviceId(0),
            pc: 0,
        };
        let slow = FaultKind::Slowdown {
            device: DeviceId(1),
            factor: 2.0,
            from_pc: 0,
            until_pc: 4,
        };
        // Nothing observed: no rate.
        assert_eq!(fit_fault_rate(&[], 64), None);
        assert_eq!(fit_fault_rate(&[fault_report(crash, None)], 0), None);
        // Absorbable faults never force a restart.
        assert_eq!(fit_fault_rate(&[fault_report(slow, None)], 64), None);
        // Independent hard faults each count...
        let two = [fault_report(crash, None), fault_report(crash, None)];
        assert_eq!(fit_fault_rate(&two, 64), Some(2.0 / 64.0));
        // ...but a correlated burst (one rack dying as a crash plus two
        // stalls) is a single restart event.
        let burst = [
            fault_report(crash, Some("rack-0")),
            fault_report(
                FaultKind::LinkStall {
                    src: DeviceId(0),
                    dst: DeviceId(2),
                    nth: 0,
                },
                Some("rack-0"),
            ),
            fault_report(
                FaultKind::LinkStall {
                    src: DeviceId(1),
                    dst: DeviceId(3),
                    nth: 0,
                },
                Some("rack-0"),
            ),
        ];
        assert_eq!(fit_fault_rate(&burst, 64), Some(1.0 / 64.0));
        let mut history = FaultHistory::default();
        history.record(burst.to_vec(), 32);
        history.record([fault_report(crash, None)], 32);
        assert_eq!(history.fitted_rate(), Some(2.0 / 64.0));
    }

    #[test]
    fn history_overrides_the_plan_prior() {
        use mario_cluster::FaultKind;
        use mario_ir::DeviceId;
        let crash = FaultKind::Crash {
            device: DeviceId(0),
            pc: 0,
        };
        // Plan-implied prior: 4 hard faults over 64 iterations.
        let mut tuning = CheckpointTuning {
            plan: FaultPlan::none().with(crash).with(crash).with(crash).with(crash),
            total_iters: 64,
            write_ns: 5_000,
            mem_overhead: 0,
            history: None,
            devices: None,
        };
        let prior = tune_checkpoint_interval(10_000, &tuning).unwrap();
        assert_eq!(
            prior.interval_iters,
            daly_interval(10_000, 5_000, 4.0 / 64.0, 64).unwrap()
        );
        // Observed history: one restart over 256 iterations — a much
        // calmer fleet, so the fitted interval stretches.
        let mut history = FaultHistory::default();
        history.record([fault_report(crash, None)], 256);
        tuning.history = Some(history);
        let fitted = tune_checkpoint_interval(10_000, &tuning).unwrap();
        assert_eq!(
            fitted.interval_iters,
            daly_interval(10_000, 5_000, 1.0 / 256.0, 64).unwrap()
        );
        assert!(fitted.interval_iters > prior.interval_iters);
        // A history with no hard fault falls back to the plan prior.
        tuning.history = Some(FaultHistory::default());
        let fallback = tune_checkpoint_interval(10_000, &tuning).unwrap();
        assert_eq!(fallback.interval_iters, prior.interval_iters);
    }

    #[test]
    fn effective_write_cost_amortizes_the_measured_slowdown() {
        // 12 writes stretched a 100µs run to 103µs: 250 ns each.
        assert_eq!(effective_write_ns(100_000, 103_000, 12), 250);
        // Fully absorbed writes cost nothing; degenerate inputs are safe.
        assert_eq!(effective_write_ns(100_000, 100_000, 12), 0);
        assert_eq!(effective_write_ns(100_000, 99_000, 12), 0);
        assert_eq!(effective_write_ns(100_000, 103_000, 0), 0);
    }

    #[test]
    fn checkpoint_tuner_needs_a_hard_fault() {
        use mario_cluster::FaultKind;
        use mario_ir::DeviceId;
        let mut tuning = CheckpointTuning {
            plan: FaultPlan::none(),
            total_iters: 32,
            write_ns: 5_000,
            mem_overhead: 128,
            history: None,
            devices: None,
        };
        // An empty plan — and a plan of only absorbable faults — yields no
        // policy: nothing ever forces a restart.
        assert!(tune_checkpoint_interval(10_000, &tuning).is_none());
        tuning.plan = FaultPlan::none().with(FaultKind::Slowdown {
            device: DeviceId(0),
            factor: 4.0,
            from_pc: 0,
            until_pc: 8,
        });
        assert!(tune_checkpoint_interval(10_000, &tuning).is_none());
        // One crash over the run sets λ = 1/32 and produces a real policy
        // carrying the configured costs.
        tuning.plan = FaultPlan::none().with(FaultKind::Crash {
            device: DeviceId(1),
            pc: 3,
        });
        let policy = tune_checkpoint_interval(10_000, &tuning).unwrap();
        assert!(policy.interval_iters >= 1 && policy.interval_iters <= 32);
        assert_eq!(policy.write_ns, 5_000);
        assert_eq!(policy.mem_overhead, 128);
        // And it matches the raw Young/Daly formula.
        assert_eq!(
            policy.interval_iters,
            daly_interval(10_000, 5_000, 1.0 / 32.0, 32).unwrap()
        );
    }

    #[test]
    fn tune_reports_a_checkpoint_policy_when_faults_are_anticipated() {
        use mario_cluster::FaultKind;
        use mario_ir::DeviceId;
        let model = ModelConfig::gpt3_1_6b();
        let gpu = GpuSpec::a100_40g();
        // Default config: no tuning inputs, no policy.
        let r = tune(&model, &gpu, &small_cfg()).unwrap();
        assert!(r.checkpoint_policy.is_none());
        // With an anticipated crash the winner gets a Young/Daly policy
        // derived from its own simulated iteration time.
        let cfg = TunerConfig {
            checkpoint: Some(CheckpointTuning {
                plan: FaultPlan::none().with(FaultKind::Crash {
                    device: DeviceId(0),
                    pc: 0,
                }),
                total_iters: 64,
                write_ns: 2_000_000,
                mem_overhead: 0,
                history: None,
                devices: None,
            }),
            ..small_cfg()
        };
        let r = tune(&model, &gpu, &cfg).unwrap();
        let policy = r.checkpoint_policy.expect("policy for a faulty plan");
        assert!(policy.interval_iters >= 1 && policy.interval_iters <= 64);
        assert_eq!(
            policy.interval_iters,
            daly_interval(r.best.iter_ns, 2_000_000, 1.0 / 64.0, 64).unwrap()
        );
    }

    #[test]
    fn degraded_reevaluation_reports_both_iteration_times() {
        use mario_ir::{DeviceId, PerturbationProfile};
        let profile = PerturbationProfile::identity().with_straggler(DeviceId(0), 4.0);
        let cfg = TunerConfig {
            perturbation: Some(profile),
            ..small_cfg()
        };
        let r = tune(&ModelConfig::gpt3_1_6b(), &GpuSpec::a100_40g(), &cfg).unwrap();
        // The winner carries both times, and a straggler can only slow an
        // iteration down.
        let degraded = r.best.degraded_iter_ns.expect("degraded time recorded");
        assert!(degraded >= r.best.iter_ns);
        assert!(r.best.degraded_slowdown().unwrap() >= 1.0);
        // The degraded pass touched at most MAX_DEGRADED_EVALS candidates
        // and every touched one reports a degraded time no faster than its
        // fault-free one.
        let touched: Vec<&Evaluation> = r
            .curve
            .iter()
            .filter(|e| e.degraded_iter_ns.is_some())
            .collect();
        assert!(!touched.is_empty());
        assert!(touched.len() <= MAX_DEGRADED_EVALS);
        for e in touched {
            assert!(e.degraded_iter_ns.unwrap() >= e.iter_ns, "{}", e.candidate);
        }
        // Among re-evaluated candidates the winner has the best degraded
        // time (the re-ranking property).
        let best_degraded = r
            .curve
            .iter()
            .filter_map(|e| e.degraded_iter_ns)
            .min()
            .unwrap();
        assert_eq!(r.best.degraded_iter_ns.unwrap(), best_degraded);
    }

    #[test]
    fn search_stats_account_for_every_grid_point() {
        let cfg = small_cfg();
        let r = tune(&ModelConfig::gpt3_1_6b(), &GpuSpec::a100_40g(), &cfg).unwrap();
        let s = &r.stats;
        // Every generated point is either inadmissible or simulated...
        assert!(s.generated > 0);
        assert_eq!(s.generated, s.inadmissible + s.simulated);
        // ...and the simulated ones are exactly the curve.
        assert_eq!(s.simulated, r.curve.len() as u64);
        // Pruned counts match the failures recorded on the curve.
        let oom = r
            .curve
            .iter()
            .filter(|e| matches!(e.failure, Some(CandidateFailure::Oom { .. })))
            .count() as u64;
        let simfail = r
            .curve
            .iter()
            .filter(|e| {
                matches!(
                    e.failure,
                    Some(CandidateFailure::SimDeadlock(_) | CandidateFailure::SimMismatch(_))
                )
            })
            .count() as u64;
        assert_eq!(s.pruned_oom, oom);
        assert_eq!(s.pruned_sim_failure, simfail);
        // No degraded profile, no emulator validation: one DP invocation
        // per simulated candidate and zero extra effort.
        assert_eq!(s.dp_invocations, s.simulated);
        assert_eq!(s.degraded_evals, 0);
        assert_eq!(s.emulator_runs, 0);
        assert_eq!(s.wall_time, r.tuning_time);

        // Degraded re-evaluation and emulator validation add their bounded
        // extra effort to the ledger.
        let cfg = TunerConfig {
            perturbation: Some(
                mario_ir::PerturbationProfile::identity()
                    .with_straggler(mario_ir::DeviceId(0), 4.0),
            ),
            validate_on_emulator: true,
            ..small_cfg()
        };
        let r = tune(&ModelConfig::gpt3_1_6b(), &GpuSpec::a100_40g(), &cfg).unwrap();
        let s = &r.stats;
        assert!(s.degraded_evals > 0 && s.degraded_evals <= MAX_DEGRADED_EVALS as u64);
        assert!(s.emulator_runs > 0 && s.emulator_runs <= MAX_VALIDATION_RUNS as u64);
        assert_eq!(s.dp_invocations, s.simulated + s.degraded_evals);
    }

    #[test]
    fn hard_faults_bin_by_faulty_device_with_group_dedup() {
        use mario_cluster::FaultKind;
        use mario_ir::DeviceId;
        let crash0 = FaultKind::Crash {
            device: DeviceId(0),
            pc: 0,
        };
        let crash2 = FaultKind::Crash {
            device: DeviceId(2),
            pc: 1,
        };
        let slow1 = FaultKind::Slowdown {
            device: DeviceId(1),
            factor: 2.0,
            from_pc: 0,
            until_pc: 4,
        };
        let mut h = FaultHistory::default();
        // Absorbable faults never count.
        h.record([fault_report(slow1, None)], 8);
        assert!(h.hard_faults_by_device().is_empty());
        // Independent hard faults bin by the faulty component's device —
        // two on device 0, one on device 2.
        h.record(
            [
                fault_report(crash0, None),
                fault_report(crash0, None),
                fault_report(crash2, None),
            ],
            8,
        );
        assert_eq!(
            h.hard_faults_by_device(),
            vec![(DeviceId(0), 2), (DeviceId(2), 1)]
        );
        // A correlated burst is one event, attributed to its first
        // report's site — device 2 gains one, the grouped crash on
        // device 0 adds nothing more.
        h.record(
            [
                fault_report(crash2, Some("rack-1")),
                fault_report(crash0, Some("rack-1")),
            ],
            8,
        );
        assert_eq!(
            h.hard_faults_by_device(),
            vec![(DeviceId(0), 2), (DeviceId(2), 2)]
        );
        // The total matches the rate-fit's event count.
        let events: u64 = h.hard_faults_by_device().iter().map(|(_, n)| n).sum();
        assert_eq!(h.fitted_rate(), Some(events as f64 / 24.0));
    }

    #[test]
    fn degraded_reevaluation_is_off_by_default() {
        let r = tune(
            &ModelConfig::gpt3_1_6b(),
            &GpuSpec::a100_40g(),
            &small_cfg(),
        )
        .unwrap();
        assert!(r.curve.iter().all(|e| e.degraded_iter_ns.is_none()));
        assert_eq!(r.best.degraded_slowdown(), None);
    }

    #[test]
    fn scoped_rate_isolates_the_lemon_device() {
        use mario_cluster::FaultKind;
        use mario_ir::DeviceId;
        let crash = |d: u32| FaultKind::Crash {
            device: DeviceId(d),
            pc: 0,
        };
        // A shared history: device 0 is a lemon (three crashes), device 2
        // crashed once, the rest never failed.
        let mut h = FaultHistory::default();
        h.record(
            [
                fault_report(crash(0), None),
                fault_report(crash(0), None),
                fault_report(crash(0), None),
                fault_report(crash(2), None),
            ],
            64,
        );
        // The scoped rates partition the global one.
        assert_eq!(h.fitted_rate(), Some(4.0 / 64.0));
        assert_eq!(h.fitted_rate_on(&[DeviceId(0)]), Some(3.0 / 64.0));
        assert_eq!(h.fitted_rate_on(&[DeviceId(2)]), Some(1.0 / 64.0));
        // A placement avoiding every observed lemon fits NO rate — the
        // caller falls back to its prior, not the lemons' λ.
        assert_eq!(h.fitted_rate_on(&[DeviceId(1), DeviceId(3)]), None);
        // Correlated-group attribution: the group is consumed at its
        // first report's site (device 0), so scoping to device 2 does not
        // count the burst even though a later member sits there.
        let mut g = FaultHistory::default();
        g.record(
            [
                fault_report(crash(0), Some("rack-0")),
                fault_report(crash(2), Some("rack-0")),
            ],
            64,
        );
        assert_eq!(g.fitted_rate_on(&[DeviceId(0)]), Some(1.0 / 64.0));
        assert_eq!(g.fitted_rate_on(&[DeviceId(2)]), None);
        // Excluding the lemon from the placement stretches the tuned
        // interval: calmer devices, sparser checkpoints.
        let mut tuning = CheckpointTuning {
            plan: FaultPlan::none().with(crash(0)),
            total_iters: 64,
            write_ns: 5_000,
            mem_overhead: 0,
            history: Some(h),
            devices: Some(vec![DeviceId(0), DeviceId(1)]),
        };
        let with_lemon = tune_checkpoint_interval(10_000, &tuning).unwrap();
        tuning.devices = Some(vec![DeviceId(2), DeviceId(3)]);
        let without = tune_checkpoint_interval(10_000, &tuning).unwrap();
        assert_eq!(
            with_lemon.interval_iters,
            daly_interval(10_000, 5_000, 3.0 / 64.0, 64).unwrap()
        );
        assert_eq!(
            without.interval_iters,
            daly_interval(10_000, 5_000, 1.0 / 64.0, 64).unwrap()
        );
        assert!(without.interval_iters > with_lemon.interval_iters);
    }

    #[test]
    fn tune_prices_both_recovery_policies() {
        use mario_ir::DeviceId;
        let model = ModelConfig::gpt3_1_6b();
        let gpu = GpuSpec::a100_40g();
        // No scenario configured: no verdict.
        let r = tune(&model, &gpu, &small_cfg()).unwrap();
        assert!(r.recovery.is_none());
        let scenario = |replacement_wait_ns: u64, remaining_iters: u32| TunerConfig {
            recovery: Some(RecoveryTuning {
                lost_devices: vec![DeviceId(1)],
                remaining_iters,
                replacement_wait_ns,
                state_bytes_per_layer: 1 << 20,
                fetch_bytes_per_us: 1 << 10,
            }),
            ..small_cfg()
        };
        // A near-instant replacement with a long tail: waiting wins.
        let r = tune(&model, &gpu, &scenario(1, 10_000)).unwrap();
        let wait = r.recovery.expect("verdict for a configured scenario");
        assert_eq!(wait.policy, RecoveryPolicy::WaitAndResume);
        assert!(wait.wait_total_ns <= wait.shrink_total_ns);
        assert!(wait.shrunk_devices < r.best.candidate.pp);
        assert!(wait.shrunk_iter_ns >= r.best.iter_ns);
        assert!(wait.reconfig_ns > 0);
        // A week-long replacement queue with a short tail: shrinking wins,
        // and the crossover horizon separates the two regimes.
        let r = tune(&model, &gpu, &scenario(u64::MAX / 4, 1)).unwrap();
        let shrink = r.recovery.expect("verdict");
        assert_eq!(shrink.policy, RecoveryPolicy::ShrinkAndContinue);
        assert!(shrink.shrink_total_ns <= shrink.wait_total_ns);
        if let Some(r_star) = shrink.crossover_remaining {
            assert!(r_star as u128 > 1);
        }
    }

    #[test]
    fn bound_pruning_preserves_the_winner_and_prunes_something() {
        let model = ModelConfig::gpt3_1_6b();
        let gpu = GpuSpec::a100_40g();
        let base = tune(&model, &gpu, &small_cfg()).unwrap();
        let pruned_cfg = TunerConfig {
            bound_prune: true,
            ..small_cfg()
        };
        let pruned = tune(&model, &gpu, &pruned_cfg).unwrap();
        // Same winner, same winning throughput: the busy floor is
        // admissible, so pruning never discards a candidate that could
        // have beaten the incumbent.
        assert_eq!(pruned.best.candidate, base.best.candidate);
        assert_eq!(pruned.best.iter_ns, base.best.iter_ns);
        // The curve still names every grid point, pruned ones included.
        assert_eq!(pruned.curve.len(), base.curve.len());
        // On this grid, the bound actually fires and saves simulations.
        assert!(pruned.stats.pruned_bound > 0, "{:?}", pruned.stats);
        assert_eq!(
            pruned.stats.simulated + pruned.stats.pruned_bound,
            base.stats.simulated
        );
        let marked = pruned
            .curve
            .iter()
            .filter(|e| matches!(e.failure, Some(CandidateFailure::BoundPruned { .. })))
            .count() as u64;
        assert_eq!(marked, pruned.stats.pruned_bound);
        // Every recorded bound is honest: no pruned candidate's floor
        // beats the fault-free winner's measured time per throughput.
        for e in &pruned.curve {
            if let Some(CandidateFailure::BoundPruned { bound_ns }) = e.failure {
                assert!(throughput_of(&pruned_cfg, &e.candidate, bound_ns)
                    <= pruned.best.throughput);
            }
        }
    }

    #[test]
    fn busy_floor_is_admissible_on_every_simulated_point() {
        let model = ModelConfig::gpt3_1_6b();
        let gpu = GpuSpec::a100_40g();
        let cfg = small_cfg();
        let r = tune(&model, &gpu, &cfg).unwrap();
        for e in r.curve.iter().filter(|e| e.feasible()) {
            let micros = admissible(&model, &e.candidate, cfg.gbs).unwrap();
            let floor = busy_floor(&model, &gpu, &e.candidate, micros);
            assert!(
                floor <= e.iter_ns,
                "{}: floor {floor} exceeds simulated {}",
                e.candidate,
                e.iter_ns
            );
        }
    }

    #[test]
    fn explain_reconciles_with_the_measured_iteration_time() {
        let model = ModelConfig::gpt3_1_6b();
        let gpu = GpuSpec::a100_40g();
        let cfg = small_cfg();
        let r = tune(&model, &gpu, &cfg).unwrap();
        let report = r.explain_best(&model, &gpu, &cfg).expect("winner explains");
        assert_eq!(report.makespan, r.best.iter_ns);
        assert_eq!(report.breakdown.total(), r.best.iter_ns);
        // The winner's time is fully attributed; a training schedule has
        // no exogenous bubble on its path.
        assert_eq!(report.breakdown.bubble_ns, 0);
        assert!(report.breakdown.compute_ns > 0);
    }
}
