//! Elastic shrink planning: re-map the model onto the surviving devices
//! after a hard fault instead of waiting for a replacement.
//!
//! When a device dies mid-run, the operator has two recovery policies
//! (see [`RecoveryPolicy`]): **wait-and-resume** — hold the whole
//! pipeline until a spare arrives, then restart from the last durable
//! checkpoint at full width — or **shrink-and-continue** — re-partition
//! the layers over the `p−k` survivors, pay a one-time state
//! redistribution, and keep training degraded. This module plans the
//! second option and prices both:
//!
//! * [`plan_shrink`] picks the widest admissible shrunk pipeline, emits a
//!   fresh *valid* schedule for it, re-partitions the model with
//!   [`StagePartition`], and derives each survivor's startup offset from
//!   the layer state it must fetch (bytes over link bandwidth — the same
//!   `ceil(bytes·1000 / bytes_per_us)` arithmetic as
//!   [`mario_ir::ShardedWrite::flush_ns`]).
//! * [`compare_policies`] prices the tail of the run under both policies
//!   and reports the crossover point where the replacement wait starts
//!   paying for itself.
//!
//! The runtime counterpart is `mario_cluster::run_with_elastic_recovery`,
//! which consumes the plan as a [`Reconfiguration`]; the DP-simulator
//! counterpart is [`crate::simulator::simulate_timeline_startup`], which
//! predicts the shrunk topology's timeline including the startup charge.

use mario_cluster::{Reconfiguration, RecoveryPolicy};
use mario_ir::{
    min_channel_capacity, validate, ComputeKind, CostModel, DeviceId, Nanos, PartId, Schedule,
    SchemeKind, Topology, UnitCost,
};
use mario_model::StagePartition;
use mario_schedules::{generate, ScheduleConfig};

use crate::tuner::scheme_channel_capacity;

/// The pipeline being shrunk and the cluster constants that price the
/// state redistribution.
#[derive(Debug, Clone)]
pub struct ElasticSetup {
    /// Pipeline scheme of the running job.
    pub scheme: SchemeKind,
    /// Device count before the fault.
    pub devices: u32,
    /// Micro-batches per iteration (kept across the shrink).
    pub micros: u32,
    /// Total model layers to re-partition.
    pub layers: u32,
    /// Model-state bytes held per layer (weights + optimizer state).
    pub state_bytes_per_layer: u64,
    /// Link bandwidth for fetching redistributed state, in bytes/µs.
    pub fetch_bytes_per_us: u64,
}

/// A planned shrink: the degraded pipeline plus its one-time costs.
#[derive(Debug, Clone)]
pub struct ElasticPlan {
    /// Valid schedule for the shrunk pipeline.
    pub schedule: Schedule,
    /// Channel capacity the shrunk schedule needs (deadlock-free bound).
    pub channel_capacity: usize,
    /// Devices in the shrunk pipeline (`schedule.devices()`).
    pub devices: u32,
    /// Surviving original device ids, in order; survivor `i` becomes
    /// shrunk-pipeline device `i`. Survivors beyond `devices` idle (scheme
    /// constraints can force a narrower pipeline than the survivor count,
    /// e.g. Chimera needs even width).
    pub survivors: Vec<DeviceId>,
    /// Layer partition over the shrunk pipeline's stages.
    pub partition: StagePartition,
    /// Per shrunk-device startup offset: the time to fetch the layer
    /// state the survivor did not already hold.
    pub startup_ns: Vec<Nanos>,
    /// Total redistributed state across all survivors.
    pub moved_bytes: u64,
    /// Redistributed state per shrunk device (same order as `startup_ns`).
    pub moved_bytes_per_device: Vec<u64>,
}

impl ElasticPlan {
    /// Packages the plan for `mario_cluster::run_with_elastic_recovery`,
    /// attaching the cost model the shrunk pipeline should run under.
    pub fn into_reconfiguration(self, cost: Box<dyn CostModel>) -> Reconfiguration {
        Reconfiguration {
            schedule: self.schedule,
            cost,
            channel_capacity: self.channel_capacity,
            startup_ns: self.startup_ns,
            moved_bytes: self.moved_bytes,
            survivors: self.survivors,
        }
    }
}

/// [`UnitCost`] with stage compute scaled by the stage's layer count: a
/// stage holding `k` layers takes `k×` the unit-grid latency. This is
/// the degraded-speed model elastic planning needs — on the plain unit
/// grid every stage costs the same no matter how many layers it holds,
/// so a shrunk pipeline would be *faster* (fewer bubble stages, same
/// per-stage cost) and shrink-and-continue would dominate trivially.
/// With compute proportional to layers, packing the same model onto
/// fewer devices slows every iteration, which is what makes the policy
/// trade-off real.
#[derive(Debug, Clone)]
pub struct LayerScaledCost {
    unit: UnitCost,
    topo: Topology,
    partition: StagePartition,
}

impl LayerScaledCost {
    /// Scales `unit` by the even layer partition of `layers` over the
    /// stages of a `devices`-wide `scheme` pipeline.
    pub fn new(unit: UnitCost, scheme: SchemeKind, devices: u32, layers: u32) -> Self {
        let topo = Topology::new(scheme, devices);
        let partition = StagePartition::even(layers, topo.num_stages());
        Self {
            unit,
            topo,
            partition,
        }
    }

    /// Layers held by the stage at `(device, part)`.
    fn stage_layers(&self, device: DeviceId, part: PartId) -> u64 {
        let stage = self.topo.stage_of(device, part);
        u64::from(self.partition.layers_of(stage.0))
    }
}

impl CostModel for LayerScaledCost {
    fn compute_time(&self, device: DeviceId, part: PartId, kind: ComputeKind) -> Nanos {
        self.unit.compute_time(device, part, kind) * self.stage_layers(device, part)
    }

    fn act_full(&self, device: DeviceId, part: PartId) -> u64 {
        self.unit.act_full(device, part) * self.stage_layers(device, part)
    }

    fn act_ckpt(&self, device: DeviceId, part: PartId) -> u64 {
        self.unit.act_ckpt(device, part)
    }

    fn boundary_bytes(&self, device: DeviceId, part: PartId) -> u64 {
        self.unit.boundary_bytes(device, part)
    }

    fn p2p_time(&self, bytes: u64) -> Nanos {
        self.unit.p2p_time(bytes)
    }

    fn allreduce_time(&self, device: DeviceId) -> Nanos {
        self.unit.allreduce_time(device)
    }

    fn optimizer_time(&self, device: DeviceId) -> Nanos {
        self.unit.optimizer_time(device)
    }

    fn static_mem(&self, device: DeviceId) -> u64 {
        self.unit.static_mem(device)
    }

    fn ckpt_shard_bytes(&self, device: DeviceId) -> u64 {
        self.unit.ckpt_shard_bytes(device)
    }
}

/// The global layer set `(device, all parts)` holds under `topo` and `part`.
fn layers_of_device(topo: &Topology, partition: &StagePartition, d: DeviceId) -> Vec<u32> {
    let mut layers = Vec::new();
    for p in 0..topo.parts_per_device() {
        let stage = topo.stage_of(d, PartId(p));
        layers.extend(partition.range_of(stage.0));
    }
    layers.sort_unstable();
    layers.dedup();
    layers
}

/// Whether a `width`-device pipeline is structurally admissible for the
/// setup's scheme, micro-batch count, and layer count.
fn admissible_width(setup: &ElasticSetup, width: u32) -> bool {
    if width == 0 {
        return false;
    }
    match setup.scheme {
        SchemeKind::Chimera => {
            if !width.is_multiple_of(2) || !setup.micros.is_multiple_of(2) {
                return false;
            }
        }
        SchemeKind::Interleave { .. } => {
            if !setup.micros.is_multiple_of(width) {
                return false;
            }
        }
        SchemeKind::GPipe
        | SchemeKind::OneFOneB
        | SchemeKind::ForwardOnly
        | SchemeKind::ZeroBubbleH1
        | SchemeKind::ZeroBubbleV
        | SchemeKind::Wave { .. } => {}
    }
    setup.layers >= Topology::new(setup.scheme, width).num_stages()
}

/// Plans the widest admissible shrunk pipeline after losing `lost`.
///
/// Returns `None` when no admissible shrunk pipeline exists (every device
/// lost, or the scheme's structural constraints cannot be met by any
/// survivor subset — e.g. Chimera with one survivor).
///
/// The emitted schedule is checked with [`mario_ir::validate`]; the
/// channel capacity is derived per schedule via
/// [`mario_ir::min_channel_capacity`], falling back to the per-scheme
/// closed-form ceiling.
pub fn plan_shrink(setup: &ElasticSetup, lost: &[DeviceId]) -> Option<ElasticPlan> {
    let survivors: Vec<DeviceId> = (0..setup.devices)
        .map(DeviceId)
        .filter(|d| !lost.contains(d))
        .collect();
    let width = (1..=survivors.len() as u32)
        .rev()
        .find(|&w| admissible_width(setup, w))?;

    let schedule = generate(ScheduleConfig::new(setup.scheme, width, setup.micros));
    validate(&schedule).ok()?;
    let channel_capacity = min_channel_capacity(&schedule)
        .unwrap_or_else(|| scheme_channel_capacity(setup.scheme));

    let old_topo = Topology::new(setup.scheme, setup.devices);
    let old_partition = StagePartition::even(setup.layers, old_topo.num_stages());
    let new_topo = Topology::new(setup.scheme, width);
    let partition = StagePartition::even(setup.layers, new_topo.num_stages());

    let mut startup_ns = Vec::with_capacity(width as usize);
    let mut moved_bytes_per_device = Vec::with_capacity(width as usize);
    let mut moved_bytes = 0u64;
    for i in 0..width {
        let held = layers_of_device(&old_topo, &old_partition, survivors[i as usize]);
        let needed = layers_of_device(&new_topo, &partition, DeviceId(i));
        let missing = needed.iter().filter(|l| !held.contains(l)).count() as u64;
        let bytes = missing * setup.state_bytes_per_layer;
        // Same arithmetic as ShardedWrite::flush_ns: ns = ceil(B·1000 / (B/µs)).
        let ns = (bytes * 1_000).div_ceil(setup.fetch_bytes_per_us.max(1));
        moved_bytes += bytes;
        moved_bytes_per_device.push(bytes);
        startup_ns.push(ns);
    }

    Some(ElasticPlan {
        schedule,
        channel_capacity,
        devices: width,
        survivors,
        partition,
        startup_ns,
        moved_bytes,
        moved_bytes_per_device,
    })
}

/// Both recovery policies priced over the remainder of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyComparison {
    /// The cheaper policy for this tail.
    pub policy: RecoveryPolicy,
    /// Total tail time under wait-and-resume: the replacement wait plus
    /// `remaining` full-width iterations.
    pub wait_total_ns: Nanos,
    /// Total tail time under shrink-and-continue: the state
    /// redistribution plus `remaining` shrunk-width iterations.
    pub shrink_total_ns: Nanos,
    /// Remaining-iteration count at which the policies tie: below it the
    /// shrink wins (small reconfiguration cost, tail too short to amortize
    /// the wait), above it waiting for full width wins. `None` when one
    /// policy dominates at every horizon.
    pub crossover_remaining: Option<u64>,
    /// Predicted full-width iteration time.
    pub full_iter_ns: Nanos,
    /// Predicted shrunk-width iteration time.
    pub shrunk_iter_ns: Nanos,
    /// One-time state-redistribution cost (max survivor startup offset).
    pub reconfig_ns: Nanos,
}

/// Prices wait-and-resume against shrink-and-continue for a tail of
/// `remaining` iterations and reports the crossover horizon.
pub fn compare_policies(
    full_iter_ns: Nanos,
    shrunk_iter_ns: Nanos,
    reconfig_ns: Nanos,
    replacement_wait_ns: Nanos,
    remaining: u32,
) -> PolicyComparison {
    let wait_total_ns = replacement_wait_ns + u64::from(remaining) * full_iter_ns;
    let shrink_total_ns = reconfig_ns + u64::from(remaining) * shrunk_iter_ns;
    // wait(r) = wait + r·full, shrink(r) = reconfig + r·shrunk. With the
    // shrunk pipeline slower per iteration (shrunk > full) and the wait
    // dearer than the redistribution (wait > reconfig), the lines cross at
    // r* = (wait − reconfig)/(shrunk − full); otherwise one policy
    // dominates at every horizon.
    let crossover_remaining = if shrunk_iter_ns > full_iter_ns
        && replacement_wait_ns > reconfig_ns
    {
        Some((replacement_wait_ns - reconfig_ns).div_ceil(shrunk_iter_ns - full_iter_ns))
    } else {
        None
    };
    let policy = if shrink_total_ns <= wait_total_ns {
        RecoveryPolicy::ShrinkAndContinue
    } else {
        RecoveryPolicy::WaitAndResume
    };
    PolicyComparison {
        policy,
        wait_total_ns,
        shrink_total_ns,
        crossover_remaining,
        full_iter_ns,
        shrunk_iter_ns,
        reconfig_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(scheme: SchemeKind, devices: u32, micros: u32, layers: u32) -> ElasticSetup {
        ElasticSetup {
            scheme,
            devices,
            micros,
            layers,
            state_bytes_per_layer: 1_000,
            fetch_bytes_per_us: 500,
        }
    }

    #[test]
    fn one_f_one_b_shrinks_to_all_survivors() {
        let s = setup(SchemeKind::OneFOneB, 4, 8, 12);
        let plan = plan_shrink(&s, &[DeviceId(2)]).expect("plan");
        assert_eq!(plan.devices, 3);
        assert_eq!(
            plan.survivors,
            vec![DeviceId(0), DeviceId(1), DeviceId(3)]
        );
        assert_eq!(plan.schedule.devices(), 3);
        assert!(validate(&plan.schedule).is_ok());
        assert_eq!(plan.partition.total(), 12);
        assert_eq!(plan.partition.as_slice(), &[4, 4, 4]);
        // Old even(12, 4) = [3,3,3,3]: dev0 held 0..3 needs 0..4 (1 layer),
        // dev1 held 3..6 needs 4..8 (2 layers), dev3 held 9..12 needs 8..12
        // (1 layer) — 4 layers move in total.
        assert_eq!(plan.moved_bytes_per_device, vec![1_000, 2_000, 1_000]);
        assert_eq!(plan.moved_bytes, 4_000);
        // flush_ns arithmetic: ceil(bytes·1000 / 500 B/µs).
        assert_eq!(plan.startup_ns, vec![2_000, 4_000, 2_000]);
    }

    #[test]
    fn chimera_rounds_down_to_even_width() {
        let s = setup(SchemeKind::Chimera, 4, 8, 12);
        let plan = plan_shrink(&s, &[DeviceId(1)]).expect("plan");
        // Three survivors, but Chimera needs an even pipeline: width 2,
        // survivor d3 idles.
        assert_eq!(plan.devices, 2);
        assert_eq!(
            plan.survivors,
            vec![DeviceId(0), DeviceId(2), DeviceId(3)]
        );
        assert!(validate(&plan.schedule).is_ok());
        // Both Chimera parts replicate all stages on each device: every
        // device ends up holding the full model, so each survivor fetches
        // exactly what it lacked.
        let topo = Topology::new(SchemeKind::Chimera, 2);
        assert_eq!(topo.num_stages(), 2);
        assert_eq!(plan.partition.stages(), 2);
    }

    #[test]
    fn interleave_respects_micro_divisibility() {
        let s = setup(SchemeKind::Interleave { chunks: 2 }, 4, 8, 16);
        let plan = plan_shrink(&s, &[DeviceId(0)]).expect("plan");
        // 8 micros don't divide by 3 survivors → width 2.
        assert_eq!(plan.devices, 2);
        assert_eq!(plan.partition.stages(), 4); // 2 devices × 2 chunks
        assert!(validate(&plan.schedule).is_ok());
    }

    #[test]
    fn every_scheme_yields_a_valid_shrunk_schedule() {
        for (scheme, d, n) in [
            (SchemeKind::GPipe, 4, 6),
            (SchemeKind::OneFOneB, 4, 6),
            (SchemeKind::Chimera, 4, 6),
            (SchemeKind::Interleave { chunks: 2 }, 4, 8),
            (SchemeKind::Wave { chunks: 2 }, 4, 6),
        ] {
            let s = setup(scheme, d, n, 32);
            let plan = plan_shrink(&s, &[DeviceId(d - 1)])
                .unwrap_or_else(|| panic!("{scheme:?} has no shrink plan"));
            assert!(plan.devices < d, "{scheme:?} did not shrink");
            assert!(validate(&plan.schedule).is_ok(), "{scheme:?} invalid");
            assert_eq!(plan.startup_ns.len(), plan.devices as usize);
            assert_eq!(plan.partition.total(), 32, "{scheme:?} lost layers");
        }
    }

    #[test]
    fn no_survivors_or_no_admissible_width_is_none() {
        let s = setup(SchemeKind::OneFOneB, 2, 4, 8);
        assert!(plan_shrink(&s, &[DeviceId(0), DeviceId(1)]).is_none());
        // Chimera with a single survivor has no even width.
        let s = setup(SchemeKind::Chimera, 2, 4, 8);
        assert!(plan_shrink(&s, &[DeviceId(0)]).is_none());
        // Too few layers for the surviving stages.
        let s = setup(SchemeKind::Interleave { chunks: 4 }, 4, 4, 2);
        assert!(plan_shrink(&s, &[DeviceId(3)]).is_none());
    }

    #[test]
    fn layer_scaled_cost_makes_the_shrunk_pipeline_slower() {
        use crate::simulator::simulate_timeline;
        let setup = setup(SchemeKind::OneFOneB, 4, 8, 8);
        let plan = plan_shrink(&setup, &[DeviceId(3)]).unwrap();
        let unit = UnitCost::paper_grid();
        let full = LayerScaledCost::new(unit, setup.scheme, setup.devices, setup.layers);
        let shrunk = LayerScaledCost::new(unit, setup.scheme, plan.devices, setup.layers);
        // 8 layers over 4 stages: 2 each, forward = 2t. Over 3 stages:
        // [3, 3, 2], forward = 3t on the packed stages.
        assert_eq!(
            full.compute_time(DeviceId(0), PartId(0), ComputeKind::Forward),
            2 * unit.unit
        );
        assert_eq!(
            shrunk.compute_time(DeviceId(0), PartId(0), ComputeKind::Forward),
            3 * unit.unit
        );
        // Packing the same model onto fewer devices slows the iteration —
        // the property that makes wait-and-resume worth anything.
        let full_sched = mario_schedules::generate(mario_schedules::ScheduleConfig::new(
            setup.scheme,
            setup.devices,
            setup.micros,
        ));
        let full_ns = simulate_timeline(&full_sched, &full, 1).unwrap().total_ns;
        let shrunk_ns = simulate_timeline(&plan.schedule, &shrunk, plan.channel_capacity)
            .unwrap()
            .total_ns;
        assert!(
            shrunk_ns > full_ns,
            "shrunk {shrunk_ns} ns should exceed full {full_ns} ns"
        );
    }

    #[test]
    fn crossover_splits_the_policy_regimes() {
        // full 10 µs/iter, shrunk 14 µs/iter, reconfig 20 µs, wait 200 µs
        // → r* = ceil(180/4) = 45.
        let short = compare_policies(10_000, 14_000, 20_000, 200_000, 10);
        assert_eq!(short.policy, RecoveryPolicy::ShrinkAndContinue);
        assert_eq!(short.crossover_remaining, Some(45));
        let long = compare_policies(10_000, 14_000, 20_000, 200_000, 100);
        assert_eq!(long.policy, RecoveryPolicy::WaitAndResume);
        assert_eq!(long.crossover_remaining, Some(45));
        assert_eq!(long.wait_total_ns, 200_000 + 100 * 10_000);
        assert_eq!(long.shrink_total_ns, 20_000 + 100 * 14_000);
        // Exactly at the tie the shrink is preferred (≤).
        let at = compare_policies(10_000, 14_000, 20_000, 200_000, 45);
        assert_eq!(at.policy, RecoveryPolicy::ShrinkAndContinue);
        // Free replacement: waiting dominates at every horizon.
        let dom = compare_policies(10_000, 14_000, 20_000, 5_000, 3);
        assert_eq!(dom.crossover_remaining, None);
        assert_eq!(dom.policy, RecoveryPolicy::WaitAndResume);
    }
}
