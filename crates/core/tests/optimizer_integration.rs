//! Core-crate integration: text-format round trips through the optimizer,
//! split-backward composition, tuner order preservation against the
//! emulator, and visualization of tuned schedules.

use mario_core::passes::{
    run_graph_tuner, split_backward, GraphTunerOptions, SplitOptions,
};
use mario_core::simulator::{simulate_memory, simulate_timeline};
use mario_core::tuner::{evaluate, Candidate, TunerConfig};
use mario_ir::{from_text, to_text, SchemeKind, UnitCost};
use mario_model::{AnalyticCost, GpuSpec, ModelConfig, TrainSetup};
use mario_schedules::{generate, ScheduleConfig};

#[test]
fn tuned_schedules_survive_the_text_format() {
    let cost = UnitCost::paper_grid();
    for scheme in [SchemeKind::OneFOneB, SchemeKind::Chimera] {
        let mut s = generate(ScheduleConfig::new(scheme, 4, 8));
        run_graph_tuner(&mut s, &cost, GraphTunerOptions::mario());
        split_backward(&mut s, SplitOptions::default());
        let text = to_text(&s);
        let back = from_text(&text).unwrap();
        assert_eq!(s, back, "{scheme:?}");
        // And the deserialized schedule simulates identically.
        let cap = 2;
        assert_eq!(
            simulate_timeline(&s, &cost, cap).unwrap().total_ns,
            simulate_timeline(&back, &cost, cap).unwrap().total_ns
        );
    }
}

#[test]
fn simulator_order_matches_emulator_order_across_candidates() {
    // The tuner's whole premise (§5.3): the simulator preserves the
    // partial order of configurations. Verify against emulated "reality".
    let model = ModelConfig::gpt3_1_6b();
    let gpu = GpuSpec::a100_40g();
    let cfg = TunerConfig {
        prepose: false,
        ..TunerConfig::new(8, 64, 40 * (1 << 30))
    };
    let mut sims = Vec::new();
    let mut emus = Vec::new();
    for (scheme, mbs, mario) in [
        (SchemeKind::OneFOneB, 1, false),
        (SchemeKind::OneFOneB, 2, true),
        (SchemeKind::Chimera, 2, false),
        (SchemeKind::Interleave { chunks: 2 }, 1, true),
    ] {
        let cand = Candidate {
            scheme,
            pp: 8,
            dp: 1,
            mbs,
            mario,
        };
        let eval = evaluate(&model, &gpu, &cfg, cand).unwrap();
        sims.push(eval.throughput);

        // Re-run the same configuration on the emulator.
        let micros = 64 / mbs;
        let topo = mario_ir::Topology::new(scheme, 8);
        let setup = TrainSetup::pipeline(model.clone(), gpu.clone(), topo, mbs);
        let cost = AnalyticCost::new(&setup);
        let mut schedule = generate(ScheduleConfig::new(scheme, 8, micros));
        if mario {
            run_graph_tuner(
                &mut schedule,
                &cost,
                GraphTunerOptions {
                    prepose: false,
                    ..GraphTunerOptions::mario()
                },
            );
        }
        let cap = mario_core::tuner::scheme_channel_capacity(scheme);
        let report = mario_cluster::run(
            &schedule,
            &cost,
            mario_cluster::EmulatorConfig {
                channel_capacity: cap,
                jitter: 0.02,
                ..Default::default()
            },
        )
        .unwrap();
        emus.push(report.throughput(64));
    }
    for i in 0..sims.len() {
        for j in (i + 1)..sims.len() {
            assert_eq!(
                sims[i].total_cmp(&sims[j]),
                emus[i].total_cmp(&emus[j]),
                "order inversion between candidates {i} and {j}: sim {sims:?} emu {emus:?}"
            );
        }
    }
}

#[test]
fn split_backward_after_full_mario_is_still_near_zero_cost() {
    let model = ModelConfig::llama2_3b();
    let gpu = GpuSpec::a100_40g();
    let topo = mario_ir::Topology::new(SchemeKind::OneFOneB, 8);
    let setup = TrainSetup::pipeline(model, gpu, topo, 2);
    let cost = AnalyticCost::new(&setup);
    let base = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 8, 32));
    let t_base = simulate_timeline(&base, &cost, 1).unwrap().total_ns as f64;

    let mut full = base.clone();
    run_graph_tuner(&mut full, &cost, GraphTunerOptions::mario());
    split_backward(&mut full, SplitOptions::default());
    mario_core::passes::overlap_recompute(&mut full);
    mario_ir::validate(&full).unwrap_or_else(|e| panic!("{e:?}"));
    let t_full = simulate_timeline(&full, &cost, 1).unwrap().total_ns as f64;
    assert!(
        t_full / t_base < 1.08,
        "mario + split should be within 8% of baseline: {:.1}%",
        (t_full / t_base - 1.0) * 100.0
    );
    // While still holding a checkpointing-level memory profile.
    let m_base = simulate_memory(&base, &cost, None).max_peak();
    let m_full = simulate_memory(&full, &cost, None).max_peak();
    assert!(m_full < m_base / 2, "{m_full} vs {m_base}");
}

#[test]
fn viz_renders_split_backward_glyphs() {
    let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 3, 4));
    split_backward(&mut s, SplitOptions::default());
    let t = simulate_timeline(&s, &UnitCost::paper_grid(), 1).unwrap();
    let a = mario_core::render_ascii(&t, mario_core::VizOptions::default());
    assert!(a.contains('b'), "input half missing: {a}");
    assert!(a.contains('w'), "weight half missing: {a}");
}

#[test]
fn graph_tuner_schedule_is_a_fixpoint() {
    // Running the full tuner twice yields the same schedule. (The stats
    // churn: the paper's pass order re-applies checkpointing to the pairs
    // remove-redundancy reverted, then reverts them again.)
    let cost = UnitCost::paper_grid();
    let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
    run_graph_tuner(&mut s, &cost, GraphTunerOptions::mario());
    let first = s.clone();
    let stats = run_graph_tuner(&mut s, &cost, GraphTunerOptions::mario());
    assert_eq!(stats.preposed, 0, "prepose found nothing new");
    assert_eq!(stats.checkpointed, stats.reverted, "churn cancels out");
    assert_eq!(s, first);
}
