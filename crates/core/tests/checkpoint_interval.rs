//! Validates the analytic Young/Daly checkpoint-interval tuner against a
//! brute-force sweep on the cluster emulator: for a fixed fault
//! environment, the predicted optimum must land within one interval step
//! of the interval that actually minimizes end-to-end recovery cost.

use mario_cluster::{run, run_with_recovery, EmulatorConfig, FaultKind, FaultPlan};
use mario_core::tuner::{tune_checkpoint_interval, CheckpointTuning};
use mario_ir::{CheckpointPolicy, DeviceId, SchemeKind, UnitCost};
use mario_schedules::{generate, ScheduleConfig};
use std::time::Duration;

const ITERS: u32 = 12;

fn fast(cfg: EmulatorConfig) -> EmulatorConfig {
    EmulatorConfig {
        watchdog: Duration::from_millis(300),
        ..cfg
    }
}

#[test]
fn daly_interval_matches_the_brute_force_emulator_sweep() {
    let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 2, 2));
    let cost = UnitCost::paper_grid();
    let iter_ns = run(&s, &cost, fast(EmulatorConfig::default()))
        .expect("clean run")
        .total_ns;
    // One hard fault over the run (λ = 1/12) and a write cost of T/6
    // place the Young/Daly optimum k* = sqrt(2C/(Tλ)) at exactly 2.
    let write_ns = iter_ns / 6;

    // Twelve crash scenarios, one per iteration, at a seeded site.
    let scenarios: Vec<FaultPlan> = (0..ITERS)
        .map(|f| {
            let device = DeviceId(f % 2);
            let len = s.programs()[device.index()].len() as u32;
            FaultPlan::none()
                .with(FaultKind::Crash {
                    device,
                    pc: ((f * 7) % len) as usize,
                })
                .at_iteration(f)
        })
        .collect();

    // Brute force: total recovery cost of every candidate interval,
    // summed over the scenarios (equal weighting = the uniform fault
    // distribution the analytic model assumes).
    let mut best = (u128::MAX, 0u32);
    for k in 1..=ITERS {
        let cfg = fast(EmulatorConfig {
            iterations: ITERS,
            checkpoint: Some(CheckpointPolicy::every(k).with_write_ns(write_ns)),
            ..Default::default()
        });
        let total: u128 = scenarios
            .iter()
            .map(|plan| {
                run_with_recovery(&s, &cost, cfg, plan, 3)
                    .expect("recovery completes")
                    .total_ns_with_replay as u128
            })
            .sum();
        if total < best.0 {
            best = (total, k);
        }
    }
    let brute_k = best.1;

    // The analytic tuner, fed the same fault environment and costs.
    let tuning = CheckpointTuning {
        plan: scenarios[0].clone(),
        total_iters: ITERS,
        write_ns,
        mem_overhead: 0,
    };
    let policy =
        tune_checkpoint_interval(iter_ns, &tuning).expect("a hard fault yields a policy");
    assert!(policy.interval_iters >= 1 && policy.interval_iters <= ITERS);
    assert!(
        (policy.interval_iters as i64 - brute_k as i64).abs() <= 1,
        "Young/Daly predicts {} but the sweep found {brute_k}",
        policy.interval_iters
    );
}
