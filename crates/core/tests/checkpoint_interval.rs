//! Validates the analytic Young/Daly checkpoint-interval tuner against a
//! brute-force sweep on the cluster emulator: for a fixed fault
//! environment, the predicted optimum must land within one interval step
//! of the interval that actually minimizes end-to-end recovery cost.

use mario_cluster::{run, run_with_recovery, EmulatorConfig, FaultKind, FaultPlan};
use mario_core::tuner::{tune_checkpoint_interval, CheckpointTuning, FaultHistory};
use mario_ir::{CheckpointPolicy, DeviceId, SchemeKind, UnitCost};
use mario_schedules::{generate, ScheduleConfig};
use std::time::Duration;

const ITERS: u32 = 12;

fn fast(cfg: EmulatorConfig) -> EmulatorConfig {
    EmulatorConfig {
        watchdog: Duration::from_millis(300),
        ..cfg
    }
}

#[test]
fn daly_interval_matches_the_brute_force_emulator_sweep() {
    let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 2, 2));
    let cost = UnitCost::paper_grid();
    let iter_ns = run(&s, &cost, fast(EmulatorConfig::default()))
        .expect("clean run")
        .total_ns;
    // One hard fault over the run (λ = 1/12) and a write cost of T/6
    // place the Young/Daly optimum k* = sqrt(2C/(Tλ)) at exactly 2.
    let write_ns = iter_ns / 6;

    // Twelve crash scenarios, one per iteration, at a seeded site.
    let scenarios: Vec<FaultPlan> = (0..ITERS)
        .map(|f| {
            let device = DeviceId(f % 2);
            let len = s.programs()[device.index()].len() as u32;
            FaultPlan::none()
                .with(FaultKind::Crash {
                    device,
                    pc: ((f * 7) % len) as usize,
                })
                .at_iteration(f)
        })
        .collect();

    // Brute force: total recovery cost of every candidate interval,
    // summed over the scenarios (equal weighting = the uniform fault
    // distribution the analytic model assumes).
    let mut best = (u128::MAX, 0u32);
    for k in 1..=ITERS {
        let cfg = fast(EmulatorConfig {
            iterations: ITERS,
            checkpoint: Some(CheckpointPolicy::every(k).with_write_ns(write_ns)),
            ..Default::default()
        });
        let total: u128 = scenarios
            .iter()
            .map(|plan| {
                run_with_recovery(&s, &cost, cfg, plan, 3)
                    .expect("recovery completes")
                    .total_ns_with_replay as u128
            })
            .sum();
        if total < best.0 {
            best = (total, k);
        }
    }
    let brute_k = best.1;

    // The analytic tuner, fed the same fault environment and costs.
    let tuning = CheckpointTuning {
        plan: scenarios[0].clone(),
        total_iters: ITERS,
        write_ns,
        mem_overhead: 0,
        history: None,
        devices: None,
    };
    let policy =
        tune_checkpoint_interval(iter_ns, &tuning).expect("a hard fault yields a policy");
    assert!(policy.interval_iters >= 1 && policy.interval_iters <= ITERS);
    assert!(
        (policy.interval_iters as i64 - brute_k as i64).abs() <= 1,
        "Young/Daly predicts {} but the sweep found {brute_k}",
        policy.interval_iters
    );
}

#[test]
fn fitted_history_beats_the_plan_prior_on_a_skewed_plan() {
    let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 2, 2));
    let cost = UnitCost::paper_grid();
    let iter_ns = run(&s, &cost, fast(EmulatorConfig::default()))
        .expect("clean run")
        .total_ns;
    let write_ns = iter_ns / 6;

    // The plan *lists* four possible crash sites — its uniform prior
    // reads λ = 4/12 and tunes the tightest interval.
    let crash_at = |f: u32| {
        let device = DeviceId(f % 2);
        let len = s.programs()[device.index()].len() as u32;
        FaultKind::Crash {
            device,
            pc: ((f * 7) % len) as usize,
        }
    };
    let skewed = FaultPlan::none()
        .with(crash_at(0))
        .with(crash_at(1))
        .with(crash_at(2))
        .with(crash_at(3));
    let mut tuning = CheckpointTuning {
        plan: skewed,
        total_iters: ITERS,
        write_ns,
        mem_overhead: 0,
        history: None,
        devices: None,
    };
    let prior_k = tune_checkpoint_interval(iter_ns, &tuning)
        .expect("prior policy")
        .interval_iters;
    assert_eq!(prior_k, 1, "λ = 4/12 with C = T/6 tunes k = 1");

    // Observed reality: two recovered runs of 12 iterations, one crash
    // each — λ fitted from the fault logs is 2/24 = 1/12.
    let observe_cfg = fast(EmulatorConfig {
        iterations: ITERS,
        checkpoint: Some(CheckpointPolicy::every(2).with_write_ns(write_ns)),
        ..Default::default()
    });
    let mut history = FaultHistory::default();
    for f in [3u32, 7] {
        let plan = FaultPlan::none().with(crash_at(f)).at_iteration(f);
        let rec = run_with_recovery(&s, &cost, observe_cfg, &plan, 3).expect("recovers");
        assert_eq!(rec.fault_log.len(), 1);
        history.record(rec.fault_log, ITERS);
    }
    tuning.history = Some(history);
    let fitted_k = tune_checkpoint_interval(iter_ns, &tuning)
        .expect("fitted policy")
        .interval_iters;
    assert_eq!(fitted_k, 2, "fitted λ = 1/12 with C = T/6 tunes k = 2");

    // Under the fault distribution the history reflects (one crash per
    // run, uniform over iterations), the fitted interval is cheaper than
    // the prior's end to end.
    let sweep_cost = |k: u32| -> u128 {
        let cfg = fast(EmulatorConfig {
            iterations: ITERS,
            checkpoint: Some(CheckpointPolicy::every(k).with_write_ns(write_ns)),
            ..Default::default()
        });
        (0..ITERS)
            .map(|f| {
                let plan = FaultPlan::none().with(crash_at(f)).at_iteration(f);
                run_with_recovery(&s, &cost, cfg, &plan, 3)
                    .expect("recovery completes")
                    .total_ns_with_replay as u128
            })
            .sum()
    };
    assert!(
        sweep_cost(fitted_k) < sweep_cost(prior_k),
        "fitted k = {fitted_k} must beat prior k = {prior_k}"
    );
}

#[test]
fn tuned_interval_is_independent_of_checkpoint_write_folding() {
    // Regression: `RunReport::iter_ns` used to fold checkpoint write time
    // into the per-iteration figure, so measuring iteration time from a
    // checkpointed run would bias the next Daly tuning toward longer
    // intervals. The reported figure must be checkpoint-free.
    let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 2, 2));
    let cost = UnitCost::paper_grid();
    let base = fast(EmulatorConfig {
        iterations: ITERS,
        ..Default::default()
    });
    let clean = run(&s, &cost, base).expect("clean run");
    let noisy = run(
        &s,
        &cost,
        EmulatorConfig {
            checkpoint: Some(CheckpointPolicy::every(1).with_write_ns(2_000)),
            ..base
        },
    )
    .expect("checkpointed run");
    assert_eq!(noisy.iter_ns, clean.iter_ns);
    let tuning = CheckpointTuning {
        plan: FaultPlan::none().with(FaultKind::Crash {
            device: DeviceId(0),
            pc: 0,
        }),
        total_iters: ITERS,
        write_ns: clean.iter_ns / 6,
        mem_overhead: 0,
        history: None,
        devices: None,
    };
    let from_clean = tune_checkpoint_interval(clean.iter_ns, &tuning).expect("policy");
    let from_noisy = tune_checkpoint_interval(noisy.iter_ns, &tuning).expect("policy");
    assert_eq!(from_clean.interval_iters, from_noisy.interval_iters);
}
