//! Monotonicity and consistency properties of the analytic cost model —
//! the invariants the tuner's grid search implicitly relies on.

use mario_ir::{ComputeKind, CostModel, DeviceId, PartId, SchemeKind, Topology};
use mario_model::{AnalyticCost, GpuSpec, ModelConfig, TrainSetup};
use proptest::prelude::*;

fn cost_for(hidden: u32, seqlen: u32, mbs: u32, tp: u32) -> AnalyticCost {
    let model = ModelConfig::gpt3_scaling(hidden).with_seqlen(seqlen);
    let topo = Topology::new(SchemeKind::OneFOneB, 8);
    AnalyticCost::new(
        &TrainSetup::pipeline(model, GpuSpec::a100_40g(), topo, mbs).with_tp(tp),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compute time and activation memory grow with hidden size.
    #[test]
    fn monotone_in_hidden(h in 1u32..20, s in 1u32..8) {
        let h1 = 512 * h;
        let h2 = h1 + 512;
        let seq = 512 * s;
        let a = cost_for(h1, seq, 2, 1);
        let b = cost_for(h2, seq, 2, 1);
        let d = DeviceId(3);
        let p = PartId(0);
        prop_assert!(
            b.compute_time(d, p, ComputeKind::Forward)
                >= a.compute_time(d, p, ComputeKind::Forward)
        );
        prop_assert!(b.act_full(d, p) >= a.act_full(d, p));
        prop_assert!(b.static_mem(d) >= a.static_mem(d));
    }

    /// Activation memory grows super-linearly with sequence length (the
    /// quadratic attention term).
    #[test]
    fn superlinear_in_seqlen(k in 1u32..8) {
        let s1 = 1024 * k;
        let s2 = 2 * s1;
        let a = cost_for(2048, s1, 1, 1);
        let b = cost_for(2048, s2, 1, 1);
        let d = DeviceId(3);
        let p = PartId(0);
        let ratio = b.act_full(d, p) as f64 / a.act_full(d, p) as f64;
        prop_assert!(ratio > 2.0, "ratio {ratio}");
        // But the checkpoint (boundary) is exactly linear.
        let cr = b.act_ckpt(d, p) as f64 / a.act_ckpt(d, p) as f64;
        prop_assert!((cr - 2.0).abs() < 0.01, "ckpt ratio {cr}");
    }

    /// Doubling the micro-batch less than doubles per-sample time (the
    /// efficiency-knee mechanism behind the paper's lmbs gains).
    #[test]
    fn larger_micro_batches_are_more_efficient(mbs in 1u32..8, h in 2u32..10) {
        let hidden = 512 * h;
        let a = cost_for(hidden, 1024, mbs, 1);
        let b = cost_for(hidden, 1024, 2 * mbs, 1);
        let d = DeviceId(3);
        let p = PartId(0);
        let ta = a.compute_time(d, p, ComputeKind::Forward) as f64;
        let tb = b.compute_time(d, p, ComputeKind::Forward) as f64;
        prop_assert!(tb > ta, "more work takes longer");
        prop_assert!(
            tb < 2.0 * ta,
            "per-sample time must shrink: {tb} vs 2x{ta}"
        );
    }

    /// TP divides memory; split-backward halves sum to the full backward
    /// within rounding.
    #[test]
    fn tp_and_split_consistency(h in 2u32..8) {
        let hidden = 512 * h;
        let c1 = cost_for(hidden, 1024, 2, 1);
        let c2 = cost_for(hidden, 1024, 2, 2);
        let d = DeviceId(3);
        let p = PartId(0);
        prop_assert!(c2.act_full(d, p) <= c1.act_full(d, p) / 2 + 1);

        let full = c1.compute_time(d, p, ComputeKind::Backward);
        let bi = c1.compute_time(d, p, ComputeKind::BackwardInput);
        let bw = c1.compute_time(d, p, ComputeKind::BackwardWeight);
        prop_assert!(bi + bw <= full + 2);
        prop_assert!(bi + bw + 2 >= full);
    }

    /// Same-node hops are never slower than cross-node hops.
    #[test]
    fn nvlink_hops_beat_ib_hops(bytes in 1u64..100_000_000) {
        let c = cost_for(2048, 1024, 2, 1);
        // Devices 0 and 1 share a 4-GPU node; 3 and 4 do not.
        let intra = c.p2p_time_between(DeviceId(0), DeviceId(1), bytes);
        let inter = c.p2p_time_between(DeviceId(3), DeviceId(4), bytes);
        prop_assert!(intra < inter, "intra {intra} vs inter {inter}");
    }
}
