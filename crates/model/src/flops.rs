//! Analytic FLOP counts for transformer training (the standard GEMM +
//! attention accounting of Narayanan et al. / Korthikanti et al.).

use crate::config::ModelConfig;

/// Forward FLOPs of one transformer layer for a micro-batch of `b`
/// sequences, with tensor parallelism `tp` dividing the work.
///
/// Per layer: QKV + output projections `8·b·s·h²`, FFN `4·ffn·b·s·h²`,
/// attention score/context GEMMs `4·b·s²·h`.
pub fn layer_forward_flops(m: &ModelConfig, b: u32, tp: u32) -> f64 {
    let s = m.seqlen as f64;
    let h = m.hidden as f64;
    let b = b as f64;
    let gemm = (8.0 + 4.0 * m.ffn_mult) * b * s * h * h;
    let attn = 4.0 * b * s * s * h;
    (gemm + attn) / tp as f64
}

/// Forward FLOPs of the embedding + LM-head computation (on the first/last
/// stages) for a micro-batch of `b`.
pub fn embedding_forward_flops(m: &ModelConfig, b: u32, tp: u32) -> f64 {
    let s = m.seqlen as f64;
    let h = m.hidden as f64;
    let v = m.vocab as f64;
    // LM head projection dominates; input embedding lookup is a gather.
    2.0 * b as f64 * s * h * v / tp as f64
}

/// Backward FLOPs: `ratio ×` forward (2.0 by FLOP counting; ≈1.6 measured).
pub fn layer_backward_flops(m: &ModelConfig, b: u32, tp: u32, ratio: f64) -> f64 {
    layer_forward_flops(m, b, tp) * ratio
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_24bsh2_for_gpt() {
        // ffn_mult = 4 -> gemm term is 24·b·s·h².
        let m = ModelConfig::gpt3_1_6b();
        let b = 1;
        let s = m.seqlen as f64;
        let h = m.hidden as f64;
        let expect = 24.0 * s * h * h + 4.0 * s * s * h;
        assert!((layer_forward_flops(&m, b, 1) - expect).abs() < 1.0);
    }

    #[test]
    fn tp_divides_flops() {
        let m = ModelConfig::gpt3_13b();
        let f1 = layer_forward_flops(&m, 2, 1);
        let f2 = layer_forward_flops(&m, 2, 2);
        assert!((f1 / f2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn backward_scales_by_ratio() {
        let m = ModelConfig::llama2_13b();
        let f = layer_forward_flops(&m, 2, 1);
        assert!((layer_backward_flops(&m, 2, 1, 1.6) - 1.6 * f).abs() < 1.0);
    }

    #[test]
    fn attention_term_grows_quadratically_with_seqlen() {
        let m = ModelConfig::gpt3_1_6b();
        let short = layer_forward_flops(&m, 1, 1);
        let long = layer_forward_flops(&m.clone().with_seqlen(2048), 1, 1);
        // Doubling s at least doubles (gemm linear in s) and the attention
        // share quadruples, so the ratio is strictly above 2.
        assert!(long / short > 2.0);
        assert!(long / short < 4.0);
    }

    #[test]
    fn embedding_flops_positive() {
        let m = ModelConfig::gpt3_1_6b();
        assert!(embedding_forward_flops(&m, 2, 1) > 0.0);
    }
}
