//! Linear-regression estimators (`y = a·n + b`), the paper's instrument for
//! turning a handful of profiled samples into per-instruction predictions
//! (§5.2: "We apply linear regression to predict execution time and
//! static/dynamic memory based on the number of transformer blocks, and
//! the bias b represents the framework overhead").

use serde::{Deserialize, Serialize};

/// A fitted line `y = a·x + b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearEstimator {
    /// Slope: cost per transformer block (or per micro-batch for p2p).
    pub a: f64,
    /// Intercept: fixed framework overhead.
    pub b: f64,
}

impl LinearEstimator {
    /// Least-squares fit over `(x, y)` samples.
    ///
    /// # Panics
    /// If fewer than two samples are given or all `x` are identical.
    pub fn fit(samples: &[(f64, f64)]) -> Self {
        assert!(samples.len() >= 2, "need at least two samples");
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|s| s.0).sum();
        let sy: f64 = samples.iter().map(|s| s.1).sum();
        let sxx: f64 = samples.iter().map(|s| s.0 * s.0).sum();
        let sxy: f64 = samples.iter().map(|s| s.0 * s.1).sum();
        let denom = n * sxx - sx * sx;
        assert!(
            denom.abs() > f64::EPSILON * n * sxx.max(1.0),
            "degenerate fit: all x identical"
        );
        let a = (n * sxy - sx * sy) / denom;
        let b = (sy - a * sx) / n;
        Self { a, b }
    }

    /// Predicted value at `x`, clamped at zero.
    pub fn predict(&self, x: f64) -> f64 {
        (self.a * x + self.b).max(0.0)
    }

    /// Coefficient of determination R² against the given samples.
    pub fn r_squared(&self, samples: &[(f64, f64)]) -> f64 {
        let mean = samples.iter().map(|s| s.1).sum::<f64>() / samples.len() as f64;
        let ss_tot: f64 = samples.iter().map(|s| (s.1 - mean).powi(2)).sum();
        let ss_res: f64 = samples
            .iter()
            .map(|s| (s.1 - self.predict(s.0)).powi(2))
            .sum();
        if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        }
    }
}

/// Mean absolute percentage error between predictions and ground truth,
/// the metric the paper reports for simulator accuracy (§6.6).
pub fn mape(pairs: &[(f64, f64)]) -> f64 {
    assert!(!pairs.is_empty(), "MAPE over empty set");
    let sum: f64 = pairs
        .iter()
        .map(|&(actual, predicted)| {
            assert!(actual != 0.0, "MAPE undefined for zero actuals");
            ((predicted - actual) / actual).abs()
        })
        .sum();
    100.0 * sum / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let samples: Vec<(f64, f64)> = (1..=8).map(|x| (x as f64, 3.5 * x as f64 + 7.0)).collect();
        let e = LinearEstimator::fit(&samples);
        assert!((e.a - 3.5).abs() < 1e-9);
        assert!((e.b - 7.0).abs() < 1e-9);
        assert!((e.r_squared(&samples) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_fit_recovers_slope_approximately() {
        // Deterministic pseudo-noise.
        let samples: Vec<(f64, f64)> = (1..=20)
            .map(|x| {
                let noise = if x % 2 == 0 { 0.5 } else { -0.5 };
                (x as f64, 2.0 * x as f64 + 10.0 + noise)
            })
            .collect();
        let e = LinearEstimator::fit(&samples);
        assert!((e.a - 2.0).abs() < 0.05, "a = {}", e.a);
        assert!((e.b - 10.0).abs() < 1.0, "b = {}", e.b);
        assert!(e.r_squared(&samples) > 0.99);
    }

    #[test]
    fn predict_clamps_negative() {
        let e = LinearEstimator { a: 1.0, b: -10.0 };
        assert_eq!(e.predict(2.0), 0.0);
        assert_eq!(e.predict(20.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn identical_x_panics() {
        let _ = LinearEstimator::fit(&[(1.0, 2.0), (1.0, 3.0)]);
    }

    #[test]
    fn mape_basics() {
        assert!((mape(&[(100.0, 105.0), (100.0, 95.0)]) - 5.0).abs() < 1e-9);
        assert_eq!(mape(&[(50.0, 50.0)]), 0.0);
    }
}
