//! Lightweight profiling (paper §5.2): run a handful of training
//! iterations, measure per-block latencies and memory, and fit
//! `y = a·n + b` estimators where `n` is the number of transformer blocks
//! and the bias `b` captures framework overhead.
//!
//! With no physical GPUs, the "hardware" being profiled is the analytic
//! cost model perturbed by multiplicative jitter — the same ground truth
//! the cluster emulator executes — so the fitted estimators carry realistic
//! regression error and the simulator-accuracy experiment (Fig. 10)
//! measures a genuine modeling gap.

use crate::cost::{AnalyticCost, TrainSetup};
use crate::estimator::LinearEstimator;
use crate::flops;
use crate::memory;
use mario_ir::Nanos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Profiling knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// Training iterations sampled per block count (the paper uses 10).
    pub iterations: u32,
    /// Relative standard deviation of kernel-time jitter.
    pub jitter: f64,
    /// RNG seed (profiling is deterministic given the seed).
    pub seed: u64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self {
            iterations: 10,
            jitter: 0.03,
            seed: 0xC0FFEE,
        }
    }
}

/// Fitted estimators plus bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Forward time (ns) vs transformer blocks.
    pub fwd: LinearEstimator,
    /// Backward time (ns) vs transformer blocks.
    pub bwd: LinearEstimator,
    /// Dynamic activation bytes per micro-batch vs blocks.
    pub act: LinearEstimator,
    /// Static bytes vs blocks (bias ≈ framework memory).
    pub static_mem: LinearEstimator,
    /// p2p time (ns) vs number of micro-batches.
    pub p2p: LinearEstimator,
    /// Measured LM-head forward extra (ns), averaged.
    pub embed_fwd_ns: Nanos,
    /// Number of raw samples taken.
    pub samples: usize,
    /// Simulated wall-clock cost of the profiling itself (ns) — the paper
    /// reports 142 s for LLaMA2-13B.
    pub profiling_cost_ns: Nanos,
}

fn jittered(rng: &mut StdRng, value: f64, jitter: f64) -> f64 {
    // Uniform multiplicative noise in [1-2j, 1+2j]; cheap and bounded.
    let f = 1.0 + rng.gen_range(-2.0 * jitter..=2.0 * jitter);
    value * f
}

/// Profiles `setup`, fitting the paper's linear estimators.
pub fn profile(setup: &TrainSetup, cfg: ProfilerConfig) -> ProfileReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let m = &setup.model;
    let g = &setup.gpu;

    // Ground-truth per-block quantities (what the hardware "really" does).
    let fwd_block =
        g.flops_time_at(flops::layer_forward_flops(m, setup.mbs, setup.tp), setup.mbs, m.hidden)
            as f64;
    let bwd_block = fwd_block * g.bwd_fwd_ratio;
    let ko = g.kernel_overhead_ns() as f64;
    let act_block = memory::layer_activation_bytes(m, setup.mbs, setup.tp) as f64;
    let static_block =
        memory::layer_static_bytes(m, g.static_bytes_per_param, setup.tp) as f64;
    let framework = g.framework_bytes as f64;
    let embed_fwd =
        g.flops_time_at(flops::embedding_forward_flops(m, setup.mbs, setup.tp), setup.mbs, m.hidden)
            as f64;
    let p2p_one = g.p2p_time(memory::boundary_bytes(m, setup.mbs, setup.tp)) as f64;

    // The paper profiles the (D-1)-th device, which holds several blocks;
    // we sweep a few block counts as a profiled device would expose.
    let block_counts = [1u32, 2, 3, 4, 6, 8];
    let mut fwd_s = Vec::new();
    let mut bwd_s = Vec::new();
    let mut act_s = Vec::new();
    let mut stat_s = Vec::new();
    let mut p2p_s = Vec::new();
    let mut embed_acc = 0.0;
    let mut profiling_cost = 0u64;
    for &n in &block_counts {
        for _ in 0..cfg.iterations {
            let f = jittered(&mut rng, n as f64 * fwd_block + ko, cfg.jitter);
            let b = jittered(&mut rng, n as f64 * bwd_block + ko, cfg.jitter);
            fwd_s.push((n as f64, f));
            bwd_s.push((n as f64, b));
            // Memory counters have no kernel jitter but allocator slack.
            act_s.push((
                n as f64,
                jittered(&mut rng, n as f64 * act_block, cfg.jitter / 3.0),
            ));
            stat_s.push((
                n as f64,
                jittered(&mut rng, n as f64 * static_block + framework, cfg.jitter / 3.0),
            ));
            embed_acc += jittered(&mut rng, embed_fwd, cfg.jitter);
            profiling_cost += (f + b) as u64;
        }
    }
    // p2p time vs number of micro-batches (paper: "use n to denote the
    // number of micro-batches and apply linear regression").
    for n in [1u32, 2, 4, 8, 16] {
        for _ in 0..cfg.iterations {
            let y = jittered(
                &mut rng,
                n as f64 * p2p_one + g.p2p_launch_ns() as f64,
                cfg.jitter,
            );
            p2p_s.push((n as f64, y));
            profiling_cost += y as u64;
        }
    }

    let samples = fwd_s.len() + bwd_s.len() + act_s.len() + stat_s.len() + p2p_s.len();
    ProfileReport {
        fwd: LinearEstimator::fit(&fwd_s),
        bwd: LinearEstimator::fit(&bwd_s),
        act: LinearEstimator::fit(&act_s),
        static_mem: LinearEstimator::fit(&stat_s),
        p2p: LinearEstimator::fit(&p2p_s),
        embed_fwd_ns: (embed_acc / (block_counts.len() as f64 * cfg.iterations as f64)) as Nanos,
        samples,
        profiling_cost_ns: profiling_cost,
    }
}

/// Builds a cost model whose compute/memory tables come from the fitted
/// estimators instead of the analytic formulas — this is what the paper's
/// simulator consumes.
pub fn profiled_cost(setup: &TrainSetup, report: &ProfileReport) -> AnalyticCost {
    let mut cost = AnalyticCost::new(setup);
    let stages = setup.topo.num_stages();
    let mut fwd = Vec::with_capacity(stages as usize);
    let mut bwd = Vec::with_capacity(stages as usize);
    let mut act = Vec::with_capacity(stages as usize);
    let mut stat = Vec::with_capacity(stages as usize);
    let framework = report.static_mem.b.max(0.0) as u64;
    for s in 0..stages {
        let n = setup.partition.layers_of(s) as f64;
        let head_extra = if s + 1 == stages { report.embed_fwd_ns } else { 0 };
        let head_extra_bwd = (head_extra as f64 * setup.gpu.bwd_fwd_ratio) as Nanos;
        fwd.push(report.fwd.predict(n) as Nanos + head_extra);
        bwd.push(report.bwd.predict(n) as Nanos + head_extra_bwd);
        act.push(report.act.predict(n) as u64);
        // The regression bias is the framework share; keep per-stage model
        // state only (framework is added once per device by the model).
        let embed_static = if s == 0 || s + 1 == stages {
            memory::embedding_static_bytes(
                &setup.model,
                setup.gpu.static_bytes_per_param,
                setup.tp,
            )
        } else {
            0
        };
        stat.push(
            (report.static_mem.predict(n) as u64).saturating_sub(framework) + embed_static,
        );
    }
    cost.override_compute(fwd, bwd);
    cost.override_memory(act, stat);
    cost
}

/// Convenience: profile and build the simulator-facing cost model.
pub fn profile_and_build(setup: &TrainSetup, cfg: ProfilerConfig) -> (AnalyticCost, ProfileReport) {
    let report = profile(setup, cfg);
    let cost = profiled_cost(setup, &report);
    (cost, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::hardware::GpuSpec;
    use mario_ir::{ComputeKind, CostModel, DeviceId, PartId, SchemeKind, Topology};

    fn setup() -> TrainSetup {
        TrainSetup::pipeline(
            ModelConfig::gpt3_1_6b(),
            GpuSpec::a100_40g(),
            Topology::new(SchemeKind::OneFOneB, 8),
            2,
        )
    }

    #[test]
    fn profiling_is_deterministic_given_seed() {
        let s = setup();
        let a = profile(&s, ProfilerConfig::default());
        let b = profile(&s, ProfilerConfig::default());
        assert_eq!(a.fwd, b.fwd);
        assert_eq!(a.static_mem, b.static_mem);
    }

    #[test]
    fn fitted_slopes_match_ground_truth_within_jitter() {
        let s = setup();
        let r = profile(&s, ProfilerConfig::default());
        let truth = s
            .gpu
            .flops_time_at(
                flops::layer_forward_flops(&s.model, s.mbs, s.tp),
                s.mbs,
                s.model.hidden,
            ) as f64;
        assert!(
            (r.fwd.a - truth).abs() / truth < 0.05,
            "slope {} vs truth {truth}",
            r.fwd.a
        );
        // Backward slope ~2x forward slope.
        assert!((r.bwd.a / r.fwd.a - 2.0).abs() < 0.1);
    }

    #[test]
    fn bias_recovers_framework_memory() {
        // Fig. 10 discussion: the simulator "reveals that the framework
        // consumes about 2 GB GPU memory" — that is the regression bias.
        let s = setup();
        let r = profile(&s, ProfilerConfig::default());
        let two_gb = 2.0 * (1u64 << 30) as f64;
        assert!(
            (r.static_mem.b - two_gb).abs() / two_gb < 0.25,
            "bias {:.3e}",
            r.static_mem.b
        );
    }

    #[test]
    fn profiled_cost_tracks_analytic_cost() {
        let s = setup();
        let analytic = AnalyticCost::new(&s);
        let (prof, _) = profile_and_build(&s, ProfilerConfig::default());
        for d in [0u32, 3, 7] {
            let dev = DeviceId(d);
            let p = PartId(0);
            let a = analytic.compute_time(dev, p, ComputeKind::Forward) as f64;
            let q = prof.compute_time(dev, p, ComputeKind::Forward) as f64;
            assert!((a - q).abs() / a < 0.15, "d{d}: {a} vs {q}");
            let am = analytic.static_mem(dev) as f64;
            let qm = prof.static_mem(dev) as f64;
            assert!((am - qm).abs() / am < 0.25, "d{d}: {am} vs {qm}");
        }
    }

    #[test]
    fn profiling_cost_is_lightweight() {
        // The paper: profiling LLaMA2-13B takes 142 s. Our simulated
        // profiling cost should be seconds-to-minutes of virtual time,
        // not hours.
        let s = TrainSetup::pipeline(
            ModelConfig::llama2_13b(),
            GpuSpec::a100_40g(),
            Topology::new(SchemeKind::OneFOneB, 8),
            2,
        );
        let r = profile(&s, ProfilerConfig::default());
        let secs = r.profiling_cost_ns as f64 / 1e9;
        assert!(secs > 0.1 && secs < 1000.0, "{secs} s");
    }
}
