//! Hardware model: the synthetic stand-in for the paper's A100-40G cluster
//! (16 nodes × 4 GPUs, NVLink inside a node, InfiniBand across nodes).
//!
//! Only aggregate rates matter to the scheduler: achievable matmul
//! throughput, device memory, p2p bandwidth/latency, and the fixed
//! framework overheads the paper's profiling regression captures as the
//! bias term `b` (§5.2) and the ~2 GB resident framework memory its
//! simulator reveals (§6.6).

use mario_ir::Nanos;
use serde::{Deserialize, Serialize};

/// One GPU plus its share of the interconnect.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Peak dense bf16 throughput, FLOP/s.
    pub peak_flops: f64,
    /// Fraction of peak achieved by transformer kernels (MFU-ish) at
    /// large micro-batch sizes.
    pub efficiency: f64,
    /// Half-saturation knee of the micro-batch efficiency curve at the
    /// reference hidden size (4096): achieved efficiency is
    /// `efficiency · mbs / (mbs + knee · 4096/h)`. Small micro-batches —
    /// and small hidden sizes — under-utilize the SMs; this is the effect
    /// the paper's `lmbs` configuration exploits ("larger micro-batch size
    /// to improve computing efficiency").
    pub mbs_efficiency_knee: f64,
    /// Device memory, bytes.
    pub mem_bytes: u64,
    /// Point-to-point bandwidth between pipeline neighbours, bytes/s
    /// (cross-node InfiniBand in the paper's 16×4 cluster).
    pub p2p_bandwidth: f64,
    /// Intra-node NVLink bandwidth used by tensor parallelism and
    /// same-node pipeline hops, bytes/s.
    pub nvlink_bandwidth: f64,
    /// GPUs per node (the paper's cluster packs 4 A100s per node); pipeline
    /// hops inside a node ride NVLink instead of InfiniBand.
    pub gpus_per_node: u32,
    /// Point-to-point latency per message, seconds.
    pub p2p_latency: f64,
    /// Fixed per-call launch overhead for p2p ops, seconds (CPU-side).
    pub p2p_launch: f64,
    /// Fixed per-kernel launch overhead for compute instructions, seconds —
    /// the framework bias `b` of the paper's linear regression.
    pub kernel_overhead: f64,
    /// Resident framework memory (CUDA context, Megatron/DeepSpeed,
    /// PyTorch caches), bytes. The paper measures ≈ 2 GB (§6.6).
    pub framework_bytes: u64,
    /// Backward/forward latency ratio of a transformer layer. The paper
    /// notes the real ratio is ≈ 1:1.6 rather than the idealized 1:2
    /// (§3.2), but FLOP counting gives 2.0; both are supported.
    pub bwd_fwd_ratio: f64,
    /// Bytes per parameter of *static* state: bf16 weights (2) + bf16
    /// gradients (2) + fp32 Adam master/moments (12).
    pub static_bytes_per_param: f64,
}

impl GpuSpec {
    /// An NVIDIA A100-40G with cross-node InfiniBand p2p, the paper's
    /// testbed device.
    pub fn a100_40g() -> Self {
        Self {
            name: "A100-40G".into(),
            peak_flops: 312e12,
            efficiency: 0.62,
            mbs_efficiency_knee: 1.2,
            mem_bytes: 40 * (1 << 30),
            p2p_bandwidth: 20e9,
            nvlink_bandwidth: 250e9,
            gpus_per_node: 4,
            p2p_latency: 8e-6,
            p2p_launch: 12e-6,
            kernel_overhead: 60e-6,
            framework_bytes: 2 * (1 << 30),
            bwd_fwd_ratio: 2.0,
            static_bytes_per_param: 16.0,
        }
    }

    /// Like [`GpuSpec::a100_40g`] but with the empirically observed
    /// backward:forward ratio of 1.6 (§3.2, citing Korthikanti et al.).
    pub fn a100_40g_measured_ratio() -> Self {
        Self {
            bwd_fwd_ratio: 1.6,
            ..Self::a100_40g()
        }
    }

    /// Achieved efficiency at micro-batch size `mbs` for hidden size
    /// `hidden`: smaller GEMMs saturate the SMs less.
    pub fn efficiency_at(&self, mbs: u32, hidden: u32) -> f64 {
        let knee = self.mbs_efficiency_knee * 4096.0 / hidden as f64;
        self.efficiency * mbs as f64 / (mbs as f64 + knee)
    }

    /// Time to execute `flops` floating-point operations at full
    /// micro-batch efficiency, in virtual ns.
    pub fn flops_time(&self, flops: f64) -> Nanos {
        let secs = flops / (self.peak_flops * self.efficiency);
        (secs * 1e9).round() as Nanos
    }

    /// Time to execute `flops` at the efficiency achieved by micro-batch
    /// size `mbs` on hidden size `hidden`, in virtual ns.
    pub fn flops_time_at(&self, flops: f64, mbs: u32, hidden: u32) -> Nanos {
        let secs = flops / (self.peak_flops * self.efficiency_at(mbs, hidden));
        (secs * 1e9).round() as Nanos
    }

    /// Wire time for a p2p message of `bytes` over the cross-node fabric,
    /// in virtual ns.
    pub fn p2p_time(&self, bytes: u64) -> Nanos {
        let secs = self.p2p_latency + bytes as f64 / self.p2p_bandwidth;
        (secs * 1e9).round() as Nanos
    }

    /// Wire time over intra-node NVLink, in virtual ns.
    pub fn nvlink_time(&self, bytes: u64) -> Nanos {
        // NVLink latency is roughly an order of magnitude below IB.
        let secs = self.p2p_latency / 4.0 + bytes as f64 / self.nvlink_bandwidth;
        (secs * 1e9).round() as Nanos
    }

    /// True when two pipeline devices share a node.
    pub fn same_node(&self, a: u32, b: u32) -> bool {
        self.gpus_per_node > 0 && a / self.gpus_per_node == b / self.gpus_per_node
    }

    /// Per-p2p-call launch overhead, in virtual ns.
    pub fn p2p_launch_ns(&self) -> Nanos {
        (self.p2p_launch * 1e9).round() as Nanos
    }

    /// Per-compute-instruction framework overhead, in virtual ns.
    pub fn kernel_overhead_ns(&self) -> Nanos {
        (self.kernel_overhead * 1e9).round() as Nanos
    }

    /// Ring all-reduce time for `bytes` across `n` participants over the
    /// cross-node fabric (data parallelism).
    pub fn allreduce_time(&self, bytes: u64, n: u32) -> Nanos {
        self.ring_allreduce(bytes, n, self.p2p_bandwidth)
    }

    /// Ring all-reduce over NVLink (tensor parallelism stays intra-node).
    pub fn tp_allreduce_time(&self, bytes: u64, n: u32) -> Nanos {
        self.ring_allreduce(bytes, n, self.nvlink_bandwidth)
    }

    fn ring_allreduce(&self, bytes: u64, n: u32, bw: f64) -> Nanos {
        if n <= 1 {
            return 0;
        }
        let volume = 2.0 * (n as f64 - 1.0) / n as f64 * bytes as f64;
        let secs = volume / bw + 2.0 * (n as f64 - 1.0) * self.p2p_latency;
        (secs * 1e9).round() as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_time_is_linear() {
        let g = GpuSpec::a100_40g();
        let t1 = g.flops_time(1e12);
        let t2 = g.flops_time(2e12);
        assert!(t1 > 0);
        assert!((t2 as f64 / t1 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn p2p_time_has_latency_floor() {
        let g = GpuSpec::a100_40g();
        assert!(g.p2p_time(0) >= 8_000); // 8 µs floor
        let big = g.p2p_time(20_000_000_000);
        assert!(big >= 1_000_000_000); // 20 GB at 20 GB/s >= 1 s
    }

    #[test]
    fn allreduce_degenerates_for_single_rank() {
        let g = GpuSpec::a100_40g();
        assert_eq!(g.allreduce_time(1 << 30, 1), 0);
        assert!(g.allreduce_time(1 << 30, 8) > g.allreduce_time(1 << 30, 2));
    }

    #[test]
    fn reasonable_transformer_layer_latency() {
        // A GPT3-13B layer at mbs=2, seq=1024 is ~0.3 TFLOP forward;
        // at ~140 TFLOP/s achieved that is ~2 ms. Sanity-check the order
        // of magnitude (0.1 ms .. 100 ms).
        let g = GpuSpec::a100_40g();
        let h = 3000f64;
        let flops = 24.0 * 2.0 * 1024.0 * h * h;
        let t = g.flops_time(flops);
        assert!(t > 100_000 && t < 100_000_000, "t = {t} ns");
    }
}
