//! # mario-model — transformer cost & memory model, hardware model, and
//! lightweight profiling
//!
//! The synthetic substrate standing in for the paper's Megatron-DeepSpeed +
//! A100 testbed:
//!
//! * [`config`] — model presets (Table 4) and 3D-parallel layouts;
//! * [`flops`] / [`memory`] — analytic FLOP and byte accounting for
//!   transformer layers (Korthikanti-style activation formulas);
//! * [`hardware`] — the A100-40G device/interconnect model;
//! * [`partition`] — layer→stage assignment, even and ramped (§7.1);
//! * [`estimator`] — `y = a·n + b` linear regression (§5.2);
//! * [`profiler`] — synthetic lightweight profiling producing the
//!   regression-backed cost model the simulator consumes;
//! * [`cost`] — [`cost::AnalyticCost`], the [`mario_ir::CostModel`]
//!   implementation used by both the simulator and the cluster emulator.

#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod estimator;
pub mod flops;
pub mod hardware;
pub mod memory;
pub mod partition;
pub mod profiler;

pub use config::{ModelConfig, ParallelConfig};
pub use cost::{AnalyticCost, TrainSetup};
pub use estimator::{mape, LinearEstimator};
pub use hardware::GpuSpec;
pub use partition::StagePartition;
pub use profiler::{profile, profile_and_build, profiled_cost, ProfileReport, ProfilerConfig};
