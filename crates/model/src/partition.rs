//! Layer → stage partitioning (paper §7.1).
//!
//! Even partitioning is what Chimera, Hanayo, Megatron-LM and BPipe all
//! adopt; the paper argues uneven ("ramped") partitions can balance memory
//! only at the cost of compute imbalance. Both are provided: `even` for the
//! main experiments and `ramp(k)` for the §7.1 ablation ("varying k layers
//! uniformly across stages", k ∈ {-2,-1,0,+1,+2}).

use serde::{Deserialize, Serialize};

/// How many transformer layers each stage holds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagePartition {
    layers: Vec<u32>,
}

impl StagePartition {
    /// Even split: `layers / stages` each, remainder given to the earliest
    /// stages.
    ///
    /// # Panics
    /// If `stages == 0` or `layers < stages`.
    pub fn even(layers: u32, stages: u32) -> Self {
        assert!(stages > 0, "need at least one stage");
        assert!(
            layers >= stages,
            "cannot split {layers} layers over {stages} stages"
        );
        let base = layers / stages;
        let rem = layers % stages;
        Self {
            layers: (0..stages)
                .map(|s| base + u32::from(s < rem))
                .collect(),
        }
    }

    /// Ramped split: stage workloads vary linearly so the first and last
    /// stages differ from the mean by `∓k` (k > 0 gives *ascending*
    /// workloads, which balances activation memory; k < 0 descending).
    /// The total layer count is preserved exactly.
    pub fn ramp(layers: u32, stages: u32, k: i32) -> Self {
        let mut p = Self::even(layers, stages);
        if stages < 2 || k == 0 {
            return p;
        }
        let s = stages as f64;
        for (i, l) in p.layers.iter_mut().enumerate() {
            let frac = 2.0 * i as f64 / (s - 1.0) - 1.0; // -1 .. +1
            let delta = (k as f64 * frac).round() as i64;
            let v = *l as i64 + delta;
            assert!(v >= 1, "ramp k={k} empties stage {i}");
            *l = v as u32;
        }
        // Fix rounding drift while keeping the ramp shape.
        let want: i64 = layers as i64;
        let mut have: i64 = p.layers.iter().map(|&l| l as i64).sum();
        let mut i = (stages / 2) as usize;
        while have != want {
            if have < want {
                p.layers[i] += 1;
                have += 1;
            } else if p.layers[i] > 1 {
                p.layers[i] -= 1;
                have -= 1;
            }
            i = (i + 1) % stages as usize;
        }
        p
    }

    /// Number of stages.
    pub fn stages(&self) -> u32 {
        self.layers.len() as u32
    }

    /// Layers in stage `s`.
    pub fn layers_of(&self, s: u32) -> u32 {
        self.layers[s as usize]
    }

    /// All per-stage layer counts.
    pub fn as_slice(&self) -> &[u32] {
        &self.layers
    }

    /// Total layers.
    pub fn total(&self) -> u32 {
        self.layers.iter().sum()
    }

    /// The half-open global layer range `[start, end)` held by stage `s`.
    ///
    /// Stages own contiguous, in-order slices of the model, so the range
    /// is the prefix sum of the earlier stages' counts.
    pub fn range_of(&self, s: u32) -> std::ops::Range<u32> {
        let start: u32 = self.layers[..s as usize].iter().sum();
        start..start + self.layers[s as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_spreads_remainder_to_front() {
        let p = StagePartition::even(10, 4);
        assert_eq!(p.as_slice(), &[3, 3, 2, 2]);
        assert_eq!(p.total(), 10);
    }

    #[test]
    fn even_split_exact() {
        let p = StagePartition::even(128, 32);
        assert!(p.as_slice().iter().all(|&l| l == 4));
    }

    #[test]
    fn ramp_preserves_total_and_shape() {
        for k in [-2i32, -1, 1, 2] {
            let p = StagePartition::ramp(128, 8, k);
            assert_eq!(p.total(), 128, "k={k}");
            let first = p.layers_of(0) as i64;
            let last = p.layers_of(7) as i64;
            if k > 0 {
                assert!(last > first, "k={k}: {:?}", p.as_slice());
            } else {
                assert!(last < first, "k={k}: {:?}", p.as_slice());
            }
            assert_eq!((last - first).unsigned_abs(), 2 * k.unsigned_abs() as u64);
        }
    }

    #[test]
    fn ramp_zero_is_even() {
        assert_eq!(StagePartition::ramp(128, 8, 0), StagePartition::even(128, 8));
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn rejects_more_stages_than_layers() {
        let _ = StagePartition::even(4, 8);
    }

    #[test]
    fn ranges_tile_the_model_in_order() {
        for p in [StagePartition::even(10, 4), StagePartition::ramp(128, 8, 2)] {
            let mut next = 0u32;
            for s in 0..p.stages() {
                let r = p.range_of(s);
                assert_eq!(r.start, next, "stage {s} not contiguous");
                assert_eq!(r.end - r.start, p.layers_of(s));
                next = r.end;
            }
            assert_eq!(next, p.total());
        }
    }
}
