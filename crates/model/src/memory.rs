//! Analytic memory model: weights/optimizer (static) and activations
//! (dynamic), following the accounting of Korthikanti et al. ("Reducing
//! activation recomputation in large transformer models"), which the paper
//! cites for its activation formulas.

use crate::config::ModelConfig;

/// Full activation bytes retained per transformer layer by one micro-batch
/// of `b` sequences (no checkpointing, no flash attention):
/// `s·b·h·(34 + 5·a·s/h)` at 2 bytes/element granularity baked into the
/// constants, divided by `tp` (with sequence parallelism).
pub fn layer_activation_bytes(m: &ModelConfig, b: u32, tp: u32) -> u64 {
    let s = m.seqlen as f64;
    let h = m.hidden as f64;
    let a = m.heads as f64;
    let b = b as f64;
    let per = s * b * h * (34.0 + 5.0 * a * s / h);
    (per / tp as f64) as u64
}

/// Checkpoint bytes stashed per layer-stage *input* for one micro-batch:
/// just the boundary tensor `s·b·h·bytes` (the whole stage keeps exactly one
/// input when coarse-grained checkpointing is applied, §7.2).
pub fn boundary_bytes(m: &ModelConfig, b: u32, tp: u32) -> u64 {
    let s = m.seqlen as u64;
    let h = m.hidden as u64;
    s * b as u64 * h * m.bytes_per_elem as u64 / tp as u64
}

/// Static bytes per transformer layer: parameters × (weights + grads +
/// fp32 optimizer states).
pub fn layer_static_bytes(m: &ModelConfig, static_bytes_per_param: f64, tp: u32) -> u64 {
    (m.params_per_layer() as f64 * static_bytes_per_param / tp as f64) as u64
}

/// Static bytes of the embedding/LM-head (first/last stage extra).
pub fn embedding_static_bytes(m: &ModelConfig, static_bytes_per_param: f64, tp: u32) -> u64 {
    (m.embedding_params() as f64 * static_bytes_per_param / tp as f64) as u64
}

/// Gradient bytes per transformer layer (what the DP all-reduce moves).
pub fn layer_grad_bytes(m: &ModelConfig, tp: u32) -> u64 {
    m.params_per_layer() * m.bytes_per_elem as u64 / tp as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_formula_matches_korthikanti() {
        // GPT3-13B, mbs 2: s·b·h·(34 + 5·a·s/h)
        let m = ModelConfig::gpt3_13b();
        let b = 2u32;
        let s = 1024.0;
        let h = 3000.0;
        let a = 40.0;
        let expect = s * 2.0 * h * (34.0 + 5.0 * a * s / h);
        let got = layer_activation_bytes(&m, b, 1) as f64;
        assert!((got - expect).abs() / expect < 1e-9);
        // ~629 MB per layer per micro-batch: the paper-scale sanity check.
        assert!(got > 500e6 && got < 700e6, "{got}");
    }

    #[test]
    fn checkpointing_shrinks_per_layer_memory_dramatically() {
        let m = ModelConfig::gpt3_13b();
        let full = layer_activation_bytes(&m, 2, 1);
        let ckpt = boundary_bytes(&m, 2, 1);
        assert!(
            full / ckpt > 50,
            "checkpoint should be tiny vs full ({full} / {ckpt})"
        );
    }

    #[test]
    fn tp_divides_activations_and_weights() {
        let m = ModelConfig::llama2_13b();
        assert_eq!(
            layer_activation_bytes(&m, 2, 2),
            layer_activation_bytes(&m, 2, 1) / 2
        );
        let s1 = layer_static_bytes(&m, 16.0, 1);
        let s2 = layer_static_bytes(&m, 16.0, 2);
        assert!((s1 as f64 / s2 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn static_memory_at_paper_scale() {
        // GPT3-13B over 32 pipeline stages: ~13B·16B/32 ≈ 6.5 GB of model
        // state per device; plus ~2 GB framework lands near Table 5's
        // ~9.8 GB minimum.
        let m = ModelConfig::gpt3_13b();
        let per_stage_layers = m.layers / 32;
        let bytes = layer_static_bytes(&m, 16.0, 1) * per_stage_layers as u64;
        let gb = bytes as f64 / (1u64 << 30) as f64;
        assert!(gb > 5.0 && gb < 9.0, "{gb:.2} GB/stage");
    }

    #[test]
    fn grad_bytes_are_bf16_weights() {
        let m = ModelConfig::gpt3_1_6b();
        assert_eq!(layer_grad_bytes(&m, 1), m.params_per_layer() * 2);
    }
}
