//! Model and parallelism configurations (paper Listing 1 / Table 4).

use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters of a transformer LLM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name ("GPT3-13B", ...).
    pub name: String,
    /// Hidden size `h`.
    pub hidden: u32,
    /// Number of transformer layers `L`.
    pub layers: u32,
    /// Number of attention heads `a`.
    pub heads: u32,
    /// Sequence length `s`.
    pub seqlen: u32,
    /// Vocabulary size `V` (embedding + LM head).
    pub vocab: u32,
    /// FFN expansion as a multiple of `h`; the *effective* multiplier such
    /// that FFN parameter count is `2 · ffn_mult · h²`. GPT-3 uses 4 (two
    /// `h×4h` matrices); LLaMA-2's SwiGLU uses three `h×(8/3)h` matrices,
    /// which is the same `8h²` total, so both presets use 4.
    pub ffn_mult: f64,
    /// Bytes per parameter/activation element (2 = bf16).
    pub bytes_per_elem: u32,
}

impl ModelConfig {
    /// GPT3-1.6B (Table 4): h=1024, 128 layers, 16 heads, seqlen 1024.
    pub fn gpt3_1_6b() -> Self {
        Self {
            name: "GPT3-1.6B".into(),
            hidden: 1024,
            layers: 128,
            heads: 16,
            seqlen: 1024,
            vocab: 50_257,
            ffn_mult: 4.0,
            bytes_per_elem: 2,
        }
    }

    /// GPT3-13B (Table 4): h=3000, 128 layers, 40 heads, seqlen 1024.
    pub fn gpt3_13b() -> Self {
        Self {
            name: "GPT3-13B".into(),
            hidden: 3000,
            layers: 128,
            heads: 40,
            seqlen: 1024,
            vocab: 50_257,
            ffn_mult: 4.0,
            bytes_per_elem: 2,
        }
    }

    /// LLaMA2-3B (Table 4): h=2048, 64 layers, 16 heads, seqlen 1024.
    pub fn llama2_3b() -> Self {
        Self {
            name: "LLaMA2-3B".into(),
            hidden: 2048,
            layers: 64,
            heads: 16,
            seqlen: 1024,
            vocab: 32_000,
            ffn_mult: 4.0,
            bytes_per_elem: 2,
        }
    }

    /// LLaMA2-13B (Table 4): h=4096, 64 layers, 32 heads, seqlen 1024.
    pub fn llama2_13b() -> Self {
        Self {
            name: "LLaMA2-13B".into(),
            hidden: 4096,
            layers: 64,
            heads: 32,
            seqlen: 1024,
            vocab: 32_000,
            ffn_mult: 4.0,
            bytes_per_elem: 2,
        }
    }

    /// A GPT3-family config with a custom hidden size (used by the Fig. 8
    /// parameter-scaling sweep: 64 layers, 32 heads, seqlen 1024).
    pub fn gpt3_scaling(hidden: u32) -> Self {
        Self {
            name: format!("GPT3-h{hidden}"),
            hidden,
            layers: 64,
            heads: 32,
            seqlen: 1024,
            vocab: 50_257,
            ffn_mult: 4.0,
            bytes_per_elem: 2,
        }
    }

    /// Returns a copy with a different sequence length (Fig. 9 sweep).
    pub fn with_seqlen(mut self, seqlen: u32) -> Self {
        self.seqlen = seqlen;
        self
    }

    /// Parameters of one transformer layer: `4h²` attention + `2·ffn·h²`
    /// FFN (+ small norm/bias terms, ignored).
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        4 * h * h + (2.0 * self.ffn_mult * (h * h) as f64) as u64
    }

    /// Embedding (and tied LM head) parameters.
    pub fn embedding_params(&self) -> u64 {
        self.vocab as u64 * self.hidden as u64
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.params_per_layer() * self.layers as u64 + self.embedding_params()
    }
}

/// The 3D-parallel layout of a training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Pipeline-parallel degree (devices in the pipeline dimension).
    pub pp: u32,
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Data-parallel degree.
    pub dp: u32,
    /// Micro-batch size.
    pub mbs: u32,
    /// Global batch size.
    pub gbs: u32,
}

impl ParallelConfig {
    /// A pure-pipeline layout.
    pub fn pipeline_only(pp: u32, mbs: u32, gbs: u32) -> Self {
        Self {
            pp,
            tp: 1,
            dp: 1,
            mbs,
            gbs,
        }
    }

    /// Micro-batches per pipeline per iteration:
    /// `N = gbs / (dp × mbs)`.
    ///
    /// # Panics
    /// If `gbs` is not divisible by `dp × mbs`.
    pub fn micros(&self) -> u32 {
        let denom = self.dp * self.mbs;
        assert!(
            self.gbs.is_multiple_of(denom),
            "global batch {} not divisible by dp*mbs = {}",
            self.gbs,
            denom
        );
        self.gbs / denom
    }

    /// Total devices used.
    pub fn total_devices(&self) -> u32 {
        self.pp * self.tp * self.dp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_hit_their_nominal_parameter_counts() {
        // Within 10% of the nominal size (embeddings push GPT3-1.6B a bit).
        let cases = [
            (ModelConfig::gpt3_1_6b(), 1.6e9),
            (ModelConfig::gpt3_13b(), 13.0e9),
            (ModelConfig::llama2_3b(), 3.0e9),
            (ModelConfig::llama2_13b(), 13.0e9),
        ];
        for (m, nominal) in cases {
            let p = m.total_params() as f64;
            assert!(
                (p - nominal).abs() / nominal < 0.12,
                "{}: {p:.3e} vs nominal {nominal:.3e}",
                m.name
            );
        }
    }

    #[test]
    fn params_per_layer_is_12_h_squared_for_gpt() {
        let m = ModelConfig::gpt3_1_6b();
        let h = m.hidden as u64;
        assert_eq!(m.params_per_layer(), 12 * h * h);
    }

    #[test]
    fn micros_formula() {
        let p = ParallelConfig {
            pp: 8,
            tp: 1,
            dp: 2,
            mbs: 2,
            gbs: 128,
        };
        assert_eq!(p.micros(), 32);
        assert_eq!(p.total_devices(), 16);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn micros_rejects_ragged_batches() {
        let p = ParallelConfig {
            pp: 8,
            tp: 1,
            dp: 3,
            mbs: 2,
            gbs: 128,
        };
        let _ = p.micros();
    }

    #[test]
    fn seqlen_override() {
        let m = ModelConfig::gpt3_1_6b().with_seqlen(4096);
        assert_eq!(m.seqlen, 4096);
        assert_eq!(m.hidden, 1024);
    }
}
