//! The analytic cost model: maps every IR instruction to latency and bytes
//! for a concrete (model, hardware, parallel layout, topology) quadruple.
//!
//! This is the synthetic stand-in for real kernel execution — the
//! quantities the paper obtains from lightweight profiling (§5.2) are here
//! derived from FLOP/byte counting, so the *ratios* that drive scheduling
//! decisions (backward/forward, recompute/forward, activation vs checkpoint
//! size, compute vs p2p) match the real system's structure.

use crate::config::ModelConfig;
use crate::flops;
use crate::hardware::GpuSpec;
use crate::memory;
use crate::partition::StagePartition;
use mario_ir::{ComputeKind, CostModel, DeviceId, Nanos, PartId, Topology};
use serde::{Deserialize, Serialize};

/// Everything a cost model needs to know about one training job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainSetup {
    /// The model being trained.
    pub model: ModelConfig,
    /// The device + interconnect.
    pub gpu: GpuSpec,
    /// The virtual pipeline the schedule runs on.
    pub topo: Topology,
    /// Layer → stage assignment (must have `topo.num_stages()` stages).
    pub partition: StagePartition,
    /// Tensor-parallel degree (modeled inside each stage, §5.2).
    pub tp: u32,
    /// Data-parallel degree (drives the all-reduce, §5.2).
    pub dp: u32,
    /// Micro-batch size.
    pub mbs: u32,
}

impl TrainSetup {
    /// A pure-pipeline setup with even partitioning.
    pub fn pipeline(model: ModelConfig, gpu: GpuSpec, topo: Topology, mbs: u32) -> Self {
        let partition = StagePartition::even(model.layers, topo.num_stages());
        Self {
            model,
            gpu,
            topo,
            partition,
            tp: 1,
            dp: 1,
            mbs,
        }
    }

    /// Builder: set tensor parallelism.
    pub fn with_tp(mut self, tp: u32) -> Self {
        self.tp = tp;
        self
    }

    /// Builder: set data parallelism.
    pub fn with_dp(mut self, dp: u32) -> Self {
        self.dp = dp;
        self
    }

    /// Builder: replace the partition (ablation §7.1).
    pub fn with_partition(mut self, partition: StagePartition) -> Self {
        assert_eq!(partition.stages(), self.topo.num_stages());
        self.partition = partition;
        self
    }
}

/// Precomputed per-stage costs implementing [`CostModel`].
#[derive(Debug, Clone)]
pub struct AnalyticCost {
    topo: Topology,
    fwd_ns: Vec<Nanos>,
    bwd_ns: Vec<Nanos>,
    act_bytes: Vec<u64>,
    ckpt_bytes: Vec<u64>,
    boundary: u64,
    static_stage: Vec<u64>,
    grad_bytes_stage: Vec<u64>,
    params_stage: Vec<u64>,
    framework_bytes: u64,
    p2p_launch: Nanos,
    p2p_lat: f64,
    p2p_bw: f64,
    nvlink_bw: f64,
    gpus_per_node: u32,
    dp: u32,
    allreduce_cache: Vec<Nanos>,
    optimizer_cache: Vec<Nanos>,
}

impl AnalyticCost {
    /// Builds the cost tables for `setup`.
    pub fn new(setup: &TrainSetup) -> Self {
        let m = &setup.model;
        let g = &setup.gpu;
        let s_count = setup.topo.num_stages();
        assert_eq!(setup.partition.stages(), s_count);

        let layer_fwd = flops::layer_forward_flops(m, setup.mbs, setup.tp);
        let embed_fwd = flops::embedding_forward_flops(m, setup.mbs, setup.tp);
        let ratio = g.bwd_fwd_ratio;
        // Tensor parallelism adds two all-reduces of the boundary tensor per
        // layer per direction.
        let tp_comm: Nanos = if setup.tp > 1 {
            2 * g.tp_allreduce_time(memory::boundary_bytes(m, setup.mbs, 1), setup.tp)
        } else {
            0
        };
        let ko = g.kernel_overhead_ns();

        let mut fwd_ns = Vec::with_capacity(s_count as usize);
        let mut bwd_ns = Vec::with_capacity(s_count as usize);
        let mut act_bytes = Vec::with_capacity(s_count as usize);
        let mut static_stage = Vec::with_capacity(s_count as usize);
        let mut grad_bytes_stage = Vec::with_capacity(s_count as usize);
        let mut params_stage = Vec::with_capacity(s_count as usize);
        for s in 0..s_count {
            let layers = setup.partition.layers_of(s) as f64;
            let has_head = s + 1 == s_count;
            let has_embed = s == 0;
            let f = layers * layer_fwd + if has_head { embed_fwd } else { 0.0 };
            fwd_ns.push(g.flops_time_at(f, setup.mbs, m.hidden) + (layers as u64) * tp_comm + ko);
            bwd_ns.push(g.flops_time_at(f * ratio, setup.mbs, m.hidden) + (layers as u64) * tp_comm + ko);
            act_bytes.push(
                memory::layer_activation_bytes(m, setup.mbs, setup.tp) * layers as u64,
            );
            let mut st = memory::layer_static_bytes(m, g.static_bytes_per_param, setup.tp)
                * layers as u64;
            let mut params = m.params_per_layer() * layers as u64;
            if has_embed || has_head {
                st += memory::embedding_static_bytes(m, g.static_bytes_per_param, setup.tp);
                params += m.embedding_params();
            }
            static_stage.push(st);
            params_stage.push(params / setup.tp as u64);
            grad_bytes_stage.push(memory::layer_grad_bytes(m, setup.tp) * layers as u64);
        }

        let boundary = memory::boundary_bytes(m, setup.mbs, setup.tp);
        let mut cost = Self {
            topo: setup.topo,
            fwd_ns,
            bwd_ns,
            act_bytes,
            ckpt_bytes: vec![boundary; s_count as usize],
            boundary,
            static_stage,
            grad_bytes_stage,
            params_stage,
            framework_bytes: g.framework_bytes,
            p2p_launch: g.p2p_launch_ns(),
            p2p_lat: g.p2p_latency,
            p2p_bw: g.p2p_bandwidth,
            nvlink_bw: g.nvlink_bandwidth,
            gpus_per_node: g.gpus_per_node,
            dp: setup.dp,
            allreduce_cache: Vec::new(),
            optimizer_cache: Vec::new(),
        };
        // Per-device collective/optimizer latencies.
        let devices = setup.topo.devices;
        for d in 0..devices {
            let grad: u64 = (0..setup.topo.parts_per_device())
                .map(|p| {
                    cost.grad_bytes_stage
                        [setup.topo.stage_of(DeviceId(d), PartId(p)).index()]
                })
                .sum();
            cost.allreduce_cache.push(g.allreduce_time(grad, setup.dp));
            let params: u64 = (0..setup.topo.parts_per_device())
                .map(|p| cost.params_stage[setup.topo.stage_of(DeviceId(d), PartId(p)).index()])
                .sum();
            // Adam update: memory-bound, ~16 B of state traffic per param
            // at ~1.5 TB/s HBM.
            cost.optimizer_cache
                .push((params as f64 * 16.0 / 1.5e12 * 1e9) as Nanos);
        }
        cost
    }

    /// The stage held by `(device, part)`.
    fn stage(&self, device: DeviceId, part: PartId) -> usize {
        self.topo.stage_of(device, part).index()
    }

    /// Sum of forward latencies across all stages (for reference bounds).
    pub fn total_forward_ns(&self) -> Nanos {
        self.fwd_ns.iter().sum()
    }

    /// Per-stage forward latencies (read-only view).
    pub fn forward_table(&self) -> &[Nanos] {
        &self.fwd_ns
    }

    /// Per-stage full-activation bytes (read-only view).
    pub fn activation_table(&self) -> &[u64] {
        &self.act_bytes
    }

    /// Overrides the compute tables with externally fitted values (used by
    /// the profiled cost model).
    pub fn override_compute(&mut self, fwd_ns: Vec<Nanos>, bwd_ns: Vec<Nanos>) {
        assert_eq!(fwd_ns.len(), self.fwd_ns.len());
        assert_eq!(bwd_ns.len(), self.bwd_ns.len());
        self.fwd_ns = fwd_ns;
        self.bwd_ns = bwd_ns;
    }

    /// Overrides the activation/static tables (used by the profiled model).
    pub fn override_memory(&mut self, act: Vec<u64>, static_stage: Vec<u64>) {
        assert_eq!(act.len(), self.act_bytes.len());
        assert_eq!(static_stage.len(), self.static_stage.len());
        self.act_bytes = act;
        self.static_stage = static_stage;
    }
}

impl CostModel for AnalyticCost {
    fn compute_time(&self, device: DeviceId, part: PartId, kind: ComputeKind) -> Nanos {
        let s = self.stage(device, part);
        match kind {
            ComputeKind::Forward | ComputeKind::Recompute => self.fwd_ns[s],
            ComputeKind::Backward => self.bwd_ns[s],
            // dgrad and wgrad GEMMs are each about half the backward.
            ComputeKind::BackwardInput | ComputeKind::BackwardWeight => self.bwd_ns[s] / 2,
        }
    }

    fn act_full(&self, device: DeviceId, part: PartId) -> u64 {
        self.act_bytes[self.stage(device, part)]
    }

    fn act_ckpt(&self, device: DeviceId, part: PartId) -> u64 {
        self.ckpt_bytes[self.stage(device, part)]
    }

    fn boundary_bytes(&self, _device: DeviceId, _part: PartId) -> u64 {
        self.boundary
    }

    fn p2p_time(&self, bytes: u64) -> Nanos {
        ((self.p2p_lat + bytes as f64 / self.p2p_bw) * 1e9) as Nanos
    }

    fn p2p_time_between(&self, from: DeviceId, to: DeviceId, bytes: u64) -> Nanos {
        if self.gpus_per_node > 0 && from.0 / self.gpus_per_node == to.0 / self.gpus_per_node {
            ((self.p2p_lat / 4.0 + bytes as f64 / self.nvlink_bw) * 1e9) as Nanos
        } else {
            self.p2p_time(bytes)
        }
    }

    fn p2p_launch_overhead(&self) -> Nanos {
        self.p2p_launch
    }

    fn allreduce_time(&self, device: DeviceId) -> Nanos {
        if self.dp <= 1 {
            0
        } else {
            self.allreduce_cache[device.index()]
        }
    }

    fn optimizer_time(&self, device: DeviceId) -> Nanos {
        self.optimizer_cache[device.index()]
    }

    fn static_mem(&self, device: DeviceId) -> u64 {
        let parts = self.topo.parts_per_device();
        let model: u64 = (0..parts)
            .map(|p| self.static_stage[self.stage(device, PartId(p))])
            .sum();
        model + self.framework_bytes
    }

    fn ckpt_shard_bytes(&self, device: DeviceId) -> u64 {
        // The checkpoint shard is the device's model state (weights,
        // gradients, optimizer states of its stages) — framework overhead
        // is resident memory, not checkpointed payload.
        (0..self.topo.parts_per_device())
            .map(|p| self.static_stage[self.stage(device, PartId(p))])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::SchemeKind;

    fn gpt13b_32() -> TrainSetup {
        let topo = Topology::new(SchemeKind::OneFOneB, 32);
        TrainSetup::pipeline(
            ModelConfig::gpt3_13b(),
            GpuSpec::a100_40g(),
            topo,
            2,
        )
    }

    #[test]
    fn static_memory_matches_paper_scale() {
        // Table 5: V-ckpt on GPT3-13B/32 GPUs bottoms out at ~9.85 GB.
        let c = AnalyticCost::new(&gpt13b_32());
        let gb = c.static_mem(DeviceId(16)) as f64 / (1u64 << 30) as f64;
        assert!(gb > 7.0 && gb < 12.0, "static = {gb:.2} GB");
    }

    #[test]
    fn backward_is_twice_forward() {
        let c = AnalyticCost::new(&gpt13b_32());
        let d = DeviceId(5);
        let p = PartId(0);
        let f = c.compute_time(d, p, ComputeKind::Forward) as f64;
        let b = c.compute_time(d, p, ComputeKind::Backward) as f64;
        assert!((b / f - 2.0).abs() < 0.1, "ratio {}", b / f);
        assert_eq!(
            c.compute_time(d, p, ComputeKind::Forward),
            c.compute_time(d, p, ComputeKind::Recompute)
        );
    }

    #[test]
    fn checkpoint_is_much_smaller_than_full_activation() {
        let c = AnalyticCost::new(&gpt13b_32());
        let d = DeviceId(3);
        assert!(c.act_full(d, PartId(0)) / c.act_ckpt(d, PartId(0)) > 100);
    }

    #[test]
    fn chimera_duplicates_static_memory() {
        let model = ModelConfig::llama2_3b();
        let g = GpuSpec::a100_40g();
        let v = AnalyticCost::new(&TrainSetup::pipeline(
            model.clone(),
            g.clone(),
            Topology::new(SchemeKind::OneFOneB, 8),
            2,
        ));
        let x = AnalyticCost::new(&TrainSetup::pipeline(
            model,
            g,
            Topology::new(SchemeKind::Chimera, 8),
            2,
        ));
        // An interior Chimera device holds two stage replicas.
        let v_mid = v.static_mem(DeviceId(4)) as f64;
        let x_mid = x.static_mem(DeviceId(4)) as f64;
        assert!(
            x_mid / v_mid > 1.7,
            "Chimera static {x_mid:.2e} vs 1F1B {v_mid:.2e}"
        );
    }

    #[test]
    fn tp_reduces_memory_and_compute() {
        let topo = Topology::new(SchemeKind::OneFOneB, 8);
        let base = TrainSetup::pipeline(
            ModelConfig::gpt3_1_6b(),
            GpuSpec::a100_40g(),
            topo,
            1,
        );
        let c1 = AnalyticCost::new(&base);
        let c2 = AnalyticCost::new(&base.clone().with_tp(2));
        let d = DeviceId(4);
        assert!(c2.act_full(d, PartId(0)) < c1.act_full(d, PartId(0)));
        assert!(c2.static_mem(d) < c1.static_mem(d));
        // Compute shrinks but TP adds comm, so less than 2x.
        let t1 = c1.compute_time(d, PartId(0), ComputeKind::Forward);
        let t2 = c2.compute_time(d, PartId(0), ComputeKind::Forward);
        assert!(t2 < t1);
    }

    #[test]
    fn dp_allreduce_only_when_dp_gt_1() {
        let topo = Topology::new(SchemeKind::OneFOneB, 8);
        let base = TrainSetup::pipeline(
            ModelConfig::gpt3_1_6b(),
            GpuSpec::a100_40g(),
            topo,
            1,
        );
        let c1 = AnalyticCost::new(&base);
        let c4 = AnalyticCost::new(&base.clone().with_dp(4));
        assert_eq!(c1.allreduce_time(DeviceId(0)), 0);
        assert!(c4.allreduce_time(DeviceId(0)) > 0);
    }

    #[test]
    fn ckpt_shard_tracks_per_stage_state_without_framework_overhead() {
        let c = AnalyticCost::new(&gpt13b_32());
        // The shard is model state only: static memory minus the fixed
        // framework bytes, per device.
        for d in [0u32, 15, 31] {
            let d = DeviceId(d);
            assert!(c.ckpt_shard_bytes(d) > 0);
            assert!(c.ckpt_shard_bytes(d) < c.static_mem(d));
        }
        // Embedding-carrying ends write bigger shards than the interior.
        assert!(c.ckpt_shard_bytes(DeviceId(0)) > c.ckpt_shard_bytes(DeviceId(15)));
        assert!(c.ckpt_shard_bytes(DeviceId(31)) > c.ckpt_shard_bytes(DeviceId(15)));
    }

    #[test]
    fn first_and_last_stage_carry_embedding_extras() {
        let c = AnalyticCost::new(&gpt13b_32());
        // Last stage pays the LM-head projection.
        assert!(
            c.compute_time(DeviceId(31), PartId(0), ComputeKind::Forward)
                > c.compute_time(DeviceId(15), PartId(0), ComputeKind::Forward)
        );
        // Both ends carry embedding state.
        assert!(c.static_mem(DeviceId(0)) > c.static_mem(DeviceId(15)));
        assert!(c.static_mem(DeviceId(31)) > c.static_mem(DeviceId(15)));
    }
}
