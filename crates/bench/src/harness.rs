//! Shared experiment harness: the paper's four evaluation configurations
//! (§6: `base`, `ckpt`, `ovlp`, `lmbs`) runnable against any (model,
//! scheme, parallel layout), with the emulator as "real run" and the
//! simulator standing in for configurations that OOM (the paper's
//! underlined Table 5 values).

use mario_core::critpath::{analyze, CritReport};
use mario_core::passes::{run_graph_tuner, GraphTunerOptions, PreposeOptions};
use mario_core::simulator::{simulate_memory, simulate_timeline};
use mario_ir::{CostModel, Schedule, SchemeKind, Topology};
use mario_model::{AnalyticCost, GpuSpec, ModelConfig, TrainSetup};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};

/// The four evaluation configurations of §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// Original scheme, no checkpointing.
    Base,
    /// Naive activation checkpointing (pass 1 only).
    Ckpt,
    /// Checkpointing optimized by Mario's four passes.
    Ovlp,
    /// `Ovlp` with doubled micro-batch size (same global batch).
    Lmbs,
}

impl Variant {
    /// All four, in the paper's order.
    pub const ALL: [Variant; 4] = [Variant::Base, Variant::Ckpt, Variant::Ovlp, Variant::Lmbs];

    /// Short label ("base", "ckpt", ...).
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Base => "base",
            Variant::Ckpt => "ckpt",
            Variant::Ovlp => "ovlp",
            Variant::Lmbs => "lmbs",
        }
    }
}

/// One experiment point.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// The model.
    pub model: ModelConfig,
    /// The device.
    pub gpu: GpuSpec,
    /// Pipeline scheme.
    pub scheme: SchemeKind,
    /// Pipeline depth.
    pub pp: u32,
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Data-parallel degree.
    pub dp: u32,
    /// Micro-batch size (doubled by [`Variant::Lmbs`]).
    pub mbs: u32,
    /// Global batch size.
    pub gbs: u32,
    /// Evaluation variant.
    pub variant: Variant,
    /// Per-device memory, bytes.
    pub mem_capacity: u64,
    /// Execute on the threaded emulator when the config fits (otherwise
    /// always simulate).
    pub use_emulator: bool,
    /// Which emulator backend executes the "real run". Thread is the
    /// default oracle; Event produces bit-identical numbers and scales to
    /// device counts a thread per device cannot reach.
    pub backend: mario_cluster::EmulatorBackend,
    /// Emulator kernel jitter.
    pub jitter: f64,
    /// Run the simulator-guided prepose pass for `Ovlp`/`Lmbs`.
    pub prepose: bool,
}

impl ExpConfig {
    /// A pure-pipeline experiment on A100s.
    pub fn pipeline(model: ModelConfig, scheme: SchemeKind, pp: u32, mbs: u32, gbs: u32) -> Self {
        let gpu = GpuSpec::a100_40g();
        let mem_capacity = gpu.mem_bytes;
        Self {
            model,
            gpu,
            scheme,
            pp,
            tp: 1,
            dp: 1,
            mbs,
            gbs,
            variant: Variant::Base,
            mem_capacity,
            use_emulator: true,
            backend: mario_cluster::EmulatorBackend::default(),
            jitter: 0.02,
            prepose: true,
        }
    }

    /// Sets the variant.
    pub fn variant(mut self, v: Variant) -> Self {
        self.variant = v;
        self
    }

    /// Sets the emulator backend for the "real run".
    pub fn backend(mut self, backend: mario_cluster::EmulatorBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets tensor parallelism.
    pub fn tp(mut self, tp: u32) -> Self {
        self.tp = tp;
        self
    }

    /// Effective micro-batch size after the variant adjustment.
    pub fn effective_mbs(&self) -> u32 {
        match self.variant {
            Variant::Lmbs => self.mbs * 2,
            _ => self.mbs,
        }
    }

    /// Micro-batches per pipeline per iteration.
    pub fn micros(&self) -> u32 {
        let denom = self.dp * self.effective_mbs();
        assert!(
            self.gbs.is_multiple_of(denom),
            "gbs {} not divisible by dp*mbs = {denom}",
            self.gbs
        );
        self.gbs / denom
    }

    /// Short label like `V-ovlp`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.scheme.shape_letter(), self.variant.label())
    }
}

/// The measured outcome of one experiment point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigResult {
    /// `V-ovlp`-style label.
    pub label: String,
    /// Effective micro-batch size used.
    pub micro_bs: u32,
    /// Global batch size.
    pub global_bs: u32,
    /// Cluster throughput, samples/s.
    pub throughput: f64,
    /// Iteration time, ns.
    pub iter_ns: u64,
    /// Per-device peak memory, bytes.
    pub per_device_peak: Vec<u64>,
    /// Whether the config exceeds device memory.
    pub oom: bool,
    /// True when the number comes from the simulator because the real run
    /// would OOM (the paper's underlined values) or emulation was skipped.
    pub estimated: bool,
}

impl ConfigResult {
    /// `[min, max]` peak memory.
    pub fn mem_range(&self) -> (u64, u64) {
        (
            self.per_device_peak.iter().copied().min().unwrap_or(0),
            self.per_device_peak.iter().copied().max().unwrap_or(0),
        )
    }
}

/// Channel buffer depth a scheme needs under blocking p2p. The
/// closed-form GPipe/1F1B/Interleave orders are single-buffer safe; the
/// engine-derived bidirectional and wave orders need double buffering at
/// larger scales (their greedy merge can hold two sends in flight on one
/// link before the receiver drains — real Chimera/Hanayo runtimes use
/// eager/batched p2p, which our depth-2 buffer models).
pub fn channel_capacity(scheme: SchemeKind) -> usize {
    match scheme {
        SchemeKind::Wave { .. } | SchemeKind::Chimera | SchemeKind::ZeroBubbleV => 2,
        _ => 1,
    }
}

/// Critical-path report for an already-built schedule: simulate under
/// `cost` and attribute every nanosecond of the makespan.
pub fn critical_path_of(
    schedule: &Schedule,
    cost: &dyn CostModel,
    channel_capacity: usize,
) -> CritReport {
    let t = simulate_timeline(schedule, cost, channel_capacity).expect("schedule simulates");
    analyze(schedule, &t.spans)
}

/// The representative critical-path report a bench's `--json` summary
/// publishes: the bench's headline (scheme, depth, micro-count) under
/// `cost`, generated untuned, simulated, and analyzed. Bins attach it
/// via [`crate::summary::RunSummary::attach_critical_path`].
pub fn headline_critical_path(
    scheme: SchemeKind,
    devices: u32,
    micros: u32,
    cost: &dyn CostModel,
) -> CritReport {
    let schedule = generate(ScheduleConfig::new(scheme, devices, micros));
    critical_path_of(&schedule, cost, channel_capacity(scheme))
}

/// [`headline_critical_path`] on the paper's unit grid (every kernel
/// `t`, zero comm cost) — the attribution the closed-form benches
/// publish.
pub fn unit_critical_path(scheme: SchemeKind, devices: u32, micros: u32) -> CritReport {
    headline_critical_path(scheme, devices, micros, &mario_ir::UnitCost::paper_grid())
}

/// [`headline_critical_path`] under the analytic cost model of a pure
/// pipeline (`model` on A100-40G, depth `pp`, micro-batch size `mbs`) —
/// the attribution the model-driven benches publish.
pub fn analytic_critical_path(
    model: ModelConfig,
    scheme: SchemeKind,
    pp: u32,
    micros: u32,
    mbs: u32,
) -> CritReport {
    let gpu = GpuSpec::a100_40g();
    let topo = Topology::new(scheme, pp);
    let setup = TrainSetup::pipeline(model, gpu, topo, mbs);
    let cost = AnalyticCost::new(&setup);
    headline_critical_path(scheme, pp, micros, &cost)
}

/// Runs one experiment point end to end.
pub fn run_config(cfg: &ExpConfig) -> ConfigResult {
    let micros = cfg.micros();
    let mbs = cfg.effective_mbs();
    let topo = Topology::new(cfg.scheme, cfg.pp);
    let setup = TrainSetup::pipeline(cfg.model.clone(), cfg.gpu.clone(), topo, mbs)
        .with_tp(cfg.tp)
        .with_dp(cfg.dp);
    let cost = AnalyticCost::new(&setup);
    let cap = channel_capacity(cfg.scheme);
    let mut schedule = generate(
        ScheduleConfig::new(cfg.scheme, cfg.pp, micros).allreduce(cfg.dp > 1),
    );
    match cfg.variant {
        Variant::Base => {}
        Variant::Ckpt => {
            run_graph_tuner(&mut schedule, &cost, GraphTunerOptions::ckpt_only());
        }
        Variant::Ovlp | Variant::Lmbs => {
            run_graph_tuner(
                &mut schedule,
                &cost,
                GraphTunerOptions {
                    prepose: cfg.prepose,
                    prepose_opts: PreposeOptions {
                        channel_capacity: cap,
                        mem_capacity: Some(cfg.mem_capacity),
                        max_rounds: 2,
                    },
                    ..GraphTunerOptions::mario()
                },
            );
        }
    }

    let mem = simulate_memory(&schedule, &cost, Some(cfg.mem_capacity));
    let oom = !mem.fits(cfg.mem_capacity);

    let (iter_ns, estimated) = if oom || !cfg.use_emulator {
        let t = simulate_timeline(&schedule, &cost, cap).expect("schedule simulates");
        (t.total_ns, true)
    } else {
        let report = mario_cluster::run(
            &schedule,
            &cost,
            mario_cluster::EmulatorConfig {
                channel_capacity: cap,
                jitter: cfg.jitter,
                mem_capacity: Some(cfg.mem_capacity),
                backend: cfg.backend,
                ..Default::default()
            },
        )
        .expect("feasible schedule executes");
        (report.iter_ns, false)
    };

    let dp_eff = 0.97f64.powf((cfg.dp as f64).log2());
    // OOM configs keep their simulator-estimated throughput (the paper's
    // underlined values); `estimated` already marks them.
    let throughput = cfg.gbs as f64 / (iter_ns as f64 / 1e9) * dp_eff;

    ConfigResult {
        label: cfg.label(),
        micro_bs: mbs,
        global_bs: cfg.gbs,
        throughput,
        iter_ns,
        per_device_peak: mem.peak,
        oom,
        estimated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(variant: Variant) -> ExpConfig {
        ExpConfig::pipeline(ModelConfig::gpt3_1_6b(), SchemeKind::OneFOneB, 4, 2, 32)
            .variant(variant)
    }

    #[test]
    fn variant_ordering_holds_at_small_scale() {
        // base > ovlp > ckpt in throughput; lmbs >= ovlp.
        let base = run_config(&tiny(Variant::Base));
        let ckpt = run_config(&tiny(Variant::Ckpt));
        let ovlp = run_config(&tiny(Variant::Ovlp));
        let lmbs = run_config(&tiny(Variant::Lmbs));
        assert!(base.throughput > ckpt.throughput);
        assert!(ovlp.throughput > ckpt.throughput);
        assert!(lmbs.throughput > ovlp.throughput);
        assert!(!base.oom && !lmbs.oom);
    }

    #[test]
    fn checkpointing_flattens_memory() {
        let base = run_config(&tiny(Variant::Base));
        let ovlp = run_config(&tiny(Variant::Ovlp));
        let (bmin, bmax) = base.mem_range();
        let (omin, omax) = ovlp.mem_range();
        assert!(omax < bmax, "ovlp {omax} vs base {bmax}");
        // Imbalance shrinks dramatically.
        assert!((omax - omin) < (bmax - bmin));
    }

    #[test]
    fn event_backend_reproduces_the_thread_run() {
        // Same point, same jitter seed, different executor: the numbers
        // the tables print must not depend on the backend flag.
        let thread = run_config(&tiny(Variant::Ovlp));
        let event =
            run_config(&tiny(Variant::Ovlp).backend(mario_cluster::EmulatorBackend::Event));
        assert_eq!(thread.iter_ns, event.iter_ns);
        assert_eq!(thread.throughput, event.throughput);
        assert_eq!(thread.per_device_peak, event.per_device_peak);
        assert!(!event.estimated);
    }

    #[test]
    fn lmbs_halves_micro_count() {
        let c = tiny(Variant::Lmbs);
        assert_eq!(c.effective_mbs(), 4);
        assert_eq!(c.micros(), 8);
    }

    #[test]
    fn labels() {
        assert_eq!(tiny(Variant::Ovlp).label(), "V-ovlp");
        assert_eq!(
            ExpConfig::pipeline(ModelConfig::gpt3_1_6b(), SchemeKind::Chimera, 4, 2, 32)
                .variant(Variant::Lmbs)
                .label(),
            "X-lmbs"
        );
    }
}
