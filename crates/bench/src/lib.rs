//! # mario-bench — the experiment harness
//!
//! Reproduces every table and figure of the Mario paper's evaluation (§6)
//! against the emulated cluster:
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `table1` | Table 1 — memory footprint across schemes |
//! | `fig1` | Fig. 1 — scheme development / relative throughput |
//! | `fig2` | Fig. 2 — the 21t→28t→25t→23t→22t step-by-step example |
//! | `fig6` | Fig. 6 — throughput, small models, 8 GPUs |
//! | `table5` | Table 5 — 13B models, 32 GPUs, memory + throughput |
//! | `fig7` | Fig. 7 — per-device peak memory |
//! | `fig8` | Fig. 8 — model-parameter scaling until OOM |
//! | `fig9` | Fig. 9 — sequence-length scaling until OOM |
//! | `fig10` | Fig. 10 — simulator accuracy (MAPE, partial order) |
//! | `fig11` | Fig. 11 — 64-GPU tuning curve |
//! | `ablation` | §7.1 partition ramp + per-pass ablation |
//! | `chaos` | (robustness, not in paper) seeded single-fault injection sweep |
//! | `degraded` | (robustness, not in paper) degraded-mode prediction: simulator vs. emulator under stragglers |
//! | `ckptshard` | (robustness, not in paper) sharded checkpoint writes: sync vs bubble-overlapped |
//!
//! Every binary accepts `--json`, writing a machine-readable
//! `results/<bench>.json` sibling of its rendered artifact (see
//! [`summary`]).

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod summary;
pub mod table;

pub use harness::{
    analytic_critical_path, channel_capacity, critical_path_of, headline_critical_path,
    run_config, unit_critical_path, ConfigResult, ExpConfig, Variant,
};
pub use summary::{critical_path_json, json_requested, JsonObj, RunSummary};
pub use table::{gb, gb_range, Table};
