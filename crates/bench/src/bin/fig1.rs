//! Regenerates Fig. 1 (pipeline scheme development). Pass `--json` for a
//! machine-readable `results/fig1.json`.
fn main() {
    use mario_bench::{summary, JsonObj, RunSummary};
    let rows = mario_bench::experiments::fig1::run();
    println!("{}", mario_bench::experiments::fig1::render(&rows));
    if summary::json_requested() {
        let best = rows.iter().map(|r| r.throughput).fold(0.0, f64::max);
        let mut s = RunSummary::new("fig1").metric("best_throughput", best);
        for r in &rows {
            s.push_row(
                JsonObj::new()
                    .str("scheme", &r.scheme)
                    .num("throughput", r.throughput)
                    .num("speedup_vs_gpipe", r.speedup_vs_gpipe)
                    .num("bubble_ratio", r.bubble_ratio),
            );
        }
        s.attach_critical_path(&mario_bench::unit_critical_path(
            mario_ir::SchemeKind::OneFOneB,
            4,
            8,
        ));
        summary::emit(&s);
    }
}
