//! Regenerates Fig. 1 (pipeline scheme development).
fn main() {
    let rows = mario_bench::experiments::fig1::run();
    println!("{}", mario_bench::experiments::fig1::render(&rows));
}
