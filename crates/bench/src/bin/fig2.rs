//! Regenerates Fig. 2 (the near zero-cost checkpointing steps).
fn main() {
    let steps = mario_bench::experiments::fig2::run();
    println!("{}", mario_bench::experiments::fig2::render(&steps));
}
