//! Regenerates Fig. 2 (the near zero-cost checkpointing steps). Pass
//! `--json` for a machine-readable `results/fig2.json`.
fn main() {
    use mario_bench::{summary, JsonObj, RunSummary};
    let steps = mario_bench::experiments::fig2::run();
    println!("{}", mario_bench::experiments::fig2::render(&steps));
    if summary::json_requested() {
        let exact = steps.iter().filter(|s| s.measured_t == s.paper_t).count();
        let mut s =
            RunSummary::new("fig2").metric("steps_matching_paper", exact as f64);
        for st in &steps {
            s.push_row(
                JsonObj::new()
                    .int("step", st.step)
                    .str("what", &st.what)
                    .int("measured_t", st.measured_t)
                    .int("paper_t", st.paper_t),
            );
        }
        s.attach_critical_path(&mario_bench::unit_critical_path(
            mario_ir::SchemeKind::OneFOneB,
            4,
            4,
        ));
        summary::emit(&s);
    }
}
