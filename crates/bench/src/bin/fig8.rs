//! Regenerates Fig. 8 (model-parameter scaling).
fn main() {
    let points = mario_bench::experiments::fig8::run();
    println!("{}", mario_bench::experiments::fig8::render(&points));
}
