//! Regenerates Fig. 8 (model-parameter scaling). Pass `--json` for a
//! machine-readable `results/fig8.json`.
fn main() {
    use mario_bench::{summary, JsonObj, RunSummary};
    let points = mario_bench::experiments::fig8::run();
    println!("{}", mario_bench::experiments::fig8::render(&points));
    if summary::json_requested() {
        let largest = points.iter().map(|p| p.max_params).max().unwrap_or(0);
        let mut s = RunSummary::new("fig8").metric("largest_params", largest as f64);
        for p in &points {
            s.push_row(
                JsonObj::new()
                    .str("label", &p.label)
                    .int("max_hidden", p.max_hidden)
                    .int("max_params", p.max_params)
                    .num("throughput", p.throughput),
            );
        }
        s.attach_critical_path(&mario_bench::analytic_critical_path(
            mario_model::ModelConfig::gpt3_1_6b(),
            mario_ir::SchemeKind::OneFOneB,
            8,
            16,
            2,
        ));
        summary::emit(&s);
    }
}
