//! Zero-bubble headline bench: the unit-grid closed-form gate
//! (1F1B = (3m+3(p−1))t, ZB-H1 = (3m+2(p−1))t, strict bubble inequality,
//! all integer arithmetic) plus the analytic 1F1B / ZB-H1 / ZB-V sweep on
//! GPT3-1.6B. Exits non-zero if any closed form is violated or if ZB-H1's
//! measured bubble ratio is not strictly below 1F1B's. Pass `--smoke` for
//! the trimmed CI run and `--json` for `results/zb.json`.
fn main() {
    use mario_bench::experiments::zb;
    use mario_bench::{summary, JsonObj, RunSummary};
    let smoke = std::env::args().any(|a| a == "--smoke");

    let gate = zb::closed_form();
    println!("{}", zb::render_closed_form(&gate));
    let rows = zb::run(smoke);
    println!("{}", zb::render(&rows));

    let v = rows.iter().find(|r| r.scheme == "OneFOneB");
    let z = rows.iter().find(|r| r.scheme == "ZeroBubbleH1");
    let analytic_ok = match (v, z) {
        (Some(v), Some(z)) => z.bubble_ratio < v.bubble_ratio && z.throughput > v.throughput,
        _ => false,
    };
    if summary::json_requested() {
        let mut s = RunSummary::new("zb")
            .metric("closed_form_ok", gate.iter().filter(|r| r.ok).count() as f64)
            .metric("closed_form_total", gate.len() as f64)
            .metric("analytic_ok", if analytic_ok { 1.0 } else { 0.0 });
        for r in &gate {
            s.push_row(
                JsonObj::new()
                    .str("kind", "closed_form")
                    .int("p", r.p)
                    .int("m", r.m)
                    .int("v_ns", r.v_ns)
                    .int("v_expect_ns", r.v_expect_ns)
                    .int("zb_ns", r.zb_ns)
                    .int("zb_expect_ns", r.zb_expect_ns)
                    .num("v_bubble", r.v_bubble)
                    .num("zb_bubble", r.zb_bubble)
                    .bool("ok", r.ok),
            );
        }
        for r in &rows {
            s.push_row(
                JsonObj::new()
                    .str("kind", "analytic")
                    .str("scheme", &r.scheme)
                    .int("iter_ns", r.iter_ns)
                    .num("throughput", r.throughput)
                    .num("bubble_ratio", r.bubble_ratio)
                    .int("peak_min", r.peak_mem.0)
                    .int("peak_max", r.peak_mem.1),
            );
        }
        s.attach_critical_path(&mario_bench::unit_critical_path(
            mario_ir::SchemeKind::ZeroBubbleH1,
            4,
            8,
        ));
        summary::emit(&s);
    }
    if gate.iter().any(|r| !r.ok) || !analytic_ok {
        std::process::exit(1);
    }
}
