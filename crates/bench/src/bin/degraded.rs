//! Degraded-mode prediction sweep: simulator vs. emulator under
//! straggler faults across V/X/W. Exits non-zero if any scenario's
//! prediction diverges from the zero-jitter emulation. Pass `--smoke`
//! for a single-scenario CI run.
fn main() {
    use mario_bench::experiments::degraded;
    let smoke = std::env::args().any(|a| a == "--smoke");
    let factors: &[f64] = if smoke { &[4.0] } else { &degraded::FULL_FACTORS };
    let rows = degraded::run_sweep(factors);
    println!("{}", degraded::render(&rows));
    if rows.iter().any(|r| !r.ok) {
        std::process::exit(1);
    }
}
