//! Degraded-mode prediction sweep: simulator vs. emulator under
//! straggler faults across V/X/W. Exits non-zero if any scenario's
//! prediction diverges from the zero-jitter emulation. Pass `--smoke`
//! for a single-scenario CI run and `--json` for a machine-readable
//! `results/degraded.json`.
fn main() {
    use mario_bench::experiments::degraded;
    use mario_bench::{summary, JsonObj, RunSummary};
    let smoke = std::env::args().any(|a| a == "--smoke");
    let factors: &[f64] = if smoke { &[4.0] } else { &degraded::FULL_FACTORS };
    let rows = degraded::run_sweep(factors);
    println!("{}", degraded::render(&rows));
    if summary::json_requested() {
        let ok = rows.iter().filter(|r| r.ok).count();
        let mut s = RunSummary::new("degraded")
            .metric("scenarios_total", rows.len() as f64)
            .metric("scenarios_ok", ok as f64);
        for r in &rows {
            s.push_row(
                JsonObj::new()
                    .str("scheme", &r.scheme)
                    .num("factor", r.factor)
                    .int("base_ns", r.base_ns)
                    .int("predicted_ns", r.predicted_ns)
                    .int("emulated_ns", r.emulated_ns)
                    .num("predicted_slowdown", r.predicted_slowdown)
                    .num("emulated_slowdown", r.emulated_slowdown)
                    .bool("ok", r.ok),
            );
        }
        s.attach_critical_path(&mario_bench::unit_critical_path(
            mario_ir::SchemeKind::OneFOneB,
            4,
            8,
        ));
        summary::emit(&s);
    }
    if rows.iter().any(|r| !r.ok) {
        std::process::exit(1);
    }
}
