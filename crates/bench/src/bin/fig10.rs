//! Regenerates Fig. 10 (simulator accuracy).
fn main() {
    let acc = mario_bench::experiments::fig10::run();
    println!("{}", mario_bench::experiments::fig10::render(&acc));
}
