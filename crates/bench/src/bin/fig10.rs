//! Regenerates Fig. 10 (simulator accuracy). Pass `--json` for a
//! machine-readable `results/fig10.json`.
fn main() {
    use mario_bench::{summary, JsonObj, RunSummary};
    let acc = mario_bench::experiments::fig10::run();
    println!("{}", mario_bench::experiments::fig10::render(&acc));
    if summary::json_requested() {
        let mut s = RunSummary::new("fig10")
            .metric("tput_mape_pct", acc.tput_mape)
            .metric("mem_mape_pct", acc.mem_mape)
            .metric("order_concordance", acc.order_concordance);
        for p in &acc.points {
            s.push_row(
                JsonObj::new()
                    .str("label", &p.label)
                    .num("real_tp", p.real_tp)
                    .num("est_tp", p.est_tp)
                    .int("real_mem", p.real_mem)
                    .int("est_mem", p.est_mem),
            );
        }
        s.attach_critical_path(&mario_bench::analytic_critical_path(
            mario_model::ModelConfig::gpt3_1_6b(),
            mario_ir::SchemeKind::OneFOneB,
            4,
            16,
            2,
        ));
        summary::emit(&s);
    }
}
