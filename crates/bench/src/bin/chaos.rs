//! Chaos sweep: seeded single-fault injection across V/X/W. Exits
//! non-zero if any scenario violates the terminate-attribute-reproduce
//! invariant. Pass `--smoke` for a single-seed CI run.
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rows = mario_bench::experiments::chaos::run(if smoke { 1 } else { 16 });
    println!("{}", mario_bench::experiments::chaos::render(&rows));
    if rows.iter().any(|r| !r.ok) {
        std::process::exit(1);
    }
}
