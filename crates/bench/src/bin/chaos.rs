//! Chaos sweep: seeded single-fault injection across V/X/W, then a
//! correlated rack-failure sweep with checkpoint-restart recovery. Exits
//! non-zero if any scenario violates its invariant
//! (terminate-attribute-reproduce; for correlated scenarios additionally
//! resume-beats-restart). Pass `--smoke` for a single-seed CI run and
//! `--json` for a machine-readable `results/chaos.json`.
fn main() {
    use mario_bench::experiments::chaos;
    use mario_bench::{summary, JsonObj, RunSummary};
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rows = chaos::run(if smoke { 1 } else { 16 });
    println!("{}", chaos::render(&rows));
    let correlated = chaos::run_correlated(if smoke { 1 } else { 8 });
    println!("{}", chaos::render_correlated(&correlated));
    if summary::json_requested() {
        let total = rows.len() + correlated.len();
        let ok = rows.iter().filter(|r| r.ok).count()
            + correlated.iter().filter(|r| r.ok).count();
        let mut s = RunSummary::new("chaos")
            .metric("scenarios_total", total as f64)
            .metric("scenarios_ok", ok as f64);
        for r in &rows {
            s.push_row(
                JsonObj::new()
                    .str("kind", "single")
                    .str("scheme", &r.scheme)
                    .int("seed", r.seed)
                    .str("fault", &r.fault)
                    .str("outcome", &r.outcome)
                    .bool("ok", r.ok),
            );
        }
        for r in &correlated {
            s.push_row(
                JsonObj::new()
                    .str("kind", "correlated")
                    .str("scheme", &r.scheme)
                    .int("seed", r.seed)
                    .str("group", &r.group)
                    .int("faults", r.faults as u64)
                    .int("fault_iter", r.fault_iter)
                    .int("restart_ns", r.restart_ns)
                    .int("resume_ns", r.resume_ns)
                    .int("resumed_from", r.resumed_from)
                    .str("outcome", &r.outcome)
                    .bool("ok", r.ok),
            );
        }
        s.attach_critical_path(&mario_bench::unit_critical_path(
            mario_ir::SchemeKind::OneFOneB,
            4,
            8,
        ));
        summary::emit(&s);
    }
    if rows.iter().any(|r| !r.ok) || correlated.iter().any(|r| !r.ok) {
        std::process::exit(1);
    }
}
