//! Chaos sweep: seeded single-fault injection across V/X/W, then a
//! correlated rack-failure sweep with checkpoint-restart recovery. Exits
//! non-zero if any scenario violates its invariant
//! (terminate-attribute-reproduce; for correlated scenarios additionally
//! resume-beats-restart). Pass `--smoke` for a single-seed CI run.
fn main() {
    use mario_bench::experiments::chaos;
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rows = chaos::run(if smoke { 1 } else { 16 });
    println!("{}", chaos::render(&rows));
    let correlated = chaos::run_correlated(if smoke { 1 } else { 8 });
    println!("{}", chaos::render_correlated(&correlated));
    if rows.iter().any(|r| !r.ok) || correlated.iter().any(|r| !r.ok) {
        std::process::exit(1);
    }
}
