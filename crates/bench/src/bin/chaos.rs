//! Chaos sweep: seeded single-fault injection across V/X/W. Exits
//! non-zero if any scenario violates the terminate-attribute-reproduce
//! invariant.
fn main() {
    let rows = mario_bench::experiments::chaos::run(16);
    println!("{}", mario_bench::experiments::chaos::render(&rows));
    if rows.iter().any(|r| !r.ok) {
        std::process::exit(1);
    }
}
