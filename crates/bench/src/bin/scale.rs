//! Event-backend scaling sweep: 512–4096-device rack-aware clusters the
//! thread-per-device backend cannot spawn. Exits non-zero unless every
//! point matches the 1F1B closed form and the rack wires strictly
//! lengthen the makespan. Pass `--smoke` for the 512-device CI point and
//! `--json` for a machine-readable `results/scale.json`.
fn main() {
    use mario_bench::experiments::scale;
    use mario_bench::{summary, JsonObj, RunSummary};
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rows = scale::run_sweep(smoke);
    println!("{}", scale::render(&rows));
    if summary::json_requested() {
        let max_devices = rows.iter().map(|r| r.devices).max().unwrap_or(0);
        let rate = rows.iter().map(|r| r.mi_per_s).fold(0.0, f64::max);
        let mut s = RunSummary::new("scale")
            .metric("max_devices", max_devices as f64)
            .metric("peak_minstr_per_s", rate);
        for r in &rows {
            s.push_row(
                JsonObj::new()
                    .int("devices", r.devices)
                    .int("micros", r.micros)
                    .int("instrs", r.instrs)
                    .int("flat_ns", r.flat_ns)
                    .int("expect_ns", r.expect_ns)
                    .int("rack_ns", r.rack_ns)
                    .int("wall_ms", r.wall_ms)
                    .num("mi_per_s", r.mi_per_s),
            );
        }
        s.attach_critical_path(&mario_bench::unit_critical_path(
            mario_ir::SchemeKind::OneFOneB,
            32,
            64,
        ));
        summary::emit(&s);
    }
    if !scale::sound(&rows) {
        std::process::exit(1);
    }
}
