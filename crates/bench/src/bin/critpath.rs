//! Critical-path profiler bench: sweeps every scheme × checkpoint mode
//! and gates the analyzer's exact invariants — the path tiles the
//! makespan bit for bit, on-path ops have zero slack (exactly the
//! zero-slack set for ZB-H1), the what-if engine matches ground-truth
//! re-simulation on a perturbation grid, 1F1B's path is `(p−1)·t` longer
//! than ZB-H1's, and the span graph is bit-identical across all three
//! executors. Exits non-zero on any violation. Pass `--smoke` for the
//! trimmed CI run and `--json` for `results/critpath.json`.
fn main() {
    use mario_bench::experiments::critpath;
    use mario_bench::{summary, JsonObj, RunSummary};
    let smoke = std::env::args().any(|a| a == "--smoke");

    let paths = critpath::path_sweep(smoke);
    println!("{}", critpath::render(&paths));
    let whatifs = critpath::whatif_grid(smoke);
    println!("{}", critpath::render_whatif(&whatifs));
    let gaps = critpath::closed_form_gap();
    let parity = critpath::backend_parity(smoke);
    println!("{}", critpath::render_gap(&gaps, &parity));

    let all_ok = paths.iter().all(|r| r.ok)
        && whatifs.iter().all(|r| r.ok)
        && gaps.iter().all(|r| r.ok)
        && parity.iter().all(|(_, ok)| *ok);
    if summary::json_requested() {
        let mut s = RunSummary::new("critpath")
            .metric("path_points", paths.len() as f64)
            .metric(
                "path_points_ok",
                paths.iter().filter(|r| r.ok).count() as f64,
            )
            .metric("whatif_points", whatifs.len() as f64)
            .metric(
                "whatif_points_ok",
                whatifs.iter().filter(|r| r.ok).count() as f64,
            )
            .metric("gap_points_ok", gaps.iter().filter(|r| r.ok).count() as f64)
            .metric("gap_points", gaps.len() as f64)
            .metric(
                "parity_points_ok",
                parity.iter().filter(|(_, ok)| *ok).count() as f64,
            )
            .metric("parity_points", parity.len() as f64);
        for r in &paths {
            s.push_row(
                JsonObj::new()
                    .str("kind", "path")
                    .str("scheme", &r.scheme)
                    .str("ckpt", &r.ckpt)
                    .int("makespan_ns", r.makespan_ns)
                    .int("path_ns", r.path_ns)
                    .int("segments", r.segments as u64)
                    .int("compute_ns", r.compute_ns)
                    .int("comm_ns", r.comm_ns)
                    .int("ckpt_ns", r.ckpt_ns)
                    .int("on_path_ops", r.on_path_ops as u64)
                    .int("zero_slack_ops", r.zero_slack_ops as u64)
                    .bool("ok", r.ok),
            );
        }
        for r in &whatifs {
            s.push_row(
                JsonObj::new()
                    .str("kind", "whatif")
                    .str("scheme", &r.scheme)
                    .str("scenario", &r.scenario)
                    .int("predicted_ns", r.predicted_ns)
                    .int("truth_ns", r.truth_ns)
                    .bool("ok", r.ok),
            );
        }
        for r in &gaps {
            s.push_row(
                JsonObj::new()
                    .str("kind", "gap")
                    .int("p", r.p)
                    .int("m", r.m)
                    .int("v_path_ns", r.v_path_ns)
                    .int("zb_path_ns", r.zb_path_ns)
                    .int("gap_ns", r.gap_ns)
                    .int("expect_ns", r.expect_ns)
                    .bool("ok", r.ok),
            );
        }
        for (label, ok) in &parity {
            s.push_row(
                JsonObj::new()
                    .str("kind", "parity")
                    .str("point", label)
                    .bool("ok", *ok),
            );
        }
        s.attach_critical_path(&mario_bench::unit_critical_path(
            mario_ir::SchemeKind::ZeroBubbleH1,
            4,
            8,
        ));
        summary::emit(&s);
    }
    if !all_ok {
        std::process::exit(1);
    }
}
