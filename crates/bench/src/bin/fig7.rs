//! Regenerates Fig. 7 (per-device peak memory).
fn main() {
    for (title, rows) in mario_bench::experiments::fig7::run() {
        println!("{}", mario_bench::experiments::fig7::render(&title, &rows));
    }
}
