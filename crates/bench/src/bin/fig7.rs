//! Regenerates Fig. 7 (per-device peak memory). Pass `--json` for a
//! machine-readable `results/fig7.json`.
fn main() {
    use mario_bench::{summary, JsonObj, RunSummary};
    let groups = mario_bench::experiments::fig7::run();
    for (title, rows) in &groups {
        println!("{}", mario_bench::experiments::fig7::render(title, rows));
    }
    if summary::json_requested() {
        let worst = groups
            .iter()
            .flat_map(|(_, rows)| rows.iter().map(|r| r.mem_range().1))
            .max()
            .unwrap_or(0);
        let mut s = RunSummary::new("fig7").metric("worst_peak_bytes", worst as f64);
        for (title, rows) in &groups {
            for r in rows {
                let (mem_min, mem_max) = r.mem_range();
                s.push_row(
                    JsonObj::new()
                        .str("config", title)
                        .str("label", &r.label)
                        .int("peak_min", mem_min)
                        .int("peak_max", mem_max)
                        .bool("oom", r.oom),
                );
            }
        }
        s.attach_critical_path(&mario_bench::analytic_critical_path(
            mario_model::ModelConfig::gpt3_1_6b(),
            mario_ir::SchemeKind::OneFOneB,
            8,
            16,
            2,
        ));
        summary::emit(&s);
    }
}
