//! Sharded checkpoint-write sweep: synchronous flushes vs chunks drained
//! into pipeline bubbles, across V/X/W. Exits non-zero unless the async
//! overlap absorbs a strictly positive fraction of the write cost in at
//! least one scheme. Pass `--smoke` for a single-scheme CI run and
//! `--json` for a machine-readable `results/ckptshard.json`.
fn main() {
    use mario_bench::experiments::ckptshard;
    use mario_bench::{summary, JsonObj, RunSummary};
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rows = ckptshard::run_sweep(smoke);
    println!("{}", ckptshard::render(&rows));
    if summary::json_requested() {
        let best = rows
            .iter()
            .map(|r| r.absorbed_telemetry)
            .fold(0.0, f64::max);
        let mut s = RunSummary::new("ckptshard").metric("bubble_fraction", best);
        for r in &rows {
            s.push_row(
                JsonObj::new()
                    .str("scheme", &r.scheme)
                    .int("base_ns", r.base_ns)
                    .int("sync_ns", r.sync_ns)
                    .int("async_ns", r.async_ns)
                    .int("sync_paid", r.sync_paid)
                    .int("async_paid", r.async_paid)
                    .num("absorbed", r.absorbed)
                    .num("absorbed_telemetry", r.absorbed_telemetry)
                    .int("eff_sync_ns", r.eff_sync_ns)
                    .int("eff_async_ns", r.eff_async_ns)
                    .int("k_sync", r.k_sync)
                    .int("k_async", r.k_async),
            );
        }
        s.attach_critical_path(&mario_bench::unit_critical_path(
            mario_ir::SchemeKind::OneFOneB,
            4,
            8,
        ));
        summary::emit(&s);
    }
    if !rows.iter().any(|r| r.absorbed > 0.0) {
        std::process::exit(1);
    }
}
