//! Sharded checkpoint-write sweep: synchronous flushes vs chunks drained
//! into pipeline bubbles, across V/X/W. Exits non-zero unless the async
//! overlap absorbs a strictly positive fraction of the write cost in at
//! least one scheme. Pass `--smoke` for a single-scheme CI run.
fn main() {
    use mario_bench::experiments::ckptshard;
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rows = ckptshard::run_sweep(smoke);
    println!("{}", ckptshard::render(&rows));
    if !rows.iter().any(|r| r.absorbed > 0.0) {
        std::process::exit(1);
    }
}
