//! Serving-latency sweep: forward-only fill–drain pipelines under
//! open-loop load, priced by the five training schemes' cost models,
//! pristine and under injected faults (crash, rack failure, straggler).
//! Exits non-zero if the fill–drain closed form `(m+p-1)·F` is violated,
//! if any scenario fails its invariant, or if p99 is not finite under an
//! injected rack failure. Pass `--smoke` for a single-load CI run and
//! `--json` for a machine-readable `results/serve.json`.
fn main() {
    use mario_bench::experiments::serve;
    use mario_bench::{summary, JsonObj, RunSummary};
    let smoke = std::env::args().any(|a| a == "--smoke");

    let gate = serve::closed_form();
    println!("{}", serve::render_closed_form(&gate));
    let rows = serve::run(smoke);
    println!("{}", serve::render(&rows));

    let rack_ok = rows
        .iter()
        .filter(|r| r.fault == "rack")
        .all(|r| r.ok && r.p99_ns > 0 && r.p99_ns < u64::MAX);
    if summary::json_requested() {
        let mut s = RunSummary::new("serve")
            .metric("closed_form_ok", gate.iter().filter(|r| r.ok).count() as f64)
            .metric("closed_form_total", gate.len() as f64)
            .metric("scenarios_total", rows.len() as f64)
            .metric(
                "scenarios_ok",
                rows.iter().filter(|r| r.ok).count() as f64,
            )
            .metric("rack_p99_finite", if rack_ok { 1.0 } else { 0.0 });
        for r in &gate {
            s.push_row(
                JsonObj::new()
                    .str("kind", "closed_form")
                    .int("p", r.p)
                    .int("m", r.m)
                    .int("total_ns", r.total_ns)
                    .int("expect_ns", r.expect_ns)
                    .num("bubble_fraction", r.bubble_fraction)
                    .bool("ok", r.ok),
            );
        }
        for r in &rows {
            s.push_row(
                JsonObj::new()
                    .str("kind", "sweep")
                    .str("scheme", &r.scheme)
                    .str("fault", &r.fault)
                    .num("load", r.load)
                    .int("requests", r.requests)
                    .int("completed", r.completed)
                    .int("deadline_misses", r.deadline_misses)
                    .int("retries", r.retries)
                    .int("attempts", r.attempts)
                    .int("faults_hit", r.faults_hit as u64)
                    .int("p50_ns", r.p50_ns)
                    .int("p99_ns", r.p99_ns)
                    .num("slo_attainment", r.slo_attainment)
                    .num("goodput_rps", r.goodput_rps)
                    .str("outcome", &r.outcome)
                    .bool("ok", r.ok),
            );
        }
        s.attach_critical_path(&mario_bench::unit_critical_path(
            mario_ir::SchemeKind::ForwardOnly,
            4,
            8,
        ));
        summary::emit(&s);
    }
    if gate.iter().any(|r| !r.ok) || rows.iter().any(|r| !r.ok) || !rack_ok {
        std::process::exit(1);
    }
}
