//! Regenerates Table 5 (13B models on 32 GPUs).
fn main() {
    for (model, rows) in mario_bench::experiments::table5::run() {
        println!("{}", mario_bench::experiments::table5::render(&model, &rows));
    }
}
