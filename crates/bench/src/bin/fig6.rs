//! Regenerates Fig. 6 (throughput on GPT3-1.6B / LLaMA2-3B, 8 GPUs).
//! Pass `--json` for a machine-readable `results/fig6.json`.
fn main() {
    use mario_bench::{summary, JsonObj, RunSummary};
    let groups = mario_bench::experiments::fig6::run();
    for (model, rows) in &groups {
        println!("{}", mario_bench::experiments::fig6::render(model, rows));
    }
    if summary::json_requested() {
        let best = groups
            .iter()
            .flat_map(|(_, rows)| rows.iter().map(|r| r.throughput))
            .fold(0.0, f64::max);
        let mut s = RunSummary::new("fig6").metric("best_throughput", best);
        for (model, rows) in &groups {
            for r in rows {
                s.push_row(
                    JsonObj::new()
                        .str("model", model)
                        .str("label", &r.label)
                        .int("micro_bs", r.micro_bs)
                        .num("throughput", r.throughput)
                        .int("iter_ns", r.iter_ns)
                        .int("peak_mem", r.mem_range().1)
                        .bool("oom", r.oom)
                        .bool("estimated", r.estimated),
                );
            }
        }
        s.attach_critical_path(&mario_bench::analytic_critical_path(
            mario_model::ModelConfig::gpt3_1_6b(),
            mario_ir::SchemeKind::OneFOneB,
            8,
            16,
            2,
        ));
        summary::emit(&s);
    }
}
