//! Regenerates Fig. 6 (throughput on GPT3-1.6B / LLaMA2-3B, 8 GPUs).
fn main() {
    for (model, rows) in mario_bench::experiments::fig6::run() {
        println!("{}", mario_bench::experiments::fig6::render(&model, &rows));
    }
}
