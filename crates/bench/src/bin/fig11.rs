//! Regenerates Fig. 11 (the 64-GPU tuning curve). Pass `--json` for a
//! machine-readable `results/fig11.json` including the tuner's
//! search-effort accounting.
fn main() {
    use mario_bench::{summary, JsonObj, RunSummary};
    let result = mario_bench::experiments::fig11::run(64, 2048);
    println!("{}", mario_bench::experiments::fig11::render(&result));
    if summary::json_requested() {
        let stats = &result.stats;
        let mut s = RunSummary::new("fig11")
            .metric("best_throughput", result.best.throughput)
            .metric("candidates_generated", stats.generated as f64)
            .metric("candidates_inadmissible", stats.inadmissible as f64)
            .metric("candidates_simulated", stats.simulated as f64)
            .metric("pruned_oom", stats.pruned_oom as f64)
            .metric("pruned_sim_failure", stats.pruned_sim_failure as f64)
            .metric("dp_invocations", stats.dp_invocations as f64)
            .metric("tuning_seconds", stats.wall_time.as_secs_f64());
        for e in &result.curve {
            s.push_row(
                JsonObj::new()
                    .str("config", &e.candidate.to_string())
                    .num("throughput", e.throughput)
                    .int("iter_ns", e.iter_ns)
                    .bool("oom", e.oom),
            );
        }
        // Explain the winner: re-time its schedule and attribute the
        // measured iteration time along the critical path.
        if let Some(report) = result.explain_best(
            &mario_model::ModelConfig::gpt3_13b(),
            &mario_model::GpuSpec::a100_40g(),
            &mario_bench::experiments::fig11::config(64, 2048),
        ) {
            s.attach_critical_path(&report);
        }
        summary::emit(&s);
    }
}
