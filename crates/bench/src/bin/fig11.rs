//! Regenerates Fig. 11 (the 64-GPU tuning curve).
fn main() {
    let result = mario_bench::experiments::fig11::run(64, 2048);
    println!("{}", mario_bench::experiments::fig11::render(&result));
}
