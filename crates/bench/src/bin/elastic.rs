//! Elastic-recovery sweep: a 4-device pipeline loses a device at a swept
//! iteration; shrink-and-continue answers wait-and-resume across all
//! five schemes, and a cascading sweep arms a second crash that fires on
//! the already-shrunk pipeline. Exits non-zero if any scenario violates
//! the elastic invariant (sim-exact tails, attributable redistribution,
//! conserved clocks, composable shrinks) or any scheme fails to cross
//! both policy regimes. Pass
//! `--smoke` for a two-point CI sweep and `--json` for a
//! machine-readable `results/elastic.json`.
fn main() {
    use mario_bench::experiments::elastic;
    use mario_bench::{summary, JsonObj, RunSummary};
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sweep = if smoke {
        elastic::smoke_sweep()
    } else {
        elastic::full_sweep()
    };
    let rows = elastic::run(&sweep);
    println!("{}", elastic::render(&rows));
    let cascades = elastic::run_cascades();
    println!("{}", elastic::render_cascades(&cascades));
    let schemes_crossed = elastic::schemes()
        .iter()
        .filter(|s| {
            let label = s.shape_letter();
            let mine: Vec<_> = rows.iter().filter(|r| r.scheme == label).cloned().collect();
            elastic::both_regimes(&mine)
        })
        .count();
    if summary::json_requested() {
        let ok = rows.iter().filter(|r| r.ok).count();
        let mut s = RunSummary::new("elastic")
            .metric("scenarios_total", rows.len() as f64)
            .metric("scenarios_ok", ok as f64)
            .metric("schemes_crossed", schemes_crossed as f64)
            .metric("cascades_total", cascades.len() as f64)
            .metric(
                "cascades_ok",
                cascades.iter().filter(|r| r.ok).count() as f64,
            );
        for r in &rows {
            let mut row = JsonObj::new()
                .str("scheme", &r.scheme)
                .int("fault_iter", r.fault_iter)
                .int("remaining", r.remaining)
                .int("wait_ns", r.wait_ns)
                .int("shrink_ns", r.shrink_ns)
                .int("replacement_wait_ns", r.replacement_wait_ns)
                .str("winner", &r.winner)
                .str("predicted", &r.predicted)
                .int("reconfig_ns", r.reconfig_ns)
                .int("telemetry_reconfig_ns", r.telemetry_reconfig_ns)
                .int("moved_bytes", r.moved_bytes)
                .int("shrunk_devices", r.shrunk_devices)
                .bool("ok", r.ok);
            if let Some(c) = r.crossover_remaining {
                row = row.int("crossover_remaining", c);
            }
            if !r.detail.is_empty() {
                row = row.str("detail", &r.detail);
            }
            s.push_row(row);
        }
        for r in &cascades {
            let mut row = JsonObj::new()
                .str("kind", "cascade")
                .str("scheme", &r.scheme)
                .int("first_iter", r.first_iter)
                .int("second_iter", r.second_iter)
                .int("attempts", r.attempts)
                .str("widths", &r.widths)
                .int("reconfigs", r.reconfigs as u64)
                .int("reconfig_ns", r.reconfig_ns)
                .int("resumed_from", r.resumed_from)
                .int("total_ns_with_replay", r.total_ns_with_replay)
                .bool("ok", r.ok);
            if !r.detail.is_empty() {
                row = row.str("detail", &r.detail);
            }
            s.push_row(row);
        }
        s.attach_critical_path(&mario_bench::unit_critical_path(
            mario_ir::SchemeKind::OneFOneB,
            4,
            8,
        ));
        summary::emit(&s);
    }
    if rows.iter().any(|r| !r.ok)
        || cascades.iter().any(|r| !r.ok)
        || schemes_crossed < elastic::schemes().len()
    {
        std::process::exit(1);
    }
}
