//! Regenerates the §7.1 partition ablation and the per-pass ablation.
//! Pass `--json` for a machine-readable `results/ablation.json` (rows
//! carry a `kind` field: `ramp` or `pass`).
fn main() {
    use mario_bench::{summary, JsonObj, RunSummary};
    let ramp = mario_bench::experiments::ablation::partition_ramp();
    let passes = mario_bench::experiments::ablation::pass_ablation();
    println!("{}", mario_bench::experiments::ablation::render(&ramp, &passes));
    if summary::json_requested() {
        let best_pass = passes.iter().map(|p| p.throughput).fold(0.0, f64::max);
        let mut s = RunSummary::new("ablation").metric("best_pass_throughput", best_pass);
        for p in &ramp {
            s.push_row(
                JsonObj::new()
                    .str("kind", "ramp")
                    .int("k", p.k)
                    .num("base_tp", p.base_tp)
                    .num("mario_tp", p.mario_tp),
            );
        }
        for p in &passes {
            s.push_row(
                JsonObj::new()
                    .str("kind", "pass")
                    .str("label", &p.label)
                    .num("throughput", p.throughput),
            );
        }
        s.attach_critical_path(&mario_bench::analytic_critical_path(
            mario_model::ModelConfig::gpt3_1_6b(),
            mario_ir::SchemeKind::OneFOneB,
            4,
            16,
            2,
        ));
        summary::emit(&s);
    }
}
