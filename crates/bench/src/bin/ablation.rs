//! Regenerates the §7.1 partition ablation and the per-pass ablation.
fn main() {
    let ramp = mario_bench::experiments::ablation::partition_ramp();
    let passes = mario_bench::experiments::ablation::pass_ablation();
    println!("{}", mario_bench::experiments::ablation::render(&ramp, &passes));
}
