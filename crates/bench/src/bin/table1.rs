//! Regenerates Table 1 (memory footprint across pipeline schemes). Pass
//! `--json` for a machine-readable `results/table1.json`.
fn main() {
    use mario_bench::{summary, JsonObj, RunSummary};
    let mut s = RunSummary::new("table1");
    let mut worst_mario = 0u64;
    for d in [4u32, 8, 16] {
        println!("D = {d}, N = {}:", 2 * d);
        let rows = mario_bench::experiments::table1::run(d);
        println!("{}", mario_bench::experiments::table1::render(&rows));
        for r in &rows {
            worst_mario = worst_mario.max(r.act_mario);
            s.push_row(
                JsonObj::new()
                    .int("devices", d)
                    .str("scheme", &r.scheme)
                    .int("weight_replicas", r.weight_replicas)
                    .int("act_min", r.act_range.0)
                    .int("act_max", r.act_range.1)
                    .int("paper_min", r.paper_range.0)
                    .int("paper_max", r.paper_range.1)
                    .int("act_mario", r.act_mario)
                    .int("paper_mario", r.paper_mario),
            );
        }
    }
    if summary::json_requested() {
        s.push_metric("worst_mario_peak_units", worst_mario as f64);
        s.attach_critical_path(&mario_bench::unit_critical_path(
            mario_ir::SchemeKind::OneFOneB,
            4,
            8,
        ));
        summary::emit(&s);
    }
}
