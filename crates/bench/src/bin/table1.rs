//! Regenerates Table 1 (memory footprint across pipeline schemes).
fn main() {
    for d in [4u32, 8, 16] {
        println!("D = {d}, N = {}:", 2 * d);
        let rows = mario_bench::experiments::table1::run(d);
        println!("{}", mario_bench::experiments::table1::render(&rows));
    }
}
