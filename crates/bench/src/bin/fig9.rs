//! Regenerates Fig. 9 (sequence-length scaling).
fn main() {
    let rows = mario_bench::experiments::fig9::run();
    println!("{}", mario_bench::experiments::fig9::render(&rows));
}
