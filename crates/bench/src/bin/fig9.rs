//! Regenerates Fig. 9 (sequence-length scaling). Pass `--json` for a
//! machine-readable `results/fig9.json`.
fn main() {
    use mario_bench::{summary, JsonObj, RunSummary};
    let rows = mario_bench::experiments::fig9::run();
    println!("{}", mario_bench::experiments::fig9::render(&rows));
    if summary::json_requested() {
        let longest = rows
            .iter()
            .filter_map(|(_, max)| *max)
            .max()
            .unwrap_or(0);
        let mut s = RunSummary::new("fig9").metric("longest_seqlen", longest as f64);
        for (cfg, max) in &rows {
            let row = JsonObj::new()
                .str("label", &cfg.label())
                .int("tp", cfg.tp)
                .bool("mario", cfg.mario);
            s.push_row(match max {
                Some(m) => row.int("max_seqlen", *m),
                None => row.raw("max_seqlen", "null".to_string()),
            });
        }
        s.attach_critical_path(&mario_bench::analytic_critical_path(
            mario_model::ModelConfig::gpt3_1_6b(),
            mario_ir::SchemeKind::OneFOneB,
            8,
            16,
            2,
        ));
        summary::emit(&s);
    }
}
