//! Figure 1 (context): the development of pipeline-parallelism schemes —
//! relative training throughput of GPipe → 1F1B → Chimera / Interleave /
//! wave on a common workload, plus their bubble ratios.

use crate::harness::channel_capacity;
use crate::table::Table;
use mario_core::simulator::simulate_timeline;
use mario_ir::{SchemeKind, Topology};
use mario_model::{AnalyticCost, GpuSpec, ModelConfig, TrainSetup};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};

/// One scheme's headline numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeNumbers {
    /// Scheme name.
    pub scheme: String,
    /// Throughput, samples/s.
    pub throughput: f64,
    /// Relative to GPipe.
    pub speedup_vs_gpipe: f64,
    /// Bubble fraction of total device time.
    pub bubble_ratio: f64,
}

/// Compares the schemes on GPT3-1.6B / 8 GPUs / gbs 64 / mbs 2.
pub fn run() -> Vec<SchemeNumbers> {
    let model = ModelConfig::gpt3_1_6b();
    let gpu = GpuSpec::a100_40g();
    // N = D: the regime the schemes' own papers illustrate (Chimera's
    // bidirectional overlap is designed for one round of D micro-batches).
    let gbs = 16u32;
    let mbs = 2u32;
    let micros = gbs / mbs;
    let mut out: Vec<SchemeNumbers> = Vec::new();
    let mut gpipe_tp = 0.0;
    for scheme in [
        SchemeKind::GPipe,
        SchemeKind::OneFOneB,
        SchemeKind::Chimera,
        SchemeKind::Interleave { chunks: 2 },
        SchemeKind::Wave { chunks: 2 },
    ] {
        let topo = Topology::new(scheme, 8);
        let setup = TrainSetup::pipeline(model.clone(), gpu.clone(), topo, mbs);
        let cost = AnalyticCost::new(&setup);
        let schedule = generate(ScheduleConfig::new(scheme, 8, micros));
        let t = simulate_timeline(&schedule, &cost, channel_capacity(scheme)).unwrap();
        let tp = t.throughput(gbs as u64);
        if matches!(scheme, SchemeKind::GPipe) {
            gpipe_tp = tp;
        }
        let total_device_time = t.total_ns * 8;
        out.push(SchemeNumbers {
            scheme: format!("{scheme:?}"),
            throughput: tp,
            speedup_vs_gpipe: tp / gpipe_tp,
            bubble_ratio: t.bubble_ns() as f64 / total_device_time as f64,
        });
    }
    out
}

/// Renders the comparison.
pub fn render(rows: &[SchemeNumbers]) -> String {
    let mut t = Table::new(&["Scheme", "Throughput", "vs GPipe", "Bubble ratio"]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            format!("{:.2}", r.throughput),
            format!("{:.2}x", r.speedup_vs_gpipe),
            format!("{:.1}%", r.bubble_ratio * 100.0),
        ]);
    }
    format!(
        "Pipeline scheme development (GPT3-1.6B, 8 GPUs, Fig. 1)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_schemes_do_not_regress_gpipe() {
        let rows = run();
        assert_eq!(rows.len(), 5);
        let gpipe = &rows[0];
        // The paper's lineage (1F1B, Chimera, Interleave). Our wave
        // extension is engine-derived rather than Hanayo's hand-tuned
        // action list, so it is reported but not asserted.
        for r in rows[1..4].iter() {
            assert!(
                r.throughput >= gpipe.throughput * 0.95,
                "{} slower than GPipe: {} vs {}",
                r.scheme,
                r.throughput,
                gpipe.throughput
            );
        }
    }

    #[test]
    fn chimera_has_lower_bubble_ratio_than_1f1b() {
        let rows = run();
        let v = rows.iter().find(|r| r.scheme == "OneFOneB").unwrap();
        let x = rows.iter().find(|r| r.scheme == "Chimera").unwrap();
        assert!(
            x.bubble_ratio < v.bubble_ratio,
            "X {} vs V {}",
            x.bubble_ratio,
            v.bubble_ratio
        );
    }
}
