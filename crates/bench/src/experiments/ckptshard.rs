//! Sharded checkpoint-write sweep: synchronous vs bubble-overlapped
//! async flushes across V, X and W.
//!
//! Not a paper artifact — the evaluation for the sharded
//! [`CheckpointPolicy`] write model. Every device flushes its own model
//! shard at each checkpoint boundary; the sweep compares three runs per
//! scheme:
//!
//! * **base** — no checkpointing (the bubble budget);
//! * **sync** — the shard flushed synchronously at the boundary;
//! * **async** — the same shard split into chunks that drain whenever
//!   the device would otherwise idle at a blocking recv, with only the
//!   residue charged synchronously.
//!
//! The headline number is the fraction of the synchronous write cost the
//! pipeline bubbles absorb: `1 − (async − base)/(sync − base)` on the
//! end-to-end makespan. The table also feeds the *effective* per-write
//! cost of each mode into the Young/Daly tuner — cheaper effective
//! writes justify tighter checkpoint intervals.

use crate::harness::channel_capacity;
use crate::table::Table;
use mario_cluster::{run, EmulatorConfig, RunReport};
use mario_core::tuner::{daly_interval, effective_write_ns};
use mario_ir::{CheckpointPolicy, SchemeKind, ShardedWrite, UnitCost};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};

/// Iterations per run; with [`INTERVAL`] this yields four checkpoints.
const ITERS: u32 = 8;
/// Checkpoint boundary every other iteration.
const INTERVAL: u32 = 2;
/// Bytes of model state each device flushes per checkpoint.
const SHARD_BYTES: u64 = 60_000;
/// Flush bandwidth, bytes/µs: a full shard costs 30 µs synchronously.
const FLUSH_BPUS: u64 = 2_000;
/// Chunk granularity: 500-byte chunks ⇒ 120 chunks of 250 ns per shard.
const CHUNK_BYTES: u64 = 500;

/// One scheme's sync-vs-async comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Scheme label (`V`, `X`, `W`).
    pub scheme: String,
    /// Checkpoint-free makespan, ns.
    pub base_ns: u64,
    /// Makespan with synchronous sharded writes, ns.
    pub sync_ns: u64,
    /// Makespan with bubble-overlapped writes, ns.
    pub async_ns: u64,
    /// Write time actually paid across devices, synchronous mode, ns.
    pub sync_paid: u64,
    /// Write time actually paid across devices, async mode, ns.
    pub async_paid: u64,
    /// Fraction of the synchronous makespan overhead the bubbles absorb.
    pub absorbed: f64,
    /// Fraction of the total chunk time the bubbles drained, read
    /// directly from the async run's flight recorder:
    /// `ckpt_absorbed / (ckpt_absorbed + ckpt_sync)`. Matches
    /// [`Row::absorbed`] when every drained chunk shortens the makespan
    /// (V, X); can exceed it when drains happen off the critical path (W).
    pub absorbed_telemetry: f64,
    /// Effective per-write cost on the critical path, synchronous, ns.
    pub eff_sync_ns: u64,
    /// Effective per-write cost on the critical path, async, ns.
    pub eff_async_ns: u64,
    /// Young/Daly interval tuned from the synchronous effective cost.
    pub k_sync: u32,
    /// Young/Daly interval tuned from the async effective cost.
    pub k_async: u32,
}

/// Runs the three-way comparison for one scheme.
fn compare(scheme: SchemeKind) -> Row {
    let s = generate(ScheduleConfig::new(scheme, 4, 8));
    let cost = UnitCost::paper_grid().with_shard_bytes(SHARD_BYTES);
    let cfg = EmulatorConfig {
        channel_capacity: channel_capacity(scheme),
        iterations: ITERS,
        ..Default::default()
    };
    let sharded = ShardedWrite::new(FLUSH_BPUS, CHUNK_BYTES);
    let exec = |checkpoint| -> RunReport {
        run(&s, &cost, EmulatorConfig { checkpoint, ..cfg }).expect("emulated run completes")
    };
    let base = exec(None);
    let sync = exec(Some(CheckpointPolicy::every(INTERVAL).with_sharded(sharded)));
    let asynced = exec(Some(
        CheckpointPolicy::every(INTERVAL).with_sharded(sharded.with_async_overlap()),
    ));

    let sync_over = sync.total_ns.saturating_sub(base.total_ns);
    let async_over = asynced.total_ns.saturating_sub(base.total_ns);
    let absorbed = if sync_over == 0 {
        0.0
    } else {
        1.0 - async_over as f64 / sync_over as f64
    };
    // The same figure read off the flight recorder instead of endpoint
    // deltas: drained chunk time over total chunk time in the async run.
    let drained = asynced.telemetry.total_ckpt_absorbed_ns();
    let paid = asynced.telemetry.total_ckpt_sync_ns();
    let absorbed_telemetry = if drained + paid == 0 {
        0.0
    } else {
        drained as f64 / (drained + paid) as f64
    };

    // Feed the *observed* per-write cost of each mode into Young/Daly
    // (one expected hard fault over the run): absorbed writes look
    // cheaper, so the tuner can afford tighter intervals.
    let writes = ITERS / INTERVAL;
    let eff_sync_ns = effective_write_ns(base.total_ns, sync.total_ns, writes);
    let eff_async_ns = effective_write_ns(base.total_ns, asynced.total_ns, writes);
    let lambda = 1.0 / ITERS as f64;
    let tune = |eff| daly_interval(base.iter_ns, eff, lambda, ITERS).unwrap_or(ITERS);
    Row {
        scheme: scheme.shape_letter().to_string(),
        base_ns: base.total_ns,
        sync_ns: sync.total_ns,
        async_ns: asynced.total_ns,
        sync_paid: sync.ckpt_overhead_ns,
        async_paid: asynced.ckpt_overhead_ns,
        absorbed,
        absorbed_telemetry,
        eff_sync_ns,
        eff_async_ns,
        k_sync: tune(eff_sync_ns),
        k_async: tune(eff_async_ns),
    }
}

/// Sweeps the comparison over V, X and W (`smoke`: V only).
pub fn run_sweep(smoke: bool) -> Vec<Row> {
    let schemes: &[SchemeKind] = if smoke {
        &[SchemeKind::OneFOneB]
    } else {
        &[
            SchemeKind::OneFOneB,
            SchemeKind::Chimera,
            SchemeKind::Interleave { chunks: 2 },
        ]
    };
    schemes.iter().map(|&s| compare(s)).collect()
}

/// Renders the comparison table and the headline verdict.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(&[
        "scheme", "base ns", "sync ns", "async ns", "paid sync", "paid async", "absorbed",
        "absorbed (tel)", "C_eff sync", "C_eff async", "k* sync", "k* async",
    ]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            r.base_ns.to_string(),
            r.sync_ns.to_string(),
            r.async_ns.to_string(),
            r.sync_paid.to_string(),
            r.async_paid.to_string(),
            format!("{:.0}%", r.absorbed * 100.0),
            format!("{:.0}%", r.absorbed_telemetry * 100.0),
            r.eff_sync_ns.to_string(),
            r.eff_async_ns.to_string(),
            r.k_sync.to_string(),
            r.k_async.to_string(),
        ]);
    }
    // Headline from the flight recorder — the per-chunk payment ledger —
    // with the endpoint-delta column alongside as the cross-check.
    let best = rows
        .iter()
        .map(|r| r.absorbed_telemetry)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut out = t.render();
    out.push_str(&format!(
        "\n**Headline:** pipeline bubbles absorb up to {:.0}% of the sharded \
         checkpoint write cost ({} writes of {} ns per device).\n",
        best * 100.0,
        ITERS / INTERVAL,
        ShardedWrite::new(FLUSH_BPUS, CHUNK_BYTES).flush_ns(SHARD_BYTES),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bubbles_absorb_write_cost_on_every_scheme() {
        for r in run_sweep(false) {
            // Overlap can only help: never slower than synchronous, never
            // cheaper than the checkpoint-free baseline.
            assert!(r.async_ns <= r.sync_ns, "{}: {} > {}", r.scheme, r.async_ns, r.sync_ns);
            assert!(r.async_ns >= r.base_ns, "{}", r.scheme);
            assert!(r.absorbed > 0.0, "{} absorbed nothing", r.scheme);
            // Bubble-absorbed chunks are unpaid, so the async run's summed
            // payments are strictly below the synchronous ones.
            assert!(r.async_paid < r.sync_paid, "{}", r.scheme);
            // Cheaper effective writes can only tighten the tuned interval.
            assert!(r.k_async <= r.k_sync, "{}", r.scheme);
        }
    }

    #[test]
    fn telemetry_absorbed_fraction_agrees_with_endpoint_deltas() {
        for r in run_sweep(false) {
            // The payment ledger can only see MORE absorption than the
            // makespan deltas: every endpoint nanosecond saved is a
            // drained chunk, but chunks drained off the critical path
            // save payment without moving the makespan (W).
            assert!(
                r.absorbed_telemetry >= r.absorbed - 1e-9,
                "{}: telemetry {} < endpoint {}",
                r.scheme,
                r.absorbed_telemetry,
                r.absorbed
            );
            assert!(r.absorbed_telemetry > 0.0 && r.absorbed_telemetry < 1.0, "{}", r.scheme);
            // The telemetry fraction IS the payment ratio: drained over
            // total chunk time, where the sync run pays everything.
            let expected = 1.0 - r.async_paid as f64 / r.sync_paid as f64;
            assert!(
                (r.absorbed_telemetry - expected).abs() < 1e-9,
                "{}: {} vs {}",
                r.scheme,
                r.absorbed_telemetry,
                expected
            );
        }
    }

    #[test]
    fn ckpt_overhead_equals_summed_sync_class() {
        // The RunReport's ckpt_overhead_ns and the telemetry's ckpt-sync
        // class are the same ledger — absorbed chunk time appears in the
        // ckpt-absorbed class only, never double-counted into either.
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let cost = UnitCost::paper_grid().with_shard_bytes(SHARD_BYTES);
        let cfg = EmulatorConfig {
            channel_capacity: 1,
            iterations: ITERS,
            ..Default::default()
        };
        let sharded = ShardedWrite::new(FLUSH_BPUS, CHUNK_BYTES);
        for policy in [
            None,
            Some(CheckpointPolicy::every(INTERVAL).with_sharded(sharded)),
            Some(CheckpointPolicy::every(INTERVAL).with_sharded(sharded.with_async_overlap())),
        ] {
            let report = run(
                &s,
                &cost,
                EmulatorConfig {
                    checkpoint: policy,
                    ..cfg
                },
            )
            .expect("run completes");
            assert_eq!(
                report.telemetry.total_ckpt_sync_ns(),
                report.ckpt_overhead_ns
            );
            report
                .telemetry
                .check_conservation(&report.device_clocks)
                .expect("time classes conserve");
        }
    }
}
