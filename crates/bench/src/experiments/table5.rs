//! Table 5: GPT3-13B and LLaMA2-13B on a 32-GPU pipeline — per-config
//! `[min, max]` peak memory and throughput. Configurations that exceed the
//! 40 GB device would OOM on hardware; like the paper (underlined values),
//! their throughput is estimated by the simulator while memory is always
//! fully accounted.

use crate::harness::{run_config, ConfigResult, ExpConfig, Variant};
use crate::table::{gb_range, Table};
use mario_ir::SchemeKind;
use mario_model::ModelConfig;

/// Runs the 32-GPU grid for one model.
pub fn grid(model: &ModelConfig) -> Vec<ConfigResult> {
    let mut out = Vec::new();
    let schemes = [
        (SchemeKind::OneFOneB, 2u32),
        (SchemeKind::Chimera, 2),
        (SchemeKind::Interleave { chunks: 2 }, 1),
    ];
    for (scheme, mbs) in schemes {
        for v in Variant::ALL {
            let cfg = ExpConfig::pipeline(model.clone(), scheme, 32, mbs, 128)
                .variant(v);
            out.push(run_config(&cfg));
        }
    }
    out
}

/// Both 13B models.
pub fn run() -> Vec<(String, Vec<ConfigResult>)> {
    vec![
        ("GPT3-13B".into(), grid(&ModelConfig::gpt3_13b())),
        ("LLaMA2-13B".into(), grid(&ModelConfig::llama2_13b())),
    ]
}

/// Renders one model's table in the paper's column layout.
pub fn render(model: &str, rows: &[ConfigResult]) -> String {
    let mut t = Table::new(&[
        "Config",
        "Global BS",
        "Micro BS",
        "Memory (Min,Max GB)",
        "Throughput (samples/s)",
    ]);
    for r in rows {
        let (lo, hi) = r.mem_range();
        t.row(vec![
            r.label.clone(),
            r.global_bs.to_string(),
            r.micro_bs.to_string(),
            gb_range(lo, hi),
            format!(
                "{:.2}{}",
                r.throughput,
                if r.estimated { " (sim)" } else { "" }
            ),
        ]);
    }
    format!("{model} (32 GPUs)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::SchemeKind;

    /// A single 32-GPU config runs quickly enough to test directly.
    #[test]
    fn v_base_ooms_and_v_ovlp_fits_like_table5() {
        let model = ModelConfig::gpt3_13b();
        let base = run_config(
            &ExpConfig::pipeline(model.clone(), SchemeKind::OneFOneB, 32, 2, 128)
                .variant(Variant::Base),
        );
        let ovlp = run_config(
            &ExpConfig::pipeline(model, SchemeKind::OneFOneB, 32, 2, 128)
                .variant(Variant::Ovlp),
        );
        // Table 5: V-base [10.35, 122.41] GB -> OOM on 40 GB devices;
        // V-ovlp [9.85, 14.10] GB -> fits.
        assert!(base.oom);
        assert!(base.estimated);
        let (_, bmax) = base.mem_range();
        assert!(bmax as f64 / (1u64 << 30) as f64 > 60.0, "{bmax}");
        assert!(!ovlp.oom);
        let (omin, omax) = ovlp.mem_range();
        let gib = (1u64 << 30) as f64;
        assert!(omax as f64 / gib < 25.0, "{}", omax as f64 / gib);
        assert!(omin as f64 / gib > 5.0);
    }

    #[test]
    fn ovlp_is_within_ten_percent_of_base_at_13b_scale() {
        // §6.2: V-ovlp achieves 94.7% of V-base throughput on LLaMA2-13B —
        // the "near zero-cost" claim at scale.
        let model = ModelConfig::llama2_13b();
        let base = run_config(
            &ExpConfig::pipeline(model.clone(), SchemeKind::OneFOneB, 32, 2, 128)
                .variant(Variant::Base),
        );
        let ovlp = run_config(
            &ExpConfig::pipeline(model, SchemeKind::OneFOneB, 32, 2, 128)
                .variant(Variant::Ovlp),
        );
        let ratio = ovlp.throughput / base.throughput;
        assert!(
            ratio > 0.88,
            "ovlp should be near zero-cost at 13B scale: ratio {ratio:.3}"
        );
    }
}
