//! Figure 2: the motivating example — a 4-stage 1F1B pipeline reaches
//! near zero-cost activation checkpointing step by step:
//!
//! | step | transformation                | paper time |
//! |------|-------------------------------|------------|
//! | 0    | baseline (no checkpointing)   | 21t        |
//! | 1    | naive checkpointing           | 28t        |
//! | 2    | + overlap-recompute           | 25t        |
//! | 3    | + remove-redundancy           | 23t        |
//! | 4    | + prepose-forward             | 22t        |

use crate::table::Table;
use mario_core::passes::{
    apply_checkpoint, overlap_recompute, prepose_forward, remove_redundancy, PreposeOptions,
};
use mario_core::simulator::simulate_timeline;
use mario_core::viz::{render_ascii, VizOptions};
use mario_ir::{Schedule, SchemeKind, UnitCost};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};

/// One step of Fig. 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Step {
    /// Step index (0 = baseline).
    pub step: u32,
    /// Description.
    pub what: String,
    /// Measured time in grid units `t`.
    pub measured_t: u64,
    /// The paper's value.
    pub paper_t: u64,
    /// ASCII rendering of the timeline.
    pub gantt: String,
}

fn t_units(s: &Schedule, cost: &UnitCost) -> u64 {
    simulate_timeline(s, cost, 1).unwrap().total_ns / cost.unit
}

fn gantt(s: &Schedule, cost: &UnitCost) -> String {
    render_ascii(
        &simulate_timeline(s, cost, 1).unwrap(),
        VizOptions::default(),
    )
}

/// Reproduces the five steps on a 4-stage pipeline with 4 micro-batches.
pub fn run() -> Vec<Step> {
    let cost = UnitCost::paper_grid();
    let mut steps = Vec::new();

    let base = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 4));
    steps.push(Step {
        step: 0,
        what: "baseline (no checkpointing)".into(),
        measured_t: t_units(&base, &cost),
        paper_t: 21,
        gantt: gantt(&base, &cost),
    });

    let mut s = base.clone();
    apply_checkpoint(&mut s);
    steps.push(Step {
        step: 1,
        what: "apply-checkpoint (recompute before backward)".into(),
        measured_t: t_units(&s, &cost),
        paper_t: 28,
        gantt: gantt(&s, &cost),
    });

    overlap_recompute(&mut s);
    steps.push(Step {
        step: 2,
        what: "overlap-recompute (hide RC in bubbles)".into(),
        measured_t: t_units(&s, &cost),
        paper_t: 25,
        gantt: gantt(&s, &cost),
    });

    remove_redundancy(&mut s);
    steps.push(Step {
        step: 3,
        what: "remove-redundancy (drop adjacent CFW/BW pairs)".into(),
        measured_t: t_units(&s, &cost),
        paper_t: 23,
        gantt: gantt(&s, &cost),
    });

    prepose_forward(&mut s, &cost, PreposeOptions::default());
    overlap_recompute(&mut s);
    steps.push(Step {
        step: 4,
        what: "prepose-forward (reshape bubbles)".into(),
        measured_t: t_units(&s, &cost),
        paper_t: 22,
        gantt: gantt(&s, &cost),
    });

    steps
}

/// Renders the step table plus Gantt charts.
pub fn render(steps: &[Step]) -> String {
    let mut t = Table::new(&["step", "transformation", "measured", "paper"]);
    for s in steps {
        t.row(vec![
            s.step.to_string(),
            s.what.clone(),
            format!("{}t", s.measured_t),
            format!("{}t", s.paper_t),
        ]);
    }
    let mut out = t.render();
    for s in steps {
        out.push_str(&format!("\nstep {} ({}):\n{}", s.step, s.what, s.gantt));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_paper_exactly() {
        let steps = run();
        let measured: Vec<u64> = steps.iter().map(|s| s.measured_t).collect();
        let paper: Vec<u64> = steps.iter().map(|s| s.paper_t).collect();
        assert_eq!(measured, paper, "Fig. 2 step times diverge");
        assert_eq!(paper, vec![21, 28, 25, 23, 22]);
    }

    #[test]
    fn steps_are_monotonically_improving_after_step_one() {
        let steps = run();
        for w in steps[1..].windows(2) {
            assert!(w[1].measured_t < w[0].measured_t);
        }
    }
}
