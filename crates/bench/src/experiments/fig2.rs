//! Figure 2: the motivating example — a 4-stage 1F1B pipeline reaches
//! near zero-cost activation checkpointing step by step:
//!
//! | step | transformation                | paper time |
//! |------|-------------------------------|------------|
//! | 0    | baseline (no checkpointing)   | 21t        |
//! | 1    | naive checkpointing           | 28t        |
//! | 2    | + overlap-recompute           | 25t        |
//! | 3    | + remove-redundancy           | 23t        |
//! | 4    | + prepose-forward             | 22t        |

use crate::table::Table;
use mario_core::passes::{
    apply_checkpoint, overlap_recompute, prepose_forward, remove_redundancy, PreposeOptions,
};
use mario_core::simulator::simulate_timeline;
use mario_core::viz::{render_ascii, VizOptions};
use mario_ir::{Schedule, SchemeKind, UnitCost};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};

/// One step of Fig. 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Step {
    /// Step index (0 = baseline).
    pub step: u32,
    /// Description.
    pub what: String,
    /// Measured time in grid units `t`.
    pub measured_t: u64,
    /// The paper's value.
    pub paper_t: u64,
    /// ASCII rendering of the timeline.
    pub gantt: String,
}

fn t_units(s: &Schedule, cost: &UnitCost) -> u64 {
    simulate_timeline(s, cost, 1).unwrap().total_ns / cost.unit
}

fn gantt(s: &Schedule, cost: &UnitCost) -> String {
    render_ascii(
        &simulate_timeline(s, cost, 1).unwrap(),
        VizOptions::default(),
    )
}

/// Reproduces the five steps on a 4-stage pipeline with 4 micro-batches.
pub fn run() -> Vec<Step> {
    let cost = UnitCost::paper_grid();
    let mut steps = Vec::new();

    let base = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 4));
    steps.push(Step {
        step: 0,
        what: "baseline (no checkpointing)".into(),
        measured_t: t_units(&base, &cost),
        paper_t: 21,
        gantt: gantt(&base, &cost),
    });

    let mut s = base.clone();
    apply_checkpoint(&mut s);
    steps.push(Step {
        step: 1,
        what: "apply-checkpoint (recompute before backward)".into(),
        measured_t: t_units(&s, &cost),
        paper_t: 28,
        gantt: gantt(&s, &cost),
    });

    overlap_recompute(&mut s);
    steps.push(Step {
        step: 2,
        what: "overlap-recompute (hide RC in bubbles)".into(),
        measured_t: t_units(&s, &cost),
        paper_t: 25,
        gantt: gantt(&s, &cost),
    });

    remove_redundancy(&mut s);
    steps.push(Step {
        step: 3,
        what: "remove-redundancy (drop adjacent CFW/BW pairs)".into(),
        measured_t: t_units(&s, &cost),
        paper_t: 23,
        gantt: gantt(&s, &cost),
    });

    prepose_forward(&mut s, &cost, PreposeOptions::default());
    overlap_recompute(&mut s);
    steps.push(Step {
        step: 4,
        what: "prepose-forward (reshape bubbles)".into(),
        measured_t: t_units(&s, &cost),
        paper_t: 22,
        gantt: gantt(&s, &cost),
    });

    steps
}

/// Renders the step table plus Gantt charts.
pub fn render(steps: &[Step]) -> String {
    let mut t = Table::new(&["step", "transformation", "measured", "paper"]);
    for s in steps {
        t.row(vec![
            s.step.to_string(),
            s.what.clone(),
            format!("{}t", s.measured_t),
            format!("{}t", s.paper_t),
        ]);
    }
    let mut out = t.render();
    for s in steps {
        out.push_str(&format!("\nstep {} ({}):\n{}", s.step, s.what, s.gantt));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_paper_exactly() {
        let steps = run();
        let measured: Vec<u64> = steps.iter().map(|s| s.measured_t).collect();
        let paper: Vec<u64> = steps.iter().map(|s| s.paper_t).collect();
        assert_eq!(measured, paper, "Fig. 2 step times diverge");
        assert_eq!(paper, vec![21, 28, 25, 23, 22]);
    }

    #[test]
    fn steps_are_monotonically_improving_after_step_one() {
        let steps = run();
        for w in steps[1..].windows(2) {
            assert!(w[1].measured_t < w[0].measured_t);
        }
    }

    #[test]
    fn zb_candidates_in_the_tuner_do_not_perturb_the_fig2_pin() {
        // Enumerating zero-bubble candidates runs the full pass pipeline
        // over ZB schedules (split backwards included). That must be a
        // read-only affair for everyone else. The scenario: a memory
        // budget of *exactly* the tuned 1F1B peak. ZB-H1's peak sits
        // strictly above it (the deferred weight half stashes its layer
        // inputs — the one place its memory profile differs from 1F1B's),
        // and ZB-V's reflected chunk is far above it, so the ZB configs
        // that would win all OOM: present on the curve, never selected
        // (smaller ZB configs still fit but lose on throughput). The
        // Fig. 2 sequence, which exercises the same passes on a plain
        // 1F1B pipeline, must stay pinned.
        use mario_core::tuner::{evaluate, tune, Candidate, SchemeChoice, TunerConfig};
        use mario_model::{GpuSpec, ModelConfig};

        let model = ModelConfig::gpt3_1_6b();
        let gpu = GpuSpec::a100_40g();
        let roomy = TunerConfig {
            mbs_options: vec![1, 2],
            min_pp: 8,
            prepose: false,
            ..TunerConfig::new(8, 32, 40 * (1 << 30))
        };
        // Calibrate: the winning classic candidate's exact peak bytes.
        let v_peak = evaluate(
            &model,
            &gpu,
            &roomy,
            Candidate {
                scheme: SchemeKind::OneFOneB,
                pp: 8,
                dp: 1,
                mbs: 2,
                mario: true,
            },
        )
        .unwrap()
        .peak_mem
        .1;

        let cfg = TunerConfig {
            scheme_choice: SchemeChoice::Fixed(vec![
                SchemeKind::OneFOneB,
                SchemeKind::ZeroBubbleH1,
                SchemeKind::ZeroBubbleV,
            ]),
            mem_capacity: v_peak,
            ..roomy
        };
        let r = tune(&model, &gpu, &cfg).unwrap();
        let zb_evals: Vec<_> = r
            .curve
            .iter()
            .filter(|e| {
                matches!(
                    e.candidate.scheme,
                    SchemeKind::ZeroBubbleH1 | SchemeKind::ZeroBubbleV
                )
            })
            .collect();
        assert!(!zb_evals.is_empty(), "ZB kinds must be on the search curve");
        // The head-to-head ZB-H1 config (same pp/mbs as the winner) is
        // priced out by exactly its wgrad stash.
        let head_to_head = zb_evals.iter().find(|e| {
            e.candidate.scheme == SchemeKind::ZeroBubbleH1
                && e.candidate.mbs == r.best.candidate.mbs
                && e.candidate.mario
        });
        assert!(
            head_to_head.is_some_and(|e| e.oom),
            "ZB-H1 at the winner's config should OOM at the 1F1B peak budget"
        );
        assert!(
            !matches!(
                r.best.candidate.scheme,
                SchemeKind::ZeroBubbleH1 | SchemeKind::ZeroBubbleV
            ),
            "scenario expects ZB to lose here, got {}",
            r.best.candidate
        );

        let measured: Vec<u64> = run().iter().map(|s| s.measured_t).collect();
        assert_eq!(measured, vec![21, 28, 25, 23, 22]);
    }
}
