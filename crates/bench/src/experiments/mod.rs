//! One module per paper table/figure; each exposes `run()` returning
//! structured rows and `render()` producing the printed artifact.

pub mod ablation;
pub mod chaos;
pub mod ckptshard;
pub mod critpath;
pub mod degraded;
pub mod elastic;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod scale;
pub mod serve;
pub mod table1;
pub mod table5;
pub mod zb;
