//! Table 1: weight and activation memory across pipeline schemes, without
//! and with Mario.
//!
//! Activation memory is measured in units of `M_θ` (one micro-batch's full
//! activations on one stage) by running the memory simulator with the unit
//! cost model; the measured per-device range is compared against the
//! paper's closed forms.

use crate::table::Table;
use mario_core::passes::{run_graph_tuner, GraphTunerOptions};
use mario_core::simulator::simulate_memory;
use mario_ir::{SchemeKind, UnitCost};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};

/// One Table 1 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Scheme name.
    pub scheme: String,
    /// Weight replicas per device (1 or 2).
    pub weight_replicas: u32,
    /// Measured activation peak range `[min, max]` in `M_θ` units.
    pub act_range: (u64, u64),
    /// Paper's closed-form range in `M_θ` units.
    pub paper_range: (u64, u64),
    /// Measured peak with Mario, in `M_θ` units (max across devices).
    pub act_mario: u64,
    /// Paper's Mario value in `M_θ` units (`M_θ` or `M_θ/2` ⇒ 1 here; the
    /// `/2` refers to per-chunk stages being half-size).
    pub paper_mario: u64,
}

/// Measures one scheme at `(devices, micros)`.
fn measure(scheme: SchemeKind, devices: u32, micros: u32) -> Row {
    let cost = UnitCost::paper_grid(); // act = 1 unit, ckpt = 0
    let base = generate(ScheduleConfig::new(scheme, devices, micros));
    let base_mem = simulate_memory(&base, &cost, None);

    let mut mario = base.clone();
    run_graph_tuner(
        &mut mario,
        &cost,
        GraphTunerOptions {
            prepose: false, // memory bound is what Table 1 states
            ..GraphTunerOptions::mario()
        },
    );
    let mario_mem = simulate_memory(&mario, &cost, None);

    let d = devices as u64;
    let n = micros as u64;
    let (paper_range, weight_replicas) = match scheme {
        SchemeKind::GPipe => ((n, n), 1),
        SchemeKind::OneFOneB => ((1, d), 1),
        // Interleave with v=2 in per-chunk (half-stage) units: [D+1, 3D-2]
        // halves; our unit is one *chunk* stage's activations, so the count
        // is directly comparable.
        SchemeKind::Interleave { .. } => ((d + 1, 3 * d - 2), 1),
        SchemeKind::Chimera => ((d / 2 + 1, d), 2),
        // Hanayo's [(D+1)/2, D]·M_θ expressed in per-chunk half-units
        // (each device holds two half-size wave stages): [D+1, 2D].
        SchemeKind::Wave { .. } => ((d + 1, 2 * d), 1),
        // Forward-only serving never retains activations past the forward:
        // peak is one transient micro-batch regardless of N or D.
        SchemeKind::ForwardOnly => ((1, 1), 1),
        // ZB-H1 keeps the 1F1B in-flight profile (activations retire at the
        // deferred weight half instead of the full backward): [1, D].
        SchemeKind::ZeroBubbleH1 => ((1, d), 1),
        // ZB-V holds two chunk stages per device like a 2-wave: [D+1, 2D]
        // in per-chunk units.
        SchemeKind::ZeroBubbleV => ((d + 1, 2 * d), 1),
    };
    // ZB-V is the one scheme Mario cannot collapse to a single replica:
    // recomputed activations must stay live until the *deferred* weight
    // half (they feed its GEMM), so the reflecting device always holds its
    // D+2 in-flight micro-batches in full. Every other scheme frees at (or
    // right after) the backward that consumed the recompute, so 1 Mθ.
    let paper_mario = match scheme {
        SchemeKind::ZeroBubbleV => d + 2,
        _ => 1,
    };
    Row {
        scheme: format!("{scheme:?}"),
        weight_replicas,
        act_range: (base_mem.min_peak(), base_mem.max_peak()),
        paper_range,
        act_mario: mario_mem.max_peak(),
        paper_mario,
    }
}

/// Reproduces Table 1 for `devices` devices and `2 × devices` micro-batches.
pub fn run(devices: u32) -> Vec<Row> {
    let micros = 2 * devices;
    [
        SchemeKind::GPipe,
        SchemeKind::OneFOneB,
        SchemeKind::Interleave { chunks: 2 },
        SchemeKind::Chimera,
        SchemeKind::Wave { chunks: 2 },
        SchemeKind::ZeroBubbleH1,
        SchemeKind::ZeroBubbleV,
    ]
    .into_iter()
    .map(|s| measure(s, devices, micros))
    .collect()
}

/// Renders the rows.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(&[
        "Scheme",
        "Weights",
        "Act mem (measured)",
        "Act mem (paper)",
        "Act w/ Mario",
        "Paper w/ Mario",
    ]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            format!("{}x Mw", r.weight_replicas),
            format!("[{}, {}] Mθ", r.act_range.0, r.act_range.1),
            format!("[{}, {}] Mθ", r.paper_range.0, r.paper_range.1),
            format!("{} Mθ", r.act_mario),
            format!("{} Mθ", r.paper_mario),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ranges_match_paper_closed_forms() {
        for d in [4u32, 8] {
            for r in run(d) {
                // GPipe and 1F1B are exact; the derived schemes must sit
                // within the paper's bounds.
                match r.scheme.as_str() {
                    "GPipe" => assert_eq!(r.act_range, r.paper_range, "{r:?}"),
                    "OneFOneB" => assert_eq!(r.act_range, r.paper_range, "{r:?}"),
                    _ => {
                        // Megatron's interleaved warmup holds one more
                        // chunk-activation than the paper's idealized
                        // 3D-2 bound (the steady state issues its first
                        // forward before the first backward retires), so
                        // allow +1.
                        assert!(
                            r.act_range.1 <= r.paper_range.1 + 1,
                            "max exceeds paper bound: {r:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mario_brings_every_scheme_to_its_floor() {
        // Every scheme collapses to ~1 Mθ except ZB-V, whose Bw-pinned
        // lifetimes keep the full D+2 in-flight set live (its row carries
        // that closed form in `paper_mario`). Mario must still never
        // *increase* the peak.
        for r in run(8) {
            assert!(
                r.act_mario <= r.paper_mario + 1,
                "{}: Mario peak {} Mθ (expected ≈{})",
                r.scheme,
                r.act_mario,
                r.paper_mario
            );
            assert!(
                r.act_mario <= r.act_range.1,
                "{}: Mario increased memory {} -> {}",
                r.scheme,
                r.act_range.1,
                r.act_mario
            );
        }
    }

    #[test]
    fn render_includes_every_scheme() {
        let rows = run(4);
        let s = render(&rows);
        for name in [
            "GPipe",
            "OneFOneB",
            "Chimera",
            "Interleave",
            "Wave",
            "ZeroBubbleH1",
            "ZeroBubbleV",
        ] {
            assert!(s.contains(name), "{s}");
        }
    }
}
