//! Ablations: (a) stage-partition ramps (§7.1 — "varying k layers
//! uniformly across stages", k ∈ {-2, -1, 0, +1, +2}, with and without
//! Mario) and (b) per-pass contribution of the graph tuner at model scale.

use crate::harness::channel_capacity;
use crate::table::Table;
use mario_core::passes::{
    apply_checkpoint, overlap_recompute, prepose_forward, remove_redundancy, split_backward,
    PreposeOptions, SplitOptions,
};
use mario_core::simulator::simulate_timeline;
use mario_ir::{SchemeKind, Topology};
use mario_model::{AnalyticCost, GpuSpec, ModelConfig, StagePartition, TrainSetup};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};

/// One partition-ramp result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RampPoint {
    /// The ramp parameter k.
    pub k: i32,
    /// Throughput without checkpointing, samples/s.
    pub base_tp: f64,
    /// Throughput with Mario, samples/s.
    pub mario_tp: f64,
}

/// Runs the §7.1 partition ablation on GPT3-1.6B / 8 GPUs.
pub fn partition_ramp() -> Vec<RampPoint> {
    let model = ModelConfig::gpt3_1_6b();
    let gpu = GpuSpec::a100_40g();
    let gbs = 64u32;
    let mbs = 2u32;
    let micros = gbs / mbs;
    let scheme = SchemeKind::OneFOneB;
    let topo = Topology::new(scheme, 8);
    let cap = channel_capacity(scheme);
    (-2..=2)
        .map(|k| {
            let partition = StagePartition::ramp(model.layers, 8, k);
            let setup = TrainSetup::pipeline(model.clone(), gpu.clone(), topo, mbs)
                .with_partition(partition);
            let cost = AnalyticCost::new(&setup);
            let base = generate(ScheduleConfig::new(scheme, 8, micros));
            let base_tp = simulate_timeline(&base, &cost, cap)
                .unwrap()
                .throughput(gbs as u64);
            let mut mario = base.clone();
            apply_checkpoint(&mut mario);
            overlap_recompute(&mut mario);
            remove_redundancy(&mut mario);
            prepose_forward(
                &mut mario,
                &cost,
                PreposeOptions {
                    channel_capacity: cap,
                    max_rounds: 2,
                    ..Default::default()
                },
            );
            overlap_recompute(&mut mario);
            let mario_tp = simulate_timeline(&mario, &cost, cap)
                .unwrap()
                .throughput(gbs as u64);
            RampPoint {
                k,
                base_tp,
                mario_tp,
            }
        })
        .collect()
}

/// One per-pass ablation point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PassPoint {
    /// Which passes are on.
    pub label: String,
    /// Throughput, samples/s.
    pub throughput: f64,
}

/// Per-pass contribution on GPT3-1.6B / 8 GPUs (model-scale Fig. 2).
pub fn pass_ablation() -> Vec<PassPoint> {
    let model = ModelConfig::gpt3_1_6b();
    let gpu = GpuSpec::a100_40g();
    let gbs = 64u32;
    let mbs = 2u32;
    let micros = gbs / mbs;
    let scheme = SchemeKind::OneFOneB;
    let topo = Topology::new(scheme, 8);
    let cap = channel_capacity(scheme);
    let setup = TrainSetup::pipeline(model, gpu, topo, mbs);
    let cost = AnalyticCost::new(&setup);
    let tp = |s: &mario_ir::Schedule| {
        simulate_timeline(s, &cost, cap)
            .unwrap()
            .throughput(gbs as u64)
    };

    let base = generate(ScheduleConfig::new(scheme, 8, micros));
    let mut points = vec![PassPoint {
        label: "base (no ckpt)".into(),
        throughput: tp(&base),
    }];
    let mut s = base.clone();
    apply_checkpoint(&mut s);
    points.push(PassPoint {
        label: "+ pass1 apply-checkpoint".into(),
        throughput: tp(&s),
    });
    overlap_recompute(&mut s);
    points.push(PassPoint {
        label: "+ pass2 overlap-recompute".into(),
        throughput: tp(&s),
    });
    remove_redundancy(&mut s);
    points.push(PassPoint {
        label: "+ pass3 remove-redundancy".into(),
        throughput: tp(&s),
    });
    prepose_forward(
        &mut s,
        &cost,
        PreposeOptions {
            channel_capacity: cap,
            max_rounds: 2,
            ..Default::default()
        },
    );
    overlap_recompute(&mut s);
    points.push(PassPoint {
        label: "+ pass4 prepose-forward".into(),
        throughput: tp(&s),
    });
    points
}

/// The §8 future-work extension: ZB-style split backward, alone and
/// composed with Mario's checkpointing passes, on GPT3-1.6B / 8 GPUs.
pub fn zb_extension() -> Vec<PassPoint> {
    let model = ModelConfig::gpt3_1_6b();
    let gpu = GpuSpec::a100_40g();
    let gbs = 64u32;
    let mbs = 2u32;
    let micros = gbs / mbs;
    let scheme = SchemeKind::OneFOneB;
    let topo = Topology::new(scheme, 8);
    let cap = channel_capacity(scheme);
    let setup = TrainSetup::pipeline(model, gpu, topo, mbs);
    let cost = AnalyticCost::new(&setup);
    let tp = |s: &mario_ir::Schedule| {
        simulate_timeline(s, &cost, cap)
            .unwrap()
            .throughput(gbs as u64)
    };

    let base = generate(ScheduleConfig::new(scheme, 8, micros));
    let mut out = vec![PassPoint {
        label: "base".into(),
        throughput: tp(&base),
    }];

    let mut zb = base.clone();
    split_backward(&mut zb, SplitOptions::default());
    out.push(PassPoint {
        label: "base + split-backward".into(),
        throughput: tp(&zb),
    });

    let mut mario = base.clone();
    apply_checkpoint(&mut mario);
    overlap_recompute(&mut mario);
    remove_redundancy(&mut mario);
    out.push(PassPoint {
        label: "mario (ckpt passes 1-3)".into(),
        throughput: tp(&mario),
    });

    let mut both = mario.clone();
    split_backward(&mut both, SplitOptions::default());
    overlap_recompute(&mut both);
    out.push(PassPoint {
        label: "mario + split-backward".into(),
        throughput: tp(&both),
    });
    out
}

/// Renders both ablations.
pub fn render(ramp: &[RampPoint], passes: &[PassPoint]) -> String {
    let mut out = String::from("Stage-partition ramp (§7.1, GPT3-1.6B, 8 GPUs)\n");
    let mut t = Table::new(&["k", "base tput", "vs k=0", "Mario tput", "vs k=0"]);
    let base0 = ramp.iter().find(|p| p.k == 0).map(|p| p.base_tp).unwrap();
    let mario0 = ramp.iter().find(|p| p.k == 0).map(|p| p.mario_tp).unwrap();
    for p in ramp {
        t.row(vec![
            p.k.to_string(),
            format!("{:.2}", p.base_tp),
            format!("{:+.1}%", (p.base_tp / base0 - 1.0) * 100.0),
            format!("{:.2}", p.mario_tp),
            format!("{:+.1}%", (p.mario_tp / mario0 - 1.0) * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nPer-pass ablation (GPT3-1.6B, 8 GPUs)\n");
    let mut t = Table::new(&["configuration", "throughput", "vs base"]);
    let b = passes[0].throughput;
    for p in passes {
        t.row(vec![
            p.label.clone(),
            format!("{:.2}", p.throughput),
            format!("{:.1}%", p.throughput / b * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nZB split-backward extension (§8 future work)\n");
    let zb = zb_extension();
    let mut t = Table::new(&["configuration", "throughput", "vs base"]);
    let b = zb[0].throughput;
    for p in &zb {
        t.row(vec![
            p.label.clone(),
            format!("{:.2}", p.throughput),
            format!("{:+.1}%", (p.throughput / b - 1.0) * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_produces_five_points_and_modest_deltas() {
        let ramp = partition_ramp();
        assert_eq!(ramp.len(), 5);
        let base0 = ramp[2].base_tp;
        for p in &ramp {
            // §7.1: partition deltas move throughput by only a few percent.
            assert!(
                (p.base_tp / base0 - 1.0).abs() < 0.15,
                "k={} moved base throughput by {:.1}%",
                p.k,
                (p.base_tp / base0 - 1.0) * 100.0
            );
        }
    }

    #[test]
    fn split_backward_improves_base_and_composes_with_mario() {
        let zb = zb_extension();
        assert_eq!(zb.len(), 4);
        assert!(
            zb[1].throughput > zb[0].throughput,
            "split should beat base: {} vs {}",
            zb[1].throughput,
            zb[0].throughput
        );
        assert!(
            zb[3].throughput > zb[2].throughput,
            "split should lift mario: {} vs {}",
            zb[3].throughput,
            zb[2].throughput
        );
    }

    #[test]
    fn pass_ablation_recovers_monotonically_from_pass1() {
        let pts = pass_ablation();
        assert_eq!(pts.len(), 5);
        // pass1 costs throughput; each later pass recovers some.
        assert!(pts[1].throughput < pts[0].throughput);
        for w in pts[1..].windows(2) {
            assert!(
                w[1].throughput >= w[0].throughput * 0.999,
                "{} -> {}",
                w[0].label,
                w[1].label
            );
        }
    }
}
