//! Chaos sweep: seeded single-fault injection across schemes, plus a
//! correlated multi-fault sweep with checkpoint-restart recovery.
//!
//! Not a paper artifact — a robustness harness for the emulator's fault
//! layer. For every scheme in {V, X, W} and a range of seeds, one random
//! fault (straggler, crash, link delay, link stall, memory squeeze) is
//! injected into an emulated run. The invariant checked for every
//! scenario:
//!
//! * the run **terminates** (no hang: hard faults surface before the
//!   scaled watchdog, absorbable ones complete the run);
//! * a hard fault yields a structured [`EmuError::Fault`] whose report
//!   names the injected fault — never a panic, never an unattributed
//!   secondary error;
//! * the outcome is **deterministic**: the same seed reproduces the same
//!   report, bit for bit.
//!
//! The correlated sweep ([`run_correlated`]) injects a seeded **rack
//! failure** — one device crash plus link stalls on every link crossing
//! the rack boundary — into a multi-iteration run, and additionally
//! checks that the report names the correlated group, and that recovery
//! with per-iteration checkpoints is strictly cheaper than restarting
//! from iteration zero.

use crate::harness::channel_capacity;
use crate::table::Table;
use mario_cluster::{
    run_with_faults, run_with_recovery, EmuError, EmulatorConfig, FaultPlan,
};
use mario_ir::{CheckpointPolicy, SchemeKind, UnitCost};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One chaos scenario and its outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scheme label (`V`, `X`, `W`).
    pub scheme: String,
    /// The seed the fault plan was drawn from.
    pub seed: u64,
    /// The injected fault (rendered).
    pub fault: String,
    /// Outcome summary: `completed` (fault absorbed) or the structured
    /// fault report.
    pub outcome: String,
    /// Whether the chaos invariant held for this scenario.
    pub ok: bool,
}

fn scheme_label(s: SchemeKind) -> String {
    s.shape_letter().to_string()
}

/// Runs one scenario and checks the invariant.
fn scenario(scheme: SchemeKind, seed: u64) -> Scenario {
    let schedule = generate(ScheduleConfig::new(scheme, 4, 8));
    let plan = FaultPlan::single_random(seed, &schedule);
    let injected = plan.faults[0];
    let cfg = EmulatorConfig {
        channel_capacity: channel_capacity(scheme),
        // Stall scenarios must wait the watchdog out; keep that short.
        watchdog: Duration::from_millis(300),
        ..Default::default()
    };
    let cost = UnitCost::paper_grid();
    let first = run_with_faults(&schedule, &cost, cfg, &plan);
    let second = run_with_faults(&schedule, &cost, cfg, &plan);

    let (outcome, mut ok) = match &first {
        Ok(report) => (
            format!("completed ({} absorbed)", report.faults.len()),
            // A completed run is only acceptable for absorbable faults.
            injected.is_absorbable(),
        ),
        Err(EmuError::Fault(report)) => (
            report.to_string(),
            // The structured report must name the injected fault.
            report.fault == injected,
        ),
        Err(other) => (format!("UNATTRIBUTED: {other}"), false),
    };
    // Determinism: same seed, same outcome.
    match (&first, &second) {
        (Ok(a), Ok(b)) => ok &= a.device_clocks == b.device_clocks && a.faults == b.faults,
        (Err(EmuError::Fault(a)), Err(EmuError::Fault(b))) => ok &= a == b,
        _ => ok = false,
    }
    Scenario {
        scheme: scheme_label(scheme),
        seed,
        fault: injected.to_string(),
        outcome,
        ok,
    }
}

/// Sweeps `seeds` single-fault scenarios over V, X and W.
pub fn run(seeds: u64) -> Vec<Scenario> {
    let mut rows = Vec::new();
    for scheme in [
        SchemeKind::OneFOneB,
        SchemeKind::Chimera,
        SchemeKind::Interleave { chunks: 2 },
    ] {
        for seed in 0..seeds {
            rows.push(scenario(scheme, seed));
        }
    }
    rows
}

/// Renders the scenario table and the verdict line.
pub fn render(rows: &[Scenario]) -> String {
    let mut t = Table::new(&["scheme", "seed", "injected fault", "outcome"]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            r.seed.to_string(),
            r.fault.clone(),
            if r.ok {
                r.outcome.clone()
            } else {
                format!("VIOLATION: {}", r.outcome)
            },
        ]);
    }
    let bad = rows.iter().filter(|r| !r.ok).count();
    let mut out = t.render();
    out.push_str(&format!(
        "\n**Verdict:** {}/{} scenarios upheld the chaos invariant \
         (terminate + attribute + reproduce).\n",
        rows.len() - bad,
        rows.len()
    ));
    out
}

/// One correlated rack-failure scenario and its outcome, with and
/// without checkpointing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelatedScenario {
    /// Scheme label (`V`, `X`, `W`).
    pub scheme: String,
    /// The seed the rack failure was drawn from.
    pub seed: u64,
    /// The correlated group named by the fault report.
    pub group: String,
    /// Number of correlated faults in the plan.
    pub faults: usize,
    /// Iteration the rack fails in.
    pub fault_iter: u32,
    /// End-to-end recovery cost restarting from iteration 0, ns.
    pub restart_ns: u64,
    /// End-to-end recovery cost resuming from the last checkpoint, ns.
    pub resume_ns: u64,
    /// Iterations the checkpointed recovery did not have to redo.
    pub resumed_from: u32,
    /// Outcome summary.
    pub outcome: String,
    /// Whether every correlated-chaos invariant held.
    pub ok: bool,
}

/// Iterations per correlated run: enough for checkpoints to accumulate
/// before the rack fails.
const CORRELATED_ITERS: u32 = 4;

/// Runs one correlated scenario and checks the invariants: structured
/// attribution naming the rack group, determinism, and
/// resume-from-checkpoint strictly beating restart-from-zero.
fn correlated_scenario(scheme: SchemeKind, seed: u64) -> CorrelatedScenario {
    let schedule = generate(ScheduleConfig::new(scheme, 4, 8));
    // The rack fails in iteration 1, 2 or 3 — always after at least one
    // per-iteration checkpoint boundary has passed.
    let fault_iter = 1 + (seed % 3) as u32;
    let plan = FaultPlan::rack_failure(seed, &schedule).at_iteration(fault_iter);
    let cfg = EmulatorConfig {
        channel_capacity: channel_capacity(scheme),
        iterations: CORRELATED_ITERS,
        watchdog: Duration::from_millis(300),
        ..Default::default()
    };
    let cost = UnitCost::paper_grid();

    // Attribution: the run fails on one of the correlated faults, the
    // report names the rack group, and the same seed reproduces it.
    let first = run_with_faults(&schedule, &cost, cfg, &plan);
    let second = run_with_faults(&schedule, &cost, cfg, &plan);
    let (group, mut ok) = match &first {
        Err(EmuError::Fault(r)) => (
            r.group.clone().unwrap_or_default(),
            plan.faults.contains(&r.fault) && r.group.is_some(),
        ),
        _ => (String::new(), false),
    };
    ok &= matches!((&first, &second), (Err(EmuError::Fault(a)), Err(EmuError::Fault(b))) if a == b);

    // Recovery: checkpointing every iteration must strictly beat
    // restarting from zero, write costs included.
    let ckpt_cfg = EmulatorConfig {
        checkpoint: Some(CheckpointPolicy::every(1).with_write_ns(50)),
        ..cfg
    };
    let restart = run_with_recovery(&schedule, &cost, cfg, &plan, 3);
    let resume = run_with_recovery(&schedule, &cost, ckpt_cfg, &plan, 3);
    let (restart_ns, resume_ns, resumed_from) = match (&restart, &resume) {
        (Ok(a), Ok(b)) => {
            ok &= a.resumed_from == 0;
            // Crash in iteration f with per-iteration checkpoints: the
            // cluster saved exactly f iterations before dying.
            ok &= b.resumed_from == fault_iter;
            ok &= b.total_ns_with_replay < a.total_ns_with_replay;
            (a.total_ns_with_replay, b.total_ns_with_replay, b.resumed_from)
        }
        _ => {
            ok = false;
            (0, 0, 0)
        }
    };
    let outcome = match &first {
        Err(EmuError::Fault(r)) => r.to_string(),
        Ok(_) => "UNEXPECTED: completed".into(),
        Err(other) => format!("UNATTRIBUTED: {other}"),
    };
    CorrelatedScenario {
        scheme: scheme_label(scheme),
        seed,
        group,
        faults: plan.faults.len(),
        fault_iter,
        restart_ns,
        resume_ns,
        resumed_from,
        outcome,
        ok,
    }
}

/// Sweeps `seeds` correlated rack-failure scenarios over V, X and W.
pub fn run_correlated(seeds: u64) -> Vec<CorrelatedScenario> {
    let mut rows = Vec::new();
    for scheme in [
        SchemeKind::OneFOneB,
        SchemeKind::Chimera,
        SchemeKind::Interleave { chunks: 2 },
    ] {
        for seed in 0..seeds {
            rows.push(correlated_scenario(scheme, seed));
        }
    }
    rows
}

/// Renders the correlated-scenario table and its verdict line.
pub fn render_correlated(rows: &[CorrelatedScenario]) -> String {
    let mut t = Table::new(&[
        "scheme", "seed", "group", "faults", "iter", "restart ns", "resume ns", "saved",
    ]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            r.seed.to_string(),
            r.group.clone(),
            r.faults.to_string(),
            r.fault_iter.to_string(),
            r.restart_ns.to_string(),
            r.resume_ns.to_string(),
            if r.ok {
                format!("{} iters", r.resumed_from)
            } else {
                format!("VIOLATION: {}", r.outcome)
            },
        ]);
    }
    let bad = rows.iter().filter(|r| !r.ok).count();
    let mut out = t.render();
    out.push_str(&format!(
        "\n**Verdict:** {}/{} correlated scenarios upheld the invariant \
         (attribute the rack group + reproduce + resume beats restart).\n",
        rows.len() - bad,
        rows.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_upholds_the_invariant() {
        // A smaller sweep than the binary, to keep the suite fast.
        let rows = run(6);
        assert_eq!(rows.len(), 18);
        for r in &rows {
            assert!(r.ok, "{} seed {}: {} -> {}", r.scheme, r.seed, r.fault, r.outcome);
        }
    }

    #[test]
    fn correlated_scenarios_uphold_the_invariant() {
        let rows = run_correlated(2);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.ok,
                "{} seed {} ({}, {} faults): {}",
                r.scheme, r.seed, r.group, r.faults, r.outcome
            );
            assert!(r.group.starts_with("rack-"), "{}", r.group);
            assert!(r.faults >= 2, "correlated plan should be multi-fault");
        }
    }
}
