//! Chaos sweep: seeded single-fault injection across schemes.
//!
//! Not a paper artifact — a robustness harness for the emulator's fault
//! layer. For every scheme in {V, X, W} and a range of seeds, one random
//! fault (straggler, crash, link delay, link stall, memory squeeze) is
//! injected into an emulated run. The invariant checked for every
//! scenario:
//!
//! * the run **terminates** (no hang: hard faults surface before the
//!   scaled watchdog, absorbable ones complete the run);
//! * a hard fault yields a structured [`EmuError::Fault`] whose report
//!   names the injected fault — never a panic, never an unattributed
//!   secondary error;
//! * the outcome is **deterministic**: the same seed reproduces the same
//!   report, bit for bit.

use crate::harness::channel_capacity;
use crate::table::Table;
use mario_cluster::{run_with_faults, EmuError, EmulatorConfig, FaultPlan};
use mario_ir::{SchemeKind, UnitCost};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One chaos scenario and its outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scheme label (`V`, `X`, `W`).
    pub scheme: String,
    /// The seed the fault plan was drawn from.
    pub seed: u64,
    /// The injected fault (rendered).
    pub fault: String,
    /// Outcome summary: `completed` (fault absorbed) or the structured
    /// fault report.
    pub outcome: String,
    /// Whether the chaos invariant held for this scenario.
    pub ok: bool,
}

fn scheme_label(s: SchemeKind) -> String {
    s.shape_letter().to_string()
}

/// Runs one scenario and checks the invariant.
fn scenario(scheme: SchemeKind, seed: u64) -> Scenario {
    let schedule = generate(ScheduleConfig::new(scheme, 4, 8));
    let plan = FaultPlan::single_random(seed, &schedule);
    let injected = plan.faults[0];
    let cfg = EmulatorConfig {
        channel_capacity: channel_capacity(scheme),
        // Stall scenarios must wait the watchdog out; keep that short.
        watchdog: Duration::from_millis(300),
        ..Default::default()
    };
    let cost = UnitCost::paper_grid();
    let first = run_with_faults(&schedule, &cost, cfg, &plan);
    let second = run_with_faults(&schedule, &cost, cfg, &plan);

    let (outcome, mut ok) = match &first {
        Ok(report) => (
            format!("completed ({} absorbed)", report.faults.len()),
            // A completed run is only acceptable for absorbable faults.
            injected.is_absorbable(),
        ),
        Err(EmuError::Fault(report)) => (
            report.to_string(),
            // The structured report must name the injected fault.
            report.fault == injected,
        ),
        Err(other) => (format!("UNATTRIBUTED: {other}"), false),
    };
    // Determinism: same seed, same outcome.
    match (&first, &second) {
        (Ok(a), Ok(b)) => ok &= a.device_clocks == b.device_clocks && a.faults == b.faults,
        (Err(EmuError::Fault(a)), Err(EmuError::Fault(b))) => ok &= a == b,
        _ => ok = false,
    }
    Scenario {
        scheme: scheme_label(scheme),
        seed,
        fault: injected.to_string(),
        outcome,
        ok,
    }
}

/// Sweeps `seeds` single-fault scenarios over V, X and W.
pub fn run(seeds: u64) -> Vec<Scenario> {
    let mut rows = Vec::new();
    for scheme in [
        SchemeKind::OneFOneB,
        SchemeKind::Chimera,
        SchemeKind::Interleave { chunks: 2 },
    ] {
        for seed in 0..seeds {
            rows.push(scenario(scheme, seed));
        }
    }
    rows
}

/// Renders the scenario table and the verdict line.
pub fn render(rows: &[Scenario]) -> String {
    let mut t = Table::new(&["scheme", "seed", "injected fault", "outcome"]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            r.seed.to_string(),
            r.fault.clone(),
            if r.ok {
                r.outcome.clone()
            } else {
                format!("VIOLATION: {}", r.outcome)
            },
        ]);
    }
    let bad = rows.iter().filter(|r| !r.ok).count();
    let mut out = t.render();
    out.push_str(&format!(
        "\n**Verdict:** {}/{} scenarios upheld the chaos invariant \
         (terminate + attribute + reproduce).\n",
        rows.len() - bad,
        rows.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_upholds_the_invariant() {
        // A smaller sweep than the binary, to keep the suite fast.
        let rows = run(6);
        assert_eq!(rows.len(), 18);
        for r in &rows {
            assert!(r.ok, "{} seed {}: {} -> {}", r.scheme, r.seed, r.fault, r.outcome);
        }
    }
}
