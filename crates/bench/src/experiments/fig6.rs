//! Figure 6: training throughput on GPT3-1.6B and LLaMA2-3B with an
//! 8-GPU pipeline, across V/X/W × {base, ckpt, ovlp, lmbs}, global batch
//! 128. (W runs half the micro-batch size of V/X so all schemes fit the
//! same global batch — §6.1.)

use crate::harness::{run_config, ConfigResult, ExpConfig, Variant};
use crate::table::Table;
use mario_ir::SchemeKind;
use mario_model::ModelConfig;

/// Runs the V/X/W × variant grid for one model.
pub fn grid(model: &ModelConfig, pp: u32, gbs: u32, mbs_vx: u32) -> Vec<ConfigResult> {
    let mut out = Vec::new();
    let schemes = [
        (SchemeKind::OneFOneB, mbs_vx),
        (SchemeKind::Chimera, mbs_vx),
        (SchemeKind::Interleave { chunks: 2 }, (mbs_vx / 2).max(1)),
    ];
    for (scheme, mbs) in schemes {
        for v in Variant::ALL {
            let cfg = ExpConfig::pipeline(model.clone(), scheme, pp, mbs, gbs).variant(v);
            out.push(run_config(&cfg));
        }
    }
    out
}

/// The Fig. 6 experiment: both small models on 8 GPUs.
pub fn run() -> Vec<(String, Vec<ConfigResult>)> {
    vec![
        (
            "GPT3-1.6B".into(),
            grid(&ModelConfig::gpt3_1_6b(), 8, 128, 2),
        ),
        (
            "LLaMA2-3B".into(),
            grid(&ModelConfig::llama2_3b(), 8, 128, 2),
        ),
    ]
}

/// Renders one model's grid.
pub fn render(model: &str, rows: &[ConfigResult]) -> String {
    let mut t = Table::new(&[
        "Config",
        "Micro BS",
        "Throughput (samples/s)",
        "Speedup vs base",
        "OOM",
    ]);
    let mut base_tp = 0.0;
    for r in rows {
        if r.label.ends_with("base") {
            base_tp = r.throughput;
        }
        t.row(vec![
            r.label.clone(),
            r.micro_bs.to_string(),
            format!("{:.2}", r.throughput),
            if base_tp > 0.0 {
                format!("{:.2}x", r.throughput / base_tp)
            } else {
                "-".into()
            },
            if r.oom { "yes".into() } else { "no".into() },
        ]);
    }
    format!("{model} (8 GPUs, gbs 128)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced-size smoke test (the full grid runs in the binary).
    #[test]
    fn small_grid_has_paper_shape() {
        let rows = grid(&ModelConfig::gpt3_1_6b(), 4, 32, 2);
        assert_eq!(rows.len(), 12);
        // Per scheme: ckpt is the slowest variant and lmbs beats ovlp.
        for chunk in rows.chunks(4) {
            let (base, ckpt, ovlp, lmbs) = (&chunk[0], &chunk[1], &chunk[2], &chunk[3]);
            assert!(base.label.ends_with("base"));
            assert!(
                ckpt.throughput < base.throughput,
                "{}: ckpt {} !< base {}",
                ckpt.label,
                ckpt.throughput,
                base.throughput
            );
            assert!(
                ovlp.throughput > ckpt.throughput,
                "{}: ovlp {} !> ckpt {}",
                ovlp.label,
                ovlp.throughput,
                ckpt.throughput
            );
            assert!(
                lmbs.throughput > ovlp.throughput,
                "{}: lmbs {} !> ovlp {}",
                lmbs.label,
                lmbs.throughput,
                ovlp.throughput
            );
        }
    }

    #[test]
    fn render_contains_all_configs() {
        let rows = grid(&ModelConfig::gpt3_1_6b(), 4, 32, 2);
        let s = render("GPT3-1.6B", &rows);
        for l in ["V-base", "X-ovlp", "W-lmbs"] {
            assert!(s.contains(l), "{s}");
        }
    }
}
