//! Serving-latency sweep: forward-only fill–drain pipelines under
//! open-loop load, with and without injected faults.
//!
//! Not a paper artifact — ROADMAP item 3's question, priced in the
//! currency users feel: what does a rack failure do to p99 latency when
//! the pipeline is *serving*, not training? Each of the five training
//! schemes contributes its analytic cost model (the scheme decides how
//! the model is partitioned, so its per-stage forward time differs); the
//! pipeline itself is always the forward-only chain. A seeded Poisson
//! trace drives the emulator's serving loop at a range of offered loads
//! `ρ` (arrival rate over saturated service rate), and each load point
//! runs pristine and under three fault cases: a mid-pipeline crash, a
//! correlated rack failure, and a 3× straggler.
//!
//! Two gates hold (enforced by the binary and CI):
//! * **Closed form** — with every request released at t = 0 and one
//!   request per micro-batch, the emulated serving makespan under the
//!   unit grid is exactly `(m + p − 1)·F`, i.e. the classic fill–drain
//!   bubble fraction `(p − 1)/(m + p − 1)`;
//! * **Finite p99 under faults** — a crash or rack failure strands
//!   requests but never the pipe: error sentinels drain the downstream
//!   stages, the stranded micro-batches are retried within policy, and
//!   every request still completes with a finite p99.

use crate::table::Table;
use mario_cluster::{
    form_batches, poisson_arrivals, serve, BatchPolicy, EmulatorConfig, FaultKind, FaultPlan,
    Request, RetryPolicy, ServeConfig,
};
use mario_ir::{CostModel, DeviceId, Instr, Nanos, SchemeKind, Topology, UnitCost};
use mario_model::{AnalyticCost, GpuSpec, ModelConfig, TrainSetup};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Pipeline depth of every serving sweep point.
pub const PP: u32 = 4;

/// Offered-load points of the full sweep (arrival rate over saturated
/// service rate). The SLO-attainment cliff lives around ρ = 1.
pub const FULL_LOADS: [f64; 4] = [0.5, 0.8, 1.0, 1.3];

/// The five training schemes whose cost models the sweep prices.
pub const SCHEMES: [SchemeKind; 5] = [
    SchemeKind::GPipe,
    SchemeKind::OneFOneB,
    SchemeKind::Chimera,
    SchemeKind::Interleave { chunks: 2 },
    SchemeKind::Wave { chunks: 2 },
];

/// Which fault the scenario injects into the serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultCase {
    /// Pristine pipeline.
    None,
    /// A 3× straggler on the first stage (absorbable — no retry).
    Straggler,
    /// A mid-pipeline device crash (error sentinels + retry).
    Crash,
    /// A seeded correlated rack failure (crash + link stalls).
    Rack,
}

impl FaultCase {
    /// All cases, pristine first.
    pub const ALL: [FaultCase; 4] = [
        FaultCase::None,
        FaultCase::Straggler,
        FaultCase::Crash,
        FaultCase::Rack,
    ];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            FaultCase::None => "none",
            FaultCase::Straggler => "straggler",
            FaultCase::Crash => "crash",
            FaultCase::Rack => "rack",
        }
    }

    /// Whether the case injects a hard fault the serve loop must retry
    /// past (as opposed to absorbing or not faulting at all).
    pub fn is_hard(&self) -> bool {
        matches!(self, FaultCase::Crash | FaultCase::Rack)
    }
}

/// One sweep point and its serving digest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServePoint {
    /// Cost-model scheme label (`G`, `V`, `X`, `W`, `H`).
    pub scheme: String,
    /// Injected fault case.
    pub fault: String,
    /// Offered load ρ.
    pub load: f64,
    /// Requests offered.
    pub requests: u32,
    /// Requests completed (on time or late).
    pub completed: u32,
    /// Completed requests past their deadline.
    pub deadline_misses: u32,
    /// Micro-batch re-dispatches.
    pub retries: u32,
    /// Pipeline attempts (1 = no failure).
    pub attempts: u32,
    /// Faults that killed an attempt.
    pub faults_hit: usize,
    /// Median completion latency, ns.
    pub p50_ns: Nanos,
    /// 99th-percentile completion latency, ns.
    pub p99_ns: Nanos,
    /// Fraction of offered requests completed within deadline.
    pub slo_attainment: f64,
    /// In-deadline completions per second.
    pub goodput_rps: f64,
    /// Whether the scenario upheld its invariant.
    pub ok: bool,
    /// Failure description when `ok` is false.
    pub outcome: String,
}

/// Runs one sweep point: `scheme`'s cost model, offered load `rho`,
/// fault case `fault`.
fn scenario(scheme: SchemeKind, fault: FaultCase, rho: f64, smoke: bool) -> ServePoint {
    let setup = TrainSetup::pipeline(
        ModelConfig::gpt3_1_6b(),
        GpuSpec::a100_40g(),
        Topology::new(scheme, PP),
        2,
    );
    let cost = AnalyticCost::new(&setup);
    // Per-slot forward time of this scheme's partitioning: the saturated
    // pipeline drains one micro-batch (max_batch requests) every F ns.
    let f = cost.duration(DeviceId(0), &Instr::forward(0u32, 0u32));
    let batch = BatchPolicy {
        max_batch: 4,
        max_wait_ns: f,
    };
    let count: u32 = if smoke { 16 } else { 48 };
    let mean_gap = (f as f64 / (rho * batch.max_batch as f64)).round() as Nanos;
    let slo_ns = (PP as Nanos + 6) * f;
    let requests = poisson_arrivals(11 + scheme_index(scheme), count, mean_gap.max(1), slo_ns);

    // Fault plans are drawn against the first attempt's schedule (one
    // micro-batch per formed batch).
    let micros = form_batches(&requests, batch).len() as u32;
    let schedule = generate(ScheduleConfig::new(SchemeKind::ForwardOnly, PP, micros));
    let plan = match fault {
        FaultCase::None => FaultPlan::none(),
        FaultCase::Straggler => FaultPlan::none().with(FaultKind::Slowdown {
            device: DeviceId(0),
            factor: 3.0,
            from_pc: 0,
            until_pc: usize::MAX,
        }),
        FaultCase::Crash => {
            let mid = DeviceId(PP / 2);
            let pc = schedule.program(mid).len() / 2;
            FaultPlan::none().with(FaultKind::Crash { device: mid, pc })
        }
        FaultCase::Rack => FaultPlan::rack_failure(7, &schedule),
    };

    let cfg = ServeConfig {
        emulator: EmulatorConfig {
            channel_capacity: 1,
            // Rack failures include link stalls; keep their real-time
            // watchdog wait short.
            watchdog: Duration::from_millis(300),
            ..Default::default()
        },
        batch,
        retry: RetryPolicy {
            max_retries: 3,
            backoff_ns: f,
            drop_missed: false,
        },
    };

    let build = |m: u32| generate(ScheduleConfig::new(SchemeKind::ForwardOnly, PP, m));
    let (serving, faults_hit, mut ok, mut outcome) =
        match serve(build, &cost, &cfg, &plan, &requests) {
            Ok(out) => {
                let s = out.serving.clone();
                let mut ok = true;
                let mut why = String::new();
                if s.completed + s.failed != s.requests {
                    ok = false;
                    why = format!("{} of {} requests unaccounted", s.completed, s.requests);
                }
                // Retry within policy: every request completes even under
                // a hard fault (drop_missed is off), and the completions
                // carry a finite latency digest.
                if s.completed != s.requests {
                    ok = false;
                    why = format!("{}/{} completed", s.completed, s.requests);
                }
                if s.completed > 0 && (s.p99_ns == 0 || s.p99_ns == u64::MAX) {
                    ok = false;
                    why = format!("p99 not finite: {}", s.p99_ns);
                }
                if fault.is_hard() && out.fault_log.is_empty() {
                    ok = false;
                    why = "hard fault never fired".into();
                }
                if fault.is_hard() && s.attempts < 2 {
                    ok = false;
                    why = "hard fault did not cost an attempt".into();
                }
                (s, out.fault_log.len(), ok, why)
            }
            Err(e) => (
                Default::default(),
                0,
                false,
                format!("serve failed: {e}"),
            ),
        };
    if ok {
        outcome = "ok".into();
    }
    // A degraded pipeline can only hurt the tail, never help it (same
    // trace, same batches): cross-checked in `run` against the pristine
    // row, here we only pin obvious nonsense.
    if serving.slo_attainment > 1.0 {
        ok = false;
        outcome = format!("slo attainment {} > 1", serving.slo_attainment);
    }
    ServePoint {
        scheme: scheme.shape_letter().to_string(),
        fault: fault.label().to_string(),
        load: rho,
        requests: serving.requests,
        completed: serving.completed,
        deadline_misses: serving.deadline_misses,
        retries: serving.retries,
        attempts: serving.attempts,
        faults_hit,
        p50_ns: serving.p50_ns,
        p99_ns: serving.p99_ns,
        slo_attainment: serving.slo_attainment,
        goodput_rps: serving.goodput_rps,
        ok,
        outcome,
    }
}

fn scheme_index(s: SchemeKind) -> u64 {
    SCHEMES
        .iter()
        .position(|&k| k == s)
        .map(|i| i as u64)
        .unwrap_or(0)
}

/// Sweeps the serving grid: every scheme's cost model × offered loads ×
/// fault cases (smoke: one load, pristine + rack only).
pub fn run(smoke: bool) -> Vec<ServePoint> {
    let loads: &[f64] = if smoke { &[0.8] } else { &FULL_LOADS };
    let cases: &[FaultCase] = if smoke {
        &[FaultCase::None, FaultCase::Rack]
    } else {
        &FaultCase::ALL
    };
    let mut rows = Vec::new();
    for scheme in SCHEMES {
        for &rho in loads {
            for &fault in cases {
                rows.push(scenario(scheme, fault, rho, smoke));
            }
        }
    }
    rows
}

/// One closed-form gate row: all `m` requests released at t = 0, one
/// request per micro-batch, unit-grid cost — the emulated serving
/// makespan must be exactly `(m + p − 1)·F`, the fill–drain closed form
/// behind the bubble fraction `(p − 1)/(m + p − 1)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClosedFormRow {
    /// Pipeline depth.
    pub p: u32,
    /// Micro-batches.
    pub m: u32,
    /// Emulated serving makespan, ns.
    pub total_ns: Nanos,
    /// The closed form `(m + p − 1)·F`, ns.
    pub expect_ns: Nanos,
    /// The implied bubble fraction `(p − 1)/(m + p − 1)`.
    pub bubble_fraction: f64,
    /// Whether the closed form held exactly.
    pub ok: bool,
}

/// Runs the closed-form gate across depths.
pub fn closed_form() -> Vec<ClosedFormRow> {
    const F: Nanos = 1_000;
    [(2u32, 4u32), (4, 8), (8, 3)]
        .into_iter()
        .map(|(p, m)| {
            let requests: Vec<Request> = (0..m)
                .map(|id| Request {
                    id,
                    arrival_ns: 0,
                    deadline_ns: Nanos::MAX,
                })
                .collect();
            let cfg = ServeConfig {
                batch: BatchPolicy {
                    max_batch: 1,
                    max_wait_ns: 0,
                },
                ..ServeConfig::default()
            };
            let out = serve(
                |micros| generate(ScheduleConfig::new(SchemeKind::ForwardOnly, p, micros)),
                &UnitCost::paper_grid(),
                &cfg,
                &FaultPlan::none(),
                &requests,
            )
            .expect("pristine closed-form serve completes");
            let total_ns = out.serving.makespan_ns;
            let expect_ns = ((m + p - 1) as Nanos) * F;
            // Integer cross-multiplied bubble check:
            // (total − m·F)/total == (p − 1)/(m + p − 1).
            let ok = total_ns == expect_ns
                && (total_ns - m as Nanos * F) * (m + p - 1) as Nanos
                    == (p - 1) as Nanos * total_ns;
            ClosedFormRow {
                p,
                m,
                total_ns,
                expect_ns,
                bubble_fraction: (p - 1) as f64 / (m + p - 1) as f64,
                ok,
            }
        })
        .collect()
}

/// Renders the sweep table, the cliff summary and the verdict line.
pub fn render(rows: &[ServePoint]) -> String {
    let mut t = Table::new(&[
        "cost model",
        "fault",
        "rho",
        "done",
        "miss",
        "retry",
        "att",
        "p50 us",
        "p99 us",
        "SLO %",
        "goodput rps",
    ]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            r.fault.clone(),
            format!("{:.1}", r.load),
            format!("{}/{}", r.completed, r.requests),
            r.deadline_misses.to_string(),
            r.retries.to_string(),
            r.attempts.to_string(),
            format!("{:.1}", r.p50_ns as f64 / 1e3),
            format!("{:.1}", r.p99_ns as f64 / 1e3),
            if r.ok {
                format!("{:.1}", r.slo_attainment * 100.0)
            } else {
                format!("VIOLATION: {}", r.outcome)
            },
            format!("{:.0}", r.goodput_rps),
        ]);
    }
    let bad = rows.iter().filter(|r| !r.ok).count();
    let mut out = t.render();
    // The cliff, summarized: pristine SLO attainment per load, averaged
    // over the five cost models.
    let mut cliff: Vec<(f64, f64, usize)> = Vec::new();
    for r in rows.iter().filter(|r| r.fault == "none") {
        match cliff.iter_mut().find(|(l, _, _)| *l == r.load) {
            Some((_, sum, n)) => {
                *sum += r.slo_attainment;
                *n += 1;
            }
            None => cliff.push((r.load, r.slo_attainment, 1)),
        }
    }
    if cliff.len() > 1 {
        out.push_str("\nSLO-attainment cliff (pristine, mean over cost models):\n");
        for (l, sum, n) in &cliff {
            out.push_str(&format!("  rho {:.1}: {:.1}%\n", l, sum / *n as f64 * 100.0));
        }
    }
    out.push_str(&format!(
        "\n**Verdict:** {}/{} serving scenarios upheld the invariant \
         (complete + finite p99 + retry within policy).\n",
        rows.len() - bad,
        rows.len()
    ));
    out
}

/// Renders the closed-form gate table.
pub fn render_closed_form(rows: &[ClosedFormRow]) -> String {
    let mut t = Table::new(&["p", "m", "makespan ns", "closed form", "bubble"]);
    for r in rows {
        t.row(vec![
            r.p.to_string(),
            r.m.to_string(),
            r.total_ns.to_string(),
            if r.ok {
                r.expect_ns.to_string()
            } else {
                format!("VIOLATION: expected {}", r.expect_ns)
            },
            format!("{:.3}", r.bubble_fraction),
        ]);
    }
    let bad = rows.iter().filter(|r| !r.ok).count();
    let mut out = t.render();
    out.push_str(&format!(
        "\n**Verdict:** {}/{} fill–drain points matched (m+p-1)·F exactly \
         (bubble fraction (p-1)/(m+p-1)).\n",
        rows.len() - bad,
        rows.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_holds_at_every_depth() {
        for r in closed_form() {
            assert!(r.ok, "p={} m={}: {} != {}", r.p, r.m, r.total_ns, r.expect_ns);
        }
    }

    #[test]
    fn smoke_sweep_upholds_the_invariant() {
        let rows = run(true);
        assert_eq!(rows.len(), SCHEMES.len() * 2);
        for r in &rows {
            assert!(r.ok, "{} {} rho {}: {}", r.scheme, r.fault, r.load, r.outcome);
        }
        // The rack rows actually exercised the sentinel path.
        for r in rows.iter().filter(|r| r.fault == "rack") {
            assert!(r.attempts >= 2, "{}: attempts {}", r.scheme, r.attempts);
            assert!(r.completed == r.requests);
            assert!(r.p99_ns > 0 && r.p99_ns < u64::MAX);
        }
    }

    #[test]
    fn overload_degrades_slo_attainment() {
        // The cliff: for one cost model, pristine attainment at rho 0.5
        // is no worse than at rho 1.3.
        let low = scenario(SchemeKind::OneFOneB, FaultCase::None, 0.5, true);
        let high = scenario(SchemeKind::OneFOneB, FaultCase::None, 1.3, true);
        assert!(low.ok && high.ok, "{} / {}", low.outcome, high.outcome);
        assert!(
            low.slo_attainment >= high.slo_attainment,
            "{} < {}",
            low.slo_attainment,
            high.slo_attainment
        );
        assert!(low.p99_ns <= high.p99_ns);
    }
}
