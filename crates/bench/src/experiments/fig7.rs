//! Figure 7: per-device peak memory footprint — checkpointing both
//! *reduces* and *balances* memory across the pipeline.

use crate::harness::{run_config, ConfigResult, ExpConfig, Variant};
use crate::table::{gb, Table};
use mario_ir::SchemeKind;
use mario_model::ModelConfig;

/// Per-device profiles for one model/scheme across the four variants.
pub fn profiles(
    model: &ModelConfig,
    scheme: SchemeKind,
    pp: u32,
    mbs: u32,
    gbs: u32,
) -> Vec<ConfigResult> {
    Variant::ALL
        .iter()
        .map(|&v| {
            run_config(
                &ExpConfig::pipeline(model.clone(), scheme, pp, mbs, gbs).variant(v),
            )
        })
        .collect()
}

/// The Fig. 7 experiment: GPT3-1.6B / LLaMA2-3B on 8 GPUs and the 13B
/// models on 32 GPUs, 1F1B profiles (the other schemes are in fig6/table5).
pub fn run() -> Vec<(String, Vec<ConfigResult>)> {
    vec![
        (
            "GPT3-1.6B / 8 GPUs".into(),
            profiles(&ModelConfig::gpt3_1_6b(), SchemeKind::OneFOneB, 8, 2, 128),
        ),
        (
            "LLaMA2-3B / 8 GPUs".into(),
            profiles(&ModelConfig::llama2_3b(), SchemeKind::OneFOneB, 8, 2, 128),
        ),
        (
            "GPT3-13B / 32 GPUs".into(),
            profiles(&ModelConfig::gpt3_13b(), SchemeKind::OneFOneB, 32, 2, 128),
        ),
        (
            "LLaMA2-13B / 32 GPUs".into(),
            profiles(&ModelConfig::llama2_13b(), SchemeKind::OneFOneB, 32, 2, 128),
        ),
    ]
}

/// Renders one profile set: device index columns, one row per variant.
pub fn render(title: &str, rows: &[ConfigResult]) -> String {
    let devices = rows[0].per_device_peak.len();
    let step = (devices / 8).max(1); // show at most 8 columns
    let mut header: Vec<String> = vec!["Config".into()];
    let shown: Vec<usize> = (0..devices).step_by(step).collect();
    header.extend(shown.iter().map(|d| format!("d{d} (GB)")));
    let mut t = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for r in rows {
        let mut cells = vec![r.label.clone()];
        cells.extend(shown.iter().map(|&d| gb(r.per_device_peak[d])));
        t.row(cells);
    }
    format!("{title}\n{}", t.render())
}

/// Imbalance metric: `max / min` of per-device peaks.
pub fn imbalance(r: &ConfigResult) -> f64 {
    let (lo, hi) = r.mem_range();
    hi as f64 / lo.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mario_balances_memory_across_devices() {
        let rows = profiles(&ModelConfig::gpt3_1_6b(), SchemeKind::OneFOneB, 8, 2, 64);
        let base = &rows[0];
        let ovlp = &rows[2];
        assert!(imbalance(base) > 1.5, "base imbalance {}", imbalance(base));
        assert!(
            imbalance(ovlp) < imbalance(base) / 1.2,
            "ovlp {} vs base {}",
            imbalance(ovlp),
            imbalance(base)
        );
    }

    #[test]
    fn base_memory_declines_along_the_pipeline() {
        let rows = profiles(&ModelConfig::gpt3_1_6b(), SchemeKind::OneFOneB, 8, 2, 64);
        let peaks = &rows[0].per_device_peak;
        // First device holds the most on-the-fly activations (modulo the
        // embedding extras on both ends).
        assert!(peaks[0] > peaks[6], "{peaks:?}");
    }

    #[test]
    fn lmbs_stays_more_balanced_than_base() {
        let rows = profiles(&ModelConfig::gpt3_1_6b(), SchemeKind::OneFOneB, 8, 2, 64);
        assert!(imbalance(&rows[3]) < imbalance(&rows[0]));
    }

    #[test]
    fn render_has_one_row_per_variant() {
        let rows = profiles(&ModelConfig::gpt3_1_6b(), SchemeKind::OneFOneB, 8, 2, 64);
        let s = render("test", &rows);
        assert_eq!(s.lines().count(), 1 + 2 + 4);
    }
}
