//! Figure 8: model-parameter scaling — the largest GPT3 variant (64
//! layers, 32 heads, seqlen 1024, global batch 64) each configuration can
//! train on 16 A100-40G GPUs before OOM, sweeping the hidden size upward
//! by 256 from 512.

use crate::harness::{run_config, ExpConfig, Variant};
use crate::table::Table;
use mario_core::passes::{run_graph_tuner, GraphTunerOptions};
use mario_core::simulator::simulate_memory;
use mario_ir::{SchemeKind, Topology};
use mario_model::{AnalyticCost, GpuSpec, ModelConfig, TrainSetup};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};

/// Scaling result for one (scheme, variant).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalePoint {
    /// `V-ovlp`-style label.
    pub label: String,
    /// Largest feasible hidden size.
    pub max_hidden: u32,
    /// Parameter count at that hidden size.
    pub max_params: u64,
    /// Throughput at the largest feasible size (samples/s).
    pub throughput: f64,
}

const PP: u32 = 16;
const GBS: u32 = 64;
const STEP: u32 = 256;
const START: u32 = 512;
const LIMIT: u32 = 20_480;

/// Does (scheme, variant, hidden) fit in device memory? Memory-only check,
/// as in the paper's OOM sweep.
pub fn fits(scheme: SchemeKind, variant: Variant, hidden: u32) -> bool {
    let model = ModelConfig::gpt3_scaling(hidden);
    let gpu = GpuSpec::a100_40g();
    let topo = Topology::new(scheme, PP);
    if model.layers < topo.num_stages() {
        return false;
    }
    let mbs = match variant {
        Variant::Lmbs => 2,
        _ => 1,
    };
    let micros = GBS / mbs;
    let setup = TrainSetup::pipeline(model, gpu.clone(), topo, mbs);
    let cost = AnalyticCost::new(&setup);
    let mut schedule = generate(ScheduleConfig::new(scheme, PP, micros));
    match variant {
        Variant::Base => {}
        Variant::Ckpt => {
            run_graph_tuner(&mut schedule, &cost, GraphTunerOptions::ckpt_only());
        }
        Variant::Ovlp | Variant::Lmbs => {
            // Memory is what matters here; prepose does not change the
            // bound (its swaps are memory-checked), so skip it for speed.
            run_graph_tuner(
                &mut schedule,
                &cost,
                GraphTunerOptions {
                    prepose: false,
                    ..GraphTunerOptions::mario()
                },
            );
        }
    }
    simulate_memory(&schedule, &cost, Some(gpu.mem_bytes)).oom.is_none()
}

/// Sweeps hidden sizes for one (scheme, variant).
pub fn max_feasible(scheme: SchemeKind, variant: Variant) -> Option<ScalePoint> {
    let mut best = None;
    let mut hidden = START;
    while hidden <= LIMIT {
        if fits(scheme, variant, hidden) {
            best = Some(hidden);
            hidden += STEP;
        } else {
            break;
        }
    }
    let max_hidden = best?;
    let model = ModelConfig::gpt3_scaling(max_hidden);
    let mbs = 1;
    let result = run_config(
        &ExpConfig {
            use_emulator: false, // simulator throughput, like the sweep
            prepose: false,
            ..ExpConfig::pipeline(model.clone(), scheme, PP, mbs, GBS)
        }
        .variant(variant),
    );
    Some(ScalePoint {
        label: result.label,
        max_hidden,
        max_params: model.total_params(),
        throughput: result.throughput,
    })
}

/// The full Fig. 8 sweep: V/X/W × {base, ovlp, lmbs}.
pub fn run() -> Vec<ScalePoint> {
    let mut out = Vec::new();
    for scheme in [
        SchemeKind::OneFOneB,
        SchemeKind::Chimera,
        SchemeKind::Interleave { chunks: 2 },
    ] {
        for v in [Variant::Base, Variant::Ovlp, Variant::Lmbs] {
            if let Some(p) = max_feasible(scheme, v) {
                out.push(p);
            }
        }
    }
    out
}

/// Renders the scaling table with per-scheme improvement factors.
pub fn render(points: &[ScalePoint]) -> String {
    let mut t = Table::new(&[
        "Config",
        "Max hidden",
        "Max params",
        "Scale-up vs base",
        "Throughput (samples/s)",
    ]);
    let mut base_params = 0u64;
    for p in points {
        if p.label.ends_with("base") {
            base_params = p.max_params;
        }
        t.row(vec![
            p.label.clone(),
            p.max_hidden.to_string(),
            format!("{:.2}B", p.max_params as f64 / 1e9),
            if base_params > 0 {
                format!("{:.1}x", p.max_params as f64 / base_params as f64)
            } else {
                "-".into()
            },
            format!("{:.2}", p.throughput),
        ]);
    }
    format!("Model parameter scaling (16 GPUs, Fig. 8)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mario_greatly_extends_feasible_model_size_for_v() {
        // Fig. 8: V-base handles 3B, V-ovlp 16B (5.3x). Check the shape:
        // ovlp fits a hidden size at least 2x base's.
        let base = max_feasible(SchemeKind::OneFOneB, Variant::Base).unwrap();
        let ovlp = max_feasible(SchemeKind::OneFOneB, Variant::Ovlp).unwrap();
        assert!(
            ovlp.max_params as f64 / base.max_params as f64 > 2.0,
            "base {:.2e} vs ovlp {:.2e}",
            base.max_params as f64,
            ovlp.max_params as f64
        );
    }

    #[test]
    fn chimera_scales_less_due_to_weight_duplication() {
        let v = max_feasible(SchemeKind::OneFOneB, Variant::Ovlp).unwrap();
        let x = max_feasible(SchemeKind::Chimera, Variant::Ovlp).unwrap();
        assert!(
            x.max_params < v.max_params,
            "X {:.2e} should trail V {:.2e} (2x weights)",
            x.max_params as f64,
            v.max_params as f64
        );
    }

    #[test]
    fn fits_is_monotone_in_hidden_size() {
        assert!(fits(SchemeKind::OneFOneB, Variant::Base, 512));
        assert!(!fits(SchemeKind::OneFOneB, Variant::Base, LIMIT));
    }
}
