//! Critical-path profiler bench: causal attribution for every
//! nanosecond of the makespan.
//!
//! Not a paper artifact — the acceptance harness for
//! `mario_core::critpath`. Three sweeps, each with an exact gate:
//!
//! * **path sweep** — every scheme × checkpoint mode, two iterations on
//!   the unit grid: the critical path must tile `[0, makespan]` bit for
//!   bit (`path_ns == makespan_ns`), every on-path op must have zero
//!   slack, and for selected points the span graph the analyzer consumed
//!   must be bit-identical across all three executors (DP simulator,
//!   thread emulator, event emulator). Zero-slack ops form a *superset*
//!   of the walked path in general (cost ties create parallel critical
//!   paths); ZB-H1's unit-grid path is unique, so there the two sets are
//!   pinned equal.
//! * **what-if grid** — counterfactual re-timings of a recorded graph
//!   (stragglers, windowed slowdowns, scoped link latency, free
//!   checkpoints) must equal ground-truth re-simulation exactly, clock
//!   for clock.
//! * **closed-form gap** — 1F1B's path is exactly `(p−1)·t` longer than
//!   ZB-H1's: the analyzer reproduces the zero-bubble headline from the
//!   recorded graphs alone.

use crate::harness::channel_capacity;
use crate::table::Table;
use mario_core::critpath::{analyze, whatif, CritReport, WhatIf};
use mario_core::simulator::{simulate_timeline_ckpt, simulate_timeline_with};
use mario_ir::{
    CheckpointPolicy, DeviceId, LinkSlack, PerturbationProfile, Schedule, SchemeKind,
    ShardedWrite, SlowdownWindow, UnitCost,
};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};

/// Pipeline depth of the sweep.
const DEVICES: u32 = 4;
/// Micro-batches per iteration.
const MICROS: u32 = 8;
/// Back-to-back iterations per recording.
const ITERS: u32 = 2;

/// The sweep's cost model: the paper's unit grid, with a 60 kB model
/// shard per device so the sharded checkpoint modes have a real cost
/// (30 µs per flush at 2000 B/µs — the `ckptshard` bench's economy).
fn cost() -> UnitCost {
    UnitCost::paper_grid().with_shard_bytes(60_000)
}

/// Checkpoint modes the path sweep crosses with every scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CkptMode {
    /// No checkpointing.
    None,
    /// Synchronous flat write at every iteration boundary.
    Flat,
    /// Sharded write, flushed synchronously.
    Sharded,
    /// Sharded write with chunks drained into pipeline bubbles.
    Async,
}

impl CkptMode {
    /// All four modes, cheapest first.
    pub const ALL: [CkptMode; 4] = [CkptMode::None, CkptMode::Flat, CkptMode::Sharded, CkptMode::Async];

    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            CkptMode::None => "none",
            CkptMode::Flat => "flat",
            CkptMode::Sharded => "sharded",
            CkptMode::Async => "async",
        }
    }

    /// The emulator/simulator policy this mode stands for.
    pub fn policy(&self) -> Option<CheckpointPolicy> {
        let sharded = ShardedWrite::new(2_000, 500);
        match self {
            CkptMode::None => None,
            CkptMode::Flat => Some(CheckpointPolicy::every(1).with_write_ns(5_000)),
            CkptMode::Sharded => Some(CheckpointPolicy::every(1).with_sharded(sharded)),
            CkptMode::Async => {
                Some(CheckpointPolicy::every(1).with_sharded(sharded.with_async_overlap()))
            }
        }
    }
}

/// One (scheme, checkpoint mode) point of the path sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathRow {
    /// Scheme name (`OneFOneB`, ...).
    pub scheme: String,
    /// Checkpoint mode label.
    pub ckpt: String,
    /// Recorded makespan, ns.
    pub makespan_ns: u64,
    /// Critical-path length, ns — gated equal to `makespan_ns`.
    pub path_ns: u64,
    /// Segments on the path.
    pub segments: usize,
    /// Compute time on the path, ns.
    pub compute_ns: u64,
    /// Communication (launch + wire) on the path, ns.
    pub comm_ns: u64,
    /// Synchronous checkpoint writes on the path, ns.
    pub ckpt_ns: u64,
    /// Ops on the walked path.
    pub on_path_ops: usize,
    /// Ops with zero slack (≥ `on_path_ops`; == for ZB-H1).
    pub zero_slack_ops: usize,
    /// Path tiles the makespan, on-path ops all have zero slack, and the
    /// ZB-H1 uniqueness pin holds.
    pub ok: bool,
}

/// One counterfactual of the what-if grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhatIfRow {
    /// Scheme name.
    pub scheme: String,
    /// Scenario label (`straggler d0 x3`, ...).
    pub scenario: String,
    /// Makespan predicted by re-timing the recorded graph, ns.
    pub predicted_ns: u64,
    /// Makespan of the ground-truth re-simulation, ns.
    pub truth_ns: u64,
    /// Exact match, every device clock included.
    pub ok: bool,
}

/// One (p, m) point of the 1F1B vs ZB-H1 closed-form gap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GapRow {
    /// Pipeline depth.
    pub p: u32,
    /// Micro-batches.
    pub m: u32,
    /// 1F1B path length, ns.
    pub v_path_ns: u64,
    /// ZB-H1 path length, ns.
    pub zb_path_ns: u64,
    /// Measured gap, ns.
    pub gap_ns: u64,
    /// Expected gap `(p−1)·t`, ns.
    pub expect_ns: u64,
    /// Gap matches the closed form exactly.
    pub ok: bool,
}

/// Every scheme the sweep covers.
pub fn schemes() -> Vec<SchemeKind> {
    vec![
        SchemeKind::GPipe,
        SchemeKind::OneFOneB,
        SchemeKind::Chimera,
        SchemeKind::Interleave { chunks: 2 },
        SchemeKind::Wave { chunks: 2 },
        SchemeKind::ForwardOnly,
        SchemeKind::ZeroBubbleH1,
        SchemeKind::ZeroBubbleV,
    ]
}

fn record(
    scheme: SchemeKind,
    mode: CkptMode,
) -> (Schedule, mario_ir::SpanGraph, u64) {
    let s = generate(ScheduleConfig::new(scheme, DEVICES, MICROS));
    let t = simulate_timeline_ckpt(
        &s,
        &cost(),
        channel_capacity(scheme),
        &PerturbationProfile::identity(),
        ITERS,
        mode.policy(),
    )
    .expect("schedule simulates");
    (s, t.spans, t.total_ns)
}

fn path_point(scheme: SchemeKind, mode: CkptMode) -> PathRow {
    let (s, spans, total_ns) = record(scheme, mode);
    let report = analyze(&s, &spans);
    let tiles = path_tiles(&report);
    let on_path_ops: usize = report
        .on_path
        .iter()
        .map(|d| d.iter().filter(|&&x| x).count())
        .sum();
    let zero_slack_ops: usize = report
        .slack
        .iter()
        .map(|d| d.iter().filter(|&&x| x == 0).count())
        .sum();
    let on_path_zero_slack = report.on_path.iter().zip(&report.slack).all(|(on, sl)| {
        on.iter().zip(sl).all(|(&o, &s)| !o || s == 0)
    });
    // ZB-H1's unit-grid path is unique: zero-slack ops ARE the path.
    let unique_ok =
        scheme != SchemeKind::ZeroBubbleH1 || zero_slack_ops == on_path_ops;
    let ok = report.makespan == total_ns
        && tiles
        && report.breakdown.bubble_ns == 0
        && on_path_zero_slack
        && unique_ok;
    let b = &report.breakdown;
    PathRow {
        scheme: format!("{scheme:?}"),
        ckpt: mode.label().to_string(),
        makespan_ns: report.makespan,
        path_ns: b.total(),
        segments: report.path.len(),
        compute_ns: b.compute_ns,
        comm_ns: b.comm_ns(),
        ckpt_ns: b.ckpt_ns,
        on_path_ops,
        zero_slack_ops,
        ok,
    }
}

fn path_tiles(report: &CritReport) -> bool {
    let mut cursor = 0;
    for seg in &report.path {
        if seg.start != cursor || seg.end < seg.start {
            return false;
        }
        cursor = seg.end;
    }
    cursor == report.makespan && report.breakdown.total() == report.makespan
}

/// The scheme × checkpoint-mode path sweep. `smoke` trims to three
/// schemes × two modes.
pub fn path_sweep(smoke: bool) -> Vec<PathRow> {
    let schemes = if smoke {
        vec![SchemeKind::OneFOneB, SchemeKind::ZeroBubbleH1, SchemeKind::ForwardOnly]
    } else {
        schemes()
    };
    let modes: &[CkptMode] = if smoke {
        &[CkptMode::None, CkptMode::Flat]
    } else {
        &CkptMode::ALL
    };
    let mut out = Vec::new();
    for &scheme in &schemes {
        for &mode in modes {
            out.push(path_point(scheme, mode));
        }
    }
    out
}

/// Three-way executor check: the span graph the analyzer consumes is
/// bit-identical whether recorded by the DP simulator, the thread
/// emulator, or the event emulator. Returns `(point label, ok)` pairs.
pub fn backend_parity(smoke: bool) -> Vec<(String, bool)> {
    let points: &[(SchemeKind, CkptMode)] = if smoke {
        &[(SchemeKind::OneFOneB, CkptMode::None)]
    } else {
        &[
            (SchemeKind::OneFOneB, CkptMode::None),
            (SchemeKind::OneFOneB, CkptMode::Flat),
            (SchemeKind::ZeroBubbleH1, CkptMode::Sharded),
            (SchemeKind::Chimera, CkptMode::None),
        ]
    };
    points
        .iter()
        .map(|&(scheme, mode)| {
            let (s, sim_spans, _) = record(scheme, mode);
            let cost = cost();
            let emu = |backend| {
                mario_cluster::run(
                    &s,
                    &cost,
                    mario_cluster::EmulatorConfig {
                        channel_capacity: channel_capacity(scheme),
                        iterations: ITERS,
                        jitter: 0.0,
                        checkpoint: mode.policy(),
                        record_spans: true,
                        backend,
                        ..Default::default()
                    },
                )
                .expect("emulated run completes")
                .spans
                .expect("spans recorded")
            };
            let thread = emu(mario_cluster::EmulatorBackend::Thread);
            let event = emu(mario_cluster::EmulatorBackend::Event);
            let ok = sim_spans == thread && thread == event;
            (format!("{scheme:?}/{}", mode.label()), ok)
        })
        .collect()
}

/// The what-if validation grid: counterfactual re-timings vs
/// ground-truth re-simulation, exact to the device clock.
pub fn whatif_grid(smoke: bool) -> Vec<WhatIfRow> {
    let schemes: &[SchemeKind] = if smoke {
        &[SchemeKind::OneFOneB]
    } else {
        &[SchemeKind::OneFOneB, SchemeKind::ZeroBubbleH1, SchemeKind::Chimera]
    };
    let cost = cost();
    let identity = PerturbationProfile::identity();
    let mut out = Vec::new();
    for &scheme in schemes {
        let cap = channel_capacity(scheme);
        let s = generate(ScheduleConfig::new(scheme, DEVICES, MICROS));
        let t = simulate_timeline_ckpt(&s, &cost, cap, &identity, ITERS, None)
            .expect("schedule simulates");
        let scenarios: Vec<(String, PerturbationProfile)> = vec![
            (
                "straggler d0 x3".into(),
                PerturbationProfile::identity().with_straggler(DeviceId(0), 3.0),
            ),
            (
                "straggler d2 x1.5".into(),
                PerturbationProfile::identity().with_straggler(DeviceId(2), 1.5),
            ),
            (
                "slowdown d1 pc3..17 iter0 x2.5".into(),
                PerturbationProfile::identity().with_slowdown(SlowdownWindow {
                    device: DeviceId(1),
                    factor: 2.5,
                    from_pc: 3,
                    until_pc: 17,
                    iteration: Some(0),
                }),
            ),
            (
                "link 0->1 +700ns all".into(),
                PerturbationProfile::identity().with_link_slack(LinkSlack {
                    src: DeviceId(0),
                    dst: DeviceId(1),
                    nth: None,
                    extra_ns: 700,
                    iteration: None,
                }),
            ),
            (
                "link 1->2 +700ns nth2 iter0".into(),
                PerturbationProfile::identity().with_link_slack(LinkSlack {
                    src: DeviceId(1),
                    dst: DeviceId(2),
                    nth: Some(2),
                    extra_ns: 700,
                    iteration: Some(0),
                }),
            ),
        ];
        for (label, profile) in scenarios {
            let truth = simulate_timeline_ckpt(&s, &cost, cap, &profile, ITERS, None)
                .expect("perturbed re-simulation completes");
            let w = whatif(&s, &t.spans, &WhatIf::perturb(&profile));
            out.push(WhatIfRow {
                scheme: format!("{scheme:?}"),
                scenario: label,
                predicted_ns: w.makespan,
                truth_ns: truth.total_ns,
                ok: w.makespan == truth.total_ns && w.device_clocks == truth.device_clocks,
            });
        }
        // Free-checkpoint counterfactual: record WITH a synchronous flat
        // write, re-time with the writes zeroed, compare against the
        // checkpoint-free ground truth.
        let flat = CkptMode::Flat.policy();
        let ck = simulate_timeline_ckpt(&s, &cost, cap, &identity, ITERS, flat)
            .expect("checkpointed run simulates");
        let free = simulate_timeline_ckpt(&s, &cost, cap, &identity, ITERS, None)
            .expect("checkpoint-free run simulates");
        let w = whatif(
            &s,
            &ck.spans,
            &WhatIf {
                profile: &identity,
                free_checkpoint: true,
            },
        );
        out.push(WhatIfRow {
            scheme: format!("{scheme:?}"),
            scenario: "ckpt writes free".into(),
            predicted_ns: w.makespan,
            truth_ns: free.total_ns,
            ok: w.makespan == free.total_ns && w.device_clocks == free.device_clocks,
        });
    }
    out
}

/// The 1F1B vs ZB-H1 closed-form path gap: exactly `(p−1)·t`.
pub fn closed_form_gap() -> Vec<GapRow> {
    [(2u32, 4u32), (4, 8), (8, 16)]
        .iter()
        .map(|&(p, m)| {
            let run = |scheme| {
                let s = generate(ScheduleConfig::new(scheme, p, m));
                let t = simulate_timeline_with(
                    &s,
                    &UnitCost::paper_grid(),
                    1,
                    &PerturbationProfile::identity(),
                )
                .unwrap();
                analyze(&s, &t.spans).breakdown.total()
            };
            let v = run(SchemeKind::OneFOneB);
            let zb = run(SchemeKind::ZeroBubbleH1);
            let expect = ((p - 1) * 1_000) as u64;
            GapRow {
                p,
                m,
                v_path_ns: v,
                zb_path_ns: zb,
                gap_ns: v.saturating_sub(zb),
                expect_ns: expect,
                ok: v.saturating_sub(zb) == expect,
            }
        })
        .collect()
}

/// Renders the path sweep.
pub fn render(rows: &[PathRow]) -> String {
    let mut t = Table::new(&[
        "scheme", "ckpt", "makespan (ns)", "path (ns)", "segs", "compute", "comm", "ckpt_ns",
        "on-path", "slack0", "ok",
    ]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            r.ckpt.clone(),
            r.makespan_ns.to_string(),
            r.path_ns.to_string(),
            r.segments.to_string(),
            r.compute_ns.to_string(),
            r.comm_ns.to_string(),
            r.ckpt_ns.to_string(),
            r.on_path_ops.to_string(),
            r.zero_slack_ops.to_string(),
            if r.ok { "yes".into() } else { "NO".into() },
        ]);
    }
    format!("critical path tiles the makespan (scheme x ckpt mode):\n{}", t.render())
}

/// Renders the what-if grid.
pub fn render_whatif(rows: &[WhatIfRow]) -> String {
    let mut t = Table::new(&["scheme", "scenario", "predicted (ns)", "re-sim (ns)", "ok"]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            r.scenario.clone(),
            r.predicted_ns.to_string(),
            r.truth_ns.to_string(),
            if r.ok { "yes".into() } else { "NO".into() },
        ]);
    }
    format!("what-if re-timing vs ground-truth re-simulation:\n{}", t.render())
}

/// Renders the closed-form gap table and the backend parity checks.
pub fn render_gap(gaps: &[GapRow], parity: &[(String, bool)]) -> String {
    let mut t = Table::new(&["p", "m", "1F1B path", "ZB-H1 path", "gap", "(p-1)t", "ok"]);
    for r in gaps {
        t.row(vec![
            r.p.to_string(),
            r.m.to_string(),
            r.v_path_ns.to_string(),
            r.zb_path_ns.to_string(),
            r.gap_ns.to_string(),
            r.expect_ns.to_string(),
            if r.ok { "yes".into() } else { "NO".into() },
        ]);
    }
    let mut out = format!("1F1B vs ZB-H1 closed-form path gap:\n{}", t.render());
    out.push_str("\nthree-way span-graph parity (sim / thread / event):\n");
    for (label, ok) in parity {
        out.push_str(&format!("  {label}: {}\n", if *ok { "identical" } else { "DIVERGED" }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_clean() {
        assert!(path_sweep(true).iter().all(|r| r.ok));
        assert!(whatif_grid(true).iter().all(|r| r.ok));
        assert!(closed_form_gap().iter().all(|r| r.ok));
        assert!(backend_parity(true).iter().all(|(_, ok)| *ok));
    }

    #[test]
    fn checkpoint_modes_show_up_on_the_path() {
        let flat = path_point(SchemeKind::OneFOneB, CkptMode::Flat);
        assert!(flat.ok);
        assert!(flat.ckpt_ns > 0, "flat write must appear on the path");
        let none = path_point(SchemeKind::OneFOneB, CkptMode::None);
        assert_eq!(none.ckpt_ns, 0);
        assert!(flat.makespan_ns > none.makespan_ns);
    }
}
