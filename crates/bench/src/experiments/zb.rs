//! Zero-bubble headline: ZB-H1's steady-state bubble sits strictly below
//! 1F1B's at every depth.
//!
//! Two layers, mirroring the paper's Fig. 1 framing:
//!
//! 1. **Closed-form gate** (unit grid, integer arithmetic): with `F = 1t`,
//!    `Bi = Bw = 1t`, `B = 2t`, every device does `3m` units of work, so
//!    the bubble comparison reduces to makespans. The generators must
//!    reproduce the closed forms *exactly* —
//!    1F1B: `3m + 3(p−1)`, ZB-H1: `3m + 2(p−1)` — and the cross-multiplied
//!    bubble-fraction inequality
//!    `(zb − 3m)·v < (v − 3m)·zb` (⇔ `2(p−1)/(3m+2(p−1)) < 3(p−1)/(3m+3(p−1))`)
//!    must hold strictly, all in integers: no float ever touches the gate.
//! 2. **Analytic sweep**: GPT3-1.6B on 8 A100s, the same simulator +
//!    `AnalyticCost` every other figure uses, comparing 1F1B, ZB-H1 and
//!    ZB-V on throughput and measured bubble ratio.

use crate::harness::channel_capacity;
use crate::table::Table;
use mario_core::simulator::{simulate_memory, simulate_timeline};
use mario_ir::{Nanos, SchemeKind, Topology, UnitCost};
use mario_model::{AnalyticCost, GpuSpec, ModelConfig, TrainSetup};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};

/// One closed-form gate row: measured unit-grid makespans for 1F1B and
/// ZB-H1 at `(p, m)` against their closed forms, plus the strict
/// bubble-fraction inequality, all checked in integer arithmetic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClosedFormRow {
    /// Pipeline depth.
    pub p: u32,
    /// Micro-batches.
    pub m: u32,
    /// Measured 1F1B makespan, ns.
    pub v_ns: Nanos,
    /// 1F1B closed form `(3m + 3(p−1))·t`, ns.
    pub v_expect_ns: Nanos,
    /// Measured ZB-H1 makespan, ns.
    pub zb_ns: Nanos,
    /// ZB-H1 closed form `(3m + 2(p−1))·t`, ns.
    pub zb_expect_ns: Nanos,
    /// ZB-H1 bubble fraction `2(p−1)/(3m+2(p−1))` (reporting only; the
    /// gate itself never leaves integers).
    pub zb_bubble: f64,
    /// 1F1B bubble fraction `3(p−1)/(3m+3(p−1))`.
    pub v_bubble: f64,
    /// Whether both closed forms held exactly and the strict inequality
    /// held.
    pub ok: bool,
}

fn unit_makespan(scheme: SchemeKind, p: u32, m: u32, cost: &UnitCost) -> Nanos {
    let s = generate(ScheduleConfig::new(scheme, p, m));
    simulate_timeline(&s, cost, channel_capacity(scheme))
        .expect("closed-form schedule simulates")
        .total_ns
}

/// Runs the integer closed-form gate across depths.
pub fn closed_form() -> Vec<ClosedFormRow> {
    let cost = UnitCost::paper_grid();
    let t = cost.unit;
    [(2u32, 4u32), (4, 4), (4, 8), (8, 8), (8, 16), (16, 32)]
        .into_iter()
        .map(|(p, m)| {
            let v_ns = unit_makespan(SchemeKind::OneFOneB, p, m, &cost);
            let zb_ns = unit_makespan(SchemeKind::ZeroBubbleH1, p, m, &cost);
            let (p64, m64) = (p as Nanos, m as Nanos);
            let v_expect_ns = (3 * m64 + 3 * (p64 - 1)) * t;
            let zb_expect_ns = (3 * m64 + 2 * (p64 - 1)) * t;
            let work = 3 * m64 * t; // per-device F + Bi + Bw (= F + B)
            // Cross-multiplied strict bubble inequality — with equal
            // per-device work it is equivalent to zb_ns < v_ns, but the
            // gate states the fractions the headline claims.
            let strictly_below = (zb_ns - work) * v_ns < (v_ns - work) * zb_ns;
            ClosedFormRow {
                p,
                m,
                v_ns,
                v_expect_ns,
                zb_ns,
                zb_expect_ns,
                zb_bubble: (2 * (p64 - 1)) as f64 / (3 * m64 + 2 * (p64 - 1)) as f64,
                v_bubble: (3 * (p64 - 1)) as f64 / (3 * m64 + 3 * (p64 - 1)) as f64,
                ok: v_ns == v_expect_ns && zb_ns == zb_expect_ns && strictly_below,
            }
        })
        .collect()
}

/// One analytic-sweep row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeRow {
    /// Scheme name.
    pub scheme: String,
    /// Iteration time, ns.
    pub iter_ns: Nanos,
    /// Throughput, samples/s.
    pub throughput: f64,
    /// Measured bubble fraction of total device time.
    pub bubble_ratio: f64,
    /// Peak memory range `[min, max]` bytes across devices.
    pub peak_mem: (u64, u64),
}

/// Compares 1F1B, ZB-H1 and ZB-V on GPT3-1.6B / 8 GPUs under the
/// analytic cost model. `smoke` trims the micro-batch count for CI.
pub fn run(smoke: bool) -> Vec<SchemeRow> {
    let model = ModelConfig::gpt3_1_6b();
    let gpu = GpuSpec::a100_40g();
    let devices = 8u32;
    let mbs = 2u32;
    let micros = if smoke { 8u32 } else { 16 };
    let gbs = micros * mbs;
    [
        SchemeKind::OneFOneB,
        SchemeKind::ZeroBubbleH1,
        SchemeKind::ZeroBubbleV,
    ]
    .into_iter()
    .map(|scheme| {
        let topo = Topology::new(scheme, devices);
        let setup = TrainSetup::pipeline(model.clone(), gpu.clone(), topo, mbs);
        let cost = AnalyticCost::new(&setup);
        let schedule = generate(ScheduleConfig::new(scheme, devices, micros));
        let t = simulate_timeline(&schedule, &cost, channel_capacity(scheme))
            .expect("analytic schedule simulates");
        let mem = simulate_memory(&schedule, &cost, None);
        SchemeRow {
            scheme: format!("{scheme:?}"),
            iter_ns: t.total_ns,
            throughput: t.throughput(gbs as u64),
            bubble_ratio: t.bubble_ns() as f64 / (t.total_ns * devices as u64) as f64,
            peak_mem: (mem.min_peak(), mem.max_peak()),
        }
    })
    .collect()
}

/// Renders the closed-form gate.
pub fn render_closed_form(rows: &[ClosedFormRow]) -> String {
    let mut t = Table::new(&[
        "p", "m", "1F1B ns", "closed form", "ZB-H1 ns", "closed form", "bubble V", "bubble Z",
    ]);
    for r in rows {
        t.row(vec![
            r.p.to_string(),
            r.m.to_string(),
            r.v_ns.to_string(),
            format!("{}{}", r.v_expect_ns, if r.v_ns == r.v_expect_ns { " =" } else { " !" }),
            r.zb_ns.to_string(),
            format!(
                "{}{}",
                r.zb_expect_ns,
                if r.zb_ns == r.zb_expect_ns { " =" } else { " !" }
            ),
            format!("{:.3}", r.v_bubble),
            format!("{:.3}", r.zb_bubble),
        ]);
    }
    format!(
        "Zero-bubble closed-form gate (unit grid, integer arithmetic):\n\
         1F1B = (3m+3(p-1))t, ZB-H1 = (3m+2(p-1))t, strict bubble inequality.\n{}",
        t.render()
    )
}

/// Renders the analytic sweep.
pub fn render(rows: &[SchemeRow]) -> String {
    let mut t = Table::new(&["Scheme", "iter ms", "samples/s", "bubble", "peak mem GB"]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            format!("{:.2}", r.iter_ns as f64 / 1e6),
            format!("{:.2}", r.throughput),
            format!("{:.1}%", r.bubble_ratio * 100.0),
            format!(
                "[{:.1}, {:.1}]",
                r.peak_mem.0 as f64 / (1u64 << 30) as f64,
                r.peak_mem.1 as f64 / (1u64 << 30) as f64
            ),
        ]);
    }
    format!(
        "Zero-bubble family vs 1F1B (GPT3-1.6B, 8 GPUs, AnalyticCost):\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_gate_holds_at_every_depth() {
        for r in closed_form() {
            assert!(r.ok, "{r:?}");
        }
    }

    #[test]
    fn zb_h1_bubble_is_strictly_below_1f1b_on_analytic_cost() {
        for smoke in [true, false] {
            let rows = run(smoke);
            let v = rows.iter().find(|r| r.scheme == "OneFOneB").unwrap();
            let z = rows.iter().find(|r| r.scheme == "ZeroBubbleH1").unwrap();
            assert!(
                z.bubble_ratio < v.bubble_ratio,
                "smoke={smoke}: Z {} vs V {}",
                z.bubble_ratio,
                v.bubble_ratio
            );
            assert!(z.throughput > v.throughput);
        }
    }

    #[test]
    fn zb_bubble_fractions_shrink_with_more_micro_batches() {
        let rows = closed_form();
        // Same depth, more micros → smaller ZB-H1 bubble (→ 0 as m → ∞).
        let p8: Vec<_> = rows.iter().filter(|r| r.p == 8).collect();
        assert!(p8.len() >= 2);
        assert!(p8[1].zb_bubble < p8[0].zb_bubble);
    }
}
