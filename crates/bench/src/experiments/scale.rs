//! Event-backend scaling sweep: rack-aware clusters far past the thread
//! backend's reach.
//!
//! Not a paper artifact — the capability demonstration for the
//! discrete-event executor. The thread backend spawns one OS thread per
//! device and tops out in the tens of devices; the event backend walks
//! the same instruction lists single-threaded and emulates thousands.
//! Each sweep point runs a 1F1B pipeline twice:
//!
//! * **flat** — the free-communication unit grid, whose makespan has the
//!   closed form `3(D−1) + 3N` time units: a bit-exact correctness pin
//!   at device counts no other oracle reaches;
//! * **rack** — the same schedule under a rack-aware cost model
//!   ([`RackCost`]): neighbours inside a rack talk over the fast fabric,
//!   the boundary pair between adjacent racks pays the cross-rack wire.
//!
//! The table reports both virtual makespans, the emulated instruction
//! count, and the wall-clock rate (million instructions per second).

use crate::table::Table;
use mario_cluster::{run, EmulatorBackend, EmulatorConfig};
use mario_ir::{ComputeKind, CostModel, DeviceId, Nanos, PartId, SchemeKind, UnitCost};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Micro-batches per sweep point: fixed so the per-device program size
/// stays constant and the emulated instruction count scales linearly
/// with the device count.
pub const MICROS: u32 = 256;
/// Devices per rack (the paper's testbed is 16 nodes × 4 GPUs; at
/// thousand-device scale the natural unit is the rack).
pub const RACK: u32 = 64;
/// Intra-rack wire time per boundary tensor, ns.
pub const INTRA_NS: Nanos = 500;
/// Cross-rack wire time per boundary tensor, ns.
pub const CROSS_NS: Nanos = 5_000;

/// A unit-grid cost model with rack-aware link costs: devices are packed
/// into racks of [`RackCost::rack`] and a transfer pays the fast
/// intra-rack wire or the slow cross-rack one depending on placement.
#[derive(Debug, Clone, Copy)]
pub struct RackCost {
    grid: UnitCost,
    /// Devices per rack.
    pub rack: u32,
    /// Intra-rack wire time, ns.
    pub intra_ns: Nanos,
    /// Cross-rack wire time, ns.
    pub cross_ns: Nanos,
}

impl RackCost {
    /// The sweep's cluster: unit-grid compute, racks of [`RACK`].
    pub fn cluster() -> Self {
        Self {
            grid: UnitCost::paper_grid(),
            rack: RACK,
            intra_ns: INTRA_NS,
            cross_ns: CROSS_NS,
        }
    }
}

impl CostModel for RackCost {
    fn compute_time(&self, device: DeviceId, part: PartId, kind: ComputeKind) -> Nanos {
        self.grid.compute_time(device, part, kind)
    }

    fn act_full(&self, device: DeviceId, part: PartId) -> u64 {
        self.grid.act_full(device, part)
    }

    fn act_ckpt(&self, device: DeviceId, part: PartId) -> u64 {
        self.grid.act_ckpt(device, part)
    }

    fn boundary_bytes(&self, device: DeviceId, part: PartId) -> u64 {
        self.grid.boundary_bytes(device, part)
    }

    fn p2p_time(&self, _bytes: u64) -> Nanos {
        self.cross_ns
    }

    fn p2p_time_between(&self, from: DeviceId, to: DeviceId, _bytes: u64) -> Nanos {
        if from.0 / self.rack == to.0 / self.rack {
            self.intra_ns
        } else {
            self.cross_ns
        }
    }

    fn allreduce_time(&self, device: DeviceId) -> Nanos {
        self.grid.allreduce_time(device)
    }

    fn optimizer_time(&self, device: DeviceId) -> Nanos {
        self.grid.optimizer_time(device)
    }

    fn static_mem(&self, device: DeviceId) -> u64 {
        self.grid.static_mem(device)
    }
}

/// One sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Devices emulated.
    pub devices: u32,
    /// Micro-batches per iteration.
    pub micros: u32,
    /// Instructions emulated (all devices, one iteration).
    pub instrs: u64,
    /// Free-communication makespan, ns.
    pub flat_ns: u64,
    /// The closed-form expectation for [`Row::flat_ns`]:
    /// `(3(D−1) + 3N) · t`.
    pub expect_ns: u64,
    /// Rack-aware makespan, ns.
    pub rack_ns: u64,
    /// Wall-clock time for both runs, ms.
    pub wall_ms: u64,
    /// Emulation rate across both runs, million instructions per second.
    pub mi_per_s: f64,
}

/// Emulates one `devices`-wide 1F1B pipeline on the event backend, flat
/// and rack-aware.
pub fn run_point(devices: u32) -> Row {
    let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, devices, MICROS));
    let instrs: u64 = (0..devices)
        .map(|d| s.program(DeviceId(d)).len() as u64)
        .sum();
    let cfg = EmulatorConfig {
        backend: EmulatorBackend::Event,
        ..Default::default()
    };
    let grid = UnitCost::paper_grid();
    let start = Instant::now();
    let flat = run(&s, &grid, cfg).expect("flat run completes");
    let rack = run(&s, &RackCost::cluster(), cfg).expect("rack run completes");
    let wall = start.elapsed();
    let expect_ns = (3 * (devices as u64 - 1) + 3 * MICROS as u64) * grid.unit;
    let secs = wall.as_secs_f64();
    Row {
        devices,
        micros: MICROS,
        instrs,
        flat_ns: flat.total_ns,
        expect_ns,
        rack_ns: rack.total_ns,
        wall_ms: wall.as_millis() as u64,
        mi_per_s: if secs > 0.0 {
            (2 * instrs) as f64 / secs / 1e6
        } else {
            0.0
        },
    }
}

/// The sweep: the CI smoke point, or 512 through 4096 devices.
pub fn run_sweep(smoke: bool) -> Vec<Row> {
    let points: &[u32] = if smoke {
        &[512]
    } else {
        &[512, 1024, 2048, 4096]
    };
    points.iter().map(|&d| run_point(d)).collect()
}

/// True when every point matched the closed form and the rack-aware
/// wires strictly lengthened the makespan.
pub fn sound(rows: &[Row]) -> bool {
    !rows.is_empty()
        && rows
            .iter()
            .all(|r| r.flat_ns == r.expect_ns && r.rack_ns > r.flat_ns)
}

/// Renders the sweep table.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(&[
        "devices", "micros", "instrs", "flat ms", "rack ms", "wall ms", "Minstr/s",
    ]);
    for r in rows {
        t.row(vec![
            r.devices.to_string(),
            r.micros.to_string(),
            r.instrs.to_string(),
            format!("{:.2}", r.flat_ns as f64 / 1e6),
            format!("{:.2}", r.rack_ns as f64 / 1e6),
            r.wall_ms.to_string(),
            format!("{:.1}", r.mi_per_s),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_holds_at_a_small_scale_point() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 64, 16));
        let cfg = EmulatorConfig {
            backend: EmulatorBackend::Event,
            ..Default::default()
        };
        let flat = run(&s, &UnitCost::paper_grid(), cfg).unwrap();
        assert_eq!(flat.total_ns, (3 * 63 + 3 * 16) * 1_000);
    }

    #[test]
    fn rack_costs_agree_between_thread_and_event_backends() {
        // 64 devices is exactly where the two backends still overlap: the
        // thread oracle can just spawn it, the event backend is already in
        // its scaling regime — rack-aware wire arithmetic must agree
        // bit-for-bit.
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 64, 8));
        let cost = RackCost::cluster();
        let thread = run(&s, &cost, EmulatorConfig::default()).unwrap();
        let event = run(
            &s,
            &cost,
            EmulatorConfig {
                backend: EmulatorBackend::Event,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(thread.device_clocks, event.device_clocks);
        assert_eq!(thread.total_ns, event.total_ns);
        assert_eq!(thread.telemetry, event.telemetry);
        // Two racks of 32: the cross-rack boundary pays the slow wire.
        let rack32 = RackCost {
            rack: 32,
            ..RackCost::cluster()
        };
        let split = run(
            &s,
            &rack32,
            EmulatorConfig {
                backend: EmulatorBackend::Event,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(split.total_ns > event.total_ns);
    }
}
