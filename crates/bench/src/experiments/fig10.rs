//! Figure 10: simulator accuracy — estimated (profiling-regression cost
//! model + DP simulator) versus "real" (cluster emulator on the analytic
//! ground truth with kernel jitter), on GPT3-1.6B with 8 GPUs.
//!
//! The paper reports MAPE 5.1% for peak memory and 9.4% for throughput,
//! with the partial order of configurations preserved.

use crate::harness::channel_capacity;
use crate::table::{gb, Table};
use mario_core::passes::{run_graph_tuner, GraphTunerOptions};
use mario_core::simulator::{simulate_memory, simulate_timeline};
use mario_ir::{SchemeKind, Topology};
use mario_model::{
    mape, profile_and_build, AnalyticCost, GpuSpec, ModelConfig, ProfilerConfig, TrainSetup,
};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};

/// One accuracy sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyPoint {
    /// Config label.
    pub label: String,
    /// Emulator ("real") throughput, samples/s.
    pub real_tp: f64,
    /// Simulator estimate, samples/s.
    pub est_tp: f64,
    /// Emulator peak memory (max device), bytes.
    pub real_mem: u64,
    /// Simulator peak estimate, bytes.
    pub est_mem: u64,
}

/// Summary statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Accuracy {
    /// Per-config samples.
    pub points: Vec<AccuracyPoint>,
    /// Throughput MAPE, percent.
    pub tput_mape: f64,
    /// Memory MAPE, percent.
    pub mem_mape: f64,
    /// Fraction of config pairs whose throughput order the simulator
    /// preserves (1.0 = perfect partial order).
    pub order_concordance: f64,
}

/// Runs the accuracy study on GPT3-1.6B / 8 GPUs across scheme × mbs ×
/// checkpointing.
pub fn run() -> Accuracy {
    let model = ModelConfig::gpt3_1_6b();
    let gpu = GpuSpec::a100_40g();
    let gbs = 64u32;
    let mut points = Vec::new();

    for scheme in [
        SchemeKind::OneFOneB,
        SchemeKind::Chimera,
        SchemeKind::Interleave { chunks: 2 },
    ] {
        for mbs in [1u32, 2] {
            for mario in [false, true] {
                let micros = gbs / mbs;
                let topo = Topology::new(scheme, 8);
                let setup =
                    TrainSetup::pipeline(model.clone(), gpu.clone(), topo, mbs);
                // Ground truth: analytic cost + jitter in the emulator.
                let truth = AnalyticCost::new(&setup);
                // Estimate: regression-fitted cost + DP simulator.
                let (profiled, _) = profile_and_build(&setup, ProfilerConfig::default());

                let mut schedule =
                    generate(ScheduleConfig::new(scheme, 8, micros));
                if mario {
                    run_graph_tuner(
                        &mut schedule,
                        &truth,
                        GraphTunerOptions {
                            prepose: false,
                            ..GraphTunerOptions::mario()
                        },
                    );
                }
                let cap = channel_capacity(scheme);

                let emu = mario_cluster::run(
                    &schedule,
                    &truth,
                    mario_cluster::EmulatorConfig {
                        channel_capacity: cap,
                        jitter: 0.03,
                        straggler_spread: 0.06,
                        ..Default::default()
                    },
                )
                .expect("schedule executes");
                let sim_t = simulate_timeline(&schedule, &profiled, cap).unwrap();
                let sim_m = simulate_memory(&schedule, &profiled, None);

                points.push(AccuracyPoint {
                    label: format!(
                        "{}-mbs{}{}",
                        scheme.shape_letter(),
                        mbs,
                        if mario { "-mario" } else { "" }
                    ),
                    real_tp: gbs as f64 / (emu.iter_ns as f64 / 1e9),
                    est_tp: sim_t.throughput(gbs as u64),
                    real_mem: emu.max_peak_mem(),
                    est_mem: sim_m.max_peak(),
                });
            }
        }
    }

    let tput_mape = mape(
        &points
            .iter()
            .map(|p| (p.real_tp, p.est_tp))
            .collect::<Vec<_>>(),
    );
    let mem_mape = mape(
        &points
            .iter()
            .map(|p| (p.real_mem as f64, p.est_mem as f64))
            .collect::<Vec<_>>(),
    );

    // Partial-order concordance over all pairs.
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            total += 1;
            let real = points[i].real_tp.total_cmp(&points[j].real_tp);
            let est = points[i].est_tp.total_cmp(&points[j].est_tp);
            if real == est {
                agree += 1;
            }
        }
    }

    Accuracy {
        points,
        tput_mape,
        mem_mape,
        order_concordance: agree as f64 / total as f64,
    }
}

/// Renders the accuracy table and summary.
pub fn render(acc: &Accuracy) -> String {
    let mut t = Table::new(&[
        "Config",
        "Real tput",
        "Est tput",
        "Real mem (GB)",
        "Est mem (GB)",
    ]);
    for p in &acc.points {
        t.row(vec![
            p.label.clone(),
            format!("{:.2}", p.real_tp),
            format!("{:.2}", p.est_tp),
            gb(p.real_mem),
            gb(p.est_mem),
        ]);
    }
    format!(
        "Simulator accuracy (GPT3-1.6B, 8 GPUs, Fig. 10)\n{}\nthroughput MAPE: {:.1}% (paper: 9.4%)\nmemory MAPE: {:.1}% (paper: 5.1%)\norder concordance: {:.1}%\n",
        t.render(),
        acc.tput_mape,
        acc.mem_mape,
        acc.order_concordance * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_is_single_digit_and_order_mostly_preserved() {
        let acc = run();
        assert!(
            acc.tput_mape < 10.0,
            "throughput MAPE {:.2}% (paper 9.4%)",
            acc.tput_mape
        );
        assert!(
            acc.mem_mape < 10.0,
            "memory MAPE {:.2}% (paper 5.1%)",
            acc.mem_mape
        );
        assert!(
            acc.order_concordance > 0.85,
            "order concordance {:.2}",
            acc.order_concordance
        );
        assert_eq!(acc.points.len(), 12);
    }
}
