//! Elastic-recovery sweep: shrink-and-continue vs wait-and-resume.
//!
//! Not a paper artifact — the robustness headline for the elastic
//! recovery loop. For every scheme in {G, V, X, W, H} a 4-device pipeline
//! loses its last device to a crash at a swept iteration, with periodic
//! checkpoints durable every [`CKPT_EVERY`] iterations. Both recovery
//! policies answer the same fault:
//!
//! * **wait-and-resume** pays a replacement wait once, then re-runs the
//!   remaining iterations at full width ([`run_with_recovery`]);
//! * **shrink-and-continue** re-partitions the layers onto the survivors
//!   ([`plan_shrink`]), pays the state redistribution once, and finishes
//!   degraded ([`run_with_elastic_recovery`]).
//!
//! The sweep crosses the two regimes: an early fault leaves a long tail
//! that amortizes the replacement wait (waiting wins), a late fault does
//! not (shrinking wins). Every scenario checks:
//!
//! * the DP simulator predicts both tails **bit-for-bit**
//!   ([`simulate_timeline_ckpt`] for the full-width resume,
//!   [`simulate_timeline_startup`] for the shrunk pipeline with its
//!   redistribution offsets);
//! * the redistribution charge is visible in the final report's
//!   telemetry `reconfig_ns` class and the per-device time classes
//!   conserve each device clock exactly;
//! * both policies resume from the same durable checkpoint.

use crate::harness::channel_capacity;
use crate::table::Table;
use mario_cluster::{
    run_with_elastic_recovery, run_with_recovery, EmulatorConfig, FaultKind, FaultPlan,
    RecoveryPolicy,
};
use mario_core::{
    compare_policies, plan_shrink, simulate_timeline_ckpt, simulate_timeline_startup,
    ElasticSetup, LayerScaledCost,
};
use mario_ir::{CheckpointPolicy, DeviceId, PerturbationProfile, SchemeKind, UnitCost};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Pipeline width before the fault.
const DEVICES: u32 = 4;
/// Micro-batches per iteration (kept across the shrink).
const MICROS: u32 = 8;
/// Iterations per training run.
const ITERS: u32 = 8;
/// Model layers re-partitioned by the shrink.
const LAYERS: u32 = 8;
/// Checkpoint cadence, iterations.
const CKPT_EVERY: u32 = 2;
/// Per-checkpoint write cost, ns.
const WRITE_NS: u64 = 50;
/// Model-state bytes per layer priced by the redistribution.
const STATE_BYTES_PER_LAYER: u64 = 1_000;
/// Link bandwidth for fetching redistributed state, bytes/µs.
const FETCH_BYTES_PER_US: u64 = 500;

/// One fault scenario answered by both policies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scheme label (`G`, `V`, `X`, `W`, `H`).
    pub scheme: String,
    /// Iteration the device dies in.
    pub fault_iter: u32,
    /// Iterations left after resuming from the last durable checkpoint.
    pub remaining: u32,
    /// Total wait-and-resume cost, ns: replacement wait + replayed work
    /// + the full-width resume.
    pub wait_ns: u64,
    /// Total shrink-and-continue cost, ns: replayed work + the shrunk
    /// run, whose clocks start at the redistribution offsets.
    pub shrink_ns: u64,
    /// The replacement wait both scenarios assume, ns.
    pub replacement_wait_ns: u64,
    /// The measured winner (`wait-and-resume` or `shrink-and-continue`).
    pub winner: String,
    /// The winner the DP simulator predicts for this tail.
    pub predicted: String,
    /// Analytic crossover horizon (remaining iterations where the
    /// policies tie), from [`compare_policies`].
    pub crossover_remaining: Option<u64>,
    /// One-time state-redistribution charge, ns (slowest survivor).
    pub reconfig_ns: u64,
    /// Total redistributed model state, bytes.
    pub moved_bytes: u64,
    /// Pipeline width after the shrink.
    pub shrunk_devices: u32,
    /// The `reconfig_ns` telemetry class observed on the shrunk run.
    pub telemetry_reconfig_ns: u64,
    /// Whether every elastic invariant held.
    pub ok: bool,
    /// Violation detail (empty when `ok`).
    pub detail: String,
}

/// The five schemes under test.
pub fn schemes() -> [SchemeKind; 5] {
    [
        SchemeKind::GPipe,
        SchemeKind::OneFOneB,
        SchemeKind::Chimera,
        SchemeKind::Interleave { chunks: 2 },
        SchemeKind::Wave { chunks: 2 },
    ]
}

fn elastic_setup(scheme: SchemeKind) -> ElasticSetup {
    ElasticSetup {
        scheme,
        devices: DEVICES,
        micros: MICROS,
        layers: LAYERS,
        state_bytes_per_layer: STATE_BYTES_PER_LAYER,
        fetch_bytes_per_us: FETCH_BYTES_PER_US,
    }
}

/// Sweeps `fault_iters` over every scheme. The replacement wait is
/// derived per scheme from the simulated tails so the sweep always
/// crosses the two regimes: waiting wins the longest tails, shrinking
/// wins the shortest.
pub fn run(fault_iters: &[u32]) -> Vec<Scenario> {
    let mut rows = Vec::new();
    for scheme in schemes() {
        rows.extend(sweep_scheme(scheme, fault_iters));
    }
    rows
}

/// The fault-iteration sweep the binary uses (remaining tails 8..2).
pub fn full_sweep() -> Vec<u32> {
    (1..=6).collect()
}

/// A two-point sweep that still shows both regimes (remaining 6 and 4).
pub fn smoke_sweep() -> Vec<u32> {
    vec![2, 5]
}

fn sweep_scheme(scheme: SchemeKind, fault_iters: &[u32]) -> Vec<Scenario> {
    let schedule = generate(ScheduleConfig::new(scheme, DEVICES, MICROS));
    // Stage compute scales with the layers the stage holds, so the
    // shrunk pipeline is genuinely slower per iteration (on the plain
    // unit grid shrinking would be free and the trade-off degenerate).
    let cost = LayerScaledCost::new(UnitCost::paper_grid(), scheme, DEVICES, LAYERS);
    let cap = channel_capacity(scheme);
    let policy = CheckpointPolicy::every(CKPT_EVERY).with_write_ns(WRITE_NS);
    let setup = elastic_setup(scheme);
    let label = scheme.shape_letter().to_string();

    let splan = match plan_shrink(&setup, &[DeviceId(DEVICES - 1)]) {
        Some(p) => p,
        None => {
            return vec![Scenario {
                scheme: label,
                fault_iter: 0,
                remaining: 0,
                wait_ns: 0,
                shrink_ns: 0,
                replacement_wait_ns: 0,
                winner: String::new(),
                predicted: String::new(),
                crossover_remaining: None,
                reconfig_ns: 0,
                moved_bytes: 0,
                shrunk_devices: 0,
                telemetry_reconfig_ns: 0,
                ok: false,
                detail: "planner declined the shrink".into(),
            }];
        }
    };
    let shrunk_cost =
        LayerScaledCost::new(UnitCost::paper_grid(), scheme, splan.devices, LAYERS);
    let identity = PerturbationProfile::identity();
    let wait_tail = |r: u32| {
        simulate_timeline_ckpt(&schedule, &cost, cap, &identity, r, Some(policy))
            .expect("full-width tail simulates")
            .total_ns
    };
    let shrink_tail = |r: u32| {
        simulate_timeline_startup(
            &splan.schedule,
            &shrunk_cost,
            splan.channel_capacity,
            &identity,
            r,
            Some(policy),
            &splan.startup_ns,
        )
        .expect("shrunk tail simulates")
        .total_ns
    };
    // Place the replacement wait between the simulated policy gaps at
    // tails of 4 and 6 iterations: waiting then wins every longer tail,
    // shrinking every shorter one.
    let gap = |r: u32| shrink_tail(r) as i128 - wait_tail(r) as i128;
    let replacement_wait_ns = ((gap(4) + gap(6)) / 2).max(1) as u64;
    // Steady-state per-iteration times for the analytic crossover.
    let full_iter_ns = wait_tail(2) - wait_tail(1);
    let shrunk_iter_ns = shrink_tail(2) - shrink_tail(1);
    let plan_reconfig_ns = splan.startup_ns.iter().copied().max().unwrap_or(0);

    fault_iters
        .iter()
        .map(|&fault_iter| {
            scenario(
                scheme,
                &schedule,
                &setup,
                fault_iter,
                replacement_wait_ns,
                full_iter_ns,
                shrunk_iter_ns,
                plan_reconfig_ns,
                &wait_tail,
                &shrink_tail,
            )
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn scenario(
    scheme: SchemeKind,
    schedule: &mario_ir::Schedule,
    setup: &ElasticSetup,
    fault_iter: u32,
    replacement_wait_ns: u64,
    full_iter_ns: u64,
    shrunk_iter_ns: u64,
    plan_reconfig_ns: u64,
    wait_tail: &dyn Fn(u32) -> u64,
    shrink_tail: &dyn Fn(u32) -> u64,
) -> Scenario {
    let cost = LayerScaledCost::new(UnitCost::paper_grid(), scheme, DEVICES, LAYERS);
    let cfg = EmulatorConfig {
        channel_capacity: channel_capacity(scheme),
        iterations: ITERS,
        checkpoint: Some(CheckpointPolicy::every(CKPT_EVERY).with_write_ns(WRITE_NS)),
        watchdog: Duration::from_millis(300),
        ..Default::default()
    };
    let plan = FaultPlan::none()
        .with(FaultKind::Crash {
            device: DeviceId(DEVICES - 1),
            pc: 0,
        })
        .at_iteration(fault_iter);

    let mut ok = true;
    let mut detail = String::new();
    let fail = |ok: &mut bool, detail: &mut String, msg: String| {
        *ok = false;
        if !detail.is_empty() {
            detail.push_str("; ");
        }
        detail.push_str(&msg);
    };

    // Policy A: plain checkpoint-restart at full width, replacement wait
    // charged on top.
    let wait_run = run_with_recovery(schedule, &cost, cfg, &plan, 3);
    // Policy B: tear down, re-partition onto the survivors, continue.
    let shrink_run = run_with_elastic_recovery(schedule, &cost, cfg, &plan, 3, |report| {
        plan_shrink(setup, &[report.fault.site()]).map(|p| {
            let degraded =
                LayerScaledCost::new(UnitCost::paper_grid(), scheme, p.devices, LAYERS);
            p.into_reconfiguration(Box::new(degraded))
        })
    });
    let (wait_run, shrink_run) = match (wait_run, shrink_run) {
        (Ok(w), Ok(s)) => (w, s),
        (w, s) => {
            return Scenario {
                scheme: scheme.shape_letter().into(),
                fault_iter,
                remaining: 0,
                wait_ns: 0,
                shrink_ns: 0,
                replacement_wait_ns,
                winner: String::new(),
                predicted: String::new(),
                crossover_remaining: None,
                reconfig_ns: 0,
                moved_bytes: 0,
                shrunk_devices: 0,
                telemetry_reconfig_ns: 0,
                ok: false,
                detail: format!(
                    "recovery failed: wait {:?}, shrink {:?}",
                    w.err().map(|e| e.to_string()),
                    s.err().map(|e| e.to_string()),
                ),
            };
        }
    };

    // Both policies resume from the same durable checkpoint.
    if wait_run.resumed_from != shrink_run.resumed_from {
        fail(
            &mut ok,
            &mut detail,
            format!(
                "resume mismatch: wait from {}, shrink from {}",
                wait_run.resumed_from, shrink_run.resumed_from
            ),
        );
    }
    let remaining = ITERS - shrink_run.resumed_from;

    // Exactly one reconfiguration, onto fewer devices, with real state
    // moved and a positive redistribution charge.
    let (reconfig_ns, moved_bytes, shrunk_devices) = match shrink_run.reconfigurations.as_slice() {
        [ev] => {
            if ev.devices_after >= DEVICES || ev.moved_bytes == 0 || ev.reconfig_ns == 0 {
                fail(&mut ok, &mut detail, format!("degenerate rebuild: {ev:?}"));
            }
            if ev.reconfig_ns != plan_reconfig_ns {
                fail(
                    &mut ok,
                    &mut detail,
                    format!(
                        "rebuild charged {} ns, plan predicted {plan_reconfig_ns} ns",
                        ev.reconfig_ns
                    ),
                );
            }
            (ev.reconfig_ns, ev.moved_bytes, ev.devices_after)
        }
        other => {
            fail(
                &mut ok,
                &mut detail,
                format!("expected one reconfiguration, got {}", other.len()),
            );
            (0, 0, 0)
        }
    };

    // The DP simulator predicts both tails bit-for-bit.
    let wait_pred = wait_tail(remaining);
    let shrink_pred = shrink_tail(remaining);
    if wait_run.report.total_ns != wait_pred {
        fail(
            &mut ok,
            &mut detail,
            format!(
                "full-width tail: emulated {} ns, simulated {wait_pred} ns",
                wait_run.report.total_ns
            ),
        );
    }
    if shrink_run.report.total_ns != shrink_pred {
        fail(
            &mut ok,
            &mut detail,
            format!(
                "shrunk tail: emulated {} ns, simulated {shrink_pred} ns",
                shrink_run.report.total_ns
            ),
        );
    }

    // The redistribution is attributable in telemetry: the `reconfig_ns`
    // class carries the charge and every device clock is conserved.
    let telemetry_reconfig_ns = shrink_run
        .report
        .telemetry
        .devices
        .iter()
        .map(|d| d.classes.reconfig_ns)
        .max()
        .unwrap_or(0);
    if telemetry_reconfig_ns != reconfig_ns {
        fail(
            &mut ok,
            &mut detail,
            format!("telemetry shows {telemetry_reconfig_ns} ns of reconfig, expected {reconfig_ns}"),
        );
    }
    for (d, clock) in shrink_run
        .report
        .telemetry
        .devices
        .iter()
        .zip(&shrink_run.report.device_clocks)
    {
        if d.classes.total() != *clock {
            fail(
                &mut ok,
                &mut detail,
                format!(
                    "device {} classes sum to {} but its clock is {clock}",
                    d.device.0,
                    d.classes.total()
                ),
            );
        }
    }

    let wait_ns = replacement_wait_ns + wait_run.total_ns_with_replay;
    let shrink_ns = shrink_run.total_ns_with_replay;
    let winner = if shrink_ns <= wait_ns {
        RecoveryPolicy::ShrinkAndContinue
    } else {
        RecoveryPolicy::WaitAndResume
    };
    // The prediction shares the replayed work (same fault, same replay),
    // so the simulated tails alone decide it.
    let predicted = if shrink_pred <= replacement_wait_ns + wait_pred {
        RecoveryPolicy::ShrinkAndContinue
    } else {
        RecoveryPolicy::WaitAndResume
    };
    if winner != predicted {
        fail(
            &mut ok,
            &mut detail,
            format!("measured winner {winner}, simulator predicted {predicted}"),
        );
    }
    let analytic = compare_policies(
        full_iter_ns,
        shrunk_iter_ns,
        plan_reconfig_ns,
        replacement_wait_ns,
        remaining,
    );

    Scenario {
        scheme: scheme.shape_letter().into(),
        fault_iter,
        remaining,
        wait_ns,
        shrink_ns,
        replacement_wait_ns,
        winner: winner.to_string(),
        predicted: predicted.to_string(),
        crossover_remaining: analytic.crossover_remaining,
        reconfig_ns,
        moved_bytes,
        shrunk_devices,
        telemetry_reconfig_ns,
        ok,
        detail,
    }
}

/// One cascading-fault scenario: a second crash, armed on the first
/// fault's plan ([`FaultPlan::arming`]), fires after the pipeline
/// already shrank once — the elastic loop must compose repeated shrinks
/// (or fall back to plain restart when the planner declines a second
/// one).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CascadeScenario {
    /// Scheme label (`G`, `V`, `X`, `W`, `H`).
    pub scheme: String,
    /// Iteration the first device dies in.
    pub first_iter: u32,
    /// Iteration (within the shrunk attempt) the second device dies in.
    pub second_iter: u32,
    /// Total attempts (3 = both faults cost one attempt each).
    pub attempts: u32,
    /// Pipeline widths the session traversed, e.g. `4→3→2` (a planner
    /// that declines the second shrink leaves the width in place).
    pub widths: String,
    /// Reconfigurations performed (1 when the second shrink was
    /// declined, 2 when both composed).
    pub reconfigs: usize,
    /// Summed redistribution charge across reconfigurations, ns.
    pub reconfig_ns: u64,
    /// Iterations covered by the checkpoint the final attempt resumed
    /// from.
    pub resumed_from: u32,
    /// Whole-session virtual time including replayed work, ns.
    pub total_ns_with_replay: u64,
    /// Whether every cascading invariant held.
    pub ok: bool,
    /// Violation detail (empty when `ok`).
    pub detail: String,
}

/// Runs one cascading scenario: crash the last device at `first_iter`,
/// arming a crash of (current) device 0 at `second_iter` of the next
/// attempt. The reconfigure closure re-plans from whatever width the
/// pipeline currently has, so shrinks compose.
fn cascade_scenario(scheme: SchemeKind, first_iter: u32, second_iter: u32) -> CascadeScenario {
    let schedule = generate(ScheduleConfig::new(scheme, DEVICES, MICROS));
    let cost = LayerScaledCost::new(UnitCost::paper_grid(), scheme, DEVICES, LAYERS);
    let cfg = EmulatorConfig {
        channel_capacity: channel_capacity(scheme),
        iterations: ITERS,
        checkpoint: Some(CheckpointPolicy::every(CKPT_EVERY).with_write_ns(WRITE_NS)),
        watchdog: Duration::from_millis(300),
        ..Default::default()
    };
    let followup = FaultPlan::none()
        .with(FaultKind::Crash {
            device: DeviceId(0),
            pc: 0,
        })
        .at_iteration(second_iter);
    let plan = FaultPlan::none()
        .with(FaultKind::Crash {
            device: DeviceId(DEVICES - 1),
            pc: 0,
        })
        .at_iteration(first_iter)
        .arming(followup);

    let mut ok = true;
    let mut detail = String::new();
    let fail = |ok: &mut bool, detail: &mut String, msg: String| {
        *ok = false;
        if !detail.is_empty() {
            detail.push_str("; ");
        }
        detail.push_str(&msg);
    };

    // Re-plan from the current width each time, so the second shrink
    // starts from the first one's survivors.
    let mut width = DEVICES;
    let mut widths = vec![DEVICES];
    let run = run_with_elastic_recovery(&schedule, &cost, cfg, &plan, 3, |report| {
        let setup = ElasticSetup {
            devices: width,
            ..elastic_setup(scheme)
        };
        let p = plan_shrink(&setup, &[report.fault.site()])?;
        width = p.devices;
        widths.push(p.devices);
        let degraded = LayerScaledCost::new(UnitCost::paper_grid(), scheme, p.devices, LAYERS);
        Some(p.into_reconfiguration(Box::new(degraded)))
    });
    let run = match run {
        Ok(r) => r,
        Err(e) => {
            return CascadeScenario {
                scheme: scheme.shape_letter().into(),
                first_iter,
                second_iter,
                attempts: 0,
                widths: String::new(),
                reconfigs: 0,
                reconfig_ns: 0,
                resumed_from: 0,
                total_ns_with_replay: 0,
                ok: false,
                detail: format!("cascading recovery failed: {e}"),
            };
        }
    };

    // Both faults fired and each cost exactly one attempt.
    if run.attempts != 3 || run.fault_log.len() != 2 {
        fail(
            &mut ok,
            &mut detail,
            format!(
                "expected 3 attempts / 2 faults, got {} / {}",
                run.attempts,
                run.fault_log.len()
            ),
        );
    }
    // Widths strictly decrease through every accepted rebuild, and the
    // event log matches the planner's trace.
    if !widths.windows(2).all(|w| w[1] < w[0]) {
        fail(&mut ok, &mut detail, format!("widths not decreasing: {widths:?}"));
    }
    if run.reconfigurations.len() != widths.len() - 1 {
        fail(
            &mut ok,
            &mut detail,
            format!(
                "{} reconfigurations but {} planned shrinks",
                run.reconfigurations.len(),
                widths.len() - 1
            ),
        );
    }
    for (ev, w) in run.reconfigurations.iter().zip(widths.iter().skip(1)) {
        if ev.devices_after != *w || ev.moved_bytes == 0 || ev.reconfig_ns == 0 {
            fail(&mut ok, &mut detail, format!("degenerate rebuild: {ev:?}"));
        }
    }
    // The summed charge matches the event log, and the final attempt's
    // telemetry carries the *last* rebuild's charge with conserved
    // clocks.
    let event_sum: u64 = run.reconfigurations.iter().map(|e| e.reconfig_ns).sum();
    if run.reconfig_ns != event_sum {
        fail(
            &mut ok,
            &mut detail,
            format!("charged {} ns, events sum to {event_sum}", run.reconfig_ns),
        );
    }
    // The telemetry class only carries a charge when the *final* attempt
    // followed a rebuild (a declined second shrink restarts in place,
    // state already resident — nothing to redistribute).
    let last_fault_rebuilt = run.reconfigurations.len() == run.fault_log.len();
    if let Some(last) = run.reconfigurations.last().filter(|_| last_fault_rebuilt) {
        let tel = run
            .report
            .telemetry
            .devices
            .iter()
            .map(|d| d.classes.reconfig_ns)
            .max()
            .unwrap_or(0);
        if tel != last.reconfig_ns {
            fail(
                &mut ok,
                &mut detail,
                format!("telemetry shows {tel} ns of reconfig, last rebuild charged {}", last.reconfig_ns),
            );
        }
    }
    for (d, clock) in run
        .report
        .telemetry
        .devices
        .iter()
        .zip(&run.report.device_clocks)
    {
        if d.classes.total() != *clock {
            fail(
                &mut ok,
                &mut detail,
                format!(
                    "device {} classes sum to {} but its clock is {clock}",
                    d.device.0,
                    d.classes.total()
                ),
            );
        }
    }

    CascadeScenario {
        scheme: scheme.shape_letter().into(),
        first_iter,
        second_iter,
        attempts: run.attempts,
        widths: widths
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join("→"),
        reconfigs: run.reconfigurations.len(),
        reconfig_ns: run.reconfig_ns,
        resumed_from: run.resumed_from,
        total_ns_with_replay: run.total_ns_with_replay,
        ok,
        detail,
    }
}

/// Sweeps cascading double-crash scenarios over every scheme.
pub fn run_cascades() -> Vec<CascadeScenario> {
    let mut rows = Vec::new();
    for scheme in schemes() {
        for (first, second) in [(1, 1), (3, 3)] {
            rows.push(cascade_scenario(scheme, first, second));
        }
    }
    rows
}

/// Renders the cascading-fault table and its verdict line.
pub fn render_cascades(rows: &[CascadeScenario]) -> String {
    let mut t = Table::new(&[
        "scheme",
        "faults@",
        "attempts",
        "widths",
        "rebuilds",
        "reconfig ns",
        "resumed",
        "total ns",
    ]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            format!("{},{}", r.first_iter, r.second_iter),
            r.attempts.to_string(),
            if r.ok {
                r.widths.clone()
            } else {
                format!("VIOLATION: {}", r.detail)
            },
            r.reconfigs.to_string(),
            r.reconfig_ns.to_string(),
            r.resumed_from.to_string(),
            r.total_ns_with_replay.to_string(),
        ]);
    }
    let bad = rows.iter().filter(|r| !r.ok).count();
    let mut out = t.render();
    out.push_str(&format!(
        "\n**Verdict:** {}/{} cascading scenarios composed repeated shrinks \
         (armed faults fire on the shrunk pipeline; charges stay attributable).\n",
        rows.len() - bad,
        rows.len()
    ));
    out
}

/// Whether `rows` (one scheme's sweep) shows both regimes: at least one
/// fault where waiting wins and one where shrinking wins.
pub fn both_regimes(rows: &[Scenario]) -> bool {
    let wait = RecoveryPolicy::WaitAndResume.to_string();
    let shrink = RecoveryPolicy::ShrinkAndContinue.to_string();
    rows.iter().any(|r| r.winner == wait) && rows.iter().any(|r| r.winner == shrink)
}

/// Renders the sweep table and per-scheme verdicts.
pub fn render(rows: &[Scenario]) -> String {
    let mut t = Table::new(&[
        "scheme", "fault@", "remaining", "wait ns", "shrink ns", "winner", "r*", "reconfig ns",
        "moved B", "width",
    ]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            r.fault_iter.to_string(),
            r.remaining.to_string(),
            r.wait_ns.to_string(),
            r.shrink_ns.to_string(),
            if r.ok {
                r.winner.clone()
            } else {
                format!("VIOLATION: {}", r.detail)
            },
            r.crossover_remaining
                .map_or_else(|| "-".into(), |c| c.to_string()),
            r.reconfig_ns.to_string(),
            r.moved_bytes.to_string(),
            format!("{}→{}", DEVICES, r.shrunk_devices),
        ]);
    }
    let mut out = t.render();
    let bad = rows.iter().filter(|r| !r.ok).count();
    let split = schemes()
        .iter()
        .filter(|s| {
            let label = s.shape_letter();
            both_regimes(
                &rows
                    .iter()
                    .filter(|r| r.scheme == label)
                    .cloned()
                    .collect::<Vec<_>>(),
            )
        })
        .count();
    out.push_str(&format!(
        "\n**Verdict:** {}/{} scenarios upheld the elastic invariant \
         (sim-exact tails + attributable redistribution + conserved clocks); \
         {split}/{} schemes crossed both regimes.\n",
        rows.len() - bad,
        rows.len(),
        schemes().len(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_crosses_both_regimes_on_every_scheme() {
        let rows = run(&smoke_sweep());
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.ok, "{} fault@{}: {}", r.scheme, r.fault_iter, r.detail);
        }
        for scheme in schemes() {
            let label = scheme.shape_letter();
            let mine: Vec<Scenario> = rows.iter().filter(|r| r.scheme == label).cloned().collect();
            assert!(both_regimes(&mine), "{label} never crossed: {mine:?}");
        }
    }

    #[test]
    fn cascading_shrinks_compose_on_every_scheme() {
        for scheme in schemes() {
            let r = cascade_scenario(scheme, 1, 1);
            assert!(r.ok, "{}: {}", r.scheme, r.detail);
            assert_eq!(r.attempts, 3, "{}", r.scheme);
            assert!(r.reconfigs >= 1, "{}: {}", r.scheme, r.widths);
        }
    }

    #[test]
    fn second_shrink_actually_happens_where_admissible() {
        // 1F1B has no structural width constraint: 4→3→2.
        let r = cascade_scenario(SchemeKind::OneFOneB, 1, 1);
        assert!(r.ok, "{}", r.detail);
        assert_eq!(r.widths, "4→3→2");
        assert_eq!(r.reconfigs, 2);
    }

    #[test]
    fn longer_tails_favor_waiting() {
        let rows = sweep_scheme(SchemeKind::OneFOneB, &full_sweep());
        let wait = RecoveryPolicy::WaitAndResume.to_string();
        // The winner flips exactly once as the tail shrinks: waiting on
        // the long tails, shrinking on the short ones.
        let flips = rows
            .windows(2)
            .filter(|w| w[0].winner != w[1].winner)
            .count();
        assert_eq!(flips, 1, "{rows:?}");
        assert_eq!(rows.first().unwrap().winner, wait);
        assert_ne!(rows.last().unwrap().winner, wait);
    }
}
