//! Figure 9: sequence-length scaling on GPT3-1.6B with 16 GPUs — the
//! longest sequence each configuration trains before OOM, sweeping seqlen
//! upward by 64 from 1024. Configurations: (a) PP:8 TP:1, (b) PP:8 TP:2,
//! (c) PP:8 TP:2 + Mario. Micro-batch 1, global batch = 2 × stages = 16.

use crate::table::Table;
use mario_core::passes::{run_graph_tuner, GraphTunerOptions};
use mario_core::simulator::simulate_memory;
use mario_ir::{SchemeKind, Topology};
use mario_model::{AnalyticCost, GpuSpec, ModelConfig, TrainSetup};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};

const PP: u32 = 8;
const MICROS: u32 = 16;
const STEP: u32 = 64;
const START: u32 = 1024;
const LIMIT: u32 = 65_536;

/// One Fig. 9 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeqConfig {
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Mario checkpointing on.
    pub mario: bool,
}

impl SeqConfig {
    /// Label like `PP:8 TP:2 (Mario)`.
    pub fn label(&self) -> String {
        format!(
            "PP:{PP} TP:{}{}",
            self.tp,
            if self.mario { " (Mario)" } else { "" }
        )
    }
}

/// Does the configuration fit device memory at `seqlen`?
pub fn fits(cfg: SeqConfig, seqlen: u32) -> bool {
    let model = ModelConfig::gpt3_1_6b().with_seqlen(seqlen);
    let gpu = GpuSpec::a100_40g();
    let topo = Topology::new(SchemeKind::OneFOneB, PP);
    let setup = TrainSetup::pipeline(model, gpu.clone(), topo, 1).with_tp(cfg.tp);
    let cost = AnalyticCost::new(&setup);
    let mut schedule = generate(ScheduleConfig::new(SchemeKind::OneFOneB, PP, MICROS));
    if cfg.mario {
        run_graph_tuner(
            &mut schedule,
            &cost,
            GraphTunerOptions {
                prepose: false,
                ..GraphTunerOptions::mario()
            },
        );
    }
    simulate_memory(&schedule, &cost, Some(gpu.mem_bytes)).oom.is_none()
}

/// The longest feasible sequence for `cfg`: exponential probe, then a
/// linear refinement at the paper's 64-token granularity.
pub fn max_seqlen(cfg: SeqConfig) -> Option<u32> {
    if !fits(cfg, START) {
        return None;
    }
    let mut lo = START;
    while lo * 2 <= LIMIT && fits(cfg, lo * 2) {
        lo *= 2;
    }
    let mut hi = (lo * 2).min(LIMIT);
    // Binary search down to one STEP.
    while hi - lo > STEP {
        let mid = lo + (hi - lo) / 2 / STEP * STEP;
        if mid == lo {
            break;
        }
        if fits(cfg, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// The three Fig. 9 configurations.
pub fn run() -> Vec<(SeqConfig, Option<u32>)> {
    [
        SeqConfig {
            tp: 1,
            mario: false,
        },
        SeqConfig {
            tp: 2,
            mario: false,
        },
        SeqConfig { tp: 2, mario: true },
    ]
    .into_iter()
    .map(|c| (c, max_seqlen(c)))
    .collect()
}

/// Renders the results with improvement factors.
pub fn render(rows: &[(SeqConfig, Option<u32>)]) -> String {
    let mut t = Table::new(&["Config", "Max seqlen", "vs PP:8 TP:1", "vs PP:8 TP:2"]);
    let base1 = rows
        .iter()
        .find(|(c, _)| c.tp == 1 && !c.mario)
        .and_then(|&(_, s)| s)
        .unwrap_or(0);
    let base2 = rows
        .iter()
        .find(|(c, _)| c.tp == 2 && !c.mario)
        .and_then(|&(_, s)| s)
        .unwrap_or(0);
    for (c, s) in rows {
        let s = s.unwrap_or(0);
        t.row(vec![
            c.label(),
            s.to_string(),
            if base1 > 0 {
                format!("{:.2}x", s as f64 / base1 as f64)
            } else {
                "-".into()
            },
            if base2 > 0 {
                format!("{:.2}x", s as f64 / base2 as f64)
            } else {
                "-".into()
            },
        ]);
    }
    format!("Sequence length scaling (GPT3-1.6B, Fig. 9)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mario_extends_seqlen_beyond_tp_alone() {
        let tp2 = max_seqlen(SeqConfig {
            tp: 2,
            mario: false,
        })
        .unwrap();
        let mario = max_seqlen(SeqConfig { tp: 2, mario: true }).unwrap();
        // Paper: 1.49x average increase over PP:8 TP:2.
        assert!(
            mario as f64 / tp2 as f64 > 1.2,
            "mario {mario} vs tp2 {tp2}"
        );
    }

    #[test]
    fn tp_extends_seqlen_over_pure_pp() {
        let tp1 = max_seqlen(SeqConfig {
            tp: 1,
            mario: false,
        })
        .unwrap();
        let tp2 = max_seqlen(SeqConfig {
            tp: 2,
            mario: false,
        })
        .unwrap();
        assert!(tp2 > tp1, "tp2 {tp2} vs tp1 {tp1}");
    }

    #[test]
    fn fits_is_monotone() {
        let c = SeqConfig {
            tp: 1,
            mario: false,
        };
        assert!(fits(c, 1024));
        assert!(!fits(c, LIMIT));
    }
}
