//! Degraded-mode prediction sweep: simulator vs. emulator under faults.
//!
//! Not a paper artifact — the validation harness for the degraded-mode
//! DP simulation layer. For every scheme in {V, X, W} and a range of
//! straggler factors, one `Slowdown` fault is planned for a mid-pipeline
//! device, translated into a [`PerturbationProfile`], and the predicted
//! slowdown (`simulate_timeline_with` / baseline `simulate_timeline`) is
//! tabulated against the emulated slowdown (`run_with_faults` / clean
//! `run`) under zero jitter. The invariant checked per scenario: the
//! degraded simulation reproduces the faulted emulation **bit for bit**
//! (total time and every device clock), so predicted == emulated exactly.

use crate::harness::channel_capacity;
use crate::table::Table;
use mario_cluster::{run, run_with_faults, EmulatorConfig, FaultKind, FaultPlan};
use mario_core::simulator::{simulate_timeline, simulate_timeline_with};
use mario_ir::{DeviceId, SchemeKind, UnitCost};
use mario_schedules::{generate, ScheduleConfig};
use serde::{Deserialize, Serialize};

/// One degraded-mode scenario and its outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scheme label (`V`, `X`, `W`).
    pub scheme: String,
    /// Straggler slowdown factor injected on the mid-pipeline device.
    pub factor: f64,
    /// Fault-free iteration time, ns (simulator == emulator baseline).
    pub base_ns: u64,
    /// Degraded iteration time predicted by the simulator, ns.
    pub predicted_ns: u64,
    /// Degraded iteration time measured on the emulator, ns.
    pub emulated_ns: u64,
    /// `predicted_ns / base_ns`.
    pub predicted_slowdown: f64,
    /// `emulated_ns / base_ns`.
    pub emulated_slowdown: f64,
    /// Whether prediction and emulation agreed bit for bit
    /// (total time and every per-device clock).
    pub ok: bool,
}

/// Runs one (scheme, straggler factor) scenario.
fn scenario(scheme: SchemeKind, factor: f64) -> Scenario {
    let schedule = generate(ScheduleConfig::new(scheme, 4, 8));
    // Straggle a mid-pipeline device for the whole run: the worst case
    // for a pipeline (both neighbours starve).
    let plan = FaultPlan::none().with(FaultKind::Slowdown {
        device: DeviceId(1),
        factor,
        from_pc: 0,
        until_pc: usize::MAX,
    });
    let cap = channel_capacity(scheme);
    let cfg = EmulatorConfig {
        channel_capacity: cap,
        ..Default::default()
    };
    let cost = UnitCost::paper_grid();

    let sim_base = simulate_timeline(&schedule, &cost, cap).expect("valid schedule");
    let sim_degr = simulate_timeline_with(&schedule, &cost, cap, &plan.perturbation_profile())
        .expect("valid schedule");
    let emu_base = run(&schedule, &cost, cfg).expect("clean run");
    let emu_degr = run_with_faults(&schedule, &cost, cfg, &plan).expect("absorbable fault");

    let ok = sim_degr.total_ns == emu_degr.total_ns
        && sim_degr.device_clocks == emu_degr.device_clocks
        && sim_base.total_ns == emu_base.total_ns;
    Scenario {
        scheme: scheme.shape_letter().to_string(),
        factor,
        base_ns: sim_base.total_ns,
        predicted_ns: sim_degr.total_ns,
        emulated_ns: emu_degr.total_ns,
        predicted_slowdown: sim_degr.total_ns as f64 / sim_base.total_ns as f64,
        emulated_slowdown: emu_degr.total_ns as f64 / emu_base.total_ns as f64,
        ok,
    }
}

/// Sweeps `factors` straggler intensities over V, X and W.
///
/// `factors` is a slice so the binary's `--smoke` mode can restrict the
/// sweep to a single point.
pub fn run_sweep(factors: &[f64]) -> Vec<Scenario> {
    let mut rows = Vec::new();
    for scheme in [
        SchemeKind::OneFOneB,
        SchemeKind::Chimera,
        SchemeKind::Interleave { chunks: 2 },
    ] {
        for &factor in factors {
            rows.push(scenario(scheme, factor));
        }
    }
    rows
}

/// The full sweep used by the `degraded` binary.
pub const FULL_FACTORS: [f64; 3] = [2.0, 4.0, 8.0];

/// Renders the predicted-vs-emulated table and the verdict line.
pub fn render(rows: &[Scenario]) -> String {
    let mut t = Table::new(&[
        "scheme",
        "factor",
        "base (ns)",
        "predicted (ns)",
        "emulated (ns)",
        "pred. slowdown",
        "emu. slowdown",
        "exact",
    ]);
    for r in rows {
        t.row(vec![
            r.scheme.clone(),
            format!("{}x", r.factor),
            r.base_ns.to_string(),
            r.predicted_ns.to_string(),
            r.emulated_ns.to_string(),
            format!("{:.3}", r.predicted_slowdown),
            format!("{:.3}", r.emulated_slowdown),
            if r.ok { "yes".into() } else { "NO".into() },
        ]);
    }
    let bad = rows.iter().filter(|r| !r.ok).count();
    let mut out = t.render();
    out.push_str(&format!(
        "\n**Verdict:** {}/{} scenarios predicted the degraded run bit for bit \
         (zero jitter: predicted == emulated exactly).\n",
        rows.len() - bad,
        rows.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_predicts_exactly() {
        let rows = run_sweep(&FULL_FACTORS);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(
                r.ok,
                "{} {}x: predicted {} != emulated {}",
                r.scheme, r.factor, r.predicted_ns, r.emulated_ns
            );
        }
    }

    #[test]
    fn stronger_stragglers_slow_the_pipeline_more() {
        let rows = run_sweep(&FULL_FACTORS);
        for w in rows.chunks(FULL_FACTORS.len()) {
            for pair in w.windows(2) {
                assert!(
                    pair[1].predicted_ns > pair[0].predicted_ns,
                    "{}: {}x should be slower than {}x",
                    pair[0].scheme,
                    pair[1].factor,
                    pair[0].factor
                );
            }
        }
    }
}
