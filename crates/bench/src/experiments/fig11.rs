//! Figure 11 (§6.7): the cluster experiment — parameter tuning of
//! GPT3-13B across 64 GPUs with data parallelism (`dp = 64 / pp`, TP 1).
//! Produces the throughput curve along tuning iterations, the best
//! configuration per scheme, and the tuning wall-clock time (the paper
//! reports 210 s total, versus ~10 minutes per manual adjustment).

use crate::table::Table;
use mario_core::tuner::{tune, Evaluation, SchemeChoice, TuneResult, TunerConfig};
use mario_ir::SchemeKind;
use mario_model::{GpuSpec, ModelConfig};

/// Builds the Fig. 11 tuner configuration.
pub fn config(total_devices: u32, gbs: u32) -> TunerConfig {
    TunerConfig {
        scheme_choice: SchemeChoice::Auto,
        mbs_options: vec![1, 2, 4, 8, 16, 32],
        min_pp: 4,
        prepose: false, // grid speed; the final build re-runs full Mario
        ..TunerConfig::new(total_devices, gbs, 40 * (1 << 30))
    }
}

/// Runs the tuning experiment.
pub fn run(total_devices: u32, gbs: u32) -> TuneResult {
    tune(
        &ModelConfig::gpt3_13b(),
        &GpuSpec::a100_40g(),
        &config(total_devices, gbs),
    )
    .expect("some configuration is feasible")
}

/// The best evaluation per scheme (the paper highlights V-64-16, X-64-16,
/// W-64-32, all with Mario).
pub fn best_per_scheme(result: &TuneResult) -> Vec<&Evaluation> {
    let mut out = Vec::new();
    for scheme in [
        SchemeKind::OneFOneB,
        SchemeKind::Chimera,
        SchemeKind::Interleave { chunks: 2 },
    ] {
        if let Some(best) = result
            .curve
            .iter()
            .filter(|e| e.candidate.scheme == scheme && !e.oom)
            .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
        {
            out.push(best);
        }
    }
    out
}

/// Renders the curve (sampled) and the per-scheme winners.
pub fn render(result: &TuneResult) -> String {
    let mut out = format!(
        "Tuning curve: {} configurations evaluated in {:.1} s\n",
        result.curve.len(),
        result.tuning_time.as_secs_f64()
    );
    let mut t = Table::new(&["iter", "config", "throughput (samples/s)", "OOM"]);
    let step = (result.curve.len() / 40).max(1);
    for (i, e) in result.curve.iter().enumerate() {
        if i % step == 0 || e.candidate == result.best.candidate {
            t.row(vec![
                i.to_string(),
                e.candidate.to_string(),
                format!("{:.2}", e.throughput),
                if e.oom { "yes".into() } else { "no".into() },
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str("\nbest per scheme:\n");
    let mut b = Table::new(&["config", "throughput (samples/s)"]);
    for e in best_per_scheme(result) {
        b.row(vec![
            e.candidate.to_string(),
            format!("{:.2}", e.throughput),
        ]);
    }
    b.row(vec![
        format!("OVERALL {}", result.best.candidate),
        format!("{:.2}", result.best.throughput),
    ]);
    out.push_str(&b.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled-down tuning run (8 devices) keeps the test fast while
    /// exercising the same code path as the 64-GPU binary.
    #[test]
    fn tuning_prefers_mario_and_deeper_pipelines_with_larger_mbs() {
        let result = run(8, 128);
        assert!(!result.curve.is_empty());
        let best = &result.best;
        assert!(best.throughput > 0.0);
        // The winning configuration uses Mario checkpointing (it enables
        // micro-batch sizes the baseline cannot fit).
        assert!(
            best.candidate.mario,
            "expected Mario on in the winner, got {}",
            best.candidate
        );
        // Every per-scheme winner exists and none beats the overall best.
        for e in best_per_scheme(&result) {
            assert!(e.throughput <= best.throughput);
        }
    }

    #[test]
    fn curve_contains_oom_and_feasible_points() {
        let result = run(8, 128);
        assert!(result.curve.iter().any(|e| e.oom));
        assert!(result.curve.iter().any(|e| !e.oom));
    }
}
