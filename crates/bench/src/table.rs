//! Minimal fixed-width table printer for experiment output.

/// A simple text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.len();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", cell, w = width[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('|');
        for w in &width {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
        }
        out
    }
}

/// Formats bytes as GiB with two decimals.
pub fn gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1u64 << 30) as f64)
}

/// Formats a `[min, max]` byte range in GiB.
pub fn gb_range(min: u64, max: u64) -> String {
    format!("[{}, {}]", gb(min), gb(max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["config", "throughput"]);
        t.row(vec!["V-base".into(), "20.42".into()]);
        t.row(vec!["X-lmbs-long".into(), "29.5".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("config"));
        assert!(lines[2].contains("V-base"));
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(gb(1 << 30), "1.00");
        assert_eq!(gb_range(1 << 30, 3 << 30), "[1.00, 3.00]");
    }
}
