//! Machine-readable run summaries: every bench binary accepts `--json`
//! and writes a `results/<bench>.json` sibling next to its rendered
//! `.txt` artifact, so CI and downstream tooling can consume the numbers
//! without scraping tables.
//!
//! The writer is hand-rolled (the workspace carries no JSON dependency):
//! a tiny object/array builder with the same escaping rules as the
//! Chrome-trace exporter. The document shape is uniform across benches:
//!
//! ```json
//! {"bench":"ckptshard","metrics":{"bubble_fraction":0.45},"rows":[...]}
//! ```
//!
//! `metrics` holds the headline scalars a CI gate checks; `rows` mirrors
//! the bench's structured result rows.

use mario_core::critpath::CritReport;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders a string as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape(s, &mut out);
    out.push('"');
    out
}

/// Renders a float as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders pre-rendered JSON values as an array.
pub fn json_array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// An incrementally built JSON object; field order is insertion order.
#[derive(Debug, Clone, Default)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pre-rendered JSON value under `key`.
    pub fn raw(mut self, key: &str, rendered: String) -> Self {
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        let rendered = json_str(value);
        self.raw(key, rendered)
    }

    /// Adds a float field (`null` when non-finite).
    pub fn num(self, key: &str, value: f64) -> Self {
        let rendered = json_f64(value);
        self.raw(key, rendered)
    }

    /// Adds an integer field.
    pub fn int(self, key: &str, value: impl Into<i128>) -> Self {
        let rendered = value.into().to_string();
        self.raw(key, rendered)
    }

    /// Adds a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, value.to_string())
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(key));
            out.push(':');
            out.push_str(value);
        }
        out.push('}');
        out
    }
}

/// Renders a [`CritReport`] as the uniform `critical_path` object every
/// bench summary carries: the path length (== makespan, bit for bit —
/// CI gates on the equality), the per-class breakdown, and the top-5
/// zero-slack ops longest first.
pub fn critical_path_json(report: &CritReport) -> String {
    let b = &report.breakdown;
    JsonObj::new()
        .int("path_ns", b.total())
        .int("makespan_ns", report.makespan)
        .int("segments", report.path.len() as u64)
        .int("compute_ns", b.compute_ns)
        .int("comm_launch_ns", b.comm_launch_ns)
        .int("wire_ns", b.wire_ns)
        .int("bubble_ns", b.bubble_ns)
        .int("ckpt_ns", b.ckpt_ns)
        .int("allreduce_ns", b.allreduce_ns)
        .int("optimizer_ns", b.optimizer_ns)
        .int("reconfig_ns", b.reconfig_ns)
        .raw(
            "top_ops",
            json_array(report.top_path_ops(5).iter().map(|o| {
                JsonObj::new()
                    .int("device", o.device.0)
                    .int("pc", o.pc)
                    .int("iter", o.iter)
                    .str("class", &format!("{:?}", o.class))
                    .int("start_ns", o.start)
                    .int("dur_ns", o.len_ns())
                    .render()
            })),
        )
        .render()
}

/// One bench run's machine-readable summary: headline metrics plus the
/// structured result rows.
#[derive(Debug, Clone)]
pub struct RunSummary {
    bench: String,
    metrics: Vec<(String, f64)>,
    rows: Vec<JsonObj>,
    extras: Vec<(String, String)>,
}

impl RunSummary {
    /// A summary for the bench binary named `bench` (also the output file
    /// stem).
    pub fn new(bench: &str) -> Self {
        Self {
            bench: bench.to_string(),
            metrics: Vec::new(),
            rows: Vec::new(),
            extras: Vec::new(),
        }
    }

    /// Adds a headline scalar to the `metrics` object.
    pub fn metric(mut self, name: &str, value: f64) -> Self {
        self.push_metric(name, value);
        self
    }

    /// Non-consuming [`RunSummary::metric`], for loops.
    pub fn push_metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Appends one result row.
    pub fn push_row(&mut self, row: JsonObj) {
        self.rows.push(row);
    }

    /// Attaches a pre-rendered JSON value as an extra top-level field,
    /// emitted after `rows` in insertion order.
    pub fn attach_raw(&mut self, key: &str, rendered: String) {
        self.extras.push((key.to_string(), rendered));
    }

    /// Attaches the bench's representative [`CritReport`] under the
    /// top-level `critical_path` key (see [`critical_path_json`]).
    pub fn attach_critical_path(&mut self, report: &CritReport) {
        self.attach_raw("critical_path", critical_path_json(report));
    }

    /// Renders the full document.
    pub fn render(&self) -> String {
        let metrics = JsonObj {
            fields: self
                .metrics
                .iter()
                .map(|(k, v)| (k.clone(), json_f64(*v)))
                .collect(),
        };
        let mut obj = JsonObj::new()
            .str("bench", &self.bench)
            .raw("metrics", metrics.render())
            .raw("rows", json_array(self.rows.iter().map(JsonObj::render)));
        for (key, rendered) in &self.extras {
            obj = obj.raw(key, rendered.clone());
        }
        obj.render()
    }

    /// Writes `<dir>/<bench>.json`, creating the directory if needed.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.bench));
        fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Writes `results/<bench>.json` beside the rendered `.txt` artifact.
    pub fn write(&self) -> io::Result<PathBuf> {
        self.write_to(Path::new("results"))
    }
}

/// True when the process was invoked with `--json`.
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Writes the summary and reports the path on stderr (keeping stdout a
/// clean table capture), panicking with a clear message when the
/// filesystem refuses — a bench asked for `--json` that silently emits
/// nothing would defeat the CI gate consuming it.
pub fn emit(summary: &RunSummary) {
    let path = summary.write().expect("write results/<bench>.json");
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_render_in_insertion_order() {
        let obj = JsonObj::new()
            .str("name", "V-ovlp")
            .int("iter_ns", 42u64)
            .num("ratio", 0.5)
            .bool("ok", true);
        assert_eq!(
            obj.render(),
            "{\"name\":\"V-ovlp\",\"iter_ns\":42,\"ratio\":0.5,\"ok\":true}"
        );
    }

    #[test]
    fn strings_escape_and_floats_degrade_to_null() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\u000ad\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(0.25), "0.25");
    }

    #[test]
    fn summary_document_shape() {
        let mut s = RunSummary::new("demo").metric("bubble_fraction", 0.45);
        s.push_row(JsonObj::new().str("scheme", "V").int("base_ns", 100u64));
        s.push_row(JsonObj::new().str("scheme", "X").int("base_ns", 200u64));
        assert_eq!(
            s.render(),
            "{\"bench\":\"demo\",\"metrics\":{\"bubble_fraction\":0.45},\"rows\":[\
             {\"scheme\":\"V\",\"base_ns\":100},{\"scheme\":\"X\",\"base_ns\":200}]}"
        );
    }

    #[test]
    fn writes_next_to_the_txt_artifacts() {
        let dir = std::env::temp_dir().join("mario-summary-test");
        let s = RunSummary::new("unit").metric("m", 1.0);
        let path = s.write_to(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "unit.json");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\"bench\":\"unit\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn critical_path_attaches_after_rows_and_reconciles() {
        let schedule = mario_schedules::generate(mario_schedules::ScheduleConfig::new(
            mario_ir::SchemeKind::OneFOneB,
            2,
            2,
        ));
        let t =
            mario_core::simulate_timeline(&schedule, &mario_ir::UnitCost::paper_grid(), 1).unwrap();
        let report = mario_core::analyze(&schedule, &t.spans);
        let mut s = RunSummary::new("demo").metric("ok", 1.0);
        s.push_row(JsonObj::new().str("scheme", "V"));
        s.attach_critical_path(&report);
        let body = s.render();
        // Extra fields land after rows; path length equals the makespan.
        let rows_at = body.find("\"rows\"").unwrap();
        let cp_at = body.find("\"critical_path\"").unwrap();
        assert!(cp_at > rows_at);
        assert!(body.contains(&format!("\"path_ns\":{}", t.total_ns)));
        assert!(body.contains(&format!("\"makespan_ns\":{}", t.total_ns)));
        assert!(body.contains("\"top_ops\":[{"));
    }

    #[test]
    fn arrays_compose_with_nested_objects() {
        let arr = json_array(
            [1u64, 2, 3]
                .iter()
                .map(|v| JsonObj::new().int("v", *v).render()),
        );
        assert_eq!(arr, "[{\"v\":1},{\"v\":2},{\"v\":3}]");
        assert_eq!(json_array(std::iter::empty::<String>()), "[]");
    }
}
