//! Criterion bench: cluster-emulator execution rate (instructions/s across
//! device threads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mario_cluster::EmulatorConfig;
use mario_ir::{SchemeKind, UnitCost};
use mario_schedules::{generate, ScheduleConfig};
use std::hint::black_box;

fn bench_emulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("emulator");
    g.sample_size(20);
    for d in [4u32, 8, 16] {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, d, 2 * d));
        g.throughput(Throughput::Elements(s.total_instrs() as u64));
        g.bench_with_input(BenchmarkId::new("one_f_one_b", d), &s, |b, s| {
            b.iter(|| {
                black_box(
                    mario_cluster::run(s, &UnitCost::paper_grid(), EmulatorConfig::default())
                        .unwrap()
                        .total_ns,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_emulator);
criterion_main!(benches);
