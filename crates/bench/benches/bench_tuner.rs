//! Criterion bench: schedule-tuner grid-point cost (the paper reports
//! 1060 ms per iteration on a 1024-GPU scenario and 210 s for the full
//! 64-GPU search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mario_core::tuner::{evaluate, Candidate, TunerConfig};
use mario_ir::SchemeKind;
use mario_model::{GpuSpec, ModelConfig};
use std::hint::black_box;

fn bench_tuner(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuner");
    g.sample_size(10);
    let model = ModelConfig::gpt3_13b();
    let gpu = GpuSpec::a100_40g();
    for devices in [16u32, 64] {
        let cfg = TunerConfig {
            prepose: false,
            ..TunerConfig::new(devices, 256, 40 * (1 << 30))
        };
        let cand = Candidate {
            scheme: SchemeKind::OneFOneB,
            pp: devices,
            dp: 1,
            mbs: 2,
            mario: true,
        };
        g.bench_with_input(
            BenchmarkId::new("evaluate_one_grid_point", devices),
            &cand,
            |b, &cand| b.iter(|| black_box(evaluate(&model, &gpu, &cfg, cand))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_tuner);
criterion_main!(benches);
