//! Criterion bench: simulation latency (paper §5.2 reports ~700 ms for
//! GPT3-13B, 64 micro-batches, Chimera, 32 GPUs — our target is the same
//! order of magnitude or better).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mario_core::simulator::{simulate_memory, simulate_timeline};
use mario_ir::{SchemeKind, Topology};
use mario_model::{AnalyticCost, GpuSpec, ModelConfig, TrainSetup};
use mario_bench::channel_capacity;
use mario_schedules::{generate, ScheduleConfig};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    for (scheme, name) in [
        (SchemeKind::OneFOneB, "V"),
        (SchemeKind::Chimera, "X"),
        (SchemeKind::Interleave { chunks: 2 }, "W"),
    ] {
        // The paper's headline simulation: GPT3-13B, 32 GPUs, 64 micros.
        let topo = Topology::new(scheme, 32);
        let setup = TrainSetup::pipeline(
            ModelConfig::gpt3_13b(),
            GpuSpec::a100_40g(),
            topo,
            2,
        );
        let cost = AnalyticCost::new(&setup);
        let schedule = generate(ScheduleConfig::new(scheme, 32, 64));
        let cap = channel_capacity(scheme);
        g.bench_with_input(
            BenchmarkId::new("timeline_gpt3_13b_32gpu_64micro", name),
            &schedule,
            |b, s| b.iter(|| black_box(simulate_timeline(s, &cost, cap).unwrap().total_ns)),
        );
        g.bench_with_input(
            BenchmarkId::new("memory_gpt3_13b_32gpu_64micro", name),
            &schedule,
            |b, s| b.iter(|| black_box(simulate_memory(s, &cost, None).max_peak())),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
