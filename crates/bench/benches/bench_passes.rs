//! Criterion bench: graph-tuner pass cost (the AOT optimization the paper
//! runs once per configuration during tuning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mario_core::passes::{
    apply_checkpoint, overlap_recompute, remove_redundancy, run_graph_tuner, GraphTunerOptions,
};
use mario_ir::{SchemeKind, UnitCost};
use mario_schedules::{generate, ScheduleConfig};
use std::hint::black_box;

fn bench_passes(c: &mut Criterion) {
    let mut g = c.benchmark_group("passes");
    let base = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 32, 64));
    let cost = UnitCost::paper_grid();

    g.bench_function("apply_checkpoint_32x64", |b| {
        b.iter(|| {
            let mut s = base.clone();
            black_box(apply_checkpoint(&mut s))
        })
    });
    let mut ckpted = base.clone();
    apply_checkpoint(&mut ckpted);
    g.bench_function("overlap_recompute_32x64", |b| {
        b.iter(|| {
            let mut s = ckpted.clone();
            black_box(overlap_recompute(&mut s))
        })
    });
    g.bench_function("remove_redundancy_32x64", |b| {
        b.iter(|| {
            let mut s = ckpted.clone();
            black_box(remove_redundancy(&mut s))
        })
    });
    for d in [8u32, 16, 32] {
        let base = generate(ScheduleConfig::new(SchemeKind::OneFOneB, d, 2 * d));
        g.bench_with_input(
            BenchmarkId::new("full_graph_tuner_no_prepose", d),
            &base,
            |b, base| {
                b.iter(|| {
                    let mut s = base.clone();
                    black_box(run_graph_tuner(
                        &mut s,
                        &cost,
                        GraphTunerOptions {
                            prepose: false,
                            ..GraphTunerOptions::mario()
                        },
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
