//! # mario-cluster — a multi-threaded virtual-time cluster emulator
//!
//! The execution substrate substituting for the paper's 64-GPU testbed:
//! every device is an OS thread executing its instruction list in order;
//! point-to-point transfers travel over bounded virtual-time links
//! ([`link`]) whose acknowledgement protocol reproduces blocking-p2p
//! semantics deterministically; memory is tracked per device with OOM
//! faults using the same lifecycle rules as the offline simulator
//! ([`mario_ir::MemoryRules`]); a real-time watchdog converts stalls into
//! deadlock reports.
//!
//! Timing is *virtual*: per-instruction latencies come from a
//! [`mario_ir::CostModel`] (optionally perturbed by seeded jitter), and all
//! clock arithmetic depends only on message timestamps, so results are
//! bit-identical across thread interleavings.
//!
//! The [`faults`] module adds seeded, deterministic fault injection on top:
//! [`run_with_faults`] enforces a [`FaultPlan`] (stragglers, crashes, link
//! delays/stalls, memory squeezes) and converts every induced failure into
//! a structured [`FaultReport`]; [`run_with_recovery`] layers bounded
//! checkpoint-restart on top, and [`run_with_elastic_recovery`] extends
//! it with mid-run teardown/rebuild: a planner-supplied
//! [`Reconfiguration`] re-maps the model onto the surviving devices and
//! the run continues degraded, each survivor's clock starting at its
//! state-redistribution cost. With an empty plan the fault layer is
//! inert and emulation is bit-identical to the plain [`run`].

#![warn(missing_docs)]

pub mod device;
pub mod error;
pub mod event;
pub mod faults;
pub mod link;
pub mod runner;
pub mod serving;

pub use device::{CkptBoard, DeviceReport, StallTable, TimelineEvent};
pub use error::EmuError;
pub use event::{
    run_event, run_event_serving, run_event_with_faults, run_event_with_faults_startup,
};
pub use faults::{FaultGroup, FaultKind, FaultPlan, FaultReport};
pub use runner::{
    effective_watchdog, run, run_serving, run_with_elastic_recovery, run_with_faults,
    run_with_faults_startup, run_with_recovery, ElasticRun, EmulatorBackend, EmulatorConfig,
    Reconfiguration, ReconfigureEvent, RecoveredRun, RecoveryPolicy, RunReport,
};
pub use serving::{
    form_batches, poisson_arrivals, serve, serve_with, Batch, BatchPolicy, Request, RetryPolicy,
    ServeBoard, ServeConfig, ServeOutcome, ServingHooks, ServingTelemetry,
};
