//! # mario-cluster — a multi-threaded virtual-time cluster emulator
//!
//! The execution substrate substituting for the paper's 64-GPU testbed:
//! every device is an OS thread executing its instruction list in order;
//! point-to-point transfers travel over bounded virtual-time links
//! ([`link`]) whose acknowledgement protocol reproduces blocking-p2p
//! semantics deterministically; memory is tracked per device with OOM
//! faults using the same lifecycle rules as the offline simulator
//! ([`mario_ir::MemoryRules`]); a real-time watchdog converts stalls into
//! deadlock reports.
//!
//! Timing is *virtual*: per-instruction latencies come from a
//! [`mario_ir::CostModel`] (optionally perturbed by seeded jitter), and all
//! clock arithmetic depends only on message timestamps, so results are
//! bit-identical across thread interleavings.

#![warn(missing_docs)]

pub mod device;
pub mod error;
pub mod link;
pub mod runner;

pub use device::{DeviceReport, TimelineEvent};
pub use error::EmuError;
pub use runner::{run, EmulatorConfig, RunReport};
