//! Serving mode: forward-only pipelines under live traffic.
//!
//! Training runs execute a fixed number of identical iterations; serving
//! runs execute whatever the load generator produced. This module adds the
//! request layer on top of the emulator: a seeded deterministic arrival
//! process ([`poisson_arrivals`]), a batching policy that forms
//! micro-batches from queued requests ([`BatchPolicy`]), per-request
//! deadlines with a bounded retry/backoff policy ([`RetryPolicy`]), and the
//! attempt loop ([`serve_with`]) that re-dispatches the micro-batches a
//! stage failure stranded.
//!
//! Error-sentinel recovery reuses the emulator's settlement machinery: when
//! a stage crashes, its links are poisoned with a FIFO-ordered end-of-stream
//! marker *behind* all genuine traffic, so every micro-batch already past
//! the failed stage drains through to the last stage and completes — the
//! [`ServeBoard`] survives the failed attempt and keeps those completions —
//! while downstream devices observe the sentinel instead of deadlocking.
//! Only the micro-batches that never reached the end are retried, gated at
//! `fault time + backoff` so wall-clock continuity holds across attempts.
//!
//! The same arithmetic runs on the thread backend, the event backend
//! ([`crate::runner::run_serving`] dispatches) and the DP simulator
//! (`mario-core`'s `simulate_timeline_serving`): with zero jitter all three
//! agree bit-for-bit on every per-request completion time.

use crate::error::EmuError;
use crate::faults::{FaultPlan, FaultReport};
use crate::runner::{run_serving, EmulatorConfig, RunReport};
use mario_ir::{CostModel, MicroId, Nanos, Schedule, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared completion scoreboard: the last pipeline stage records the
/// virtual time each micro-batch finished its final forward. Writes are
/// observational (the executing device never reads the board), so serving
/// instrumentation cannot perturb timing — single-run parity with the
/// un-instrumented emulator is exact.
///
/// The board outlives a failed attempt: micro-batches that drained past
/// the sentinel before the pipe unwound keep their completion times, which
/// is exactly what the retry loop needs to know what *not* to re-dispatch.
#[derive(Debug)]
pub struct ServeBoard {
    /// Completion time per micro, `u64::MAX` = never completed.
    done: Vec<AtomicU64>,
}

impl ServeBoard {
    /// A board for `micros` micro-batches, none completed.
    pub fn new(micros: u32) -> Self {
        Self {
            done: (0..micros).map(|_| AtomicU64::new(u64::MAX)).collect(),
        }
    }

    /// Records that `micro` completed its last forward at `clock` ns.
    /// Keeps the earliest completion if recorded twice (multi-iteration
    /// runs re-execute the program; the first pass is the serving one).
    pub fn record(&self, micro: MicroId, clock: Nanos) {
        if let Some(slot) = self.done.get(micro.index()) {
            slot.fetch_min(clock, Ordering::Relaxed);
        }
    }

    /// Completion time of `micro`, if it finished.
    pub fn completion(&self, micro: u32) -> Option<Nanos> {
        self.done
            .get(micro as usize)
            .map(|s| s.load(Ordering::Relaxed))
            .filter(|&t| t != u64::MAX)
    }

    /// All completion times, indexed by micro.
    pub fn completions(&self) -> Vec<Option<Nanos>> {
        (0..self.done.len() as u32)
            .map(|m| self.completion(m))
            .collect()
    }
}

/// Per-run serving instrumentation handed to the executors: which
/// micro-batch may start when (ingress gating at the first stage) and
/// where completions are recorded (the last stage). `Copy` so device
/// runtimes can hold it by value.
#[derive(Clone, Copy)]
pub struct ServingHooks<'a> {
    /// The schedule's topology, for first/last-stage tests.
    pub topo: Topology,
    /// Release time per micro, ns: the first-stage forward of micro `m`
    /// may not start before `release[m]` (missing entries mean 0).
    pub release: &'a [Nanos],
    /// Completion scoreboard written by the last stage.
    pub board: &'a ServeBoard,
}

impl ServingHooks<'_> {
    /// Release time of `micro` (0 when unspecified).
    pub fn release_of(&self, micro: MicroId) -> Nanos {
        self.release.get(micro.index()).copied().unwrap_or(0)
    }
}

/// One inference request in the open-loop load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Request id (its index in the trace).
    pub id: u32,
    /// Virtual arrival time, ns.
    pub arrival_ns: Nanos,
    /// Absolute completion deadline, ns (the SLO).
    pub deadline_ns: Nanos,
}

/// A seeded open-loop Poisson arrival trace: `count` requests with
/// exponential inter-arrival gaps of mean `mean_gap_ns`, each carrying an
/// absolute deadline `slo_ns` past its arrival. Deterministic given the
/// seed — the same trace drives the simulator and both emulator backends.
pub fn poisson_arrivals(seed: u64, count: u32, mean_gap_ns: Nanos, slo_ns: Nanos) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t: Nanos = 0;
    (0..count)
        .map(|id| {
            // gen_range is half-open at 1.0 and u > 0 keeps ln finite.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += (-u.ln() * mean_gap_ns as f64).round() as Nanos;
            Request {
                id,
                arrival_ns: t,
                deadline_ns: t + slo_ns,
            }
        })
        .collect()
}

/// How queued requests are folded into micro-batches.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BatchPolicy {
    /// A batch closes as soon as it holds this many requests.
    pub max_batch: u32,
    /// ... or once its oldest request has waited this long, whichever
    /// comes first.
    pub max_wait_ns: Nanos,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 4,
            max_wait_ns: 2_000,
        }
    }
}

/// One formed micro-batch: the member requests and the time the batch
/// closed (= the earliest the pipeline may start its first forward).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Batch {
    /// Member request ids (indices into the request trace).
    pub members: Vec<u32>,
    /// Virtual time the batch was released to the pipeline, ns.
    pub release_ns: Nanos,
}

/// Greedily folds an arrival-ordered request trace into micro-batches: a
/// batch opens at its first request's arrival and closes either when the
/// `max_batch`-th request arrives (released at that arrival) or when
/// `max_wait_ns` elapses (released at `open + max_wait_ns` — the batcher
/// waited that long hoping to fill up). Pure integer arithmetic, so every
/// backend derives identical batches.
pub fn form_batches(requests: &[Request], policy: BatchPolicy) -> Vec<Batch> {
    let max_batch = policy.max_batch.max(1) as usize;
    let mut batches = Vec::new();
    let mut i = 0;
    while i < requests.len() {
        let open = requests[i].arrival_ns;
        let close = open + policy.max_wait_ns;
        let mut members = vec![requests[i].id];
        i += 1;
        while i < requests.len() && members.len() < max_batch && requests[i].arrival_ns <= close {
            members.push(requests[i].id);
            i += 1;
        }
        let release_ns = if members.len() == max_batch {
            requests[members[members.len() - 1] as usize].arrival_ns
        } else {
            close
        };
        batches.push(Batch {
            members,
            release_ns,
        });
    }
    batches
}

/// Bounded retry with exponential backoff for micro-batches stranded by a
/// stage failure.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Failed attempts tolerated before the stranded requests are
    /// abandoned (0 = never retry).
    pub max_retries: u32,
    /// Backoff after the `k`-th failure: `backoff_ns << (k-1)` past the
    /// fault's virtual time before stranded micro-batches re-enter.
    pub backoff_ns: Nanos,
    /// Drop a stranded batch instead of retrying it once every member's
    /// deadline lies before the retry floor (the retry could only produce
    /// misses).
    pub drop_missed: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_ns: 5_000,
            drop_missed: false,
        }
    }
}

/// Serving-side counters and latency digest, computed by [`serve_with`]
/// from per-request completion times and surfaced on
/// [`RunReport::serving`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServingTelemetry {
    /// Requests offered.
    pub requests: u32,
    /// Requests that completed (on time or late).
    pub completed: u32,
    /// Requests abandoned (stranded past the retry budget or dropped).
    pub failed: u32,
    /// Completed requests that finished after their deadline.
    pub deadline_misses: u32,
    /// Micro-batch re-dispatches across all retry attempts.
    pub retries: u32,
    /// Pipeline attempts, including the first (1 = no failure).
    pub attempts: u32,
    /// Median completion latency (completion − arrival), ns.
    pub p50_ns: Nanos,
    /// 99th-percentile completion latency, ns.
    pub p99_ns: Nanos,
    /// Worst completion latency, ns.
    pub max_ns: Nanos,
    /// Last completion time, ns (the serving makespan).
    pub makespan_ns: Nanos,
    /// In-deadline completions per second of makespan.
    pub goodput_rps: f64,
    /// Fraction of offered requests that completed within deadline.
    pub slo_attainment: f64,
}

/// What a whole serving session produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Completion time per request id (None = abandoned).
    pub completions: Vec<Option<Nanos>>,
    /// The micro-batches the batching policy formed.
    pub batches: Vec<Batch>,
    /// Structured reports of every fault that killed an attempt.
    pub fault_log: Vec<FaultReport>,
    /// The last successful attempt's run report, serving telemetry
    /// stamped (None when even the final attempt failed).
    pub report: Option<RunReport>,
    /// Serving counters and latency digest.
    pub serving: ServingTelemetry,
}

/// The serving attempt loop, generic over the executor so the simulator
/// and both emulator backends share the batching, retry, backoff and
/// telemetry arithmetic verbatim.
///
/// `run(micros, release, attempt)` executes one pipeline attempt over
/// `micros` micro-batches whose first-stage forwards are gated at
/// `release`, returning the attempt outcome and the per-micro completion
/// times the scoreboard observed (partial on failure). `retryable`
/// classifies an attempt error: `Some(report)` means an injected fault the
/// loop may retry past; `None` propagates the error (a broken schedule
/// cannot be retried into working).
///
/// Wall-clock continuity across attempts: a retry re-dispatches the
/// stranded micro-batches onto the recovered (drained) pipeline with
/// release times floored at `fault.vtime + backoff`, so completion times
/// from different attempts share one time axis.
pub fn serve_with<E>(
    requests: &[Request],
    batch: BatchPolicy,
    retry: RetryPolicy,
    mut run: impl FnMut(u32, &[Nanos], u32) -> (Result<RunReport, E>, Vec<Option<Nanos>>),
    retryable: impl Fn(&E) -> Option<FaultReport>,
) -> Result<ServeOutcome, E> {
    let batches = form_batches(requests, batch);
    let mut batch_done: Vec<Option<Nanos>> = vec![None; batches.len()];
    let mut pending: Vec<usize> = (0..batches.len()).collect();
    let mut fault_log: Vec<FaultReport> = Vec::new();
    let mut report: Option<RunReport> = None;
    let mut retries: u32 = 0;
    let mut attempt: u32 = 0;
    // Earliest re-entry time for retried micro-batches, pushed forward by
    // each failure's virtual time plus backoff.
    let mut floor: Nanos = 0;
    while !pending.is_empty() {
        let release: Vec<Nanos> = pending
            .iter()
            .map(|&b| batches[b].release_ns.max(floor))
            .collect();
        let (res, completions) = run(pending.len() as u32, &release, attempt);
        attempt += 1;
        for (j, done) in completions.iter().enumerate() {
            if let (Some(t), Some(&b)) = (done, pending.get(j)) {
                batch_done[b] = Some(*t);
            }
        }
        pending.retain(|&b| batch_done[b].is_none());
        match res {
            Ok(rep) => {
                report = Some(rep);
                debug_assert!(pending.is_empty(), "successful attempt left micros unfinished");
                break;
            }
            Err(e) => {
                let Some(rep) = retryable(&e) else { return Err(e) };
                let failures = fault_log.len() as u32 + 1;
                let backoff = retry
                    .backoff_ns
                    .saturating_mul(1u64 << (failures - 1).min(32));
                floor = floor.max(rep.vtime.saturating_add(backoff));
                fault_log.push(rep);
                if failures > retry.max_retries {
                    break;
                }
                if retry.drop_missed {
                    pending.retain(|&b| {
                        batches[b]
                            .members
                            .iter()
                            .any(|&r| requests[r as usize].deadline_ns >= floor)
                    });
                }
                retries += pending.len() as u32;
            }
        }
    }

    // Expand batch completions to requests and digest.
    let mut completions: Vec<Option<Nanos>> = vec![None; requests.len()];
    for (b, done) in batches.iter().zip(&batch_done) {
        if let Some(t) = done {
            for &r in &b.members {
                completions[r as usize] = Some(*t);
            }
        }
    }
    let mut latencies: Vec<Nanos> = Vec::new();
    let mut on_time: u32 = 0;
    let mut misses: u32 = 0;
    let mut makespan: Nanos = 0;
    for (r, done) in requests.iter().zip(&completions) {
        let Some(t) = done else { continue };
        latencies.push(t.saturating_sub(r.arrival_ns));
        makespan = makespan.max(*t);
        if *t <= r.deadline_ns {
            on_time += 1;
        } else {
            misses += 1;
        }
    }
    latencies.sort_unstable();
    // Integer nearest-rank percentile on the sorted latencies: exact and
    // platform-independent, so parity assertions can compare digests.
    let pct = |num: u64, den: u64| -> Nanos {
        if latencies.is_empty() {
            0
        } else {
            latencies[((latencies.len() - 1) as u64 * num / den) as usize]
        }
    };
    let completed = latencies.len() as u32;
    let serving = ServingTelemetry {
        requests: requests.len() as u32,
        completed,
        failed: requests.len() as u32 - completed,
        deadline_misses: misses,
        retries,
        attempts: attempt,
        p50_ns: pct(50, 100),
        p99_ns: pct(99, 100),
        max_ns: latencies.last().copied().unwrap_or(0),
        makespan_ns: makespan,
        goodput_rps: if makespan == 0 {
            0.0
        } else {
            on_time as f64 / (makespan as f64 / 1e9)
        },
        slo_attainment: if requests.is_empty() {
            0.0
        } else {
            on_time as f64 / requests.len() as f64
        },
    };
    if let Some(rep) = report.as_mut() {
        rep.serving = Some(serving.clone());
    }
    Ok(ServeOutcome {
        completions,
        batches,
        fault_log,
        report,
        serving,
    })
}

/// Serving knobs for the emulator-backed [`serve`] loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeConfig {
    /// Emulator knobs (backend, jitter, seed, capacity; `iterations` is
    /// forced to 1 — a serving attempt is one pass of the schedule).
    pub emulator: EmulatorConfig,
    /// How queued requests fold into micro-batches.
    pub batch: BatchPolicy,
    /// Retry/backoff for stranded micro-batches.
    pub retry: RetryPolicy,
}

/// Serves `requests` through forward-only pipelines built by `build` (a
/// closure from micro-batch count to schedule — retry attempts run fewer
/// micros), under `plan`'s injected faults. Each failed attempt consumes
/// the plan's armed follow-ups exactly like [`crate::run_with_recovery`],
/// so cascading fault plans behave identically in training and serving.
pub fn serve(
    mut build: impl FnMut(u32) -> Schedule,
    cost: &dyn CostModel,
    cfg: &ServeConfig,
    plan: &FaultPlan,
    requests: &[Request],
) -> Result<ServeOutcome, EmuError> {
    let mut active = plan.clone();
    let mut last_attempt = 0;
    serve_with(
        requests,
        cfg.batch,
        cfg.retry,
        |micros, release, attempt| {
            if attempt > last_attempt {
                // The faulted component was replaced; a cascading plan may
                // have armed a follow-up for this attempt.
                active = active.take_armed();
                last_attempt = attempt;
            }
            let schedule = build(micros);
            let board = ServeBoard::new(micros);
            let run_cfg = EmulatorConfig {
                iterations: 1,
                ..cfg.emulator
            };
            let res = run_serving(&schedule, cost, run_cfg, &active, release, &board);
            (res, board.completions())
        },
        |e| match e {
            EmuError::Fault(r) => Some((**r).clone()),
            _ => None,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;
    use mario_ir::DeviceId;

    fn req(id: u32, arrival: Nanos, deadline: Nanos) -> Request {
        Request {
            id,
            arrival_ns: arrival,
            deadline_ns: deadline,
        }
    }

    fn fault_at(vtime: Nanos) -> FaultReport {
        FaultReport {
            fault: FaultKind::Crash {
                device: DeviceId(0),
                pc: 0,
            },
            device: DeviceId(0),
            pc: 0,
            instr: String::new(),
            blocked_peer: None,
            vtime,
            iteration: 0,
            last_checkpoint: 0,
            ckpt_paid_ns: 0,
            group: None,
            detail: String::new(),
        }
    }

    #[test]
    fn poisson_trace_is_deterministic_and_monotone() {
        let a = poisson_arrivals(7, 64, 1_000, 50_000);
        let b = poisson_arrivals(7, 64, 1_000, 50_000);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].arrival_ns <= w[1].arrival_ns);
        }
        assert_ne!(a, poisson_arrivals(8, 64, 1_000, 50_000));
        for r in &a {
            assert_eq!(r.deadline_ns, r.arrival_ns + 50_000);
        }
    }

    #[test]
    fn batches_close_on_count_or_timeout() {
        let policy = BatchPolicy {
            max_batch: 2,
            max_wait_ns: 100,
        };
        // r0+r1 fill a batch (released at r1's arrival); r2 times out
        // alone (released at open + wait); r3+r4 fill again.
        let rs = [
            req(0, 0, 1_000),
            req(1, 50, 1_000),
            req(2, 500, 1_000),
            req(3, 2_000, 9_000),
            req(4, 2_010, 9_000),
        ];
        let batches = form_batches(&rs, policy);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].members, vec![0, 1]);
        assert_eq!(batches[0].release_ns, 50);
        assert_eq!(batches[1].members, vec![2]);
        assert_eq!(batches[1].release_ns, 600);
        assert_eq!(batches[2].members, vec![3, 4]);
        assert_eq!(batches[2].release_ns, 2_010);
    }

    #[test]
    fn board_keeps_partial_completions() {
        let board = ServeBoard::new(3);
        board.record(MicroId(1), 500);
        board.record(MicroId(1), 900); // later pass loses
        assert_eq!(board.completions(), vec![None, Some(500), None]);
    }

    #[test]
    fn serve_with_retries_stranded_batches_with_backoff() {
        let rs = [req(0, 0, 100_000), req(1, 10, 100_000)];
        let policy = BatchPolicy {
            max_batch: 1,
            max_wait_ns: 0,
        };
        let retry = RetryPolicy {
            max_retries: 2,
            backoff_ns: 1_000,
            drop_missed: false,
        };
        let mut calls: Vec<(u32, Vec<Nanos>)> = Vec::new();
        let out = serve_with(
            &rs,
            policy,
            retry,
            |micros, release, attempt| {
                calls.push((micros, release.to_vec()));
                if attempt == 0 {
                    // Micro 0 drains past the sentinel; micro 1 is stranded.
                    (Err(fault_at(5_000)), vec![Some(3_000), None])
                } else {
                    // Retry completes the one stranded micro.
                    (
                        Ok(RunReport::default()),
                        vec![Some(release[0] + 500)],
                    )
                }
            },
            |e: &FaultReport| Some(e.clone()),
        )
        .unwrap();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].0, 2);
        // Retry gates at fault vtime + backoff.
        assert_eq!(calls[1].0, 1);
        assert_eq!(calls[1].1, vec![6_000]);
        assert_eq!(out.completions, vec![Some(3_000), Some(6_500)]);
        assert_eq!(out.serving.retries, 1);
        assert_eq!(out.serving.attempts, 2);
        assert_eq!(out.serving.completed, 2);
        assert_eq!(out.serving.failed, 0);
        assert_eq!(out.fault_log.len(), 1);
    }

    #[test]
    fn serve_with_abandons_past_retry_budget() {
        let rs = [req(0, 0, 1_000)];
        let retry = RetryPolicy {
            max_retries: 1,
            backoff_ns: 100,
            drop_missed: false,
        };
        let out = serve_with(
            &rs,
            BatchPolicy::default(),
            retry,
            |_, _, _| (Err::<RunReport, _>(fault_at(50)), vec![None]),
            |e: &FaultReport| Some(e.clone()),
        )
        .unwrap();
        assert_eq!(out.completions, vec![None]);
        assert_eq!(out.serving.failed, 1);
        assert_eq!(out.serving.completed, 0);
        assert_eq!(out.fault_log.len(), 2); // initial + one retry
        assert!(out.report.is_none());
    }

    #[test]
    fn drop_missed_abandons_hopeless_batches() {
        // Deadline at 1_000, fault at 10_000: a retry cannot make it.
        let rs = [req(0, 0, 1_000)];
        let retry = RetryPolicy {
            max_retries: 5,
            backoff_ns: 100,
            drop_missed: true,
        };
        let mut attempts = 0;
        let out = serve_with(
            &rs,
            BatchPolicy::default(),
            retry,
            |_, _, _| {
                attempts += 1;
                (Err::<RunReport, _>(fault_at(10_000)), vec![None])
            },
            |e: &FaultReport| Some(e.clone()),
        )
        .unwrap();
        assert_eq!(attempts, 1, "hopeless batch must not be retried");
        assert_eq!(out.serving.failed, 1);
        assert_eq!(out.serving.retries, 0);
    }

    #[test]
    fn telemetry_digest_counts_misses_and_percentiles() {
        let rs = [
            req(0, 0, 1_000),
            req(1, 0, 1_000),
            req(2, 0, 500),
        ];
        let policy = BatchPolicy {
            max_batch: 1,
            max_wait_ns: 0,
        };
        let out = serve_with(
            &rs,
            policy,
            RetryPolicy::default(),
            |micros, _, _| {
                (
                    Ok(RunReport::default()),
                    (0..micros).map(|m| Some(600 + m as u64 * 100)).collect(),
                )
            },
            |e: &FaultReport| Some(e.clone()),
        )
        .unwrap();
        assert_eq!(out.serving.completed, 3);
        assert_eq!(out.serving.deadline_misses, 1); // r2 done at 800 > 500
        assert_eq!(out.serving.p50_ns, 700);
        assert_eq!(out.serving.max_ns, 800);
        assert_eq!(out.serving.makespan_ns, 800);
        assert!((out.serving.slo_attainment - 2.0 / 3.0).abs() < 1e-9);
        // Digest is stamped onto the surviving report.
        assert_eq!(out.report.unwrap().serving.unwrap(), out.serving);
    }
}
