//! The discrete-event executor: the emulator's scale path.
//!
//! One thread, no watchdog, no real-time blocking — every device is a
//! resumable state machine and every link a plain queue of timestamped
//! packets. The arithmetic is copied line-for-line from the thread
//! backend ([`crate::device`] + [`crate::link`]): the same launch
//! charges, the same `arrival = max(now, sent_at + transfer)` rule, the
//! same ack-window capacity blocking, the same
//! [`mario_ir::MemoryRules`] lifecycle and checkpoint chunk-drain
//! arithmetic, the same nine-class telemetry split. With zero jitter the
//! two backends (and the DP simulator) agree bit-for-bit — the
//! three-way parity proptests pin it.
//!
//! Why any execution order works: each device's instruction sequence is
//! fixed, each channel is FIFO, and every clock update depends only on
//! packet timestamps — never on when the scheduler happened to run the
//! device. The worklist is therefore confluent: any order of ready
//! devices reaches the same final state (a property
//! `tests/properties.rs` checks by permuting the seed order through
//! [`run_event_ordered`]).
//!
//! Deadlock needs no timer here: when the worklist drains and devices
//! are still blocked, no event can ever wake them — that *is* the
//! deadlock, detected in zero real time where the thread backend must
//! wait out a watchdog.

use crate::device::{CkptBoard, DeviceReport, StallTable, TimelineEvent};
use crate::error::EmuError;
use crate::faults::{DeviceFaults, FaultKind, FaultPlan, FaultReport};
use crate::link::Header;
use crate::runner::{settle_report, EmulatorConfig, RunReport};
use mario_ir::exec::MsgClass;
use mario_ir::{
    AllocKey, CheckpointPolicy, CostModel, DeviceId, DeviceProgram, DeviceTelemetry, Instr,
    InstrKind, LinkSendStats, MemLedger, MemoryRules, Nanos, OpSpan, PartId, Schedule, CKPT_PC,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// A directed channel identity: (sender, receiver, class, part).
type ChanKey = (DeviceId, DeviceId, MsgClass, PartId);

/// One bounded-FIFO link, event-style: the data queue carries
/// `(header, bytes, sent_at)` packets, `dequeues` buffers the receiver's
/// arrival timestamps (the acks), and `outstanding` is the sender's
/// un-acked window — it grows on every push and shrinks only when a
/// capacity-blocked send consumes the oldest ack, exactly like
/// `SendHalf::pending` and the simulator's `Channel::outstanding`.
#[derive(Debug, Default)]
struct EventChannel {
    queue: VecDeque<(Header, u64, Nanos)>,
    dequeues: VecDeque<Nanos>,
    outstanding: usize,
    sender_settled: bool,
    receiver_settled: bool,
}

/// The blocking operation a device is parked on.
#[derive(Debug, Clone, Copy)]
enum Waiting {
    /// A send that found its ack window full.
    Send {
        pc: usize,
        start: Nanos,
        key: ChanKey,
        header: Header,
        bytes: u64,
        delay: Nanos,
    },
    /// A recv that found the queue empty.
    Recv {
        pc: usize,
        start: Nanos,
        key: ChanKey,
        expect: Header,
    },
}

impl Waiting {
    fn pc(&self) -> usize {
        match self {
            Waiting::Send { pc, .. } | Waiting::Recv { pc, .. } => *pc,
        }
    }

    /// The peer the blocked operation pairs with.
    fn peer(&self) -> DeviceId {
        match self {
            Waiting::Send { key, .. } => key.1,
            Waiting::Recv { key, .. } => key.0,
        }
    }
}

/// Shared, immutable context every device step needs.
struct EvEnv<'a> {
    rules: &'a MemoryRules,
    stalls: &'a StallTable,
    ckpts: &'a CkptBoard,
    capacity: usize,
}

/// Outcome of stepping one device until it can make no more progress.
enum Stepped {
    /// Parked on a send or recv; a peer event must wake it.
    Blocked,
    /// Ran every iteration to completion.
    Finished,
    /// Hit a structured failure.
    Failed(EmuError),
}

/// Outcome of one attempt at a blocking link operation.
enum Attempt {
    Done,
    Blocked,
    Fail(ChanFail),
}

/// Link-level failure, the event analogue of `LinkError` minus
/// `Timeout` (quiescence replaces the watchdog).
enum ChanFail {
    Disconnected,
    Mismatch(Header),
}

/// Per-device state: the event-backend mirror of
/// [`crate::device::DeviceRuntime`], plus a program counter and the
/// parked operation, so execution can suspend and resume mid-program.
struct EvDevice<'a> {
    device: DeviceId,
    program: &'a DeviceProgram,
    cost: &'a dyn CostModel,
    ledger: MemLedger,
    clock: Nanos,
    rng: StdRng,
    jitter: f64,
    straggler: f64,
    record: bool,
    timeline: Vec<TimelineEvent>,
    record_spans: bool,
    spans: Vec<OpSpan>,
    /// `(sent_at, wire_ns)` of the last completed receive — stashed by
    /// [`try_recv`] so the resume path can record the span.
    last_recv: (Nanos, Nanos),
    faults: DeviceFaults,
    sends_to: HashMap<DeviceId, usize>,
    absorbed: Vec<FaultReport>,
    iteration: u32,
    iters_total: u32,
    pc: usize,
    waiting: Option<Waiting>,
    checkpoint: Option<CheckpointPolicy>,
    last_checkpoint: u32,
    pending_chunks: VecDeque<Nanos>,
    pending_ckpt_iters: u32,
    telemetry: DeviceTelemetry,
    link_sends: HashMap<DeviceId, LinkSendStats>,
    link_recv_wait: HashMap<DeviceId, Nanos>,
    serving: Option<crate::serving::ServingHooks<'a>>,
}

impl<'a> EvDevice<'a> {
    fn new(
        device: DeviceId,
        program: &'a DeviceProgram,
        cost: &'a dyn CostModel,
        cfg: &EmulatorConfig,
        faults: DeviceFaults,
        startup_ns: Nanos,
        serving: Option<crate::serving::ServingHooks<'a>>,
    ) -> Self {
        // Identical straggler derivation to `DeviceRuntime::new`: a fixed
        // per-device slowdown in [1, 1+spread], derived from the seed.
        let mix = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((device.0 as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let unit = (mix >> 11) as f64 / (1u64 << 53) as f64;
        let straggler = 1.0 + cfg.straggler_spread * unit;
        let capacity = match faults.squeezed_capacity() {
            Some(squeezed) => Some(cfg.mem_capacity.unwrap_or(u64::MAX).min(squeezed)),
            None => cfg.mem_capacity,
        };
        let mut telemetry = DeviceTelemetry::new(device);
        telemetry.classes.reconfig_ns = startup_ns;
        Self {
            device,
            program,
            cost,
            ledger: MemLedger::new(cost.static_mem(device), capacity),
            clock: startup_ns,
            rng: StdRng::seed_from_u64(
                cfg.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(device.0 as u64 + 1)),
            ),
            jitter: cfg.jitter,
            straggler,
            record: cfg.record_timeline,
            timeline: Vec::new(),
            record_spans: cfg.record_spans,
            spans: Vec::new(),
            last_recv: (0, 0),
            faults,
            sends_to: HashMap::new(),
            absorbed: Vec::new(),
            iteration: 0,
            iters_total: cfg.iterations,
            pc: 0,
            waiting: None,
            checkpoint: cfg.checkpoint,
            last_checkpoint: 0,
            pending_chunks: VecDeque::new(),
            pending_ckpt_iters: 0,
            telemetry,
            link_sends: HashMap::new(),
            link_recv_wait: HashMap::new(),
            serving,
        }
    }

    fn jittered(&mut self, ns: Nanos) -> Nanos {
        if self.jitter == 0.0 && self.straggler == 1.0 {
            return ns;
        }
        let f = if self.jitter == 0.0 {
            1.0
        } else {
            1.0 + self.rng.gen_range(-2.0 * self.jitter..=2.0 * self.jitter)
        };
        (ns as f64 * f * self.straggler).round() as Nanos
    }

    fn report(&self, fault: FaultKind, pc: usize, instr: Option<&Instr>, detail: &str) -> FaultReport {
        FaultReport {
            fault,
            device: self.device,
            pc,
            instr: instr.map(|i| i.to_string()).unwrap_or_default(),
            blocked_peer: None,
            vtime: self.clock,
            iteration: self.iteration,
            last_checkpoint: self.last_checkpoint,
            ckpt_paid_ns: 0,
            group: None,
            detail: detail.to_string(),
        }
    }

    /// The event analogue of `DeviceRuntime::link_err`: an injected
    /// incoming-link stall takes precedence over the mechanical failure
    /// shape, so seeded runs reproduce identical reports on both
    /// backends.
    fn chan_err(&self, fail: ChanFail, pc: usize, peer: DeviceId) -> EmuError {
        let instr = self.program.get(pc);
        if let Some(fault) = self.faults.recv_stall_from(peer) {
            let mut report = self.report(fault, pc, instr, "incoming link stalled");
            report.blocked_peer = Some(peer);
            return EmuError::Fault(Box::new(report));
        }
        match fail {
            ChanFail::Disconnected => EmuError::PeerFailed {
                device: self.device,
                pc,
            },
            ChanFail::Mismatch(h) => EmuError::CommMismatch {
                device: self.device,
                pc,
                detail: instr
                    .map(|i| format!("expected {i}, got {h:?}"))
                    .unwrap_or_else(|| format!("got {h:?}")),
            },
        }
    }

    fn apply_mem(&mut self, env: &EvEnv<'_>, pc: usize, instr: &Instr) -> Result<(), EmuError> {
        let squeeze = self.faults.squeeze;
        let device = self.device;
        let last_checkpoint = self.last_checkpoint;
        let vtime = self.clock;
        let iteration = self.iteration;
        env.rules
            .apply(&mut self.ledger, self.cost, device, instr)
            .map_err(|cause| match squeeze {
                Some(fault) => EmuError::Fault(Box::new(FaultReport {
                    fault,
                    device,
                    pc,
                    instr: instr.to_string(),
                    blocked_peer: None,
                    vtime,
                    iteration,
                    last_checkpoint,
                    ckpt_paid_ns: 0,
                    group: None,
                    detail: format!("memory squeezed: {cause}"),
                })),
                None => EmuError::Oom {
                    device,
                    pc,
                    instr: instr.to_string(),
                    cause,
                },
            })
    }

    fn record_event(&mut self, instr: &Instr, start: Nanos) {
        if self.record {
            self.timeline.push(TimelineEvent {
                device: self.device,
                instr: instr.to_string(),
                start,
                end: self.clock,
            });
        }
    }

    /// Records one executed span ending at the current clock; field
    /// semantics identical to the thread backend's capture.
    #[allow(clippy::too_many_arguments)]
    fn record_span(
        &mut self,
        pc: u32,
        start: Nanos,
        work_ns: Nanos,
        sent_at: Nanos,
        wire_ns: Nanos,
        gate_ns: Nanos,
    ) {
        if self.record_spans {
            self.spans.push(OpSpan {
                device: self.device,
                iter: self.iteration,
                pc,
                start,
                end: self.clock,
                work_ns,
                sent_at,
                wire_ns,
                gate_ns,
            });
        }
    }

    /// Identical chunk-drain arithmetic to `DeviceRuntime::drain_chunks`:
    /// flush pending async-checkpoint chunks into an idle gap, front
    /// first, durable once the queue empties.
    fn drain_chunks(&mut self, env: &EvEnv<'_>, mut gap: Nanos) -> Nanos {
        let mut drained = 0;
        if self.pending_chunks.is_empty() {
            return drained;
        }
        while let Some(&chunk) = self.pending_chunks.front() {
            if chunk > gap {
                return drained;
            }
            gap -= chunk;
            drained += chunk;
            self.pending_chunks.pop_front();
            env.ckpts.record_chunk(self.device);
        }
        self.last_checkpoint = self.pending_ckpt_iters;
        env.ckpts.record(self.device, self.last_checkpoint);
        drained
    }

    /// Synchronously pays whatever the bubbles did not absorb
    /// (`DeviceRuntime::flush_residue`).
    fn flush_residue(&mut self, env: &EvEnv<'_>) {
        if self.pending_chunks.is_empty() {
            return;
        }
        let residue: Nanos = self.pending_chunks.iter().sum();
        for _ in 0..self.pending_chunks.len() {
            env.ckpts.record_chunk(self.device);
        }
        self.pending_chunks.clear();
        self.clock += residue;
        self.telemetry.classes.ckpt_sync_ns += residue;
        env.ckpts.record_paid(self.device, residue);
        self.last_checkpoint = self.pending_ckpt_iters;
        env.ckpts.record(self.device, self.last_checkpoint);
    }

    /// End-of-run residue flush (`DeviceRuntime::drain_checkpoint`).
    fn drain_checkpoint(&mut self, env: &EvEnv<'_>) {
        let start = self.clock;
        self.flush_residue(env);
        if self.clock > start {
            if self.record {
                self.timeline.push(TimelineEvent {
                    device: self.device,
                    instr: "CKPT".to_string(),
                    start,
                    end: self.clock,
                });
            }
            if self.record_spans {
                self.spans.push(OpSpan {
                    device: self.device,
                    // `iteration` has already advanced past the last one
                    // here (the run-complete check), so rewind it — the
                    // thread backend records the last iteration's index.
                    iter: self.iters_total.saturating_sub(1),
                    pc: CKPT_PC,
                    start,
                    end: self.clock,
                    work_ns: self.clock - start,
                    sent_at: 0,
                    wire_ns: 0,
                    gate_ns: 0,
                });
            }
        }
    }

    /// End-of-iteration checkpoint write
    /// (`DeviceRuntime::checkpoint_boundary`), arithmetic unchanged.
    fn checkpoint_boundary(&mut self, env: &EvEnv<'_>, iter_idx: u32) -> Result<(), EmuError> {
        let Some(policy) = self.checkpoint else {
            return Ok(());
        };
        if !policy.is_boundary(iter_idx) {
            return Ok(());
        }
        let start = self.clock;
        self.flush_residue(env);
        // The serialization buffer is checked before any write cost is
        // charged or durability recorded.
        let pc = self.program.len();
        if let Err(cause) = self.ledger.alloc(AllocKey::Snapshot, policy.mem_overhead) {
            return Err(match self.faults.squeeze {
                Some(fault) => EmuError::Fault(Box::new(FaultReport {
                    fault,
                    device: self.device,
                    pc,
                    instr: "CKPT".to_string(),
                    blocked_peer: None,
                    vtime: self.clock,
                    iteration: self.iteration,
                    last_checkpoint: self.last_checkpoint,
                    ckpt_paid_ns: 0,
                    group: None,
                    detail: format!("memory squeezed: {cause}"),
                })),
                None => EmuError::Oom {
                    device: self.device,
                    pc,
                    instr: "CKPT".to_string(),
                    cause,
                },
            });
        }
        self.ledger.free(AllocKey::Snapshot);
        // The write is a model parameter, not a kernel: unjittered.
        let shard = self.cost.ckpt_shard_bytes(self.device);
        if policy.async_overlap() {
            let chunks = policy.device_chunk_times(shard);
            if chunks.is_empty() {
                self.last_checkpoint = iter_idx + 1;
                env.ckpts.record(self.device, self.last_checkpoint);
            } else {
                self.pending_chunks = chunks.into();
                self.pending_ckpt_iters = iter_idx + 1;
            }
        } else {
            let write = policy.device_write_ns(shard);
            self.clock += write;
            self.telemetry.classes.ckpt_sync_ns += write;
            env.ckpts.record_paid(self.device, write);
            self.last_checkpoint = iter_idx + 1;
            env.ckpts.record(self.device, self.last_checkpoint);
        }
        if self.record {
            self.timeline.push(TimelineEvent {
                device: self.device,
                instr: "CKPT".to_string(),
                start,
                end: self.clock,
            });
        }
        if self.record_spans {
            self.spans.push(OpSpan {
                device: self.device,
                iter: iter_idx,
                pc: CKPT_PC,
                start,
                end: self.clock,
                work_ns: self.clock - start,
                sent_at: 0,
                wire_ns: 0,
                gate_ns: 0,
            });
        }
        Ok(())
    }

    /// Finishes the run and reports (`DeviceRuntime::finish`, by
    /// mutable reference so the scheduler can keep the device slot).
    fn finish(&mut self) -> DeviceReport {
        let mut telemetry = std::mem::take(&mut self.telemetry);
        telemetry.device = self.device;
        telemetry.peak_mem = self.ledger.peak();
        telemetry.absorbed_faults = self.absorbed.len() as u32;
        debug_assert_eq!(
            telemetry.classes.total(),
            self.clock,
            "{}: time classes do not conserve the clock",
            self.device
        );
        DeviceReport {
            clock: self.clock,
            peak_mem: self.ledger.peak(),
            leaked: self.ledger.live_count(),
            timeline: std::mem::take(&mut self.timeline),
            absorbed: std::mem::take(&mut self.absorbed),
            last_checkpoint: self.last_checkpoint,
            telemetry,
            link_sends: std::mem::take(&mut self.link_sends),
            link_recv_wait: std::mem::take(&mut self.link_recv_wait),
            spans: std::mem::take(&mut self.spans),
        }
    }
}

/// One attempt at a parked send: the event-queue mirror of
/// `SendHalf::send_delayed` plus the post-send accounting from the
/// thread backend's send arm (capacity wait, chunk drain, gap split,
/// link stats).
fn try_send(
    dev: &mut EvDevice<'_>,
    env: &EvEnv<'_>,
    chan: &mut EventChannel,
    peer: DeviceId,
    header: Header,
    bytes: u64,
    delay: Nanos,
) -> Attempt {
    let mut now = dev.clock;
    if chan.outstanding == env.capacity {
        match chan.dequeues.pop_front() {
            // The buffer was full until the receiver dequeued the
            // oldest packet: the send completes at that time.
            Some(dequeued_at) => {
                chan.outstanding -= 1;
                now = now.max(dequeued_at);
            }
            // No ack will ever come: the receiver settled. FIFO order
            // guarantees every genuine ack was consumed first — the
            // exact observation the thread backend's ack-poison makes.
            None if chan.receiver_settled => {
                env.stalls.clear(dev.device);
                return Attempt::Fail(ChanFail::Disconnected);
            }
            None => return Attempt::Blocked,
        }
    }
    chan.queue.push_back((header, bytes, now + delay));
    chan.outstanding += 1;
    // Occupancy right after the send: the un-acked window.
    let occupancy = chan.outstanding as u32;
    env.stalls.clear(dev.device);
    // A capacity wait is idle time exactly like a recv wait: async
    // checkpoint chunks drain into it too.
    let blocked = now.saturating_sub(dev.clock);
    let drained = dev.drain_chunks(env, blocked);
    dev.telemetry.classes.on_send_gap(blocked, drained);
    dev.clock = now;
    dev.link_sends
        .entry(peer)
        .or_default()
        .on_send(bytes, blocked, occupancy);
    Attempt::Done
}

/// One attempt at a parked recv: the mirror of `RecvHalf::recv` plus
/// the thread backend's recv-arm accounting (gap, chunk drain,
/// recv-wait stats).
fn try_recv(
    dev: &mut EvDevice<'_>,
    env: &EvEnv<'_>,
    chan: &mut EventChannel,
    peer: DeviceId,
    expect: Header,
) -> Attempt {
    let Some(&(header, bytes, sent_at)) = chan.queue.front() else {
        if chan.sender_settled {
            // Queue drained and the sender will never send again:
            // FIFO-ordered end-of-stream, after all genuine packets.
            env.stalls.clear(dev.device);
            return Attempt::Fail(ChanFail::Disconnected);
        }
        return Attempt::Blocked;
    };
    chan.queue.pop_front();
    env.stalls.clear(dev.device);
    if header != expect {
        // The mismatched packet is consumed and never acked, exactly
        // like the thread backend.
        return Attempt::Fail(ChanFail::Mismatch(header));
    }
    let wire_ns = dev.cost.p2p_time_between(peer, dev.device, bytes);
    let arrival = dev.clock.max(sent_at + wire_ns);
    dev.last_recv = (sent_at, wire_ns);
    chan.dequeues.push_back(arrival);
    let gap = arrival.saturating_sub(dev.clock);
    let drained = dev.drain_chunks(env, gap);
    dev.telemetry.classes.on_recv_gap(gap, drained);
    *dev.link_recv_wait.entry(peer).or_default() += gap;
    dev.clock = arrival;
    Attempt::Done
}

/// Runs one device until it blocks, finishes, or fails. Instruction
/// semantics are copied from `DeviceRuntime::run_iteration`; the only
/// structural difference is that blocking sends/recvs park the device
/// (`EvDevice::waiting`) instead of blocking a thread, and the loop top
/// owns the single resume path.
fn step(
    dev: &mut EvDevice<'_>,
    env: &EvEnv<'_>,
    chans: &mut HashMap<ChanKey, EventChannel>,
    wakes: &mut Vec<usize>,
) -> Stepped {
    loop {
        // Resume a parked operation first: the one completion path for
        // both the initial attempt and every retry.
        if let Some(w) = dev.waiting {
            match w {
                Waiting::Send {
                    pc,
                    start,
                    key,
                    header,
                    bytes,
                    delay,
                } => {
                    let chan = chans.get_mut(&key).expect("send channel was discovered");
                    match try_send(dev, env, chan, key.1, header, bytes, delay) {
                        Attempt::Blocked => return Stepped::Blocked,
                        Attempt::Done => {
                            dev.waiting = None;
                            wakes.push(key.1.index());
                            let program = dev.program;
                            let instr = program.get(pc).expect("pc in range");
                            if let Err(e) = dev.apply_mem(env, pc, instr) {
                                return Stepped::Failed(e);
                            }
                            dev.record_event(instr, start);
                            let launch = dev.cost.p2p_launch_overhead();
                            dev.record_span(pc as u32, start, launch, 0, 0, 0);
                            dev.pc = pc + 1;
                        }
                        Attempt::Fail(f) => {
                            dev.waiting = None;
                            return Stepped::Failed(dev.chan_err(f, pc, key.1));
                        }
                    }
                }
                Waiting::Recv {
                    pc,
                    start,
                    key,
                    expect,
                } => {
                    let chan = chans.get_mut(&key).expect("recv channel was discovered");
                    match try_recv(dev, env, chan, key.0, expect) {
                        Attempt::Blocked => return Stepped::Blocked,
                        Attempt::Done => {
                            dev.waiting = None;
                            wakes.push(key.0.index());
                            let program = dev.program;
                            let instr = program.get(pc).expect("pc in range");
                            dev.record_event(instr, start);
                            let launch = dev.cost.p2p_launch_overhead();
                            let (sent_at, wire_ns) = dev.last_recv;
                            dev.record_span(pc as u32, start, launch, sent_at, wire_ns, 0);
                            dev.pc = pc + 1;
                        }
                        Attempt::Fail(f) => {
                            dev.waiting = None;
                            return Stepped::Failed(dev.chan_err(f, pc, key.0));
                        }
                    }
                }
            }
            continue;
        }
        if dev.iteration >= dev.iters_total {
            // No bubbles remain past the last instruction: pay any
            // async-checkpoint residue so the final checkpoint is
            // durable when the run ends.
            dev.drain_checkpoint(env);
            return Stepped::Finished;
        }
        let program = dev.program;
        if dev.pc >= program.len() {
            if let Err(e) = dev.checkpoint_boundary(env, dev.iteration) {
                return Stepped::Failed(e);
            }
            dev.iteration += 1;
            dev.pc = 0;
            // Packet numbering is per-iteration, matching `send_sites`
            // and the profile's `LinkSlack::nth`.
            dev.sends_to.clear();
            continue;
        }
        let pc = dev.pc;
        let instr = program.get(pc).expect("pc in range");
        let faults_active = !dev.faults.is_empty() && dev.iteration == dev.faults.iteration;
        if faults_active {
            if let Some(fault @ FaultKind::Crash { pc: at, .. }) = dev.faults.crash {
                if at == pc {
                    return Stepped::Failed(EmuError::Fault(Box::new(dev.report(
                        fault,
                        pc,
                        Some(instr),
                        "device crashed",
                    ))));
                }
            }
        }
        let start = dev.clock;
        match instr.kind {
            InstrKind::Forward { .. }
            | InstrKind::Backward
            | InstrKind::BackwardInput
            | InstrKind::BackwardWeight
            | InstrKind::Recompute => {
                // Serving ingress gate, arithmetic identical to the
                // thread backend's: idle until the micro's release, with
                // checkpoint chunks draining into the wait.
                let mut sp_gate = 0;
                if let Some(sv) = dev.serving {
                    if matches!(instr.kind, InstrKind::Forward { .. })
                        && sv.topo.is_first_stage(dev.device, instr.part)
                    {
                        sp_gate = sv.release_of(instr.micro);
                        let gap = sp_gate.saturating_sub(dev.clock);
                        let drained = dev.drain_chunks(env, gap);
                        dev.telemetry.classes.on_recv_gap(gap, drained);
                        dev.clock += gap;
                    }
                }
                let mut dur = dev.jittered(dev.cost.duration(dev.device, instr));
                if faults_active {
                    let factor = dev.faults.slow_factor(dev.iteration, pc);
                    if factor != 1.0 {
                        dur = (dur as f64 * factor).round() as Nanos;
                        let fault = dev
                            .faults
                            .slowdowns
                            .iter()
                            .copied()
                            .find(|s| matches!(*s, FaultKind::Slowdown { from_pc, until_pc, .. } if (from_pc..until_pc).contains(&pc)));
                        if let Some(fault) = fault {
                            // One report per fault, not one per slowed
                            // instruction.
                            if !dev.absorbed.iter().any(|r| r.fault == fault) {
                                let rep = dev.report(fault, pc, Some(instr), "compute slowed");
                                dev.absorbed.push(rep);
                            }
                        }
                    }
                }
                dev.clock += dur;
                dev.telemetry.classes.compute_ns += dur;
                if let Err(e) = dev.apply_mem(env, pc, instr) {
                    return Stepped::Failed(e);
                }
                // Serving egress: a last-stage forward completes its micro.
                if let Some(sv) = dev.serving {
                    if matches!(instr.kind, InstrKind::Forward { .. })
                        && sv.topo.is_last_stage(dev.device, instr.part)
                    {
                        sv.board.record(instr.micro, dev.clock);
                    }
                }
                dev.record_event(instr, start);
                dev.record_span(pc as u32, start, dur, 0, 0, sp_gate);
                dev.pc = pc + 1;
            }
            InstrKind::SendAct { peer } | InstrKind::SendGrad { peer } => {
                let class = if matches!(instr.kind, InstrKind::SendAct { .. }) {
                    MsgClass::Act
                } else {
                    MsgClass::Grad
                };
                let launch = dev.cost.p2p_launch_overhead();
                dev.clock += launch;
                dev.telemetry.classes.comm_launch_ns += launch;
                let nth = {
                    let c = dev.sends_to.entry(peer).or_insert(0);
                    let n = *c;
                    *c += 1;
                    n
                };
                let fault = if faults_active {
                    dev.faults.send_fault(dev.iteration, peer, nth)
                } else {
                    None
                };
                if let Some(stall @ FaultKind::LinkStall { .. }) = fault {
                    // Drop the packet: the receiver's pairing recv can
                    // never complete and reports the stall; the send
                    // side absorbs it.
                    let rep = dev.report(stall, pc, Some(instr), "packet dropped");
                    dev.absorbed.push(rep);
                    if let Err(e) = dev.apply_mem(env, pc, instr) {
                        return Stepped::Failed(e);
                    }
                    dev.record_event(instr, start);
                    dev.record_span(pc as u32, start, launch, 0, 0, 0);
                    dev.pc = pc + 1;
                    continue;
                }
                let delay = match fault {
                    Some(f @ FaultKind::LinkDelay { extra_ns, .. }) => {
                        let rep = dev.report(f, pc, Some(instr), "packet delayed");
                        dev.absorbed.push(rep);
                        extra_ns
                    }
                    _ => 0,
                };
                let header = Header {
                    class,
                    micro: instr.micro,
                    part: instr.part,
                };
                let bytes = dev.cost.boundary_bytes(dev.device, instr.part);
                let key = (dev.device, peer, class, instr.part);
                if !chans.contains_key(&key) {
                    return Stepped::Failed(EmuError::NoRoute {
                        device: dev.device,
                        pc,
                        peer,
                    });
                }
                env.stalls.enter(dev.device, peer, pc);
                dev.waiting = Some(Waiting::Send {
                    pc,
                    start,
                    key,
                    header,
                    bytes,
                    delay,
                });
            }
            InstrKind::RecvAct { peer } | InstrKind::RecvGrad { peer } => {
                let class = if matches!(instr.kind, InstrKind::RecvAct { .. }) {
                    MsgClass::Act
                } else {
                    MsgClass::Grad
                };
                let launch = dev.cost.p2p_launch_overhead();
                dev.clock += launch;
                dev.telemetry.classes.comm_launch_ns += launch;
                let expect = Header {
                    class,
                    micro: instr.micro,
                    part: instr.part,
                };
                let key = (peer, dev.device, class, instr.part);
                if !chans.contains_key(&key) {
                    return Stepped::Failed(EmuError::NoRoute {
                        device: dev.device,
                        pc,
                        peer,
                    });
                }
                env.stalls.enter(dev.device, peer, pc);
                dev.waiting = Some(Waiting::Recv {
                    pc,
                    start,
                    key,
                    expect,
                });
            }
            InstrKind::AllReduce => {
                let dt = dev.cost.allreduce_time(dev.device);
                dev.clock += dt;
                dev.telemetry.classes.allreduce_ns += dt;
                dev.record_event(instr, start);
                dev.record_span(pc as u32, start, dt, 0, 0, 0);
                dev.pc = pc + 1;
            }
            InstrKind::OptimizerStep => {
                let dt = dev.cost.optimizer_time(dev.device);
                dev.clock += dt;
                dev.telemetry.classes.optimizer_ns += dt;
                dev.record_event(instr, start);
                dev.record_span(pc as u32, start, dt, 0, 0, 0);
                dev.pc = pc + 1;
            }
        }
    }
}

/// Per-device lists of the channel keys each device sends on (`out`)
/// and receives on (`inp`), for settlement.
struct Wiring {
    out: Vec<Vec<ChanKey>>,
    inp: Vec<Vec<ChanKey>>,
}

/// Mutable scheduler state threaded through [`drain_queue`] and
/// [`settle`].
struct Sched<'a> {
    devs: Vec<EvDevice<'a>>,
    chans: HashMap<ChanKey, EventChannel>,
    wiring: Wiring,
    queue: VecDeque<usize>,
    queued: Vec<bool>,
    results: Vec<Option<Result<DeviceReport, EmuError>>>,
}

impl<'a> Sched<'a> {
    /// Enqueues `d` unless it already settled or is already queued.
    fn wake(&mut self, d: usize) {
        if d < self.results.len() && self.results[d].is_none() && !self.queued[d] {
            self.queued[d] = true;
            self.queue.push_back(d);
        }
    }

    /// Marks every channel half of settled device `d` as ended — the
    /// event mirror of `poison_links`: peers observe end-of-stream only
    /// after consuming all genuine traffic (FIFO order) — and wakes the
    /// affected peers.
    fn settle(&mut self, d: usize) {
        let out = std::mem::take(&mut self.wiring.out[d]);
        for key in &out {
            if let Some(chan) = self.chans.get_mut(key) {
                chan.sender_settled = true;
            }
            self.wake(key.1.index());
        }
        self.wiring.out[d] = out;
        let inp = std::mem::take(&mut self.wiring.inp[d]);
        for key in &inp {
            if let Some(chan) = self.chans.get_mut(key) {
                chan.receiver_settled = true;
            }
            self.wake(key.0.index());
        }
        self.wiring.inp[d] = inp;
    }

    /// Runs the worklist dry: steps every queued device, records
    /// settlements, propagates wakes.
    fn drain_queue(&mut self, env: &EvEnv<'_>) {
        while let Some(d) = self.queue.pop_front() {
            self.queued[d] = false;
            if self.results[d].is_some() {
                continue;
            }
            let mut wakes = Vec::new();
            let outcome = step(&mut self.devs[d], env, &mut self.chans, &mut wakes);
            match outcome {
                Stepped::Blocked => {}
                Stepped::Finished => {
                    let report = self.devs[d].finish();
                    self.results[d] = Some(Ok(report));
                    self.settle(d);
                }
                Stepped::Failed(e) => {
                    env.stalls.clear(DeviceId(d as u32));
                    self.results[d] = Some(Err(e));
                    self.settle(d);
                }
            }
            for w in wakes {
                self.wake(w);
            }
        }
    }
}

/// Runs `schedule` on the discrete-event backend (no injected faults).
/// The event-backend equivalent of [`crate::run`].
pub fn run_event(
    schedule: &Schedule,
    cost: &dyn CostModel,
    cfg: EmulatorConfig,
) -> Result<RunReport, EmuError> {
    run_event_with_faults(schedule, cost, cfg, &FaultPlan::none())
}

/// [`run_event`] with the faults of `plan` injected — the event-backend
/// equivalent of [`crate::run_with_faults`].
pub fn run_event_with_faults(
    schedule: &Schedule,
    cost: &dyn CostModel,
    cfg: EmulatorConfig,
    plan: &FaultPlan,
) -> Result<RunReport, EmuError> {
    run_event_with_faults_startup(schedule, cost, cfg, plan, &[])
}

/// [`run_event_with_faults`] with per-device startup offsets (elastic
/// reconfiguration charges) — the event-backend equivalent of
/// [`crate::run_with_faults_startup`], which dispatches here when
/// [`EmulatorConfig::backend`] is [`crate::EmulatorBackend::Event`].
pub fn run_event_with_faults_startup(
    schedule: &Schedule,
    cost: &dyn CostModel,
    cfg: EmulatorConfig,
    plan: &FaultPlan,
    startup: &[Nanos],
) -> Result<RunReport, EmuError> {
    let order: Vec<u32> = (0..schedule.devices()).collect();
    run_event_inner(schedule, cost, cfg, plan, startup, &order, None)
}

/// One serving attempt on the event backend: the event-side twin of the
/// thread path taken by [`crate::runner::run_serving`], with the serving
/// hooks (ingress release gates, completion scoreboard) threaded into
/// every device.
pub fn run_event_serving(
    schedule: &Schedule,
    cost: &dyn CostModel,
    cfg: EmulatorConfig,
    plan: &FaultPlan,
    hooks: crate::serving::ServingHooks<'_>,
) -> Result<RunReport, EmuError> {
    let order: Vec<u32> = (0..schedule.devices()).collect();
    run_event_inner(schedule, cost, cfg, plan, &[], &order, Some(hooks))
}

/// [`run_event_with_faults_startup`] with an explicit initial worklist
/// order. The executor is confluent — any permutation of `order`
/// produces a bit-identical result — and the determinism proptests
/// exercise exactly that by permuting it.
#[doc(hidden)]
pub fn run_event_ordered(
    schedule: &Schedule,
    cost: &dyn CostModel,
    cfg: EmulatorConfig,
    plan: &FaultPlan,
    startup: &[Nanos],
    order: &[u32],
) -> Result<RunReport, EmuError> {
    run_event_inner(schedule, cost, cfg, plan, startup, order, None)
}

fn run_event_inner(
    schedule: &Schedule,
    cost: &dyn CostModel,
    cfg: EmulatorConfig,
    plan: &FaultPlan,
    startup: &[Nanos],
    order: &[u32],
    serving: Option<crate::serving::ServingHooks<'_>>,
) -> Result<RunReport, EmuError> {
    let devices = schedule.devices() as usize;
    let mut seen = vec![false; devices];
    for &d in order {
        assert!(
            (d as usize) < devices && !std::mem::replace(&mut seen[d as usize], true),
            "order must be a permutation of 0..{devices}"
        );
    }
    assert!(
        seen.iter().all(|&s| s),
        "order must cover every device 0..{devices}"
    );

    let rules = MemoryRules::new(schedule);
    let stalls = StallTable::new(devices);
    let ckpts = CkptBoard::new(devices);
    let env = EvEnv {
        rules: &rules,
        stalls: &stalls,
        ckpts: &ckpts,
        capacity: cfg.channel_capacity,
    };

    // Discover which directed (sender, receiver, class, part) links
    // exist — the same scan the thread backend performs.
    let mut chans: HashMap<ChanKey, EventChannel> = HashMap::new();
    let mut wiring = Wiring {
        out: vec![Vec::new(); devices],
        inp: vec![Vec::new(); devices],
    };
    for prog in schedule.programs() {
        for (_, i) in prog.iter() {
            let (peer, class) = match i.kind {
                InstrKind::SendAct { peer } => (peer, MsgClass::Act),
                InstrKind::SendGrad { peer } => (peer, MsgClass::Grad),
                _ => continue,
            };
            let key = (prog.device, peer, class, i.part);
            if let std::collections::hash_map::Entry::Vacant(slot) = chans.entry(key) {
                slot.insert(EventChannel::default());
                wiring.out[prog.device.index()].push(key);
                if let Some(keys) = wiring.inp.get_mut(peer.index()) {
                    keys.push(key);
                }
            }
        }
    }

    let devs: Vec<EvDevice> = (0..devices)
        .map(|d| {
            let device = DeviceId(d as u32);
            EvDevice::new(
                device,
                schedule.program(device),
                cost,
                &cfg,
                plan.for_device(device),
                startup.get(d).copied().unwrap_or(0),
                serving,
            )
        })
        .collect();

    let mut sched = Sched {
        devs,
        chans,
        wiring,
        queue: VecDeque::with_capacity(devices),
        queued: vec![true; devices],
        results: (0..devices).map(|_| None).collect(),
    };
    for &d in order {
        sched.queue.push_back(d as usize);
    }
    sched.drain_queue(&env);

    // Quiescence, phase 1: devices parked on a link with an injected
    // incoming stall are the stall surfacing — the event analogue of
    // the thread backend's watchdog-timeout-then-`recv_stall_from`
    // normalization in `link_err`. Settling one can cascade (peers
    // observe the failure), so loop until no stall fires.
    loop {
        let mut fired = false;
        for d in 0..devices {
            if sched.results[d].is_some() {
                continue;
            }
            let Some(w) = sched.devs[d].waiting else {
                continue;
            };
            let peer = w.peer();
            let Some(fault) = sched.devs[d].faults.recv_stall_from(peer) else {
                continue;
            };
            let pc = w.pc();
            let instr = sched.devs[d].program.get(pc);
            let mut report = sched.devs[d].report(fault, pc, instr, "incoming link stalled");
            report.blocked_peer = Some(peer);
            stalls.clear(DeviceId(d as u32));
            sched.results[d] = Some(Err(EmuError::Fault(Box::new(report))));
            sched.settle(d);
            fired = true;
        }
        if !fired {
            break;
        }
        sched.drain_queue(&env);
    }

    // Quiescence, phase 2: anything still parked can never be woken —
    // that is a deadlock, detected in zero real time. Snapshot every
    // wait chain *before* settling anyone, so the named cycles do not
    // depend on settlement order.
    let parked: Vec<usize> = (0..devices).filter(|&d| sched.results[d].is_none()).collect();
    let chains: Vec<Vec<DeviceId>> = parked
        .iter()
        .map(|&d| stalls.wait_chain(DeviceId(d as u32)))
        .collect();
    for (&d, cycle) in parked.iter().zip(chains) {
        let device = DeviceId(d as u32);
        let (pc, instr) = match sched.devs[d].waiting {
            Some(w) => {
                let pc = w.pc();
                (
                    pc,
                    sched.devs[d]
                        .program
                        .get(pc)
                        .map(|i| i.to_string())
                        .unwrap_or_default(),
                )
            }
            None => (sched.devs[d].pc, String::new()),
        };
        stalls.clear(device);
        sched.results[d] = Some(Err(EmuError::DeadlockSuspected {
            device,
            pc,
            instr,
            cycle,
        }));
        sched.settle(d);
    }
    sched.drain_queue(&env);

    let results = sched
        .results
        .into_iter()
        .map(|r| r.expect("every device settles before the worklist drains"))
        .collect();
    settle_report(results, &cfg, plan, &ckpts)
}
