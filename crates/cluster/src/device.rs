//! Per-device execution: walks one instruction list, advancing a virtual
//! clock and a memory ledger, communicating through virtual-time links.

use crate::error::EmuError;
use crate::link::{Header, LinkError, RecvHalf, SendHalf};
use mario_ir::exec::MsgClass;
use mario_ir::{
    CostModel, DeviceId, DeviceProgram, Instr, InstrKind, MemLedger, MemoryRules, Nanos,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One executed instruction with its virtual start/end times.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// The executing device.
    pub device: DeviceId,
    /// Rendered instruction.
    pub instr: String,
    /// Virtual start time (ns).
    pub start: Nanos,
    /// Virtual end time (ns).
    pub end: Nanos,
}

/// What a device reports after finishing.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Final virtual clock.
    pub clock: Nanos,
    /// Peak memory footprint (bytes).
    pub peak_mem: u64,
    /// Live dynamic allocations remaining (should be 0 after a clean
    /// iteration).
    pub leaked: usize,
    /// Recorded events, if timeline recording was enabled.
    pub timeline: Vec<TimelineEvent>,
}

/// The per-device runtime state.
pub struct DeviceRuntime<'a> {
    device: DeviceId,
    cost: &'a dyn CostModel,
    rules: &'a MemoryRules,
    ledger: MemLedger,
    clock: Nanos,
    out: HashMap<(DeviceId, MsgClass, mario_ir::PartId), SendHalf>,
    inp: HashMap<(DeviceId, MsgClass, mario_ir::PartId), RecvHalf>,
    rng: StdRng,
    jitter: f64,
    straggler: f64,
    record: bool,
    timeline: Vec<TimelineEvent>,
}

impl<'a> DeviceRuntime<'a> {
    /// Creates a runtime for `device`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        device: DeviceId,
        cost: &'a dyn CostModel,
        rules: &'a MemoryRules,
        mem_capacity: Option<u64>,
        out: HashMap<(DeviceId, MsgClass, mario_ir::PartId), SendHalf>,
        inp: HashMap<(DeviceId, MsgClass, mario_ir::PartId), RecvHalf>,
        jitter: f64,
        straggler_spread: f64,
        seed: u64,
        record: bool,
    ) -> Self {
        // A fixed per-device slowdown in [1, 1+spread], derived from the
        // seed so runs stay deterministic.
        let mix = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((device.0 as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let unit = (mix >> 11) as f64 / (1u64 << 53) as f64;
        let straggler = 1.0 + straggler_spread * unit;
        Self {
            device,
            cost,
            rules,
            ledger: MemLedger::new(cost.static_mem(device), mem_capacity),
            clock: 0,
            out,
            inp,
            rng: StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(device.0 as u64 + 1))),
            jitter,
            straggler,
            record,
            timeline: Vec::new(),
        }
    }

    fn jittered(&mut self, ns: Nanos) -> Nanos {
        if self.jitter == 0.0 && self.straggler == 1.0 {
            return ns;
        }
        let f = if self.jitter == 0.0 {
            1.0
        } else {
            1.0 + self.rng.gen_range(-2.0 * self.jitter..=2.0 * self.jitter)
        };
        (ns as f64 * f * self.straggler).round() as Nanos
    }

    fn link_err(&self, e: LinkError, pc: usize, instr: &Instr) -> EmuError {
        match e {
            LinkError::Timeout => EmuError::DeadlockSuspected {
                device: self.device,
                pc,
                instr: instr.to_string(),
            },
            LinkError::Disconnected => EmuError::PeerFailed {
                device: self.device,
                pc,
            },
            LinkError::Mismatch(h) => EmuError::CommMismatch {
                device: self.device,
                pc,
                detail: format!("expected {instr}, got {h:?}"),
            },
        }
    }

    fn apply_mem(&mut self, pc: usize, instr: &Instr) -> Result<(), EmuError> {
        self.rules
            .apply(&mut self.ledger, self.cost, self.device, instr)
            .map_err(|cause| EmuError::Oom {
                device: self.device,
                pc,
                instr: instr.to_string(),
                cause,
            })
    }

    /// Executes one full pass over `program`.
    pub fn run_iteration(&mut self, program: &DeviceProgram) -> Result<(), EmuError> {
        for (pc, instr) in program.iter() {
            let start = self.clock;
            match instr.kind {
                InstrKind::Forward { .. }
                | InstrKind::Backward
                | InstrKind::BackwardInput
                | InstrKind::BackwardWeight
                | InstrKind::Recompute => {
                    let dur = self.jittered(self.cost.duration(self.device, instr));
                    self.clock += dur;
                    self.apply_mem(pc, instr)?;
                }
                InstrKind::SendAct { peer } | InstrKind::SendGrad { peer } => {
                    let class = if matches!(instr.kind, InstrKind::SendAct { .. }) {
                        MsgClass::Act
                    } else {
                        MsgClass::Grad
                    };
                    self.clock += self.cost.p2p_launch_overhead();
                    let header = Header {
                        class,
                        micro: instr.micro,
                        part: instr.part,
                    };
                    let bytes = self.cost.boundary_bytes(self.device, instr.part);
                    let half = self
                        .out
                        .get_mut(&(peer, class, instr.part))
                        .unwrap_or_else(|| panic!("{} has no link to {peer:?}", self.device));
                    match half.send(header, bytes, self.clock) {
                        Ok(t) => self.clock = t,
                        Err(e) => return Err(self.link_err(e, pc, instr)),
                    }
                    self.apply_mem(pc, instr)?;
                }
                InstrKind::RecvAct { peer } | InstrKind::RecvGrad { peer } => {
                    let class = if matches!(instr.kind, InstrKind::RecvAct { .. }) {
                        MsgClass::Act
                    } else {
                        MsgClass::Grad
                    };
                    self.clock += self.cost.p2p_launch_overhead();
                    let expect = Header {
                        class,
                        micro: instr.micro,
                        part: instr.part,
                    };
                    let cost = self.cost;
                    let half = self
                        .inp
                        .get_mut(&(peer, class, instr.part))
                        .unwrap_or_else(|| panic!("{} has no link from {peer:?}", self.device));
                    let me = self.device;
                    match half.recv(expect, self.clock, |b| {
                        cost.p2p_time_between(peer, me, b)
                    }) {
                        Ok(t) => self.clock = t,
                        Err(e) => return Err(self.link_err(e, pc, instr)),
                    }
                }
                InstrKind::AllReduce => {
                    self.clock += self.cost.allreduce_time(self.device);
                }
                InstrKind::OptimizerStep => {
                    self.clock += self.cost.optimizer_time(self.device);
                }
            }
            if self.record {
                self.timeline.push(TimelineEvent {
                    device: self.device,
                    instr: instr.to_string(),
                    start,
                    end: self.clock,
                });
            }
        }
        Ok(())
    }

    /// Finishes the run and reports.
    pub fn finish(self) -> DeviceReport {
        DeviceReport {
            clock: self.clock,
            peak_mem: self.ledger.peak(),
            leaked: self.ledger.live_count(),
            timeline: self.timeline,
        }
    }

    /// Current virtual clock (tests).
    pub fn clock(&self) -> Nanos {
        self.clock
    }
}
