//! Per-device execution: walks one instruction list, advancing a virtual
//! clock and a memory ledger, communicating through virtual-time links —
//! and, when a [`crate::faults::FaultPlan`] is active, enforcing the
//! injected faults and converting every induced failure into a structured
//! [`FaultReport`].

use crate::error::EmuError;
use crate::faults::{DeviceFaults, FaultKind, FaultReport};
use crate::link::{Header, LinkError, RecvHalf, SendHalf};
use mario_ir::exec::MsgClass;
use mario_ir::{
    AllocKey, CheckpointPolicy, CostModel, DeviceId, DeviceProgram, DeviceTelemetry, Instr,
    InstrKind, LinkSendStats, MemLedger, MemoryRules, Nanos, OpSpan, CKPT_PC,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// One executed instruction with its virtual start/end times.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// The executing device.
    pub device: DeviceId,
    /// Rendered instruction.
    pub instr: String,
    /// Virtual start time (ns).
    pub start: Nanos,
    /// Virtual end time (ns).
    pub end: Nanos,
}

/// What a device reports after finishing.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Final virtual clock.
    pub clock: Nanos,
    /// Peak memory footprint (bytes).
    pub peak_mem: u64,
    /// Live dynamic allocations remaining (should be 0 after a clean
    /// iteration).
    pub leaked: usize,
    /// Recorded events, if timeline recording was enabled.
    pub timeline: Vec<TimelineEvent>,
    /// Faults this device absorbed without failing (slowdowns, delays).
    pub absorbed: Vec<FaultReport>,
    /// Iterations covered by this device's last completed checkpoint
    /// write (0 when no policy was active or nothing was saved).
    pub last_checkpoint: u32,
    /// Time-class breakdown of this device's clock plus counters.
    pub telemetry: DeviceTelemetry,
    /// Send-side link statistics, keyed by receiving peer.
    pub link_sends: HashMap<DeviceId, LinkSendStats>,
    /// Total recv-wait time per sending peer, ns.
    pub link_recv_wait: HashMap<DeviceId, Nanos>,
    /// Executed spans (execution order), if span recording was enabled.
    pub spans: Vec<OpSpan>,
}

/// Shared scoreboard of completed checkpoint writes: each device records
/// the number of iterations its latest checkpoint covers, and the
/// cluster-durable checkpoint is the minimum across devices — a model
/// checkpoint only exists once *every* shard of it was written, exactly
/// like a real distributed snapshot.
///
/// The board also learns *chunk-level* progress: sharded writes record
/// each flushed chunk, so a crash mid-flush leaves the in-flight
/// checkpoint invisible to [`CkptBoard::cluster_saved`] (a checkpoint is
/// durable only once every chunk of it flushed), and it tracks the
/// virtual time each device actually *paid* on the critical path
/// writing checkpoints — the measured overhead the run report exposes.
#[derive(Debug, Default)]
pub struct CkptBoard {
    saved: Vec<AtomicU32>,
    chunks: Vec<AtomicU32>,
    paid: Vec<AtomicU64>,
}

impl CkptBoard {
    /// A board for `devices` devices, nothing saved yet.
    pub fn new(devices: usize) -> Self {
        Self {
            saved: (0..devices).map(|_| AtomicU32::new(0)).collect(),
            chunks: (0..devices).map(|_| AtomicU32::new(0)).collect(),
            paid: (0..devices).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records that `device` completed a checkpoint covering the first
    /// `saved` iterations.
    pub fn record(&self, device: DeviceId, saved: u32) {
        if let Some(slot) = self.saved.get(device.index()) {
            slot.fetch_max(saved, Ordering::Relaxed);
        }
    }

    /// Records one flushed checkpoint chunk on `device`.
    pub fn record_chunk(&self, device: DeviceId) {
        if let Some(slot) = self.chunks.get(device.index()) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total checkpoint chunks `device` has flushed so far.
    pub fn chunks_flushed(&self, device: DeviceId) -> u32 {
        self.chunks
            .get(device.index())
            .map_or(0, |s| s.load(Ordering::Relaxed))
    }

    /// Charges `ns` of checkpoint write time actually paid by `device`
    /// (synchronous writes and residue flushes; chunks hidden in bubbles
    /// cost nothing).
    pub fn record_paid(&self, device: DeviceId, ns: Nanos) {
        if let Some(slot) = self.paid.get(device.index()) {
            slot.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Checkpoint write time `device` paid on its critical path, ns.
    pub fn paid_of(&self, device: DeviceId) -> Nanos {
        self.paid
            .get(device.index())
            .map_or(0, |s| s.load(Ordering::Relaxed))
    }

    /// Checkpoint write time paid across all devices, ns.
    pub fn total_paid(&self) -> Nanos {
        self.paid.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Iterations covered by the last checkpoint *every* device
    /// completed (the only checkpoint a resume can trust).
    pub fn cluster_saved(&self) -> u32 {
        self.saved
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .min()
            .unwrap_or(0)
    }
}

/// What a blocked device is waiting on right now.
#[derive(Debug, Clone, Copy)]
pub struct BlockedOn {
    /// The peer whose send/recv must pair for progress.
    pub peer: DeviceId,
    /// Instruction index of the blocked operation.
    pub pc: usize,
}

/// Shared table of blocked devices: each device registers the peer it is
/// about to block on and clears the entry once the operation pairs. When
/// a watchdog fires, the timed-out device snapshots the table and names
/// the wait chain — turning "2 s elapsed" into "d0 -> d2 -> d1 -> d0".
#[derive(Debug, Default)]
pub struct StallTable {
    slots: Vec<Mutex<Option<BlockedOn>>>,
}

impl StallTable {
    /// A table for `devices` devices, all initially unblocked.
    pub fn new(devices: usize) -> Self {
        Self {
            slots: (0..devices).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Marks `device` as about to block on `peer` at `pc`.
    pub fn enter(&self, device: DeviceId, peer: DeviceId, pc: usize) {
        if let Some(slot) = self.slots.get(device.index()) {
            *slot.lock() = Some(BlockedOn { peer, pc });
        }
    }

    /// Clears `device`'s blocked mark.
    pub fn clear(&self, device: DeviceId) {
        if let Some(slot) = self.slots.get(device.index()) {
            *slot.lock() = None;
        }
    }

    /// The wait chain starting at `device`: follows blocked-on edges until
    /// an unblocked device or a repeat (a true cycle). The starting device
    /// is always the first entry.
    pub fn wait_chain(&self, device: DeviceId) -> Vec<DeviceId> {
        let mut chain = vec![device];
        let mut current = device;
        while let Some(slot) = self.slots.get(current.index()) {
            let next = match *slot.lock() {
                Some(b) => b.peer,
                None => break,
            };
            let looped = chain.contains(&next);
            chain.push(next);
            if looped {
                break;
            }
            current = next;
        }
        chain
    }
}

/// Everything a device runtime needs besides its channel ends (grouping
/// the former 10-argument constructor).
pub struct DeviceCtx<'a> {
    /// The device this runtime executes.
    pub device: DeviceId,
    /// Per-instruction latencies and sizes.
    pub cost: &'a dyn CostModel,
    /// Shared activation-lifecycle rules.
    pub rules: &'a MemoryRules,
    /// Device memory capacity (None = unchecked).
    pub mem_capacity: Option<u64>,
    /// Relative kernel-time jitter.
    pub jitter: f64,
    /// Straggler spread (see [`crate::EmulatorConfig`]).
    pub straggler_spread: f64,
    /// RNG seed.
    pub seed: u64,
    /// Record a full per-instruction timeline.
    pub record_timeline: bool,
    /// Record the executed span graph (see [`mario_ir::SpanGraph`]).
    pub record_spans: bool,
    /// Faults this device must enforce.
    pub faults: DeviceFaults,
    /// Shared blocked-device table for wait-chain reporting.
    pub stalls: &'a StallTable,
    /// Model-state checkpointing policy, if any.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Shared checkpoint scoreboard.
    pub ckpts: &'a CkptBoard,
    /// One-time startup charge (ns) before the first instruction: the
    /// state-redistribution cost of an elastic reconfiguration. The clock
    /// starts here and the charge lands in the `reconfig_ns` time class.
    pub startup_ns: Nanos,
    /// Serving-mode hooks: per-micro ingress release gates and the
    /// completion scoreboard (None on training runs).
    pub serving: Option<crate::serving::ServingHooks<'a>>,
}

/// The per-device runtime state.
pub struct DeviceRuntime<'a> {
    device: DeviceId,
    cost: &'a dyn CostModel,
    rules: &'a MemoryRules,
    ledger: MemLedger,
    clock: Nanos,
    out: HashMap<(DeviceId, MsgClass, mario_ir::PartId), SendHalf>,
    inp: HashMap<(DeviceId, MsgClass, mario_ir::PartId), RecvHalf>,
    rng: StdRng,
    jitter: f64,
    straggler: f64,
    record: bool,
    timeline: Vec<TimelineEvent>,
    record_spans: bool,
    spans: Vec<OpSpan>,
    faults: DeviceFaults,
    stalls: &'a StallTable,
    sends_to: HashMap<DeviceId, usize>,
    absorbed: Vec<FaultReport>,
    iteration: u32,
    checkpoint: Option<CheckpointPolicy>,
    ckpts: &'a CkptBoard,
    last_checkpoint: u32,
    /// Chunk flush times of the in-flight async checkpoint write, drained
    /// front-first into recv bubbles.
    pending_chunks: VecDeque<Nanos>,
    /// Iterations the in-flight write covers once every chunk flushed.
    pending_ckpt_iters: u32,
    /// Time-class accounting: every clock advance is classified here.
    telemetry: DeviceTelemetry,
    /// Send-side per-peer link statistics.
    link_sends: HashMap<DeviceId, LinkSendStats>,
    /// Recv-wait time per sending peer.
    link_recv_wait: HashMap<DeviceId, Nanos>,
    /// Serving-mode release gates and completion scoreboard.
    serving: Option<crate::serving::ServingHooks<'a>>,
}

impl<'a> DeviceRuntime<'a> {
    /// Creates a runtime for `ctx.device`.
    pub fn new(
        ctx: DeviceCtx<'a>,
        out: HashMap<(DeviceId, MsgClass, mario_ir::PartId), SendHalf>,
        inp: HashMap<(DeviceId, MsgClass, mario_ir::PartId), RecvHalf>,
    ) -> Self {
        // A fixed per-device slowdown in [1, 1+spread], derived from the
        // seed so runs stay deterministic.
        let device = ctx.device;
        let mix = ctx
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((device.0 as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let unit = (mix >> 11) as f64 / (1u64 << 53) as f64;
        let straggler = 1.0 + ctx.straggler_spread * unit;
        // An injected memory squeeze clamps the capacity for the whole
        // run (it models lost headroom, not a transient glitch).
        let capacity = match ctx.faults.squeezed_capacity() {
            Some(squeezed) => Some(ctx.mem_capacity.unwrap_or(u64::MAX).min(squeezed)),
            None => ctx.mem_capacity,
        };
        let mut telemetry = DeviceTelemetry::new(device);
        telemetry.classes.reconfig_ns = ctx.startup_ns;
        Self {
            device,
            cost: ctx.cost,
            rules: ctx.rules,
            ledger: MemLedger::new(ctx.cost.static_mem(device), capacity),
            clock: ctx.startup_ns,
            out,
            inp,
            rng: StdRng::seed_from_u64(
                ctx.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(device.0 as u64 + 1)),
            ),
            jitter: ctx.jitter,
            straggler,
            record: ctx.record_timeline,
            timeline: Vec::new(),
            record_spans: ctx.record_spans,
            spans: Vec::new(),
            faults: ctx.faults,
            stalls: ctx.stalls,
            sends_to: HashMap::new(),
            absorbed: Vec::new(),
            iteration: 0,
            checkpoint: ctx.checkpoint,
            ckpts: ctx.ckpts,
            last_checkpoint: 0,
            pending_chunks: VecDeque::new(),
            pending_ckpt_iters: 0,
            telemetry,
            link_sends: HashMap::new(),
            link_recv_wait: HashMap::new(),
            serving: ctx.serving,
        }
    }

    fn jittered(&mut self, ns: Nanos) -> Nanos {
        if self.jitter == 0.0 && self.straggler == 1.0 {
            return ns;
        }
        let f = if self.jitter == 0.0 {
            1.0
        } else {
            1.0 + self.rng.gen_range(-2.0 * self.jitter..=2.0 * self.jitter)
        };
        (ns as f64 * f * self.straggler).round() as Nanos
    }

    fn report(&self, fault: FaultKind, pc: usize, instr: Option<&Instr>, detail: &str) -> FaultReport {
        FaultReport {
            fault,
            device: self.device,
            pc,
            instr: instr.map(|i| i.to_string()).unwrap_or_default(),
            blocked_peer: None,
            vtime: self.clock,
            iteration: self.iteration,
            last_checkpoint: self.last_checkpoint,
            ckpt_paid_ns: 0,
            group: None,
            detail: detail.to_string(),
        }
    }

    fn link_err(&self, e: LinkError, pc: usize, instr: &Instr, peer: DeviceId) -> EmuError {
        // Any failure to receive over a link with an injected stall is
        // the stall surfacing — normalize it to the same structured
        // report whether it manifested as a timeout, a disconnect, or a
        // mismatched header, so seeded runs reproduce identical reports.
        if let Some(fault) = self.faults.recv_stall_from(peer) {
            let mut report = self.report(fault, pc, Some(instr), "incoming link stalled");
            report.blocked_peer = Some(peer);
            return EmuError::Fault(Box::new(report));
        }
        match e {
            LinkError::Timeout => EmuError::DeadlockSuspected {
                device: self.device,
                pc,
                instr: instr.to_string(),
                cycle: self.stalls.wait_chain(self.device),
            },
            LinkError::Disconnected => EmuError::PeerFailed {
                device: self.device,
                pc,
            },
            LinkError::Mismatch(h) => EmuError::CommMismatch {
                device: self.device,
                pc,
                detail: format!("expected {instr}, got {h:?}"),
            },
        }
    }

    fn apply_mem(&mut self, pc: usize, instr: &Instr) -> Result<(), EmuError> {
        let squeeze = self.faults.squeeze;
        let device = self.device;
        let last_checkpoint = self.last_checkpoint;
        self.rules
            .apply(&mut self.ledger, self.cost, device, instr)
            .map_err(|cause| match squeeze {
                // OOM under an injected capacity squeeze is the squeeze
                // surfacing: report it as the structured fault.
                Some(fault) => EmuError::Fault(Box::new(FaultReport {
                    fault,
                    device,
                    pc,
                    instr: instr.to_string(),
                    blocked_peer: None,
                    vtime: self.clock,
                    iteration: self.iteration,
                    last_checkpoint,
                    ckpt_paid_ns: 0,
                    group: None,
                    detail: format!("memory squeezed: {cause}"),
                })),
                None => EmuError::Oom {
                    device,
                    pc,
                    instr: instr.to_string(),
                    cause,
                },
            })
    }

    /// Executes one full pass over `program` as iteration `iter_idx`,
    /// then writes a model-state checkpoint when the active policy puts a
    /// boundary at this iteration.
    pub fn run_iteration(&mut self, program: &DeviceProgram, iter_idx: u32) -> Result<(), EmuError> {
        self.iteration = iter_idx;
        // Packet numbering is per-iteration (matching `send_sites` and the
        // profile's `LinkSlack::nth`), so link faults can target packets
        // of any iteration, not just the first.
        self.sends_to.clear();
        let faults_active = !self.faults.is_empty() && iter_idx == self.faults.iteration;
        for (pc, instr) in program.iter() {
            if faults_active {
                if let Some(fault @ FaultKind::Crash { pc: at, .. }) = self.faults.crash {
                    if at == pc {
                        return Err(EmuError::Fault(Box::new(self.report(
                            fault,
                            pc,
                            Some(instr),
                            "device crashed",
                        ))));
                    }
                }
            }
            let start = self.clock;
            let (mut sp_sent, mut sp_wire, mut sp_gate) = (0, 0, 0);
            let sp_work;
            match instr.kind {
                InstrKind::Forward { .. }
                | InstrKind::Backward
                | InstrKind::BackwardInput
                | InstrKind::BackwardWeight
                | InstrKind::Recompute => {
                    // Serving ingress gate: a first-stage forward may not
                    // start before its micro-batch was released. The wait
                    // is idle time exactly like a recv wait — checkpoint
                    // chunks drain into it, the rest is recv-blocked.
                    if let Some(sv) = self.serving {
                        if matches!(instr.kind, InstrKind::Forward { .. })
                            && sv.topo.is_first_stage(self.device, instr.part)
                        {
                            sp_gate = sv.release_of(instr.micro);
                            let gap = sp_gate.saturating_sub(self.clock);
                            let drained = self.drain_chunks(gap);
                            self.telemetry.classes.on_recv_gap(gap, drained);
                            self.clock += gap;
                        }
                    }
                    let mut dur = self.jittered(self.cost.duration(self.device, instr));
                    if faults_active {
                        let factor = self.faults.slow_factor(iter_idx, pc);
                        if factor != 1.0 {
                            dur = (dur as f64 * factor).round() as Nanos;
                            let fault = self
                                .faults
                                .slowdowns
                                .iter()
                                .copied()
                                .find(|s| matches!(*s, FaultKind::Slowdown { from_pc, until_pc, .. } if (from_pc..until_pc).contains(&pc)));
                            if let Some(fault) = fault {
                                // One report per fault, not one per slowed
                                // instruction.
                                if !self.absorbed.iter().any(|r| r.fault == fault) {
                                    let rep =
                                        self.report(fault, pc, Some(instr), "compute slowed");
                                    self.absorbed.push(rep);
                                }
                            }
                        }
                    }
                    self.clock += dur;
                    self.telemetry.classes.compute_ns += dur;
                    sp_work = dur;
                    self.apply_mem(pc, instr)?;
                    // Serving egress: a last-stage forward completes its
                    // micro-batch (observational write — never read here).
                    if let Some(sv) = self.serving {
                        if matches!(instr.kind, InstrKind::Forward { .. })
                            && sv.topo.is_last_stage(self.device, instr.part)
                        {
                            sv.board.record(instr.micro, self.clock);
                        }
                    }
                }
                InstrKind::SendAct { peer } | InstrKind::SendGrad { peer } => {
                    let class = if matches!(instr.kind, InstrKind::SendAct { .. }) {
                        MsgClass::Act
                    } else {
                        MsgClass::Grad
                    };
                    let launch = self.cost.p2p_launch_overhead();
                    self.clock += launch;
                    self.telemetry.classes.comm_launch_ns += launch;
                    sp_work = launch;
                    let nth = {
                        let c = self.sends_to.entry(peer).or_insert(0);
                        let n = *c;
                        *c += 1;
                        n
                    };
                    let fault = if faults_active {
                        self.faults.send_fault(iter_idx, peer, nth)
                    } else {
                        None
                    };
                    if let Some(stall @ FaultKind::LinkStall { .. }) = fault {
                        // Drop the packet: the receiver's pairing recv can
                        // never complete and reports the stall. The send
                        // side absorbs it (buffers freed as usual below).
                        let rep = self.report(stall, pc, Some(instr), "packet dropped");
                        self.absorbed.push(rep);
                        self.apply_mem(pc, instr)?;
                        if self.record {
                            self.timeline.push(TimelineEvent {
                                device: self.device,
                                instr: instr.to_string(),
                                start,
                                end: self.clock,
                            });
                        }
                        if self.record_spans {
                            self.spans.push(OpSpan {
                                device: self.device,
                                iter: iter_idx,
                                pc: pc as u32,
                                start,
                                end: self.clock,
                                work_ns: sp_work,
                                sent_at: 0,
                                wire_ns: 0,
                                gate_ns: 0,
                            });
                        }
                        continue;
                    }
                    let delay = match fault {
                        Some(f @ FaultKind::LinkDelay { extra_ns, .. }) => {
                            let rep = self.report(f, pc, Some(instr), "packet delayed");
                            self.absorbed.push(rep);
                            extra_ns
                        }
                        _ => 0,
                    };
                    let header = Header {
                        class,
                        micro: instr.micro,
                        part: instr.part,
                    };
                    let bytes = self.cost.boundary_bytes(self.device, instr.part);
                    let half = match self.out.get_mut(&(peer, class, instr.part)) {
                        Some(h) => h,
                        None => {
                            return Err(EmuError::NoRoute {
                                device: self.device,
                                pc,
                                peer,
                            })
                        }
                    };
                    self.stalls.enter(self.device, peer, pc);
                    let sent = half.send_delayed(header, bytes, self.clock, delay);
                    // Occupancy right after the send: the un-acked window,
                    // which advances in lockstep with the simulator's
                    // `Channel::outstanding`.
                    let occupancy = half.outstanding() as u32;
                    self.stalls.clear(self.device);
                    match sent {
                        Ok(t) => {
                            // A capacity wait is idle time exactly like a
                            // recv wait: async checkpoint chunks drain into
                            // it too, and the drained slice is checkpoint
                            // time rather than backpressure bubble.
                            let blocked = t.saturating_sub(self.clock);
                            let drained = self.drain_chunks(blocked);
                            self.telemetry.classes.on_send_gap(blocked, drained);
                            self.clock = t;
                            self.link_sends
                                .entry(peer)
                                .or_default()
                                .on_send(bytes, blocked, occupancy);
                        }
                        Err(e) => return Err(self.link_err(e, pc, instr, peer)),
                    }
                    self.apply_mem(pc, instr)?;
                }
                InstrKind::RecvAct { peer } | InstrKind::RecvGrad { peer } => {
                    let class = if matches!(instr.kind, InstrKind::RecvAct { .. }) {
                        MsgClass::Act
                    } else {
                        MsgClass::Grad
                    };
                    let launch = self.cost.p2p_launch_overhead();
                    self.clock += launch;
                    self.telemetry.classes.comm_launch_ns += launch;
                    sp_work = launch;
                    let expect = Header {
                        class,
                        micro: instr.micro,
                        part: instr.part,
                    };
                    let cost = self.cost;
                    let half = match self.inp.get_mut(&(peer, class, instr.part)) {
                        Some(h) => h,
                        None => {
                            return Err(EmuError::NoRoute {
                                device: self.device,
                                pc,
                                peer,
                            })
                        }
                    };
                    let me = self.device;
                    self.stalls.enter(me, peer, pc);
                    let got = half.recv_info(expect, self.clock, |b| {
                        cost.p2p_time_between(peer, me, b)
                    });
                    self.stalls.clear(me);
                    match got {
                        Ok(info) => {
                            // The wait for this message is exactly the idle
                            // gap an async checkpoint write drains into; the
                            // drained slice is checkpoint time, the rest a
                            // genuine pipeline bubble.
                            let gap = info.arrival.saturating_sub(self.clock);
                            let drained = self.drain_chunks(gap);
                            self.telemetry.classes.on_recv_gap(gap, drained);
                            *self.link_recv_wait.entry(peer).or_default() += gap;
                            self.clock = info.arrival;
                            sp_sent = info.sent_at;
                            sp_wire = info.wire_ns;
                        }
                        Err(e) => return Err(self.link_err(e, pc, instr, peer)),
                    }
                }
                InstrKind::AllReduce => {
                    let dt = self.cost.allreduce_time(self.device);
                    self.clock += dt;
                    self.telemetry.classes.allreduce_ns += dt;
                    sp_work = dt;
                }
                InstrKind::OptimizerStep => {
                    let dt = self.cost.optimizer_time(self.device);
                    self.clock += dt;
                    self.telemetry.classes.optimizer_ns += dt;
                    sp_work = dt;
                }
            }
            if self.record {
                self.timeline.push(TimelineEvent {
                    device: self.device,
                    instr: instr.to_string(),
                    start,
                    end: self.clock,
                });
            }
            if self.record_spans {
                self.spans.push(OpSpan {
                    device: self.device,
                    iter: iter_idx,
                    pc: pc as u32,
                    start,
                    end: self.clock,
                    work_ns: sp_work,
                    sent_at: sp_sent,
                    wire_ns: sp_wire,
                    gate_ns: sp_gate,
                });
            }
        }
        self.checkpoint_boundary(program, iter_idx)
    }

    /// Flushes checkpoint chunks into an idle gap of `gap` ns observed at
    /// a blocking recv or a capacity-blocked send: every chunk that fits
    /// in the gap drains for free
    /// (the device would have been waiting anyway). Once the last chunk
    /// flushes, the in-flight checkpoint becomes durable. Returns the
    /// flush time drained into the gap (telemetry's `ckpt_absorbed_ns`).
    fn drain_chunks(&mut self, mut gap: Nanos) -> Nanos {
        let mut drained = 0;
        if self.pending_chunks.is_empty() {
            return drained;
        }
        while let Some(&chunk) = self.pending_chunks.front() {
            if chunk > gap {
                return drained;
            }
            gap -= chunk;
            drained += chunk;
            self.pending_chunks.pop_front();
            self.ckpts.record_chunk(self.device);
        }
        self.last_checkpoint = self.pending_ckpt_iters;
        self.ckpts.record(self.device, self.last_checkpoint);
        drained
    }

    /// Synchronously flushes whatever is left of the in-flight async
    /// checkpoint write: the residue the bubbles did not absorb is charged
    /// to the clock and the checkpoint becomes durable.
    fn flush_residue(&mut self) {
        if self.pending_chunks.is_empty() {
            return;
        }
        let residue: Nanos = self.pending_chunks.iter().sum();
        for _ in 0..self.pending_chunks.len() {
            self.ckpts.record_chunk(self.device);
        }
        self.pending_chunks.clear();
        self.clock += residue;
        self.telemetry.classes.ckpt_sync_ns += residue;
        self.ckpts.record_paid(self.device, residue);
        self.last_checkpoint = self.pending_ckpt_iters;
        self.ckpts.record(self.device, self.last_checkpoint);
    }

    /// Drains the in-flight async checkpoint write at the end of the run
    /// (there is no next iteration to hide the rest of it in). Called by
    /// the runner after the last iteration completes cleanly.
    pub fn drain_checkpoint(&mut self) {
        let start = self.clock;
        self.flush_residue();
        if self.clock > start {
            if self.record {
                self.timeline.push(TimelineEvent {
                    device: self.device,
                    instr: "CKPT".to_string(),
                    start,
                    end: self.clock,
                });
            }
            if self.record_spans {
                self.spans.push(OpSpan {
                    device: self.device,
                    iter: self.iteration,
                    pc: CKPT_PC,
                    start,
                    end: self.clock,
                    work_ns: self.clock - start,
                    sent_at: 0,
                    wire_ns: 0,
                    gate_ns: 0,
                });
            }
        }
    }

    /// Writes the end-of-iteration model-state checkpoint when the active
    /// policy puts a boundary at `iter_idx`: charges the (unjittered)
    /// write time — or, with an async sharded policy, enqueues the chunk
    /// flushes to drain into the next iteration's bubbles — holds the
    /// transient serialization buffer against capacity, and records
    /// completed writes on the shared board.
    fn checkpoint_boundary(
        &mut self,
        program: &DeviceProgram,
        iter_idx: u32,
    ) -> Result<(), EmuError> {
        let Some(policy) = self.checkpoint else {
            return Ok(());
        };
        if !policy.is_boundary(iter_idx) {
            return Ok(());
        }
        let start = self.clock;
        // Whatever the previous async write could not hide must finish
        // before this write starts: charge the residue synchronously.
        self.flush_residue();
        // The serialization buffer is transient but counts against
        // capacity at its peak — an injected squeeze can make the
        // checkpoint itself the OOM site, attributed like any other
        // squeeze-induced failure. The buffer is checked before any write
        // cost is charged or durability recorded: a snapshot that cannot
        // even be serialized never becomes a resume point.
        let pc = program.len();
        if let Err(cause) = self.ledger.alloc(AllocKey::Snapshot, policy.mem_overhead) {
            return Err(match self.faults.squeeze {
                Some(fault) => EmuError::Fault(Box::new(FaultReport {
                    fault,
                    device: self.device,
                    pc,
                    instr: "CKPT".to_string(),
                    blocked_peer: None,
                    vtime: self.clock,
                    iteration: self.iteration,
                    last_checkpoint: self.last_checkpoint,
                    ckpt_paid_ns: 0,
                    group: None,
                    detail: format!("memory squeezed: {cause}"),
                })),
                None => EmuError::Oom {
                    device: self.device,
                    pc,
                    instr: "CKPT".to_string(),
                    cause,
                },
            });
        }
        self.ledger.free(AllocKey::Snapshot);
        // The write is a model parameter, not a kernel: it is charged
        // exactly as configured (no jitter, no straggler factor).
        let shard = self.cost.ckpt_shard_bytes(self.device);
        if policy.async_overlap() {
            let chunks = policy.device_chunk_times(shard);
            if chunks.is_empty() {
                // Nothing to write: durable immediately at zero cost.
                self.last_checkpoint = iter_idx + 1;
                self.ckpts.record(self.device, self.last_checkpoint);
            } else {
                self.pending_chunks = chunks.into();
                self.pending_ckpt_iters = iter_idx + 1;
            }
        } else {
            let write = policy.device_write_ns(shard);
            self.clock += write;
            self.telemetry.classes.ckpt_sync_ns += write;
            self.ckpts.record_paid(self.device, write);
            self.last_checkpoint = iter_idx + 1;
            self.ckpts.record(self.device, self.last_checkpoint);
        }
        if self.record {
            self.timeline.push(TimelineEvent {
                device: self.device,
                instr: "CKPT".to_string(),
                start,
                end: self.clock,
            });
        }
        if self.record_spans {
            self.spans.push(OpSpan {
                device: self.device,
                iter: iter_idx,
                pc: CKPT_PC,
                start,
                end: self.clock,
                work_ns: self.clock - start,
                sent_at: 0,
                wire_ns: 0,
                gate_ns: 0,
            });
        }
        Ok(())
    }

    /// Poisons every channel half this device owns: outgoing data links
    /// and the ack sides of incoming links. Called once the device has
    /// settled (completed or failed), *before* the runtime is dropped, so
    /// peers blocked on this device observe a FIFO-ordered end-of-stream
    /// marker instead of a real-time-racy channel teardown.
    pub fn poison_links(&mut self) {
        for half in self.out.values_mut() {
            half.poison();
        }
        for half in self.inp.values_mut() {
            half.poison();
        }
    }

    /// Finishes the run and reports.
    pub fn finish(self) -> DeviceReport {
        let mut telemetry = self.telemetry;
        telemetry.peak_mem = self.ledger.peak();
        telemetry.absorbed_faults = self.absorbed.len() as u32;
        // The conservation invariant: every nanosecond of the clock is
        // accounted to exactly one time class.
        debug_assert_eq!(
            telemetry.classes.total(),
            self.clock,
            "{}: time classes do not conserve the clock",
            self.device
        );
        DeviceReport {
            clock: self.clock,
            peak_mem: self.ledger.peak(),
            leaked: self.ledger.live_count(),
            timeline: self.timeline,
            absorbed: self.absorbed,
            last_checkpoint: self.last_checkpoint,
            telemetry,
            link_sends: self.link_sends,
            link_recv_wait: self.link_recv_wait,
            spans: self.spans,
        }
    }

    /// Current virtual clock (tests).
    pub fn clock(&self) -> Nanos {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_chain_names_a_cycle() {
        let t = StallTable::new(3);
        t.enter(DeviceId(0), DeviceId(1), 5);
        t.enter(DeviceId(1), DeviceId(2), 7);
        t.enter(DeviceId(2), DeviceId(0), 9);
        assert_eq!(
            t.wait_chain(DeviceId(0)),
            vec![DeviceId(0), DeviceId(1), DeviceId(2), DeviceId(0)]
        );
        t.clear(DeviceId(2));
        assert_eq!(
            t.wait_chain(DeviceId(0)),
            vec![DeviceId(0), DeviceId(1), DeviceId(2)]
        );
    }

    #[test]
    fn wait_chain_stops_at_self_loops() {
        let t = StallTable::new(2);
        t.enter(DeviceId(1), DeviceId(1), 0);
        assert_eq!(t.wait_chain(DeviceId(1)), vec![DeviceId(1), DeviceId(1)]);
    }
}
