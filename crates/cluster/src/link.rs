//! Virtual-time point-to-point links between device threads.
//!
//! Each directed `(sender, receiver, message-class)` pair owns one link: a
//! data channel carrying `(header, bytes, send-timestamp)` packets and an
//! acknowledgement channel carrying dequeue timestamps back. The ack
//! protocol realizes bounded-buffer blocking *in virtual time* while the
//! threads run concurrently in real time:
//!
//! * the sender may have at most `capacity` un-acknowledged packets; one
//!   more send first waits for the oldest ack and advances its virtual
//!   clock to that dequeue time (the buffer was full until then);
//! * the receiver stamps each packet with
//!   `max(own clock, sent_at + transfer_time)` and acks that time.
//!
//! Because every clock update depends only on packet timestamps — never on
//! real-time arrival order — the emulated timeline is deterministic under
//! any thread interleaving (the property that makes the emulator usable as
//! reproducible "ground truth" for Fig. 10).

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use mario_ir::exec::MsgClass;
use mario_ir::{MicroId, Nanos, PartId};
use std::collections::VecDeque;
use std::time::Duration;

/// A message header: identity checked on receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Activation or gradient.
    pub class: MsgClass,
    /// Micro-batch id.
    pub micro: MicroId,
    /// Producer-side partition id.
    pub part: PartId,
}

/// A packet in flight.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Identity.
    pub header: Header,
    /// Payload size (drives transfer time on the receiving side).
    pub bytes: u64,
    /// Sender virtual clock when the send was issued.
    pub sent_at: Nanos,
}

/// What travels on the data channel: a genuine packet, or the poison
/// marker a settling device enqueues behind all its real traffic.
#[derive(Debug, Clone, Copy)]
enum Wire {
    Pkt(Packet),
    Poison,
}

/// What travels on the ack channel: a dequeue timestamp, or poison.
#[derive(Debug, Clone, Copy)]
enum Ack {
    At(Nanos),
    Poison,
}

/// Decomposition of a successful receive: the arrival (the receiver's
/// clock after the message is available) plus the two packet-side terms
/// the span graph records — the departure timestamp and the wire time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvInfo {
    /// `max(now, sent_at + wire_ns)` — the receiver's new clock.
    pub arrival: Nanos,
    /// Sender virtual clock when the packet departed (including any
    /// injected link delay).
    pub sent_at: Nanos,
    /// Wire transfer duration for the packet's payload.
    pub wire_ns: Nanos,
}

/// Outcome of a blocking link operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkError {
    /// No progress within the watchdog timeout: deadlock suspected.
    Timeout,
    /// The peer hung up (failed or finished unexpectedly).
    Disconnected,
    /// Received packet identity does not match the expectation.
    Mismatch(Header),
}

/// Sending half of a link.
pub struct SendHalf {
    data: Sender<Wire>,
    ack: Receiver<Ack>,
    pending: VecDeque<()>,
    capacity: usize,
    timeout: Duration,
    poisoned: bool,
}

/// Receiving half of a link.
pub struct RecvHalf {
    data: Receiver<Wire>,
    ack: Sender<Ack>,
    timeout: Duration,
    poisoned: bool,
}

/// Creates a link with the given buffer `capacity` and watchdog `timeout`.
pub fn link(capacity: usize, timeout: Duration) -> (SendHalf, RecvHalf) {
    assert!(capacity >= 1);
    // Channels sized to capacity + 1: the ack protocol guarantees at most
    // `capacity` packets (and `capacity` buffered acks) are ever in
    // flight, so sends never block in real time — all blocking is virtual
    // (via acks) — and the extra slot is reserved for the single poison
    // marker each half may enqueue at teardown.
    let (data_tx, data_rx) = bounded(capacity + 1);
    let (ack_tx, ack_rx) = bounded(capacity + 1);
    (
        SendHalf {
            data: data_tx,
            ack: ack_rx,
            pending: VecDeque::new(),
            capacity,
            timeout,
            poisoned: false,
        },
        RecvHalf {
            data: data_rx,
            ack: ack_tx,
            timeout,
            poisoned: false,
        },
    )
}

impl SendHalf {
    /// Issues a send at virtual time `now`; returns the sender's clock after
    /// the operation (delayed if the buffer was full).
    pub fn send(&mut self, header: Header, bytes: u64, now: Nanos) -> Result<Nanos, LinkError> {
        self.send_delayed(header, bytes, now, 0)
    }

    /// Like [`SendHalf::send`], but the packet departs `delay` ns after the
    /// send is issued (an injected link delay): the packet's timestamp is
    /// pushed back while the sender's own clock is unaffected, exactly as
    /// if the wire were transiently slow.
    pub fn send_delayed(
        &mut self,
        header: Header,
        bytes: u64,
        mut now: Nanos,
        delay: Nanos,
    ) -> Result<Nanos, LinkError> {
        if self.pending.len() == self.capacity {
            let dequeued_at = match self.ack.recv_timeout(self.timeout) {
                Ok(Ack::At(t)) => t,
                Ok(Ack::Poison) => return Err(LinkError::Disconnected),
                Err(RecvTimeoutError::Timeout) => return Err(LinkError::Timeout),
                Err(RecvTimeoutError::Disconnected) => return Err(LinkError::Disconnected),
            };
            self.pending.pop_front();
            now = now.max(dequeued_at);
        }
        let pkt = Packet {
            header,
            bytes,
            sent_at: now + delay,
        };
        self.data
            .send(Wire::Pkt(pkt))
            .map_err(|_| LinkError::Disconnected)?;
        self.pending.push_back(());
        Ok(now)
    }

    /// Un-acknowledged packets currently in flight. Mirrors the DP
    /// simulator's `Channel::outstanding` counter exactly: both grow on a
    /// send and shrink only when a capacity-blocked send consumes the
    /// oldest ack, so per-link occupancy telemetry is parity-safe.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Drains outstanding acks at the end of an iteration so virtual time
    /// stays consistent across iterations.
    pub fn drain(&mut self, mut now: Nanos) -> Result<Nanos, LinkError> {
        while self.pending.pop_front().is_some() {
            let t = match self.ack.recv_timeout(self.timeout) {
                Ok(Ack::At(t)) => t,
                Ok(Ack::Poison) => return Err(LinkError::Disconnected),
                Err(RecvTimeoutError::Timeout) => return Err(LinkError::Timeout),
                Err(RecvTimeoutError::Disconnected) => return Err(LinkError::Disconnected),
            };
            now = now.max(t);
        }
        Ok(now)
    }

    /// Enqueues the poison marker behind all genuine traffic (once). A
    /// settling device calls this instead of dropping the half, so a
    /// blocked peer wakes on a FIFO-ordered event — after consuming every
    /// real packet — rather than on the racy teardown of the channel.
    pub fn poison(&mut self) {
        if !self.poisoned {
            // The reserved extra slot means this never blocks; it only
            // errs if the peer already dropped its end (nobody listening).
            let _ = self.data.send(Wire::Poison);
            self.poisoned = true;
        }
    }
}

impl RecvHalf {
    /// Blocks for the next packet, checks identity, and returns the
    /// receiver's clock after the message is available:
    /// `max(now, sent_at + transfer_ns(bytes))`.
    pub fn recv(
        &mut self,
        expect: Header,
        now: Nanos,
        transfer_ns: impl Fn(u64) -> Nanos,
    ) -> Result<Nanos, LinkError> {
        self.recv_info(expect, now, transfer_ns).map(|i| i.arrival)
    }

    /// [`RecvHalf::recv`], also exposing the packet's departure timestamp
    /// and wire time — the per-receive decomposition the span graph needs.
    pub fn recv_info(
        &mut self,
        expect: Header,
        now: Nanos,
        transfer_ns: impl Fn(u64) -> Nanos,
    ) -> Result<RecvInfo, LinkError> {
        let pkt = match self.data.recv_timeout(self.timeout) {
            Ok(Wire::Pkt(p)) => p,
            // The sender settled (finished or failed) and will never send
            // again: equivalent to a hang-up, but FIFO-ordered behind its
            // genuine traffic, so the observation is deterministic.
            Ok(Wire::Poison) => return Err(LinkError::Disconnected),
            Err(RecvTimeoutError::Timeout) => return Err(LinkError::Timeout),
            Err(RecvTimeoutError::Disconnected) => return Err(LinkError::Disconnected),
        };
        if pkt.header != expect {
            return Err(LinkError::Mismatch(pkt.header));
        }
        let wire_ns = transfer_ns(pkt.bytes);
        let arrival = now.max(pkt.sent_at + wire_ns);
        // The ack channel outsizes the in-flight ack count and the sender
        // reads one ack per extra send, so this never blocks; a sender that
        // has already finished (dropped its ack end) simply no longer cares.
        let _ = self.ack.send(Ack::At(arrival));
        Ok(RecvInfo {
            arrival,
            sent_at: pkt.sent_at,
            wire_ns,
        })
    }

    /// Enqueues poison on the ack channel (once): a peer blocked waiting
    /// for an ack from this settling device wakes deterministically after
    /// consuming every genuine ack.
    pub fn poison(&mut self) {
        if !self.poisoned {
            let _ = self.ack.send(Ack::Poison);
            self.poisoned = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn hdr(m: u32) -> Header {
        Header {
            class: MsgClass::Act,
            micro: MicroId(m),
            part: PartId(0),
        }
    }

    #[test]
    fn virtual_time_propagates_through_transfer() {
        let (mut tx, mut rx) = link(1, Duration::from_secs(2));
        let s = thread::spawn(move || {
            let t = tx.send(hdr(0), 100, 1_000).unwrap();
            assert_eq!(t, 1_000);
        });
        // Receiver is "ahead" in its own time; arrival is the max.
        let t = rx.recv(hdr(0), 500, |b| b * 10).unwrap();
        assert_eq!(t, 2_000); // max(500, 1000 + 100*10)
        s.join().unwrap();
    }

    #[test]
    fn capacity_one_delays_second_send_to_dequeue_time() {
        let (mut tx, mut rx) = link(1, Duration::from_secs(2));
        let s = thread::spawn(move || {
            let t1 = tx.send(hdr(0), 0, 100).unwrap();
            assert_eq!(t1, 100);
            // Second send must wait until the receiver dequeued msg 0 at
            // t=5000.
            let t2 = tx.send(hdr(1), 0, 200).unwrap();
            assert_eq!(t2, 5_000);
        });
        let t = rx.recv(hdr(0), 5_000, |_| 0).unwrap();
        assert_eq!(t, 5_000);
        let t = rx.recv(hdr(1), t, |_| 0).unwrap();
        assert_eq!(t, 5_000);
        s.join().unwrap();
    }

    #[test]
    fn capacity_two_allows_two_eager_sends() {
        let (mut tx, mut rx) = link(2, Duration::from_secs(2));
        let s = thread::spawn(move || {
            assert_eq!(tx.send(hdr(0), 0, 10).unwrap(), 10);
            assert_eq!(tx.send(hdr(1), 0, 20).unwrap(), 20); // no wait
            let t3 = tx.send(hdr(2), 0, 30).unwrap();
            assert_eq!(t3, 1_000); // waits for first dequeue
        });
        assert_eq!(rx.recv(hdr(0), 1_000, |_| 0).unwrap(), 1_000);
        assert_eq!(rx.recv(hdr(1), 1_000, |_| 0).unwrap(), 1_000);
        assert_eq!(rx.recv(hdr(2), 1_000, |_| 0).unwrap(), 1_000);
        s.join().unwrap();
    }

    #[test]
    fn delayed_send_pushes_arrival_not_sender_clock() {
        let (mut tx, mut rx) = link(1, Duration::from_secs(2));
        let s = thread::spawn(move || {
            // Sender's own clock is unaffected by the injected delay...
            let t = tx.send_delayed(hdr(0), 100, 1_000, 5_000).unwrap();
            assert_eq!(t, 1_000);
        });
        // ...but the packet departs 5000 ns late, so arrival shifts.
        let t = rx.recv(hdr(0), 0, |b| b * 10).unwrap();
        assert_eq!(t, 7_000); // (1000 + 5000) + 100*10
        s.join().unwrap();
    }

    #[test]
    fn mismatch_is_detected() {
        let (mut tx, mut rx) = link(1, Duration::from_secs(2));
        tx.send(hdr(7), 0, 0).unwrap();
        let err = rx.recv(hdr(0), 0, |_| 0).unwrap_err();
        assert!(matches!(err, LinkError::Mismatch(h) if h.micro == MicroId(7)));
    }

    #[test]
    fn recv_times_out_when_nothing_is_sent() {
        let (_tx, mut rx) = link(1, Duration::from_millis(50));
        let err = rx.recv(hdr(0), 0, |_| 0).unwrap_err();
        assert_eq!(err, LinkError::Timeout);
    }

    #[test]
    fn disconnect_is_reported() {
        let (tx, mut rx) = link(1, Duration::from_secs(2));
        drop(tx);
        let err = rx.recv(hdr(0), 0, |_| 0).unwrap_err();
        assert_eq!(err, LinkError::Disconnected);
    }

    #[test]
    fn drain_collects_outstanding_acks() {
        let (mut tx, mut rx) = link(2, Duration::from_secs(2));
        let s = thread::spawn(move || {
            tx.send(hdr(0), 0, 10).unwrap();
            tx.send(hdr(1), 0, 20).unwrap();
            let t = tx.drain(20).unwrap();
            assert_eq!(t, 900);
        });
        rx.recv(hdr(0), 500, |_| 0).unwrap();
        rx.recv(hdr(1), 900, |_| 0).unwrap();
        s.join().unwrap();
    }
}
