//! Deterministic fault injection: seeded, reproducible fault plans the
//! runner threads through devices and links, plus the structured reports
//! every induced failure is converted into.
//!
//! The fault layer is strictly opt-in: an empty [`FaultPlan`] leaves the
//! emulator bit-identical to the fault-free build (the
//! `simulator_matches_emulator` property), while a populated plan lets a
//! run answer "what happens to this schedule when a device straggles 10×,
//! a link stalls, or memory headroom shrinks?" — and guarantees the answer
//! is a terminating run with a [`FaultReport`], never a hang or a panic.

use mario_ir::{
    DeviceId, InstrKind, LinkSlack, Nanos, PerturbationProfile, Schedule, SlowdownWindow,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Compute on `device` runs `factor`× slower for instructions with
    /// `from_pc <= pc < until_pc` (a transient straggler).
    Slowdown {
        /// The straggling device.
        device: DeviceId,
        /// Slowdown multiplier (e.g. 10.0).
        factor: f64,
        /// First affected instruction index.
        from_pc: usize,
        /// One past the last affected instruction index.
        until_pc: usize,
    },
    /// `device` aborts immediately before executing instruction `pc`.
    Crash {
        /// The crashing device.
        device: DeviceId,
        /// Instruction index at which the device dies.
        pc: usize,
    },
    /// The `nth` packet `src` sends to `dst` (counting all classes and
    /// parts, 0-based) departs `extra_ns` late in virtual time. The run
    /// completes; the fault is absorbed and logged.
    LinkDelay {
        /// Sending side of the link.
        src: DeviceId,
        /// Receiving side of the link.
        dst: DeviceId,
        /// 0-based index of the affected packet on the `src → dst` pair.
        nth: usize,
        /// Extra virtual latency, ns.
        extra_ns: Nanos,
    },
    /// The `nth` packet `src` sends to `dst` is lost: the receiver's
    /// blocking recv can never pair and the stall is reported against
    /// this fault.
    LinkStall {
        /// Sending side of the link.
        src: DeviceId,
        /// Receiving side of the link.
        dst: DeviceId,
        /// 0-based index of the dropped packet on the `src → dst` pair.
        nth: usize,
    },
    /// `device`'s memory capacity is clamped to `capacity` bytes for the
    /// whole run (a mid-fleet headroom squeeze).
    MemSqueeze {
        /// The squeezed device.
        device: DeviceId,
        /// New capacity, bytes.
        capacity: u64,
    },
}

impl FaultKind {
    /// The device at the fault site (for links: the sender).
    pub fn site(&self) -> DeviceId {
        match *self {
            FaultKind::Slowdown { device, .. }
            | FaultKind::Crash { device, .. }
            | FaultKind::MemSqueeze { device, .. } => device,
            FaultKind::LinkDelay { src, .. } | FaultKind::LinkStall { src, .. } => src,
        }
    }

    /// True for faults a healthy schedule absorbs without failing
    /// (slowdowns and finite link delays).
    pub fn is_absorbable(&self) -> bool {
        matches!(
            self,
            FaultKind::Slowdown { .. } | FaultKind::LinkDelay { .. }
        )
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultKind::Slowdown {
                device,
                factor,
                from_pc,
                until_pc,
            } => write!(f, "slowdown {factor}x on {device} pcs {from_pc}..{until_pc}"),
            FaultKind::Crash { device, pc } => write!(f, "crash of {device} at #{pc}"),
            FaultKind::LinkDelay {
                src,
                dst,
                nth,
                extra_ns,
            } => write!(f, "delay +{extra_ns}ns on packet {nth} of {src}->{dst}"),
            FaultKind::LinkStall { src, dst, nth } => {
                write!(f, "stall dropping packet {nth} of {src}->{dst}")
            }
            FaultKind::MemSqueeze { device, capacity } => {
                write!(f, "memory squeeze of {device} to {capacity} B")
            }
        }
    }
}

/// A named set of faults injected together because they share a physical
/// root cause (one rack losing power takes its devices *and* their links).
/// Groups exist for attribution: a [`FaultReport`] whose fault belongs to
/// a group names the group, so a sweep can count "rack-3 failures" rather
/// than unrelated-looking crashes and stalls.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultGroup {
    /// Human-readable group name (e.g. `rack-1`).
    pub name: String,
    /// The member faults (each also present in [`FaultPlan::faults`]).
    pub members: Vec<FaultKind>,
}

/// A reproducible set of faults to inject into one run. Plans built from
/// the same seed are identical, so every failure they induce is
/// re-observable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The faults to inject.
    pub faults: Vec<FaultKind>,
    /// Iteration (0-based) during which slowdown/crash/link faults fire;
    /// memory squeezes clamp capacity for the whole run.
    pub iteration: u32,
    /// Correlated-fault groups for attribution (possibly empty; every
    /// member fault is also listed in `faults`).
    #[serde(default)]
    pub groups: Vec<FaultGroup>,
    /// A cascading follow-up: once this plan's hard fault fires and the
    /// run restarts (or reconfigures), the armed plan becomes the active
    /// one for the next attempt — a failure whose trigger arms a second
    /// failure. Plans are plain data, so a seeded cascade replays
    /// bit-identically.
    #[serde(default)]
    pub armed: Option<Box<FaultPlan>>,
}

impl FaultPlan {
    /// The empty plan: emulation behaves exactly as without the fault
    /// layer.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no fault is injected.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a fault.
    pub fn with(mut self, fault: FaultKind) -> Self {
        self.faults.push(fault);
        self
    }

    /// Draws one random single-fault plan for `schedule`, uniformly over
    /// fault kinds and sites. Deterministic in `seed`.
    pub fn single_random(seed: u64, schedule: &Schedule) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let kind = rng.gen_range(0u32..5);
        Self::default().with(draw_fault(&mut rng, schedule, kind))
    }

    /// Draws a random crash or link-stall plan (the two hard-failure
    /// kinds). Deterministic in `seed`.
    pub fn single_crash_or_stall(seed: u64, schedule: &Schedule) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let kind = if rng.gen_bool(0.5) { 1 } else { 3 };
        Self::default().with(draw_fault(&mut rng, schedule, kind))
    }

    /// Draws a random absorbable plan (a slowdown or a finite link
    /// delay — the faults a run completes through). Deterministic in
    /// `seed`.
    pub fn single_absorbable(seed: u64, schedule: &Schedule) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let kind = if rng.gen_bool(0.5) { 0 } else { 2 };
        let fault = draw_fault(&mut rng, schedule, kind);
        // A communication-free schedule degrades `kind 2` to a crash;
        // fall back to a slowdown so the plan stays absorbable.
        if fault.is_absorbable() {
            Self::default().with(fault)
        } else {
            Self::default().with(draw_fault(&mut rng, schedule, 0))
        }
    }

    /// True when every fault in the plan is absorbable (the run completes
    /// and logs them instead of failing).
    pub fn is_absorbable(&self) -> bool {
        self.faults.iter().all(FaultKind::is_absorbable)
    }

    /// Number of hard (non-absorbable) faults in the plan — the failures
    /// that kill an attempt and force a restart. This is the fault count
    /// the checkpoint-interval tuner turns into a rate.
    pub fn hard_faults(&self) -> usize {
        self.faults.iter().filter(|f| !f.is_absorbable()).count()
    }

    /// Moves the plan's transient faults to iteration `iter`.
    pub fn at_iteration(mut self, iter: u32) -> Self {
        self.iteration = iter;
        self
    }

    /// Arms `next` as the cascading follow-up plan: it activates on the
    /// attempt after this plan's hard fault fires.
    pub fn arming(mut self, next: FaultPlan) -> Self {
        self.armed = Some(Box::new(next));
        self
    }

    /// Consumes the plan after its fault fired, yielding what the next
    /// attempt must enforce: the armed follow-up if one exists, else the
    /// empty plan.
    pub fn take_armed(&mut self) -> FaultPlan {
        match self.armed.take() {
            Some(next) => *next,
            None => FaultPlan::none(),
        }
    }

    /// A correlated multi-fault plan modeling a whole rack losing power:
    /// one device of the seeded rack crashes, and every inter-rack link
    /// touching the rack stalls (its first packet of the fault iteration
    /// is lost). All members share one [`FaultGroup`] named `rack-<r>`,
    /// so any surfaced [`FaultReport`] attributes back to the rack.
    /// Racks partition devices into pairs `{2r, 2r+1}`; deterministic in
    /// `seed`.
    pub fn rack_failure(seed: u64, schedule: &Schedule) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let devices = schedule.devices();
        let racks = devices.div_ceil(2).max(1);
        let rack = rng.gen_range(0..racks);
        let in_rack = |d: DeviceId| d.0 / 2 == rack;

        // The crashing device: a seeded member of the rack, at a seeded pc.
        let members: Vec<DeviceId> = (0..devices).map(DeviceId).filter(|&d| in_rack(d)).collect();
        let victim = members[rng.gen_range(0..members.len())];
        let len = schedule.program(victim).len().max(1);
        let mut faults = vec![FaultKind::Crash {
            device: victim,
            pc: rng.gen_range(0..len),
        }];

        // Every directed link with exactly one endpoint in the rack loses
        // its first packet (links internal to the rack die with the rack
        // and need no separate stall to surface).
        let mut stalled: Vec<(DeviceId, DeviceId)> = Vec::new();
        for (src, dst, nth) in send_sites(schedule) {
            if nth == 0 && (in_rack(src) != in_rack(dst)) && !stalled.contains(&(src, dst)) {
                stalled.push((src, dst));
                faults.push(FaultKind::LinkStall { src, dst, nth: 0 });
            }
        }

        Self {
            groups: vec![FaultGroup {
                name: format!("rack-{rack}"),
                members: faults.clone(),
            }],
            faults,
            iteration: 0,
            armed: None,
        }
    }

    /// A correlated multi-fault plan modeling a top-of-node switch dying:
    /// every directed link crossing the seeded node's boundary stalls
    /// (its first packet of the fault iteration is lost). Nodes partition
    /// devices into groups of `node_size`; only nodes with crossing
    /// traffic are candidates, so the plan always surfaces. No device
    /// crashes — the switch takes the links, not the hosts — and the
    /// settle-barrier teardown stays deterministic: every induced stall
    /// is attributed to the one `switch-<n>` group. Returns the empty
    /// plan when no link crosses any node boundary (a single-node
    /// cluster). Deterministic in `seed`.
    pub fn switch_failure(seed: u64, schedule: &Schedule, node_size: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let node_size = node_size.max(1);
        let node_of = |d: DeviceId| d.0 / node_size;

        // Candidate nodes: those with at least one link crossing their
        // boundary in this schedule.
        let sites = send_sites(schedule);
        let mut candidates: Vec<u32> = sites
            .iter()
            .flat_map(|&(src, dst, _)| [node_of(src), node_of(dst)])
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|&n| {
            sites
                .iter()
                .any(|&(src, dst, _)| (node_of(src) == n) != (node_of(dst) == n))
        });
        if candidates.is_empty() {
            return Self::none();
        }
        let node = candidates[rng.gen_range(0..candidates.len())];

        let mut stalled: Vec<(DeviceId, DeviceId)> = Vec::new();
        let mut faults = Vec::new();
        for (src, dst, nth) in sites {
            if nth == 0
                && (node_of(src) == node) != (node_of(dst) == node)
                && !stalled.contains(&(src, dst))
            {
                stalled.push((src, dst));
                faults.push(FaultKind::LinkStall { src, dst, nth: 0 });
            }
        }
        Self {
            groups: vec![FaultGroup {
                name: format!("switch-{node}"),
                members: faults.clone(),
            }],
            faults,
            iteration: 0,
            armed: None,
        }
    }

    /// The name of the correlated group `fault` belongs to, if any.
    pub fn group_of(&self, fault: &FaultKind) -> Option<String> {
        self.groups
            .iter()
            .find(|g| g.members.contains(fault))
            .map(|g| g.name.clone())
    }

    /// The [`PerturbationProfile`] this plan imposes on the cluster — the
    /// contract that lets the DP simulator predict a faulted emulator run.
    ///
    /// Only absorbable faults (slowdowns, finite link delays) translate;
    /// hard faults (crashes, stalls, squeezes) have no timing-only
    /// equivalent and are skipped — call [`FaultPlan::is_absorbable`]
    /// first when exact agreement is required. Duplicate link delays on
    /// the same `(src, dst, nth)` packet keep only the first, matching
    /// the emulator's first-match enforcement. Every window carries the
    /// plan's fault iteration, matching the emulator's per-iteration
    /// fault scoping — agreement holds for any iteration count as long
    /// as the simulator models the same number of iterations
    /// (`simulate_timeline_iters`).
    pub fn perturbation_profile(&self) -> PerturbationProfile {
        let mut profile = PerturbationProfile::identity();
        for &fault in &self.faults {
            match fault {
                FaultKind::Slowdown {
                    device,
                    factor,
                    from_pc,
                    until_pc,
                } => {
                    profile.slowdowns.push(SlowdownWindow {
                        device,
                        factor,
                        from_pc,
                        until_pc,
                        iteration: Some(self.iteration),
                    });
                }
                FaultKind::LinkDelay {
                    src,
                    dst,
                    nth,
                    extra_ns,
                } => {
                    let dup = profile.link_slack.iter().any(|s| {
                        s.src == src && s.dst == dst && s.nth == Some(nth)
                    });
                    if !dup {
                        profile.link_slack.push(LinkSlack {
                            src,
                            dst,
                            nth: Some(nth),
                            extra_ns,
                            iteration: Some(self.iteration),
                        });
                    }
                }
                FaultKind::Crash { .. }
                | FaultKind::LinkStall { .. }
                | FaultKind::MemSqueeze { .. } => {}
            }
        }
        profile
    }

    /// The slice of this plan one device must enforce.
    pub fn for_device(&self, device: DeviceId) -> DeviceFaults {
        let mut df = DeviceFaults {
            iteration: self.iteration,
            ..DeviceFaults::default()
        };
        for &fault in &self.faults {
            match fault {
                FaultKind::Slowdown { device: d, .. } if d == device => {
                    df.slowdowns.push(fault)
                }
                FaultKind::Crash { device: d, .. } if d == device => df.crash = Some(fault),
                FaultKind::MemSqueeze { device: d, .. } if d == device => {
                    df.squeeze = Some(fault)
                }
                FaultKind::LinkDelay { src, .. } | FaultKind::LinkStall { src, .. }
                    if src == device =>
                {
                    df.send_faults.push(fault)
                }
                _ => {}
            }
            if let FaultKind::LinkStall { dst, .. } = fault {
                if dst == device {
                    df.recv_stalls.push(fault);
                }
            }
        }
        df
    }
}

/// Picks a fault of the requested kind (0 slowdown, 1 crash, 2 delay,
/// 3 stall, 4 squeeze) at a random admissible site of `schedule`.
fn draw_fault(rng: &mut StdRng, schedule: &Schedule, kind: u32) -> FaultKind {
    let device = DeviceId(rng.gen_range(0..schedule.devices()));
    let len = schedule.program(device).len().max(1);
    match kind {
        0 => {
            let from_pc = rng.gen_range(0..len);
            let until_pc = (from_pc + 1 + rng.gen_range(0..len)).min(len);
            FaultKind::Slowdown {
                device,
                factor: 10.0,
                from_pc,
                until_pc,
            }
        }
        1 => FaultKind::Crash {
            device,
            pc: rng.gen_range(0..len),
        },
        2 | 3 => {
            // Pick a random send instruction anywhere in the schedule and
            // target the packet it will produce.
            let sends: Vec<(DeviceId, DeviceId, usize)> = send_sites(schedule);
            if sends.is_empty() {
                // Degenerate schedule without communication: fall back to
                // a crash so the plan still has a single admissible fault.
                return FaultKind::Crash {
                    device,
                    pc: rng.gen_range(0..len),
                };
            }
            let (src, dst, nth) = sends[rng.gen_range(0..sends.len())];
            if kind == 2 {
                FaultKind::LinkDelay {
                    src,
                    dst,
                    nth,
                    extra_ns: 1_000 * (1 + rng.gen_range(0u64..50)),
                }
            } else {
                FaultKind::LinkStall { src, dst, nth }
            }
        }
        _ => FaultKind::MemSqueeze {
            device,
            capacity: 0,
        },
    }
}

/// Every `(src, dst, nth)` packet a schedule will send, in program order
/// per sender (the admissible link-fault sites).
fn send_sites(schedule: &Schedule) -> Vec<(DeviceId, DeviceId, usize)> {
    let mut sites = Vec::new();
    for prog in schedule.programs() {
        let mut per_dst: std::collections::HashMap<DeviceId, usize> =
            std::collections::HashMap::new();
        for (_, instr) in prog.iter() {
            let peer = match instr.kind {
                InstrKind::SendAct { peer } | InstrKind::SendGrad { peer } => peer,
                _ => continue,
            };
            let nth = per_dst.entry(peer).or_insert(0);
            sites.push((prog.device, peer, *nth));
            *nth += 1;
        }
    }
    sites
}

/// The faults one device enforces while executing (a projection of the
/// plan computed by [`FaultPlan::for_device`]).
#[derive(Debug, Clone, Default)]
pub struct DeviceFaults {
    /// Iteration during which transient faults fire.
    pub iteration: u32,
    /// Active [`FaultKind::Slowdown`]s for this device.
    pub slowdowns: Vec<FaultKind>,
    /// Pending [`FaultKind::Crash`] for this device.
    pub crash: Option<FaultKind>,
    /// Pending [`FaultKind::MemSqueeze`] for this device.
    pub squeeze: Option<FaultKind>,
    /// Link faults where this device is the sender.
    pub send_faults: Vec<FaultKind>,
    /// Link stalls where this device is the receiver (used to attribute
    /// the resulting blocked recv to the injected fault).
    pub recv_stalls: Vec<FaultKind>,
}

impl DeviceFaults {
    /// True when this device has nothing to enforce.
    pub fn is_empty(&self) -> bool {
        self.slowdowns.is_empty()
            && self.crash.is_none()
            && self.squeeze.is_none()
            && self.send_faults.is_empty()
            && self.recv_stalls.is_empty()
    }

    /// Capacity clamp from a pending squeeze, if any.
    pub fn squeezed_capacity(&self) -> Option<u64> {
        match self.squeeze {
            Some(FaultKind::MemSqueeze { capacity, .. }) => Some(capacity),
            _ => None,
        }
    }

    /// Combined slowdown factor for instruction `pc` of iteration `iter`.
    pub fn slow_factor(&self, iter: u32, pc: usize) -> f64 {
        if iter != self.iteration {
            return 1.0;
        }
        let mut f = 1.0;
        for s in &self.slowdowns {
            if let FaultKind::Slowdown {
                factor,
                from_pc,
                until_pc,
                ..
            } = *s
            {
                if (from_pc..until_pc).contains(&pc) {
                    f *= factor;
                }
            }
        }
        f
    }

    /// The send fault hitting the `nth` packet to `dst` in iteration
    /// `iter`, if any.
    pub fn send_fault(&self, iter: u32, dst: DeviceId, nth: usize) -> Option<FaultKind> {
        if iter != self.iteration {
            return None;
        }
        self.send_faults.iter().copied().find(|f| match *f {
            FaultKind::LinkDelay { dst: d, nth: n, .. }
            | FaultKind::LinkStall { dst: d, nth: n, .. } => d == dst && n == nth,
            _ => false,
        })
    }

    /// The injected stall on the incoming link from `src`, if any (any
    /// failure to receive from `src` is then attributed to it).
    pub fn recv_stall_from(&self, src: DeviceId) -> Option<FaultKind> {
        self.recv_stalls.iter().copied().find(|f| match *f {
            FaultKind::LinkStall { src: s, .. } => s == src,
            _ => false,
        })
    }
}

/// The structured outcome of an induced failure: which fault fired, who
/// observed it, where, and when (virtual time). Two runs of the same
/// seeded plan produce identical reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// The injected fault this failure is attributed to.
    pub fault: FaultKind,
    /// The device that observed the failure.
    pub device: DeviceId,
    /// Instruction index at which the failure surfaced.
    pub pc: usize,
    /// The surfacing instruction (rendered), if the device got that far.
    pub instr: String,
    /// The peer the observer was blocked on, for communication stalls.
    pub blocked_peer: Option<DeviceId>,
    /// Virtual time of the failure, ns.
    pub vtime: Nanos,
    /// Iteration (0-based) during which the failure surfaced.
    pub iteration: u32,
    /// Iterations covered by the last checkpoint the *whole cluster* had
    /// completed when the failure surfaced (0 when no checkpoint policy
    /// was active or nothing was saved yet) — where a resume restarts.
    /// Stamped with the device-local value at construction; the runner's
    /// root-cause attribution replaces it with the cluster-durable one.
    #[serde(default)]
    pub last_checkpoint: u32,
    /// Checkpoint write time actually paid across the cluster when this
    /// failure surfaced, ns (stamped by the runner's root-cause
    /// attribution) — what the failed attempt's writes cost even though
    /// some never became cluster-durable.
    #[serde(default)]
    pub ckpt_paid_ns: Nanos,
    /// The correlated [`FaultGroup`] this fault belongs to, if any.
    #[serde(default)]
    pub group: Option<String>,
    /// Normalized cause description.
    pub detail: String,
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} at #{} ({}) t={}ns iter {}: {}",
            self.fault, self.device, self.pc, self.instr, self.vtime, self.iteration, self.detail
        )?;
        if let Some(g) = &self.group {
            write!(f, " (group {g})")?;
        }
        if let Some(p) = self.blocked_peer {
            write!(f, " (blocked on {p})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::SchemeKind;
    use mario_schedules::{generate, ScheduleConfig};

    #[test]
    fn same_seed_same_plan() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        for seed in 0..64 {
            let a = FaultPlan::single_random(seed, &s);
            let b = FaultPlan::single_random(seed, &s);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(a.faults.len(), 1);
        }
    }

    #[test]
    fn seeds_cover_every_fault_kind() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let mut seen = [false; 5];
        for seed in 0..256 {
            let p = FaultPlan::single_random(seed, &s);
            let i = match p.faults[0] {
                FaultKind::Slowdown { .. } => 0,
                FaultKind::Crash { .. } => 1,
                FaultKind::LinkDelay { .. } => 2,
                FaultKind::LinkStall { .. } => 3,
                FaultKind::MemSqueeze { .. } => 4,
            };
            seen[i] = true;
        }
        assert_eq!(seen, [true; 5]);
    }

    #[test]
    fn device_projection_routes_faults() {
        let d0 = DeviceId(0);
        let d1 = DeviceId(1);
        let plan = FaultPlan::none()
            .with(FaultKind::Crash { device: d0, pc: 3 })
            .with(FaultKind::LinkStall {
                src: d0,
                dst: d1,
                nth: 2,
            })
            .with(FaultKind::MemSqueeze {
                device: d1,
                capacity: 64,
            });
        let f0 = plan.for_device(d0);
        assert!(f0.crash.is_some());
        assert_eq!(f0.send_faults.len(), 1);
        assert!(f0.recv_stalls.is_empty());
        let f1 = plan.for_device(d1);
        assert!(f1.crash.is_none());
        assert_eq!(f1.squeezed_capacity(), Some(64));
        assert!(f1.recv_stall_from(d0).is_some());
        assert!(f1.recv_stall_from(d1).is_none());
        assert!(plan.for_device(DeviceId(2)).is_empty());
    }

    #[test]
    fn slow_factor_windows() {
        let d = DeviceId(0);
        let plan = FaultPlan::none().with(FaultKind::Slowdown {
            device: d,
            factor: 10.0,
            from_pc: 2,
            until_pc: 5,
        });
        let df = plan.for_device(d);
        assert_eq!(df.slow_factor(0, 1), 1.0);
        assert_eq!(df.slow_factor(0, 2), 10.0);
        assert_eq!(df.slow_factor(0, 4), 10.0);
        assert_eq!(df.slow_factor(0, 5), 1.0);
        // Wrong iteration: inactive.
        assert_eq!(df.slow_factor(1, 2), 1.0);
    }

    #[test]
    fn absorbable_plans_translate_to_profiles() {
        let plan = FaultPlan::none()
            .with(FaultKind::Slowdown {
                device: DeviceId(1),
                factor: 10.0,
                from_pc: 2,
                until_pc: 5,
            })
            .with(FaultKind::LinkDelay {
                src: DeviceId(0),
                dst: DeviceId(1),
                nth: 3,
                extra_ns: 7_000,
            });
        assert!(plan.is_absorbable());
        let p = plan.perturbation_profile();
        assert_eq!(p.compute_factor(DeviceId(1), 0, 3), 10.0);
        assert_eq!(p.compute_factor(DeviceId(1), 0, 5), 1.0);
        assert_eq!(p.link_extra(DeviceId(0), DeviceId(1), 0, 3), 7_000);
        assert_eq!(p.link_extra(DeviceId(0), DeviceId(1), 0, 2), 0);
        // The windows are scoped to the plan's fault iteration.
        assert_eq!(p.compute_factor(DeviceId(1), 1, 3), 1.0);
        assert_eq!(p.link_extra(DeviceId(0), DeviceId(1), 1, 3), 0);
    }

    #[test]
    fn profile_windows_follow_the_plan_iteration() {
        let plan = FaultPlan::none()
            .with(FaultKind::Slowdown {
                device: DeviceId(0),
                factor: 4.0,
                from_pc: 0,
                until_pc: 10,
            })
            .at_iteration(2);
        let p = plan.perturbation_profile();
        assert_eq!(p.compute_factor(DeviceId(0), 2, 5), 4.0);
        assert_eq!(p.compute_factor(DeviceId(0), 0, 5), 1.0);
    }

    #[test]
    fn hard_faults_do_not_translate() {
        let plan = FaultPlan::none()
            .with(FaultKind::Crash {
                device: DeviceId(0),
                pc: 1,
            })
            .with(FaultKind::LinkStall {
                src: DeviceId(0),
                dst: DeviceId(1),
                nth: 0,
            })
            .with(FaultKind::MemSqueeze {
                device: DeviceId(1),
                capacity: 64,
            });
        assert!(!plan.is_absorbable());
        assert!(plan.perturbation_profile().is_identity());
    }

    #[test]
    fn duplicate_link_delays_keep_the_first() {
        // The emulator enforces the first matching fault on a packet; the
        // derived profile must not double-charge it.
        let plan = FaultPlan::none()
            .with(FaultKind::LinkDelay {
                src: DeviceId(0),
                dst: DeviceId(1),
                nth: 0,
                extra_ns: 5_000,
            })
            .with(FaultKind::LinkDelay {
                src: DeviceId(0),
                dst: DeviceId(1),
                nth: 0,
                extra_ns: 9_000,
            });
        let p = plan.perturbation_profile();
        assert_eq!(p.link_extra(DeviceId(0), DeviceId(1), 0, 0), 5_000);
    }

    #[test]
    fn rack_failure_is_correlated_and_deterministic() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        for seed in 0..32 {
            let plan = FaultPlan::rack_failure(seed, &s);
            assert_eq!(plan, FaultPlan::rack_failure(seed, &s), "seed {seed}");
            // One crash plus at least one stall (a 4-deep pipeline always
            // has links crossing any rack boundary).
            let crashes = plan
                .faults
                .iter()
                .filter(|f| matches!(f, FaultKind::Crash { .. }))
                .count();
            assert_eq!(crashes, 1, "seed {seed}");
            assert!(plan.hard_faults() >= 2, "seed {seed}: {:?}", plan.faults);
            // Every fault is attributed to the one rack group.
            assert_eq!(plan.groups.len(), 1);
            let name = &plan.groups[0].name;
            assert!(name.starts_with("rack-"), "{name}");
            for f in &plan.faults {
                assert_eq!(plan.group_of(f).as_ref(), Some(name));
            }
            // The crash victim and the stalled links all touch the rack.
            let rack: u32 = name["rack-".len()..].parse().unwrap();
            for f in &plan.faults {
                match *f {
                    FaultKind::Crash { device, .. } => assert_eq!(device.0 / 2, rack),
                    FaultKind::LinkStall { src, dst, .. } => {
                        assert!((src.0 / 2 == rack) != (dst.0 / 2 == rack))
                    }
                    ref other => panic!("unexpected fault {other:?}"),
                }
            }
        }
        // Ungrouped plans attribute to nothing.
        let lone = FaultPlan::single_random(0, &s);
        assert_eq!(lone.group_of(&lone.faults[0]), None);
    }

    #[test]
    fn switch_failure_stalls_every_boundary_crossing_link() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        for seed in 0..32 {
            let plan = FaultPlan::switch_failure(seed, &s, 2);
            assert_eq!(plan, FaultPlan::switch_failure(seed, &s, 2), "seed {seed}");
            // Links only, no host crash; a 4-deep pipeline on 2-device
            // nodes always has boundary-crossing traffic.
            assert!(!plan.faults.is_empty(), "seed {seed}");
            assert_eq!(plan.groups.len(), 1);
            let name = &plan.groups[0].name;
            assert!(name.starts_with("switch-"), "{name}");
            let node: u32 = name["switch-".len()..].parse().unwrap();
            let mut seen = std::collections::HashSet::new();
            for f in &plan.faults {
                assert_eq!(plan.group_of(f).as_ref(), Some(name));
                match *f {
                    FaultKind::LinkStall { src, dst, nth } => {
                        assert_eq!(nth, 0);
                        assert!((src.0 / 2 == node) != (dst.0 / 2 == node));
                        assert!(seen.insert((src, dst)), "duplicate stall {src}->{dst}");
                    }
                    ref other => panic!("unexpected fault {other:?}"),
                }
            }
        }
        // A comm-free schedule has no switch to lose.
        let lone = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 2, 2).comm(false));
        assert_eq!(FaultPlan::switch_failure(0, &lone, 2), FaultPlan::none());
    }

    #[test]
    fn armed_plans_cascade_and_replay_from_the_seed() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        let build = |seed: u64| {
            FaultPlan::single_crash_or_stall(seed, &s)
                .arming(FaultPlan::rack_failure(seed + 1, &s).at_iteration(1))
        };
        let mut a = build(7);
        assert_eq!(a, build(7));
        let second = a.take_armed();
        assert_eq!(second, FaultPlan::rack_failure(8, &s).at_iteration(1));
        assert!(second.armed.is_none());
        // A second consumption finds nothing left.
        assert_eq!(a.take_armed(), FaultPlan::none());
    }

    #[test]
    fn single_absorbable_is_always_absorbable() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
        for seed in 0..64 {
            let p = FaultPlan::single_absorbable(seed, &s);
            assert!(p.is_absorbable(), "seed {seed}: {:?}", p.faults);
            assert_eq!(p, FaultPlan::single_absorbable(seed, &s));
        }
    }

    #[test]
    fn send_sites_match_schedule_sends() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 2, 2));
        let sites = send_sites(&s);
        let sends: usize = s
            .programs()
            .iter()
            .map(|p| {
                p.count(|i| {
                    matches!(
                        i.kind,
                        InstrKind::SendAct { .. } | InstrKind::SendGrad { .. }
                    )
                })
            })
            .sum();
        assert_eq!(sites.len(), sends);
    }
}
